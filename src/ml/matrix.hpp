// Minimal dense row-major float matrix for the neural-network stack.
// Sized for StencilMART's workloads (batch x feature matrices up to a few
// thousand elements per row); the matmul uses an i-k-j loop order that
// vectorizes well and is cache-friendly at these sizes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace smart::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(const std::vector<std::vector<float>>& rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<float> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  const float* data() const noexcept { return data_.data(); }
  float* data() noexcept { return data_.data(); }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes in place to rows x cols, all elements set to `value`. Keeps
  /// the existing allocation when it is large enough — the inference paths
  /// call this once per batch on long-lived scratch matrices.
  void resize(std::size_t rows, std::size_t cols, float value = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, value);
  }

  /// Reshapes like resize() but leaves element values unspecified (stale
  /// contents from an earlier, possibly larger shape may remain). Only for
  /// callers that overwrite every element before reading — the matmul
  /// kernels do, which saves resize()'s O(rows*cols) zero-fill per batch.
  void reshape_overwrite(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// He-uniform initialization for layer weights (fan_in = rows()).
  void init_he(util::Rng& rng);

  /// Gathers a subset of rows (for minibatching / k-fold splits).
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  /// Writes `mat rows cols` + hexfloat elements (one token each). load()
  /// reproduces every element bit-exactly and throws std::runtime_error on
  /// malformed input or non-finite values (a NaN weight must never load).
  void save(std::ostream& out) const;
  static Matrix load(std::istream& in);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Shapes must agree ((n x k) * (k x m)).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B written into a caller-owned matrix (resized as needed) so hot
/// inference loops reuse one allocation. Uses a register-tiled i-k-j kernel;
/// every output element still accumulates over k in ascending order, so the
/// result is bit-identical to matmul() and independent of the tiling.
/// Throws std::invalid_argument when `c` aliases an input: the kernel
/// reshapes and overwrites `c` before it finishes reading A and B, so an
/// aliased call would silently corrupt the product.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);

/// Strict fused inference kernel: C = act(A * B + bias) with `bias` a
/// 1 x cols(B) row broadcast over the batch and act = ReLU when `relu`,
/// identity otherwise. Per element this performs exactly the operations of
/// matmul_into() followed by the legacy bias loop and ReLU pass, in the
/// same order (sum over k ascending, then one bias add, then the max) — so
/// fusing is bit-identical to the unfused three-pass path; it only removes
/// the intermediate memory traffic. Same aliasing rule as matmul_into().
void matmul_bias_act_into(const Matrix& a, const Matrix& b, const Matrix& bias,
                          bool relu, Matrix& c);

/// Relaxed float32 variant of matmul_bias_act_into() (the SMART_PRECISION
/// "f32" mode, DESIGN.md §13): accumulation is still per-element over k
/// ascending, but mul+add may contract to FMA and the column-remainder path
/// splits the dot product over interleaved partial sums, so results are
/// only tolerance-equivalent to the strict kernel. Dispatches once at
/// runtime to the widest ISA this CPU supports (ml::dispatch_isa()) and
/// falls back to a portable scalar-vector build elsewhere. For a fixed
/// machine the output is deterministic and independent of batch size,
/// blocking and thread count, exactly like the strict kernel.
void matmul_bias_act_relaxed_into(const Matrix& a, const Matrix& b,
                                  const Matrix& bias, bool relu, Matrix& c);

/// C = A * B^T ((n x k) * (m x k) -> n x m).
Matrix matmul_bt(const Matrix& a, const Matrix& b);

/// C = A^T * B ((n x k), (n x m) -> k x m).
Matrix matmul_at(const Matrix& a, const Matrix& b);

}  // namespace smart::ml
