// The paper's four neural models plus training wrappers:
//   ConvNet  — CNN on the binary pattern tensor, classification (Fig. 7)
//   FcNet    — dense net on tensor+features, classification
//   MLP      — dense net on feature vectors, regression
//   ConvMLP  — CNN branch (tensor) merged with MLP branch (parameters +
//              hardware features), regression (Fig. 8)
// Hyperparameters mirror the paper's (Sec. V-A3) at library scale; epochs
// and widths are configurable so Fig. 13's sensitivity sweep can reuse the
// same code.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/nn.hpp"

namespace smart::ml {

struct TrainConfig {
  int epochs = 40;
  int batch_size = 50;       // paper: 50 (ConvNet/FcNet), 256 (MLP/ConvMLP)
  double learning_rate = 1e-3;
  std::uint64_t seed = 7;
  /// > 0 holds out that fraction of the training set and stops when the
  /// held-out loss has not improved for `patience` epochs (early stopping).
  double validation_fraction = 0.0;
  int patience = 5;
};

/// Token round-trip for TrainConfig (hyperparameters travel with the fitted
/// weights so a refit on new data reproduces the original recipe).
void save_train_config(std::ostream& out, const TrainConfig& config);
TrainConfig load_train_config(std::istream& in);

/// Conv stack for pattern tensors: two kxk conv layers (k = 3, as in the
/// paper) + two dense layers. dims selects Conv2D vs Conv3D.
Sequential make_conv_trunk(int dims, int max_order, int channels1,
                           int channels2, util::Rng& rng);

Sequential make_convnet(int dims, int max_order, int num_classes,
                        util::Rng& rng);
Sequential make_fcnet(std::size_t input_dim, int num_classes, int num_layers,
                      std::size_t width, util::Rng& rng);
Sequential make_mlp(std::size_t input_dim, int hidden_layers,
                    std::size_t width, util::Rng& rng);

/// Classification wrapper (minibatch Adam + softmax cross-entropy).
class NnClassifier {
 public:
  NnClassifier(Sequential net, TrainConfig config);

  /// Returns the final-epoch mean training loss.
  double fit(const Matrix& x, std::span<const int> labels);
  std::vector<int> predict(const Matrix& x);

  /// Persists config + net; the loaded classifier predicts bit-identically.
  void save(std::ostream& out) const;
  static NnClassifier load(std::istream& in);

 private:
  Sequential net_;
  TrainConfig config_;
};

/// Regression wrapper (single output, MSE).
class NnRegressor {
 public:
  NnRegressor(Sequential net, TrainConfig config);

  double fit(const Matrix& x, std::span<const float> targets);
  std::vector<double> predict(const Matrix& x);

  /// Persists config + net; the loaded regressor predicts bit-identically.
  void save(std::ostream& out) const;
  static NnRegressor load(std::istream& in);

 private:
  Sequential net_;
  TrainConfig config_;
};

/// Two-branch ConvMLP (paper Fig. 8): CNN on the pattern tensor, MLP on the
/// auxiliary features; outputs are concatenated into a dense head.
class ConvMlpRegressor {
 public:
  ConvMlpRegressor(int dims, int max_order, std::size_t aux_dim,
                   TrainConfig config);

  double fit(const Matrix& tensors, const Matrix& aux,
             std::span<const float> targets);
  std::vector<double> predict(const Matrix& tensors, const Matrix& aux);

  /// Batched prediction over rows that share tensors: `unique_tensors`
  /// holds each distinct pattern tensor once and `tensor_row[i]` names the
  /// tensor row of aux row i. The conv branch runs once per distinct
  /// tensor instead of once per row; every layer is row-independent, so the
  /// result is bit-identical to predict() on the expanded tensor matrix.
  std::vector<double> predict_gathered(const Matrix& unique_tensors,
                                       std::span<const std::size_t> tensor_row,
                                       const Matrix& aux);

  /// Persists config + all three branch nets; the loaded regressor predicts
  /// bit-identically (predict and predict_gathered).
  void save(std::ostream& out) const;
  static ConvMlpRegressor load(std::istream& in);

 private:
  ConvMlpRegressor() = default;  // deserialization shell filled by load()

  Matrix forward(const Matrix& tensors, const Matrix& aux);
  void backward(const Matrix& grad_head_in);

  Sequential conv_branch_;
  Sequential mlp_branch_;
  Sequential head_;
  Matrix joint_;  // reusable concat buffer for predict()
  std::size_t conv_out_ = 0;
  std::size_t mlp_out_ = 0;
  TrainConfig config_;
};

}  // namespace smart::ml
