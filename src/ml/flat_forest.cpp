#include "ml/flat_forest.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace smart::ml {

void FlatForest::build(std::span<const RegressionTree> trees) {
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  weight_.clear();
  root_.clear();
  steps_.clear();

  std::size_t total = 0;
  for (const RegressionTree& tree : trees) {
    total += std::max<std::size_t>(1, tree.nodes().size());
  }
  feature_.reserve(total);
  threshold_.reserve(total);
  left_.reserve(total);
  right_.reserve(total);
  weight_.reserve(total);
  root_.reserve(trees.size());
  steps_.reserve(trees.size());

  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<std::int32_t> depth;  // scratch: per-node depth of one tree
  for (const RegressionTree& tree : trees) {
    const auto base = static_cast<std::int32_t>(feature_.size());
    root_.push_back(base);
    const auto& nodes = tree.nodes();
    if (nodes.empty()) {
      // predict_row returns 0.0 for an empty tree; a zero-weight leaf
      // reproduces that exactly.
      feature_.push_back(0);
      threshold_.push_back(kInf);
      left_.push_back(base);
      right_.push_back(base);
      weight_.push_back(0.0);
      steps_.push_back(0);
      continue;
    }
    for (const RegressionTree::Node& n : nodes) {
      const auto self = static_cast<std::int32_t>(feature_.size());
      if (n.feature < 0) {
        // Self-looping leaf: any value (NaN included, via `<= +inf` being
        // false) stays on this node for the remaining lockstep iterations.
        feature_.push_back(0);
        threshold_.push_back(kInf);
        left_.push_back(self);
        right_.push_back(self);
      } else {
        feature_.push_back(n.feature);
        threshold_.push_back(n.threshold);
        left_.push_back(base + n.left);
        right_.push_back(base + n.right);
      }
      weight_.push_back(n.weight);
    }
    // Step count = max root-to-node depth, recomputed from the links (a
    // serialized depth field is not trusted: too small would stop lanes on
    // internal nodes). Children always follow their parent in the builder's
    // preorder layout, so one forward pass suffices.
    depth.assign(nodes.size(), 0);
    std::int32_t max_depth = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const RegressionTree::Node& n = nodes[i];
      if (n.feature < 0) continue;
      if (n.left <= static_cast<int>(i) || n.right <= static_cast<int>(i)) {
        // Fitted trees are preorder by construction; a back-link can only
        // come from a corrupt artifact (and would cycle the pointer walk).
        throw std::runtime_error("FlatForest::build: non-preorder child link");
      }
      const std::int32_t d = depth[i] + 1;
      depth[static_cast<std::size_t>(n.left)] = d;
      depth[static_cast<std::size_t>(n.right)] = d;
      max_depth = std::max(max_depth, d);
    }
    steps_.push_back(max_depth);
  }
}

void FlatForest::leaf_weights(std::size_t t, const Matrix& x,
                              std::size_t begin, std::size_t end,
                              double* out) const {
  const std::int32_t root = root_[t];
  const std::int32_t steps = steps_[t];
  const std::int32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const std::int32_t* left = left_.data();
  const std::int32_t* right = right_.data();
  const std::size_t cols = x.cols();
  const float* data = x.data();

  const std::size_t n = end - begin;
  for (std::size_t r0 = 0; r0 < n; r0 += kLockstep) {
    const std::size_t ln = std::min(kLockstep, n - r0);
    std::int32_t idx[kLockstep];
    for (std::size_t l = 0; l < ln; ++l) idx[l] = root;
    for (std::int32_t d = 0; d < steps; ++d) {
      for (std::size_t l = 0; l < ln; ++l) {
        const std::int32_t i = idx[l];
        const float v =
            data[(begin + r0 + l) * cols + static_cast<std::size_t>(feature[i])];
        // Same comparison as the pointer walk: NaN fails `<=`, goes right.
        idx[l] = v <= threshold[i] ? left[i] : right[i];
      }
    }
    for (std::size_t l = 0; l < ln; ++l) {
      out[r0 + l] = weight_[static_cast<std::size_t>(idx[l])];
    }
  }
}

}  // namespace smart::ml
