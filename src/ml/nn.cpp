#include "ml/nn.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "ml/simd.hpp"
#include "util/serialize_io.hpp"
#include "util/task_pool.hpp"

namespace smart::ml {

// ----- Dense ---------------------------------------------------------------

Dense::Dense(std::size_t in, std::size_t out, util::Rng& rng)
    : w_(in, out), b_(1, out), dw_(in, out), db_(1, out) {
  w_.init_he(rng);
}

Dense::Dense(Matrix w, Matrix b)
    : w_(std::move(w)), b_(std::move(b)), dw_(w_.rows(), w_.cols()),
      db_(1, b_.cols()) {
  if (b_.rows() != 1 || b_.cols() != w_.cols()) {
    throw std::runtime_error("Dense: bias shape does not match weights");
  }
}

void Dense::save(std::ostream& out) const {
  out << "dense\n";
  w_.save(out);
  b_.save(out);
}

Matrix Dense::forward(const Matrix& x) {
  input_ = x;
  Matrix y = matmul(x, w_);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t c = 0; c < y.cols(); ++c) y.at(r, c) += b_.at(0, c);
  }
  return y;
}

void Dense::infer(const Matrix& x, Matrix& out) {
  matmul_into(x, w_, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out.at(r, c) += b_.at(0, c);
  }
}

void Dense::infer_fused(const Matrix& x, Matrix& out, bool relu) {
  if (inference_precision() == Precision::kRelaxed) {
    matmul_bias_act_relaxed_into(x, w_, b_, relu, out);
  } else {
    matmul_bias_act_into(x, w_, b_, relu, out);
  }
}

Matrix Dense::backward(const Matrix& grad_out) {
  const Matrix dw = matmul_at(input_, grad_out);
  for (std::size_t i = 0; i < dw.rows(); ++i) {
    for (std::size_t j = 0; j < dw.cols(); ++j) {
      dw_.at(i, j) += dw.at(i, j);
    }
  }
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      db_.at(0, c) += grad_out.at(r, c);
    }
  }
  return matmul_bt(grad_out, w_);
}

void Dense::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &dw_});
  out.push_back({&b_, &db_});
}

// ----- ReLU ------------------------------------------------------------------

Matrix ReLU::forward(const Matrix& x) {
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y = x;
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t c = 0; c < y.cols(); ++c) {
      if (y.at(r, c) > 0.0f) {
        mask_.at(r, c) = 1.0f;
      } else {
        y.at(r, c) = 0.0f;
      }
    }
  }
  return y;
}

void ReLU::infer(const Matrix& x, Matrix& out) {
  out.resize(x.rows(), x.cols());
  const float* src = x.data();
  float* dst = out.data();
  const std::size_t n = x.rows() * x.cols();
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

Matrix ReLU::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t c = 0; c < g.cols(); ++c) g.at(r, c) *= mask_.at(r, c);
  }
  return g;
}

void ReLU::save(std::ostream& out) const { out << "relu\n"; }

// ----- Dropout -----------------------------------------------------------------

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Matrix Dropout::forward(const Matrix& x) {
  if (!training_ || rate_ == 0.0) {
    mask_ = Matrix();
    return x;
  }
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y = x;
  const float scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t col = 0; col < y.cols(); ++col) {
      if (rng_.bernoulli(rate_)) {
        y.at(r, col) = 0.0f;
      } else {
        mask_.at(r, col) = scale;
        y.at(r, col) *= scale;
      }
    }
  }
  return y;
}

Matrix Dropout::backward(const Matrix& grad_out) {
  if (mask_.empty()) return grad_out;
  Matrix g = grad_out;
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t col = 0; col < g.cols(); ++col) {
      g.at(r, col) *= mask_.at(r, col);
    }
  }
  return g;
}

void Dropout::save(std::ostream& out) const {
  out << "dropout ";
  util::write_f64(out, rate_);
  out << '\n';
}

// ----- Conv2D ----------------------------------------------------------------

Conv2D::Conv2D(int in_c, int out_c, int h, int w, int k, util::Rng& rng)
    : in_c_(in_c), out_c_(out_c), h_(h), w_(w), k_(k),
      weights_(static_cast<std::size_t>(out_c),
         static_cast<std::size_t>(in_c) * static_cast<std::size_t>(k) *
             static_cast<std::size_t>(k)),
      bias_(1, static_cast<std::size_t>(out_c)),
      dweights_(weights_.rows(), weights_.cols()), dbias_(1, bias_.cols()) {
  if (h < k || w < k) throw std::invalid_argument("Conv2D: input smaller than kernel");
  weights_.init_he(rng);
}

Conv2D::Conv2D(int in_c, int out_c, int h, int w, int k, Matrix weights,
               Matrix bias)
    : in_c_(in_c), out_c_(out_c), h_(h), w_(w), k_(k),
      weights_(std::move(weights)), bias_(std::move(bias)),
      dweights_(weights_.rows(), weights_.cols()), dbias_(1, bias_.cols()) {
  if (in_c < 1 || out_c < 1 || k < 1 || h < k || w < k) {
    throw std::runtime_error("Conv2D: invalid geometry");
  }
  const std::size_t kernel = static_cast<std::size_t>(in_c) *
                             static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(k);
  if (weights_.rows() != static_cast<std::size_t>(out_c) ||
      weights_.cols() != kernel || bias_.rows() != 1 ||
      bias_.cols() != static_cast<std::size_t>(out_c)) {
    throw std::runtime_error("Conv2D: weight shape does not match geometry");
  }
}

void Conv2D::save(std::ostream& out) const {
  out << "conv2 " << in_c_ << ' ' << out_c_ << ' ' << h_ << ' ' << w_ << ' '
      << k_ << '\n';
  weights_.save(out);
  bias_.save(out);
}

Matrix Conv2D::forward(const Matrix& x) {
  input_ = x;
  Matrix y(x.rows(), output_size(0));
  run_forward(x, y);
  return y;
}

void Conv2D::infer(const Matrix& x, Matrix& out) {
  out.resize(x.rows(), output_size(0));
  run_forward(x, out);
}

void Conv2D::run_forward(const Matrix& x, Matrix& y) const {
  const std::size_t OH = oh();
  const std::size_t OW = ow();
  // Each batch row writes its own output row: parallel and bit-stable.
  util::parallel_for(x.rows(), [&](std::size_t n) {
    const float* in = x.row(n).data();
    float* out = y.row(n).data();
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* wrow = weights_.row(static_cast<std::size_t>(oc)).data();
      const float bias = bias_.at(0, static_cast<std::size_t>(oc));
      for (std::size_t i = 0; i < OH; ++i) {
        for (std::size_t j = 0; j < OW; ++j) {
          float acc = bias;
          std::size_t widx = 0;
          for (int ic = 0; ic < in_c_; ++ic) {
            const float* plane =
                in + static_cast<std::size_t>(ic) *
                         static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_);
            for (int kh = 0; kh < k_; ++kh) {
              const float* src =
                  plane + (i + static_cast<std::size_t>(kh)) *
                              static_cast<std::size_t>(w_) + j;
              for (int kw = 0; kw < k_; ++kw) {
                acc += wrow[widx++] * src[kw];
              }
            }
          }
          out[(static_cast<std::size_t>(oc) * OH + i) * OW + j] = acc;
        }
      }
    }
  });
}

Matrix Conv2D::backward(const Matrix& grad_out) {
  const std::size_t OH = oh();
  const std::size_t OW = ow();
  Matrix grad_in(input_.rows(), input_.cols());
  for (std::size_t n = 0; n < input_.rows(); ++n) {
    const float* in = input_.row(n).data();
    const float* gout = grad_out.row(n).data();
    float* gin = grad_in.row(n).data();
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* wrow = weights_.row(static_cast<std::size_t>(oc)).data();
      float* dwrow = dweights_.row(static_cast<std::size_t>(oc)).data();
      float db_acc = 0.0f;
      for (std::size_t i = 0; i < OH; ++i) {
        for (std::size_t j = 0; j < OW; ++j) {
          const float g = gout[(static_cast<std::size_t>(oc) * OH + i) * OW + j];
          if (g == 0.0f) continue;
          db_acc += g;
          std::size_t widx = 0;
          for (int ic = 0; ic < in_c_; ++ic) {
            const std::size_t plane_off =
                static_cast<std::size_t>(ic) * static_cast<std::size_t>(h_) *
                static_cast<std::size_t>(w_);
            for (int kh = 0; kh < k_; ++kh) {
              const std::size_t row_off =
                  plane_off + (i + static_cast<std::size_t>(kh)) *
                                  static_cast<std::size_t>(w_) + j;
              for (int kw = 0; kw < k_; ++kw) {
                dwrow[widx] += g * in[row_off + static_cast<std::size_t>(kw)];
                gin[row_off + static_cast<std::size_t>(kw)] += g * wrow[widx];
                ++widx;
              }
            }
          }
        }
      }
      dbias_.at(0, static_cast<std::size_t>(oc)) += db_acc;
    }
  }
  return grad_in;
}

void Conv2D::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &dweights_});
  out.push_back({&bias_, &dbias_});
}

// ----- Conv3D ----------------------------------------------------------------

Conv3D::Conv3D(int in_c, int out_c, int d, int h, int w, int k, util::Rng& rng)
    : in_c_(in_c), out_c_(out_c), d_(d), h_(h), w_(w), k_(k),
      weights_(static_cast<std::size_t>(out_c),
         static_cast<std::size_t>(in_c) * static_cast<std::size_t>(k) *
             static_cast<std::size_t>(k) * static_cast<std::size_t>(k)),
      bias_(1, static_cast<std::size_t>(out_c)),
      dweights_(weights_.rows(), weights_.cols()), dbias_(1, bias_.cols()) {
  if (d < k || h < k || w < k) {
    throw std::invalid_argument("Conv3D: input smaller than kernel");
  }
  weights_.init_he(rng);
}

Conv3D::Conv3D(int in_c, int out_c, int d, int h, int w, int k, Matrix weights,
               Matrix bias)
    : in_c_(in_c), out_c_(out_c), d_(d), h_(h), w_(w), k_(k),
      weights_(std::move(weights)), bias_(std::move(bias)),
      dweights_(weights_.rows(), weights_.cols()), dbias_(1, bias_.cols()) {
  if (in_c < 1 || out_c < 1 || k < 1 || d < k || h < k || w < k) {
    throw std::runtime_error("Conv3D: invalid geometry");
  }
  const std::size_t kernel = static_cast<std::size_t>(in_c) *
                             static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(k);
  if (weights_.rows() != static_cast<std::size_t>(out_c) ||
      weights_.cols() != kernel || bias_.rows() != 1 ||
      bias_.cols() != static_cast<std::size_t>(out_c)) {
    throw std::runtime_error("Conv3D: weight shape does not match geometry");
  }
}

void Conv3D::save(std::ostream& out) const {
  out << "conv3 " << in_c_ << ' ' << out_c_ << ' ' << d_ << ' ' << h_ << ' '
      << w_ << ' ' << k_ << '\n';
  weights_.save(out);
  bias_.save(out);
}

Matrix Conv3D::forward(const Matrix& x) {
  input_ = x;
  Matrix y(x.rows(), output_size(0));
  run_forward(x, y);
  return y;
}

void Conv3D::infer(const Matrix& x, Matrix& out) {
  out.resize(x.rows(), output_size(0));
  run_forward(x, out);
}

void Conv3D::run_forward(const Matrix& x, Matrix& y) const {
  const std::size_t OD = od();
  const std::size_t OH = oh();
  const std::size_t OW = ow();
  const std::size_t HW = static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_);
  // Each batch row writes its own output row: parallel and bit-stable.
  util::parallel_for(x.rows(), [&](std::size_t n) {
    const float* in = x.row(n).data();
    float* out = y.row(n).data();
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* wrow = weights_.row(static_cast<std::size_t>(oc)).data();
      const float bias = bias_.at(0, static_cast<std::size_t>(oc));
      for (std::size_t a = 0; a < OD; ++a) {
        for (std::size_t i = 0; i < OH; ++i) {
          for (std::size_t j = 0; j < OW; ++j) {
            float acc = bias;
            std::size_t widx = 0;
            for (int ic = 0; ic < in_c_; ++ic) {
              const float* vol = in + static_cast<std::size_t>(ic) *
                                          static_cast<std::size_t>(d_) * HW;
              for (int kd = 0; kd < k_; ++kd) {
                const float* plane = vol + (a + static_cast<std::size_t>(kd)) * HW;
                for (int kh = 0; kh < k_; ++kh) {
                  const float* src = plane + (i + static_cast<std::size_t>(kh)) *
                                                 static_cast<std::size_t>(w_) + j;
                  for (int kw = 0; kw < k_; ++kw) {
                    acc += wrow[widx++] * src[kw];
                  }
                }
              }
            }
            out[((static_cast<std::size_t>(oc) * OD + a) * OH + i) * OW + j] = acc;
          }
        }
      }
    }
  });
}

Matrix Conv3D::backward(const Matrix& grad_out) {
  const std::size_t OD = od();
  const std::size_t OH = oh();
  const std::size_t OW = ow();
  const std::size_t HW = static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_);
  Matrix grad_in(input_.rows(), input_.cols());
  for (std::size_t n = 0; n < input_.rows(); ++n) {
    const float* in = input_.row(n).data();
    const float* gout = grad_out.row(n).data();
    float* gin = grad_in.row(n).data();
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* wrow = weights_.row(static_cast<std::size_t>(oc)).data();
      float* dwrow = dweights_.row(static_cast<std::size_t>(oc)).data();
      float db_acc = 0.0f;
      for (std::size_t a = 0; a < OD; ++a) {
        for (std::size_t i = 0; i < OH; ++i) {
          for (std::size_t j = 0; j < OW; ++j) {
            const float g =
                gout[((static_cast<std::size_t>(oc) * OD + a) * OH + i) * OW + j];
            if (g == 0.0f) continue;
            db_acc += g;
            std::size_t widx = 0;
            for (int ic = 0; ic < in_c_; ++ic) {
              const std::size_t vol_off =
                  static_cast<std::size_t>(ic) * static_cast<std::size_t>(d_) * HW;
              for (int kd = 0; kd < k_; ++kd) {
                const std::size_t plane_off =
                    vol_off + (a + static_cast<std::size_t>(kd)) * HW;
                for (int kh = 0; kh < k_; ++kh) {
                  const std::size_t row_off =
                      plane_off + (i + static_cast<std::size_t>(kh)) *
                                      static_cast<std::size_t>(w_) + j;
                  for (int kw = 0; kw < k_; ++kw) {
                    dwrow[widx] += g * in[row_off + static_cast<std::size_t>(kw)];
                    gin[row_off + static_cast<std::size_t>(kw)] += g * wrow[widx];
                    ++widx;
                  }
                }
              }
            }
          }
        }
      }
      dbias_.at(0, static_cast<std::size_t>(oc)) += db_acc;
    }
  }
  return grad_in;
}

void Conv3D::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &dweights_});
  out.push_back({&bias_, &dbias_});
}

// ----- Sequential -------------------------------------------------------------

Matrix Sequential::forward(const Matrix& x) {
  Matrix cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur);
  return cur;
}

const Matrix& Sequential::infer(const Matrix& x) {
  if (layers_.empty()) {
    infer_a_ = x;
    return infer_a_;
  }
  const Matrix* cur = &x;
  // Peephole: a Dense immediately followed by ReLU runs as one fused kernel
  // step (strict fusion is bit-identical, see matmul_bias_act_into), so the
  // hot MLP path does one pass per layer pair instead of three. SMART_SIMD=0
  // falls back to the plain per-layer walk.
  const bool fuse = simd_enabled();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Matrix& dst = (cur == &infer_a_) ? infer_b_ : infer_a_;
    Dense* dense = fuse ? dynamic_cast<Dense*>(layers_[i].get()) : nullptr;
    if (dense != nullptr) {
      const bool relu = i + 1 < layers_.size() &&
                        dynamic_cast<ReLU*>(layers_[i + 1].get()) != nullptr;
      dense->infer_fused(*cur, dst, relu);
      if (relu) ++i;
    } else {
      layers_[i]->infer(*cur, dst);
    }
    cur = &dst;
  }
  return *cur;
}

Matrix Sequential::backward(const Matrix& grad_out) {
  Matrix cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

void Sequential::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

void Sequential::save(std::ostream& out) const {
  out << "net " << layers_.size() << '\n';
  for (const auto& layer : layers_) layer->save(out);
}

Sequential Sequential::load(std::istream& in) {
  util::expect_word(in, "net", "Sequential::load");
  const std::size_t num_layers = util::read_size(in, "net layer count");
  Sequential net;
  for (std::size_t i = 0; i < num_layers; ++i) {
    const std::string tag = util::read_token(in, "net layer tag");
    if (tag == "dense") {
      Matrix w = Matrix::load(in);
      Matrix b = Matrix::load(in);
      net.add(std::make_unique<Dense>(std::move(w), std::move(b)));
    } else if (tag == "relu") {
      net.add(std::make_unique<ReLU>());
    } else if (tag == "dropout") {
      const double rate = util::read_f64(in, "dropout rate");
      if (rate < 0.0 || rate >= 1.0) {
        throw std::runtime_error("Sequential::load: dropout rate out of range");
      }
      // Seed 0: the RNG stream is training state; loaded nets only infer.
      net.add(std::make_unique<Dropout>(rate, 0));
    } else if (tag == "conv2") {
      const int in_c = util::read_int(in, "conv2 in_c");
      const int out_c = util::read_int(in, "conv2 out_c");
      const int h = util::read_int(in, "conv2 h");
      const int w = util::read_int(in, "conv2 w");
      const int k = util::read_int(in, "conv2 k");
      Matrix weights = Matrix::load(in);
      Matrix bias = Matrix::load(in);
      net.add(std::make_unique<Conv2D>(in_c, out_c, h, w, k,
                                       std::move(weights), std::move(bias)));
    } else if (tag == "conv3") {
      const int in_c = util::read_int(in, "conv3 in_c");
      const int out_c = util::read_int(in, "conv3 out_c");
      const int d = util::read_int(in, "conv3 d");
      const int h = util::read_int(in, "conv3 h");
      const int w = util::read_int(in, "conv3 w");
      const int k = util::read_int(in, "conv3 k");
      Matrix weights = Matrix::load(in);
      Matrix bias = Matrix::load(in);
      net.add(std::make_unique<Conv3D>(in_c, out_c, d, h, w, k,
                                       std::move(weights), std::move(bias)));
    } else {
      throw std::runtime_error("Sequential::load: unknown layer tag '" + tag +
                               "'");
    }
  }
  return net;
}

// ----- Losses -------------------------------------------------------------------

double softmax_ce_loss(const Matrix& logits, std::span<const int> labels,
                       Matrix& grad) {
  if (logits.rows() != labels.size()) {
    throw std::invalid_argument("softmax_ce_loss: batch mismatch");
  }
  grad = Matrix(logits.rows(), logits.cols());
  double loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    float max_logit = row[0];
    for (float v : row) max_logit = std::max(max_logit, v);
    double denom = 0.0;
    for (float v : row) denom += std::exp(static_cast<double>(v - max_logit));
    const int label = labels[r];
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double p = std::exp(static_cast<double>(row[c] - max_logit)) / denom;
      grad.at(r, c) = static_cast<float>(
          (p - (static_cast<int>(c) == label ? 1.0 : 0.0)) * inv_n);
      if (static_cast<int>(c) == label) loss -= std::log(std::max(p, 1e-12));
    }
  }
  return loss * inv_n;
}

std::vector<int> argmax_rows(const Matrix& logits) {
  std::vector<int> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    out[r] = static_cast<int>(std::max_element(row.begin(), row.end()) -
                              row.begin());
  }
  return out;
}

double mse_loss(const Matrix& preds, std::span<const float> targets,
                Matrix& grad) {
  if (preds.rows() != targets.size() || preds.cols() != 1) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  grad = Matrix(preds.rows(), 1);
  double loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(preds.rows());
  for (std::size_t r = 0; r < preds.rows(); ++r) {
    const double diff = static_cast<double>(preds.at(r, 0)) - targets[r];
    loss += diff * diff;
    grad.at(r, 0) = static_cast<float>(2.0 * diff * inv_n);
  }
  return loss * inv_n;
}

// ----- Adam ------------------------------------------------------------------

void Adam::step(std::vector<ParamRef>& params) {
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      const std::size_t n = params[i].value->rows() * params[i].value->cols();
      m_[i].assign(n, 0.0f);
      v_[i].assign(n, 0.0f);
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* w = params[i].value->data();
    float* g = params[i].grad->data();
    const std::size_t n = params[i].value->rows() * params[i].value->cols();
    for (std::size_t j = 0; j < n; ++j) {
      m_[i][j] = static_cast<float>(beta1_ * m_[i][j] + (1.0 - beta1_) * g[j]);
      v_[i][j] = static_cast<float>(beta2_ * v_[i][j] +
                                    (1.0 - beta2_) * g[j] * g[j]);
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      w[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
      g[j] = 0.0f;
    }
  }
}

}  // namespace smart::ml
