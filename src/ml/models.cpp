#include "ml/models.hpp"

#include <memory>
#include <ostream>
#include <stdexcept>

#include "util/serialize_io.hpp"

namespace smart::ml {

namespace {

/// Shared minibatch loop: shuffles, gathers batches, invokes step(batch)
/// for gradient updates and evaluate(batch) for held-out loss, and returns
/// the final epoch's mean training loss. With validation_fraction > 0 the
/// loop stops once the held-out loss stops improving (early stopping).
template <typename Step, typename Evaluate>
double run_epochs(std::size_t n, const TrainConfig& config, util::Rng& rng,
                  Step&& step, Evaluate&& evaluate) {
  if (n == 0) throw std::invalid_argument("fit: empty dataset");

  std::vector<std::size_t> all = rng.permutation(n);
  std::size_t val_count = 0;
  if (config.validation_fraction > 0.0 && n >= 10) {
    val_count = static_cast<std::size_t>(
        config.validation_fraction * static_cast<double>(n));
  }
  const std::vector<std::size_t> val(all.end() - static_cast<std::ptrdiff_t>(val_count),
                                     all.end());
  std::vector<std::size_t> train(all.begin(),
                                 all.end() - static_cast<std::ptrdiff_t>(val_count));

  double last_epoch_loss = 0.0;
  double best_val = std::numeric_limits<double>::infinity();
  int stale_epochs = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(train);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < train.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end = std::min(
          train.size(), start + static_cast<std::size_t>(config.batch_size));
      const std::span<const std::size_t> batch(&train[start], end - start);
      loss_sum += step(batch);
      ++batches;
    }
    last_epoch_loss = loss_sum / static_cast<double>(batches);
    if (!val.empty()) {
      const double val_loss = evaluate(std::span<const std::size_t>(val));
      if (val_loss < best_val - 1e-9) {
        best_val = val_loss;
        stale_epochs = 0;
      } else if (++stale_epochs >= config.patience) {
        break;  // early stop
      }
    }
  }
  return last_epoch_loss;
}

}  // namespace

void save_train_config(std::ostream& out, const TrainConfig& config) {
  out << "tc " << config.epochs << ' ' << config.batch_size << ' ';
  util::write_f64(out, config.learning_rate);
  out << ' ' << config.seed << ' ';
  util::write_f64(out, config.validation_fraction);
  out << ' ' << config.patience << '\n';
}

TrainConfig load_train_config(std::istream& in) {
  util::expect_word(in, "tc", "load_train_config");
  TrainConfig config;
  config.epochs = util::read_int(in, "tc epochs");
  config.batch_size = util::read_int(in, "tc batch_size");
  config.learning_rate = util::read_f64(in, "tc learning_rate");
  config.seed = util::read_u64(in, "tc seed");
  config.validation_fraction = util::read_f64(in, "tc validation_fraction");
  config.patience = util::read_int(in, "tc patience");
  return config;
}

Sequential make_conv_trunk(int dims, int max_order, int channels1,
                           int channels2, util::Rng& rng) {
  const int e = 2 * max_order + 1;
  Sequential net;
  if (dims == 2) {
    net.add(std::make_unique<Conv2D>(1, channels1, e, e, 3, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Conv2D>(channels1, channels2, e - 2, e - 2, 3, rng));
    net.add(std::make_unique<ReLU>());
  } else if (dims == 3) {
    net.add(std::make_unique<Conv3D>(1, channels1, e, e, e, 3, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Conv3D>(channels1, channels2, e - 2, e - 2, e - 2,
                                     3, rng));
    net.add(std::make_unique<ReLU>());
  } else {
    throw std::invalid_argument("make_conv_trunk: dims must be 2 or 3");
  }
  return net;
}

namespace {

std::size_t conv_trunk_output(int dims, int max_order, int channels2) {
  const std::size_t side = static_cast<std::size_t>(2 * max_order + 1 - 4);
  std::size_t vol = side * side;
  if (dims == 3) vol *= side;
  return vol * static_cast<std::size_t>(channels2);
}

}  // namespace

Sequential make_convnet(int dims, int max_order, int num_classes,
                        util::Rng& rng) {
  constexpr int kC1 = 8;
  constexpr int kC2 = 16;
  Sequential net = make_conv_trunk(dims, max_order, kC1, kC2, rng);
  const std::size_t flat = conv_trunk_output(dims, max_order, kC2);
  net.add(std::make_unique<Dense>(flat, 64, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(64, static_cast<std::size_t>(num_classes), rng));
  return net;
}

Sequential make_fcnet(std::size_t input_dim, int num_classes, int num_layers,
                      std::size_t width, util::Rng& rng) {
  if (num_layers < 1) throw std::invalid_argument("make_fcnet: num_layers < 1");
  Sequential net;
  std::size_t in = input_dim;
  for (int i = 0; i < num_layers; ++i) {
    net.add(std::make_unique<Dense>(in, width, rng));
    net.add(std::make_unique<ReLU>());
    in = width;
  }
  net.add(std::make_unique<Dense>(in, static_cast<std::size_t>(num_classes), rng));
  return net;
}

Sequential make_mlp(std::size_t input_dim, int hidden_layers,
                    std::size_t width, util::Rng& rng) {
  if (hidden_layers < 1) throw std::invalid_argument("make_mlp: hidden_layers < 1");
  Sequential net;
  std::size_t in = input_dim;
  for (int i = 0; i < hidden_layers; ++i) {
    net.add(std::make_unique<Dense>(in, width, rng));
    net.add(std::make_unique<ReLU>());
    in = width;
  }
  net.add(std::make_unique<Dense>(in, 1, rng));
  return net;
}

// ----- NnClassifier -----------------------------------------------------------

NnClassifier::NnClassifier(Sequential net, TrainConfig config)
    : net_(std::move(net)), config_(config) {}

double NnClassifier::fit(const Matrix& x, std::span<const int> labels) {
  if (x.rows() != labels.size()) {
    throw std::invalid_argument("NnClassifier::fit: batch mismatch");
  }
  util::Rng rng(config_.seed);
  Adam opt(config_.learning_rate);
  auto params = net_.params();
  net_.set_training(true);
  const double loss = run_epochs(
      x.rows(), config_, rng,
      [&](std::span<const std::size_t> batch) {
        const Matrix xb = x.gather_rows(batch);
        std::vector<int> yb(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) yb[i] = labels[batch[i]];
        const Matrix logits = net_.forward(xb);
        Matrix grad;
        const double batch_loss = softmax_ce_loss(logits, yb, grad);
        net_.backward(grad);
        opt.step(params);
        return batch_loss;
      },
      [&](std::span<const std::size_t> batch) {
        net_.set_training(false);
        const Matrix xb = x.gather_rows(batch);
        std::vector<int> yb(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) yb[i] = labels[batch[i]];
        Matrix grad;
        const double val_loss = softmax_ce_loss(net_.forward(xb), yb, grad);
        net_.set_training(true);
        return val_loss;
      });
  net_.set_training(false);
  return loss;
}

std::vector<int> NnClassifier::predict(const Matrix& x) {
  net_.set_training(false);
  return argmax_rows(net_.infer(x));
}

void NnClassifier::save(std::ostream& out) const {
  out << "nncls\n";
  save_train_config(out, config_);
  net_.save(out);
}

NnClassifier NnClassifier::load(std::istream& in) {
  util::expect_word(in, "nncls", "NnClassifier::load");
  TrainConfig config = load_train_config(in);
  return NnClassifier(Sequential::load(in), config);
}

// ----- NnRegressor -----------------------------------------------------------

NnRegressor::NnRegressor(Sequential net, TrainConfig config)
    : net_(std::move(net)), config_(config) {}

double NnRegressor::fit(const Matrix& x, std::span<const float> targets) {
  if (x.rows() != targets.size()) {
    throw std::invalid_argument("NnRegressor::fit: batch mismatch");
  }
  util::Rng rng(config_.seed);
  Adam opt(config_.learning_rate);
  auto params = net_.params();
  net_.set_training(true);
  const double loss = run_epochs(
      x.rows(), config_, rng,
      [&](std::span<const std::size_t> batch) {
        const Matrix xb = x.gather_rows(batch);
        std::vector<float> yb(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) yb[i] = targets[batch[i]];
        const Matrix preds = net_.forward(xb);
        Matrix grad;
        const double batch_loss = mse_loss(preds, yb, grad);
        net_.backward(grad);
        opt.step(params);
        return batch_loss;
      },
      [&](std::span<const std::size_t> batch) {
        net_.set_training(false);
        const Matrix xb = x.gather_rows(batch);
        std::vector<float> yb(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) yb[i] = targets[batch[i]];
        Matrix grad;
        const double val_loss = mse_loss(net_.forward(xb), yb, grad);
        net_.set_training(true);
        return val_loss;
      });
  net_.set_training(false);
  return loss;
}

std::vector<double> NnRegressor::predict(const Matrix& x) {
  net_.set_training(false);
  const Matrix& preds = net_.infer(x);
  std::vector<double> out(preds.rows());
  for (std::size_t r = 0; r < preds.rows(); ++r) out[r] = preds.at(r, 0);
  return out;
}

void NnRegressor::save(std::ostream& out) const {
  out << "nnreg\n";
  save_train_config(out, config_);
  net_.save(out);
}

NnRegressor NnRegressor::load(std::istream& in) {
  util::expect_word(in, "nnreg", "NnRegressor::load");
  TrainConfig config = load_train_config(in);
  return NnRegressor(Sequential::load(in), config);
}

// ----- ConvMlpRegressor -------------------------------------------------------

ConvMlpRegressor::ConvMlpRegressor(int dims, int max_order,
                                   std::size_t aux_dim, TrainConfig config)
    : config_(config) {
  util::Rng rng(config.seed);
  constexpr int kC1 = 6;
  constexpr int kC2 = 8;
  conv_branch_ = make_conv_trunk(dims, max_order, kC1, kC2, rng);
  const std::size_t flat = conv_trunk_output(dims, max_order, kC2);
  conv_branch_.add(std::make_unique<Dense>(flat, 32, rng));
  conv_branch_.add(std::make_unique<ReLU>());
  conv_out_ = 32;

  mlp_branch_.add(std::make_unique<Dense>(aux_dim, 64, rng));
  mlp_branch_.add(std::make_unique<ReLU>());
  mlp_branch_.add(std::make_unique<Dense>(64, 32, rng));
  mlp_branch_.add(std::make_unique<ReLU>());
  mlp_out_ = 32;

  head_.add(std::make_unique<Dense>(conv_out_ + mlp_out_, 64, rng));
  head_.add(std::make_unique<ReLU>());
  head_.add(std::make_unique<Dense>(64, 1, rng));
}

Matrix ConvMlpRegressor::forward(const Matrix& tensors, const Matrix& aux) {
  const Matrix za = conv_branch_.forward(tensors);
  const Matrix zb = mlp_branch_.forward(aux);
  Matrix joint(za.rows(), conv_out_ + mlp_out_);
  for (std::size_t r = 0; r < za.rows(); ++r) {
    std::copy(za.row(r).begin(), za.row(r).end(), joint.row(r).begin());
    std::copy(zb.row(r).begin(), zb.row(r).end(),
              joint.row(r).begin() + static_cast<std::ptrdiff_t>(conv_out_));
  }
  return head_.forward(joint);
}

void ConvMlpRegressor::backward(const Matrix& grad_out) {
  const Matrix grad_joint = head_.backward(grad_out);
  Matrix ga(grad_joint.rows(), conv_out_);
  Matrix gb(grad_joint.rows(), mlp_out_);
  for (std::size_t r = 0; r < grad_joint.rows(); ++r) {
    const auto row = grad_joint.row(r);
    std::copy(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(conv_out_),
              ga.row(r).begin());
    std::copy(row.begin() + static_cast<std::ptrdiff_t>(conv_out_), row.end(),
              gb.row(r).begin());
  }
  conv_branch_.backward(ga);
  mlp_branch_.backward(gb);
}

double ConvMlpRegressor::fit(const Matrix& tensors, const Matrix& aux,
                             std::span<const float> targets) {
  if (tensors.rows() != aux.rows() || tensors.rows() != targets.size()) {
    throw std::invalid_argument("ConvMlpRegressor::fit: batch mismatch");
  }
  util::Rng rng(config_.seed);
  Adam opt(config_.learning_rate);
  std::vector<ParamRef> params = conv_branch_.params();
  for (ParamRef p : mlp_branch_.params()) params.push_back(p);
  for (ParamRef p : head_.params()) params.push_back(p);
  auto train_step = [&](std::span<const std::size_t> batch) {
    const Matrix tb = tensors.gather_rows(batch);
    const Matrix ab = aux.gather_rows(batch);
    std::vector<float> yb(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) yb[i] = targets[batch[i]];
    const Matrix preds = forward(tb, ab);
    Matrix grad;
    const double loss = mse_loss(preds, yb, grad);
    backward(grad);
    opt.step(params);
    return loss;
  };
  auto validate = [&](std::span<const std::size_t> batch) {
    const Matrix tb = tensors.gather_rows(batch);
    const Matrix ab = aux.gather_rows(batch);
    std::vector<float> yb(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) yb[i] = targets[batch[i]];
    Matrix grad;
    return mse_loss(forward(tb, ab), yb, grad);
  };
  return run_epochs(tensors.rows(), config_, rng, train_step, validate);
}

std::vector<double> ConvMlpRegressor::predict(const Matrix& tensors,
                                              const Matrix& aux) {
  // Inference-only forward: both branches and the head reuse their scratch
  // activations, and `joint_` persists across calls.
  const Matrix& za = conv_branch_.infer(tensors);
  const Matrix& zb = mlp_branch_.infer(aux);
  joint_.resize(za.rows(), conv_out_ + mlp_out_);
  for (std::size_t r = 0; r < za.rows(); ++r) {
    std::copy(za.row(r).begin(), za.row(r).end(), joint_.row(r).begin());
    std::copy(zb.row(r).begin(), zb.row(r).end(),
              joint_.row(r).begin() + static_cast<std::ptrdiff_t>(conv_out_));
  }
  const Matrix& preds = head_.infer(joint_);
  std::vector<double> out(preds.rows());
  for (std::size_t r = 0; r < preds.rows(); ++r) out[r] = preds.at(r, 0);
  return out;
}

std::vector<double> ConvMlpRegressor::predict_gathered(
    const Matrix& unique_tensors, std::span<const std::size_t> tensor_row,
    const Matrix& aux) {
  if (tensor_row.size() != aux.rows()) {
    throw std::invalid_argument("predict_gathered: tensor_row/aux mismatch");
  }
  // The conv branch only sees each distinct tensor once; its per-row output
  // equals the expanded-matrix result because every layer treats rows
  // independently, so gathering rows afterwards is exact.
  const Matrix& za = conv_branch_.infer(unique_tensors);
  const Matrix& zb = mlp_branch_.infer(aux);
  joint_.resize(aux.rows(), conv_out_ + mlp_out_);
  for (std::size_t r = 0; r < aux.rows(); ++r) {
    const auto conv = za.row(tensor_row[r]);
    std::copy(conv.begin(), conv.end(), joint_.row(r).begin());
    std::copy(zb.row(r).begin(), zb.row(r).end(),
              joint_.row(r).begin() + static_cast<std::ptrdiff_t>(conv_out_));
  }
  const Matrix& preds = head_.infer(joint_);
  std::vector<double> out(preds.rows());
  for (std::size_t r = 0; r < preds.rows(); ++r) out[r] = preds.at(r, 0);
  return out;
}

void ConvMlpRegressor::save(std::ostream& out) const {
  out << "convmlp " << conv_out_ << ' ' << mlp_out_ << '\n';
  save_train_config(out, config_);
  conv_branch_.save(out);
  mlp_branch_.save(out);
  head_.save(out);
}

ConvMlpRegressor ConvMlpRegressor::load(std::istream& in) {
  util::expect_word(in, "convmlp", "ConvMlpRegressor::load");
  ConvMlpRegressor model;
  model.conv_out_ = util::read_size(in, "convmlp conv_out");
  model.mlp_out_ = util::read_size(in, "convmlp mlp_out");
  if (model.conv_out_ == 0 || model.mlp_out_ == 0) {
    throw std::runtime_error("ConvMlpRegressor::load: empty branch width");
  }
  model.config_ = load_train_config(in);
  model.conv_branch_ = Sequential::load(in);
  model.mlp_branch_ = Sequential::load(in);
  model.head_ = Sequential::load(in);
  return model;
}

}  // namespace smart::ml
