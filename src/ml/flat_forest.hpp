// Flattened GBDT inference layout (DESIGN.md §13): every tree of an
// ensemble re-packed into one contiguous structure-of-arrays node pool so
// batched prediction walks cold-cache-friendly int32/float arrays instead
// of pointer-chasing per-tree std::vector<Node> allocations, and evaluates
// kLockstep rows per tree in lockstep (independent traversal chains the CPU
// can overlap).
//
// Exactness: the lockstep walk performs the identical `value <= threshold`
// comparison against the identical thresholds as RegressionTree::
// predict_row, and returns the identical double leaf weight, so its results
// are bit-for-bit equal to the pointer walk — including the NaN contract
// (NaN fails `<=` and routes right). Leaves are made self-referential
// (left = right = self, threshold = +inf so finite and NaN values both
// stay put) which lets every lane run a fixed per-tree step count with no
// divergence bookkeeping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "ml/tree.hpp"

namespace smart::ml {

class FlatForest {
 public:
  /// Rows evaluated per tree in lockstep (fits the index/feature working
  /// set in registers + L1 while staying a multiple of every vector width).
  static constexpr std::size_t kLockstep = 16;

  /// Rebuilds the flat pool from fitted trees (called after fit()/load()).
  /// Empty trees become a single zero-weight leaf so tree indices stay
  /// aligned with the ensemble. Per-tree step counts are recomputed from
  /// the node graph, never trusted from a serialized depth field.
  void build(std::span<const RegressionTree> trees);

  std::size_t num_trees() const noexcept { return root_.size(); }
  bool empty() const noexcept { return root_.empty(); }

  /// Writes tree `t`'s leaf weight for rows [begin, end) of x into
  /// out[0 .. end-begin). Bit-identical to predict_row on each row.
  void leaf_weights(std::size_t t, const Matrix& x, std::size_t begin,
                    std::size_t end, double* out) const;

 private:
  // One node pool across all trees; child indices are absolute.
  std::vector<std::int32_t> feature_;    // self-looped leaves store 0
  std::vector<float> threshold_;         // +inf at leaves
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> weight_;
  std::vector<std::int32_t> root_;       // per tree: pool index of the root
  std::vector<std::int32_t> steps_;      // per tree: computed max depth
};

}  // namespace smart::ml
