#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "ml/simd.hpp"
#include "util/serialize_io.hpp"
#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::ml {

namespace {

std::vector<double> importance_from_trees(
    const std::vector<RegressionTree>& trees, std::size_t num_features) {
  std::vector<double> gains(num_features, 0.0);
  double total = 0.0;
  for (const RegressionTree& tree : trees) {
    for (const auto& [feature, gain] : tree.split_gains()) {
      if (feature >= 0 && static_cast<std::size_t>(feature) < num_features) {
        gains[static_cast<std::size_t>(feature)] += gain;
        total += gain;
      }
    }
  }
  if (total > 0.0) {
    for (double& g : gains) g /= total;
  }
  return gains;
}

/// Rows per block of the batched ensemble prediction: small enough that the
/// block's accumulators stay cache-resident while a tree streams over them,
/// large enough to amortize the per-tree loop overhead.
constexpr std::size_t kPredictBlock = 256;

void save_params(std::ostream& out, const GbdtParams& p) {
  out << p.rounds << ' ';
  util::write_f64(out, p.learning_rate);
  out << ' ';
  util::write_f64(out, p.subsample);
  out << ' ' << p.seed << ' ' << p.tree.max_depth << ' '
      << p.tree.min_samples_leaf << ' ';
  util::write_f64(out, p.tree.lambda);
  out << ' ';
  util::write_f64(out, p.tree.min_gain);
  out << '\n';
}

GbdtParams load_params(std::istream& in) {
  GbdtParams p;
  p.rounds = util::read_int(in, "gbdt rounds");
  p.learning_rate = util::read_f64(in, "gbdt learning_rate");
  p.subsample = util::read_f64(in, "gbdt subsample");
  p.seed = util::read_u64(in, "gbdt seed");
  p.tree.max_depth = util::read_int(in, "gbdt max_depth");
  p.tree.min_samples_leaf = util::read_int(in, "gbdt min_samples_leaf");
  p.tree.lambda = util::read_f64(in, "gbdt lambda");
  p.tree.min_gain = util::read_f64(in, "gbdt min_gain");
  return p;
}

std::vector<std::size_t> subsample_rows(std::size_t n, double fraction,
                                        util::Rng& rng) {
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::floor(fraction * static_cast<double>(n))));
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  return rng.sample_without_replacement(n, k);
}

}  // namespace

void GbdtRegressor::fit(const Matrix& x, std::span<const float> y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("GbdtRegressor::fit: bad shapes");
  }
  const util::PhaseTimer fit_timer(
      "ml.gbdt.fit", static_cast<std::uint64_t>(params_.rounds) * x.rows());
  trees_.clear();
  binner_.fit(x);
  const std::vector<std::uint8_t> binned = binner_.bin_matrix(x);
  util::Rng rng(params_.seed);

  base_ = 0.0;
  for (float v : y) base_ += v;
  base_ /= static_cast<double>(y.size());

  std::vector<double> pred(x.rows(), base_);
  std::vector<double> g(x.rows());
  const std::vector<double> h(x.rows(), 1.0);
  for (int round = 0; round < params_.rounds; ++round) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      g[r] = pred[r] - static_cast<double>(y[r]);  // d/dp 0.5*(p-y)^2
    }
    const auto rows = subsample_rows(x.rows(), params_.subsample, rng);
    RegressionTree tree;
    tree.fit(x, binned, binner_, g, h, rows, params_.tree);
    util::parallel_for(x.rows(), [&](std::size_t r) {
      pred[r] += params_.learning_rate * tree.predict_row(x.row(r));
    });
    trees_.push_back(std::move(tree));
  }
  flat_.build(trees_);
}

double GbdtRegressor::predict_row(std::span<const float> features) const {
  double acc = base_;
  for (const RegressionTree& t : trees_) {
    acc += params_.learning_rate * t.predict_row(features);
  }
  return acc;
}

std::vector<double> GbdtRegressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  const std::size_t blocks = (x.rows() + kPredictBlock - 1) / kPredictBlock;
  // Read the mode once on the calling thread so one predict() call never
  // mixes layouts across blocks.
  const bool flat = simd_enabled() && !flat_.empty();
  // Trees-outer/rows-inner per block: each out[r] adds the trees in
  // ensemble order, so it is bit-identical to predict_row(x.row(r)); blocks
  // write disjoint ranges, so the loop is thread-count invariant. The
  // flattened walk produces the identical leaf weights (FlatForest), so
  // both layouts yield the same bits.
  util::parallel_for(blocks, [&](std::size_t blk) {
    const std::size_t begin = blk * kPredictBlock;
    const std::size_t end = std::min(x.rows(), begin + kPredictBlock);
    for (std::size_t r = begin; r < end; ++r) out[r] = base_;
    if (flat) {
      double leaves[kPredictBlock];
      for (std::size_t t = 0; t < flat_.num_trees(); ++t) {
        flat_.leaf_weights(t, x, begin, end, leaves);
        for (std::size_t r = begin; r < end; ++r) {
          out[r] += params_.learning_rate * leaves[r - begin];
        }
      }
    } else {
      for (const RegressionTree& t : trees_) {
        for (std::size_t r = begin; r < end; ++r) {
          out[r] += params_.learning_rate * t.predict_row(x.row(r));
        }
      }
    }
  });
  return out;
}

void GbdtClassifier::fit(const Matrix& x, std::span<const int> labels,
                         int num_classes) {
  if (x.rows() != labels.size() || x.rows() == 0 || num_classes < 2) {
    throw std::invalid_argument("GbdtClassifier::fit: bad shapes");
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      throw std::invalid_argument("GbdtClassifier::fit: label out of range");
    }
  }
  const util::PhaseTimer fit_timer(
      "ml.gbdt.fit", static_cast<std::uint64_t>(params_.rounds) * x.rows());
  num_classes_ = num_classes;
  trees_.clear();
  binner_.fit(x);
  const std::vector<std::uint8_t> binned = binner_.bin_matrix(x);
  util::Rng rng(params_.seed);

  // Start from log priors so rare classes are not drowned out early.
  std::vector<double> counts(static_cast<std::size_t>(num_classes), 1.0);
  for (int label : labels) ++counts[static_cast<std::size_t>(label)];
  base_scores_.resize(static_cast<std::size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    base_scores_[static_cast<std::size_t>(k)] =
        std::log(counts[static_cast<std::size_t>(k)] /
                 static_cast<double>(labels.size() + num_classes));
  }

  const std::size_t n = x.rows();
  std::vector<double> scores(n * static_cast<std::size_t>(num_classes));
  for (std::size_t r = 0; r < n; ++r) {
    for (int k = 0; k < num_classes; ++k) {
      scores[r * static_cast<std::size_t>(num_classes) + static_cast<std::size_t>(k)] =
          base_scores_[static_cast<std::size_t>(k)];
    }
  }

  std::vector<double> g(n);
  std::vector<double> h(n);
  for (int round = 0; round < params_.rounds; ++round) {
    const auto rows = subsample_rows(n, params_.subsample, rng);
    for (int k = 0; k < num_classes; ++k) {
      // Per-row softmax gradients write disjoint g[r]/h[r] slots.
      util::parallel_for(n, [&](std::size_t r) {
        const double* srow = &scores[r * static_cast<std::size_t>(num_classes)];
        double max_score = srow[0];
        for (int j = 1; j < num_classes; ++j) max_score = std::max(max_score, srow[j]);
        double denom = 0.0;
        for (int j = 0; j < num_classes; ++j) {
          denom += std::exp(srow[j] - max_score);
        }
        const double pk = std::exp(srow[k] - max_score) / denom;
        g[r] = pk - (labels[r] == k ? 1.0 : 0.0);
        h[r] = std::max(1e-6, pk * (1.0 - pk));
      });
      RegressionTree tree;
      tree.fit(x, binned, binner_, g, h, rows, params_.tree);
      util::parallel_for(n, [&](std::size_t r) {
        scores[r * static_cast<std::size_t>(num_classes) + static_cast<std::size_t>(k)] +=
            params_.learning_rate * tree.predict_row(x.row(r));
      });
      trees_.push_back(std::move(tree));
    }
  }
  flat_.build(trees_);
}

void GbdtClassifier::predict_proba_into(std::span<const float> features,
                                        std::span<double> out) const {
  if (out.size() != base_scores_.size()) {
    throw std::invalid_argument("predict_proba_into: bad output size");
  }
  std::copy(base_scores_.begin(), base_scores_.end(), out.begin());
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    const std::size_t k = i % static_cast<std::size_t>(num_classes_);
    out[k] += params_.learning_rate * trees_[i].predict_row(features);
  }
  double max_score = out[0];
  for (double s : out) max_score = std::max(max_score, s);
  double denom = 0.0;
  for (double& s : out) {
    s = std::exp(s - max_score);
    denom += s;
  }
  for (double& s : out) s /= denom;
}

std::vector<double> GbdtClassifier::predict_proba_row(
    std::span<const float> features) const {
  std::vector<double> scores(base_scores_.size());
  predict_proba_into(features, scores);
  return scores;
}

int GbdtClassifier::predict_row(std::span<const float> features) const {
  // Small-class ensembles (merged OC groups, raw OCs) fit in a stack
  // buffer, so the per-row call performs no heap allocation.
  constexpr std::size_t kStackClasses = 32;
  double stack_buf[kStackClasses];
  std::vector<double> heap;
  std::span<double> scratch;
  const auto k = static_cast<std::size_t>(num_classes_);
  if (k <= kStackClasses) {
    scratch = {stack_buf, k};
  } else {
    heap.resize(k);
    scratch = heap;
  }
  predict_proba_into(features, scratch);
  return static_cast<int>(std::max_element(scratch.begin(), scratch.end()) -
                          scratch.begin());
}

std::vector<int> GbdtClassifier::predict(const Matrix& x) const {
  std::vector<int> out(x.rows());
  const auto num_k = static_cast<std::size_t>(num_classes_);
  const std::size_t blocks = (x.rows() + kPredictBlock - 1) / kPredictBlock;
  const bool flat = simd_enabled() && !flat_.empty();
  util::parallel_for(blocks, [&](std::size_t blk) {
    const std::size_t begin = blk * kPredictBlock;
    const std::size_t end = std::min(x.rows(), begin + kPredictBlock);
    // One score buffer per block, reused across its rows.
    std::vector<double> scores((end - begin) * num_k);
    for (std::size_t r = begin; r < end; ++r) {
      std::copy(base_scores_.begin(), base_scores_.end(),
                scores.begin() + static_cast<std::ptrdiff_t>((r - begin) * num_k));
    }
    if (flat) {
      // Same ensemble order as the pointer walk (tree i scores class
      // i % num_k), same leaf weights — bit-identical scores.
      double leaves[kPredictBlock];
      for (std::size_t i = 0; i < flat_.num_trees(); ++i) {
        const std::size_t k = i % num_k;
        flat_.leaf_weights(i, x, begin, end, leaves);
        for (std::size_t r = begin; r < end; ++r) {
          scores[(r - begin) * num_k + k] +=
              params_.learning_rate * leaves[r - begin];
        }
      }
    } else {
      for (std::size_t i = 0; i < trees_.size(); ++i) {
        const std::size_t k = i % num_k;
        for (std::size_t r = begin; r < end; ++r) {
          scores[(r - begin) * num_k + k] +=
              params_.learning_rate * trees_[i].predict_row(x.row(r));
        }
      }
    }
    for (std::size_t r = begin; r < end; ++r) {
      // Softmax is strictly monotone, so the argmax of the raw scores
      // equals the argmax of predict_proba_row (first-max ties included).
      const double* srow = &scores[(r - begin) * num_k];
      out[r] = static_cast<int>(std::max_element(srow, srow + num_k) - srow);
    }
  });
  return out;
}

void GbdtRegressor::save(std::ostream& out) const {
  out << "gbr ";
  save_params(out, params_);
  util::write_f64(out, base_);
  out << ' ' << trees_.size() << '\n';
  for (const RegressionTree& t : trees_) t.save(out);
}

GbdtRegressor GbdtRegressor::load(std::istream& in) {
  util::expect_word(in, "gbr", "GbdtRegressor::load");
  GbdtRegressor model(load_params(in));
  model.base_ = util::read_f64(in, "gbr base score");
  const std::size_t num_trees = util::read_size(in, "gbr tree count");
  model.trees_.reserve(num_trees);
  for (std::size_t i = 0; i < num_trees; ++i) {
    model.trees_.push_back(RegressionTree::load(in));
  }
  model.flat_.build(model.trees_);
  return model;
}

void GbdtClassifier::save(std::ostream& out) const {
  out << "gbc ";
  save_params(out, params_);
  out << num_classes_;
  for (double b : base_scores_) {
    out << ' ';
    util::write_f64(out, b);
  }
  out << '\n' << trees_.size() << '\n';
  for (const RegressionTree& t : trees_) t.save(out);
}

GbdtClassifier GbdtClassifier::load(std::istream& in) {
  util::expect_word(in, "gbc", "GbdtClassifier::load");
  GbdtClassifier model(load_params(in));
  model.num_classes_ = util::read_int(in, "gbc num_classes");
  if (model.num_classes_ < 2) {
    throw std::runtime_error("GbdtClassifier::load: bad class count");
  }
  model.base_scores_.resize(static_cast<std::size_t>(model.num_classes_));
  for (double& b : model.base_scores_) {
    b = util::read_f64(in, "gbc base score");
  }
  const std::size_t num_trees = util::read_size(in, "gbc tree count");
  if (num_trees % static_cast<std::size_t>(model.num_classes_) != 0) {
    throw std::runtime_error(
        "GbdtClassifier::load: tree count not a multiple of classes");
  }
  model.trees_.reserve(num_trees);
  for (std::size_t i = 0; i < num_trees; ++i) {
    model.trees_.push_back(RegressionTree::load(in));
  }
  model.flat_.build(model.trees_);
  return model;
}

std::vector<double> GbdtRegressor::feature_importance(
    std::size_t num_features) const {
  return importance_from_trees(trees_, num_features);
}

std::vector<double> GbdtClassifier::feature_importance(
    std::size_t num_features) const {
  return importance_from_trees(trees_, num_features);
}

}  // namespace smart::ml

