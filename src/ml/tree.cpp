#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/serialize_io.hpp"
#include "util/task_pool.hpp"

namespace smart::ml {

void FeatureBinner::fit(const Matrix& x, int max_bins) {
  if (max_bins < 2 || max_bins > kMaxBins) {
    throw std::invalid_argument("FeatureBinner: max_bins out of range");
  }
  edges_.assign(x.cols(), {});
  std::vector<float> column(x.rows());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      column[r] = x.at(r, f);
      // Reject NaN at training time: it breaks nth_element's ordering
      // below, and quarantined rows (the NaN-times convention) must never
      // reach a fit. Prediction-time NaN is defined instead: it routes
      // right at every split (see RegressionTree::predict_row).
      if (std::isnan(column[r])) {
        throw std::invalid_argument(
            "FeatureBinner::fit: NaN feature value (train on finite rows)");
      }
    }
    // Only max_bins-1 quantile ranks are needed, not a total order: select
    // each rank with nth_element over the remaining suffix (the ranks are
    // ascending, so after partitioning at `done` every later rank lives in
    // (done, end)). Yields the same edge values as a full sort at O(n)
    // per column instead of O(n log n).
    auto& edges = edges_[f];
    std::size_t done = column.size();  // sentinel: nothing partitioned yet
    for (int b = 1; b < max_bins; ++b) {
      const std::size_t idx =
          std::min(x.rows() - 1, b * x.rows() / static_cast<std::size_t>(max_bins));
      if (done == column.size()) {
        std::nth_element(column.begin(),
                         column.begin() + static_cast<std::ptrdiff_t>(idx),
                         column.end());
        done = idx;
      } else if (idx > done) {
        std::nth_element(column.begin() + static_cast<std::ptrdiff_t>(done) + 1,
                         column.begin() + static_cast<std::ptrdiff_t>(idx),
                         column.end());
        done = idx;
      }
      const float edge = column[idx];
      if (edges.empty() || edge > edges.back()) edges.push_back(edge);
    }
  }
}

int FeatureBinner::bin_of(std::size_t f, float v) const {
  const auto& edges = edges_[f];
  return static_cast<int>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
}

std::vector<std::uint8_t> FeatureBinner::bin_matrix(const Matrix& x) const {
  if (x.cols() != edges_.size()) {
    throw std::invalid_argument("FeatureBinner::bin_matrix: width mismatch");
  }
  std::vector<std::uint8_t> out(x.rows() * x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t f = 0; f < x.cols(); ++f) {
      out[r * x.cols() + f] = static_cast<std::uint8_t>(bin_of(f, x.at(r, f)));
    }
  }
  return out;
}

namespace {

struct SplitChoice {
  int feature = -1;
  int bin = -1;          // go left if bin(value) <= bin
  double gain = 0.0;
  float threshold = 0.0;
};

}  // namespace

void RegressionTree::fit(const Matrix& x, std::span<const std::uint8_t> binned,
                         const FeatureBinner& binner,
                         std::span<const double> gradients,
                         std::span<const double> hessians,
                         std::span<const std::size_t> rows,
                         const TreeParams& params) {
  nodes_.clear();
  split_gains_.clear();
  depth_ = 0;
  std::vector<std::size_t> mutable_rows(rows.begin(), rows.end());
  build(x, binned, binner, gradients, hessians, mutable_rows, params, 0);
}

int RegressionTree::build(const Matrix& x, std::span<const std::uint8_t> binned,
                          const FeatureBinner& binner,
                          std::span<const double> g, std::span<const double> h,
                          std::vector<std::size_t>& rows,
                          const TreeParams& params, int depth) {
  depth_ = std::max(depth_, depth);
  double g_total = 0.0;
  double h_total = 0.0;
  for (std::size_t r : rows) {
    g_total += g[r];
    h_total += h[r];
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_index)].weight =
      -g_total / (h_total + params.lambda);

  if (depth >= params.max_depth ||
      static_cast<int>(rows.size()) < 2 * params.min_samples_leaf) {
    return node_index;
  }

  // Best split: one histogram pass per feature. Features are independent,
  // so big nodes fan the search over the task pool; folding the per-feature
  // candidates in feature order with a strict > comparison picks exactly
  // the split the serial scan picks (ties keep the lowest feature index).
  const double parent_score = g_total * g_total / (h_total + params.lambda);
  const std::size_t width = x.cols();
  const auto best_for_feature = [&](std::size_t f, std::vector<double>& gh,
                                    std::vector<int>& counts) {
    SplitChoice choice;
    const int nbins = binner.bins(f);
    if (nbins < 2) return choice;
    std::fill(gh.begin(), gh.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t r : rows) {
      const int b = binned[r * width + f];
      gh[static_cast<std::size_t>(b) * 2] += g[r];
      gh[static_cast<std::size_t>(b) * 2 + 1] += h[r];
      ++counts[b];
    }
    double gl = 0.0;
    double hl = 0.0;
    int left_count = 0;
    for (int b = 0; b + 1 < nbins; ++b) {
      gl += gh[static_cast<std::size_t>(b) * 2];
      hl += gh[static_cast<std::size_t>(b) * 2 + 1];
      left_count += counts[b];
      const int right_count = static_cast<int>(rows.size()) - left_count;
      if (left_count < params.min_samples_leaf ||
          right_count < params.min_samples_leaf) {
        continue;
      }
      const double gr = g_total - gl;
      const double hr = h_total - hl;
      const double gain = gl * gl / (hl + params.lambda) +
                          gr * gr / (hr + params.lambda) - parent_score;
      if (gain > choice.gain) {
        choice.feature = static_cast<int>(f);
        choice.bin = b;
        choice.gain = gain;
      }
    }
    return choice;
  };
  const auto pick = [](SplitChoice a, SplitChoice b) {
    return b.gain > a.gain ? b : a;
  };
  SplitChoice best;
  if (rows.size() >= 2048 && width > 1) {
    best = util::parallel_reduce(
        width, SplitChoice{},
        [&](std::size_t f) {
          std::vector<double> gh(static_cast<std::size_t>(kMaxBins) * 2);
          std::vector<int> counts(kMaxBins);
          return best_for_feature(f, gh, counts);
        },
        pick);
  } else {
    std::vector<double> gh(static_cast<std::size_t>(kMaxBins) * 2);
    std::vector<int> counts(kMaxBins);
    for (std::size_t f = 0; f < width; ++f) {
      best = pick(best, best_for_feature(f, gh, counts));
    }
  }
  if (best.feature < 0 || best.gain < params.min_gain) return node_index;
  split_gains_.emplace_back(best.feature, best.gain);

  // Partition rows by the chosen bin boundary.
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    const int b = binned[r * width + static_cast<std::size_t>(best.feature)];
    (b <= best.bin ? left_rows : right_rows).push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  // Record a real-valued threshold so prediction needs no binner: the
  // midpoint is the bin's upper edge.
  // upper_bound semantics: bin b spans (edge[b-1], edge[b]].
  // Reconstruct the edge via a probe value search is overkill; store the
  // max left-side feature value instead.
  float threshold = -std::numeric_limits<float>::infinity();
  for (std::size_t r : left_rows) {
    threshold = std::max(threshold, x.at(r, static_cast<std::size_t>(best.feature)));
  }

  const int left = build(x, binned, binner, g, h, left_rows, params, depth + 1);
  const int right = build(x, binned, binner, g, h, right_rows, params, depth + 1);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = best.feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

void RegressionTree::save(std::ostream& out) const {
  out << "tree " << nodes_.size() << ' ' << depth_ << ' '
      << split_gains_.size() << '\n';
  for (const Node& n : nodes_) {
    out << n.feature << ' ';
    util::write_f64(out, static_cast<double>(n.threshold));
    out << ' ' << n.left << ' ' << n.right << ' ';
    util::write_f64(out, n.weight);
    out << '\n';
  }
  for (const auto& [feature, gain] : split_gains_) {
    out << feature << ' ';
    util::write_f64(out, gain);
    out << '\n';
  }
}

RegressionTree RegressionTree::load(std::istream& in) {
  util::expect_word(in, "tree", "RegressionTree::load");
  const std::size_t num_nodes = util::read_size(in, "tree node count");
  const int depth = util::read_int(in, "tree depth");
  const std::size_t num_gains = util::read_size(in, "tree gain count");
  RegressionTree tree;
  tree.depth_ = depth;
  tree.nodes_.resize(num_nodes);
  const long long n = static_cast<long long>(num_nodes);
  for (Node& node : tree.nodes_) {
    node.feature = util::read_int(in, "tree node feature");
    node.threshold =
        static_cast<float>(util::read_f64(in, "tree node threshold", false));
    node.left = util::read_int(in, "tree node left");
    node.right = util::read_int(in, "tree node right");
    node.weight = util::read_f64(in, "tree node weight");
    if (node.feature >= 0 &&
        (node.left < 0 || node.left >= n || node.right < 0 || node.right >= n)) {
      throw std::runtime_error("RegressionTree::load: dangling child link");
    }
  }
  tree.split_gains_.resize(num_gains);
  for (auto& [feature, gain] : tree.split_gains_) {
    feature = util::read_int(in, "tree gain feature");
    gain = util::read_f64(in, "tree gain value");
  }
  return tree;
}

double RegressionTree::predict_row(std::span<const float> features) const {
  if (nodes_.empty()) return 0.0;
  int idx = 0;
  while (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    // `<=` is false for NaN, so a NaN feature routes right at every split
    // (the explicit contract shared with FlatForest's lockstep walk).
    idx = features[static_cast<std::size_t>(n.feature)] <= n.threshold
              ? n.left
              : n.right;
  }
  return nodes_[static_cast<std::size_t>(idx)].weight;
}

}  // namespace smart::ml
