#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/task_pool.hpp"

namespace smart::ml {

namespace {

/// Fan a matmul's independent output rows over the task pool only when the
/// product is big enough to amortize the loop dispatch. Each output element
/// accumulates in the same operand order as the serial loop, so results are
/// bit-identical for any thread count.
inline bool worth_parallel(std::size_t rows, std::size_t inner,
                           std::size_t cols) {
  return rows >= 16 && rows * inner * cols >= (1u << 15);
}

}  // namespace

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() + static_cast<std::ptrdiff_t>(r * m.cols_));
  }
  return m;
}

void Matrix::init_he(util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(std::max<std::size_t>(1, rows_)));
  for (float& w : data_) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix c(a.rows(), b.cols());
  const auto row_kernel = [&](std::size_t i) {
    float* crow = c.row(i).data();
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.row(k).data();
      for (std::size_t j = 0; j < b.cols(); ++j) {
        crow[j] += aik * brow[j];
      }
    }
  };
  if (worth_parallel(a.rows(), a.cols(), b.cols())) {
    util::parallel_for(a.rows(), row_kernel);
  } else {
    for (std::size_t i = 0; i < a.rows(); ++i) row_kernel(i);
  }
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_bt: shape mismatch");
  Matrix c(a.rows(), b.rows());
  const auto row_kernel = [&](std::size_t i) {
    const float* arow = a.row(i).data();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j).data();
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      c.at(i, j) = acc;
    }
  };
  if (worth_parallel(a.rows(), a.cols(), b.rows())) {
    util::parallel_for(a.rows(), row_kernel);
  } else {
    for (std::size_t i = 0; i < a.rows(); ++i) row_kernel(i);
  }
  return c;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_at: shape mismatch");
  Matrix c(a.cols(), b.cols());
  // Output rows of c = columns of a, so iterating i outermost makes the
  // writes disjoint per task. Per element the accumulation still runs over
  // n ascending — the exact FP order of the old n-outermost loop.
  const auto col_kernel = [&](std::size_t i) {
    float* crow = c.row(i).data();
    for (std::size_t n = 0; n < a.rows(); ++n) {
      const float ai = a.row(n).data()[i];
      if (ai == 0.0f) continue;
      const float* brow = b.row(n).data();
      for (std::size_t j = 0; j < b.cols(); ++j) {
        crow[j] += ai * brow[j];
      }
    }
  };
  if (worth_parallel(a.cols(), a.rows(), b.cols())) {
    util::parallel_for(a.cols(), col_kernel);
  } else {
    for (std::size_t i = 0; i < a.cols(); ++i) col_kernel(i);
  }
  return c;
}

}  // namespace smart::ml
