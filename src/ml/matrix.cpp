#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/serialize_io.hpp"
#include "util/task_pool.hpp"

namespace smart::ml {

namespace {

/// Fan a matmul's independent output rows over the task pool only when the
/// product is big enough to amortize the loop dispatch. Each output element
/// accumulates in the same operand order as the serial loop, so results are
/// bit-identical for any thread count.
inline bool worth_parallel(std::size_t rows, std::size_t inner,
                           std::size_t cols) {
  return rows >= 16 && rows * inner * cols >= (1u << 15);
}

}  // namespace

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() + static_cast<std::ptrdiff_t>(r * m.cols_));
  }
  return m;
}

void Matrix::init_he(util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(std::max<std::size_t>(1, rows_)));
  for (float& w : data_) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void Matrix::save(std::ostream& out) const {
  out << "mat " << rows_ << ' ' << cols_;
  for (float v : data_) {
    out << ' ';
    util::write_f32(out, v);
  }
  out << '\n';
}

Matrix Matrix::load(std::istream& in) {
  util::expect_word(in, "mat", "Matrix::load");
  const std::size_t rows = util::read_size(in, "Matrix::load rows");
  const std::size_t cols = util::read_size(in, "Matrix::load cols");
  Matrix m(rows, cols);
  for (float& v : m.data_) v = util::read_f32(in, "Matrix::load element");
  return m;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

namespace {

/// Output-tile width of the register-tiled matmul kernel: each k step
/// broadcasts a(i,k) into kJTile accumulators that live in registers, so
/// the C row is written once per tile instead of re-loaded per k.
constexpr std::size_t kJTile = 8;

/// Rows per register block. One row's accumulators form a single
/// dependency chain per k step; interleaving kITile independent rows hides
/// the FMA latency that chain would otherwise serialize on. Batched
/// inference (many rows) gets the full effect; a 1-row call degenerates to
/// the plain tiled kernel.
constexpr std::size_t kITile = 4;

/// Epilogue shared by the tiled kernels: the raw accumulator when
/// `bias == nullptr`, else the accumulator plus the broadcast bias, through
/// ReLU when `relu`. The bias add and the max are one FP op each, applied
/// after the full k sum — the exact per-element sequence of the legacy
/// matmul-then-bias-loop-then-ReLU-pass, so fused results are bit-identical
/// to the unfused ones.
inline float finish_elem(float acc, const float* bias, std::size_t j,
                         bool relu) {
  if (bias != nullptr) acc += bias[j];
  if (relu) acc = acc > 0.0f ? acc : 0.0f;
  return acc;
}

/// NR output rows of C = act(A * B + bias), j-tiled. Per output element the
/// accumulation runs over k ascending (zero a(i,k) skipped), exactly like
/// the untiled i-k-j loop this replaces — blocking only changes where
/// partial sums live and which elements progress together, never the order
/// one element's partial sums are combined in, so results are bit-identical
/// for any NR and identical to the single-row kernel.
template <std::size_t NR>
inline void matmul_rows_tiled(const Matrix& a, const Matrix& b, Matrix& c,
                              std::size_t i0, const float* bias, bool relu) {
  const std::size_t inner = a.cols();
  const std::size_t cols = b.cols();
  const float* arow[NR];
  float* crow[NR];
  for (std::size_t r = 0; r < NR; ++r) {
    arow[r] = a.row(i0 + r).data();
    crow[r] = c.row(i0 + r).data();
  }
  std::size_t j0 = 0;
  for (; j0 + kJTile <= cols; j0 += kJTile) {
    float acc[NR][kJTile] = {};
    for (std::size_t k = 0; k < inner; ++k) {
      const float* brow = b.row(k).data() + j0;
      for (std::size_t r = 0; r < NR; ++r) {
        const float aik = arow[r][k];
        if (aik == 0.0f) continue;
        for (std::size_t t = 0; t < kJTile; ++t) acc[r][t] += aik * brow[t];
      }
    }
    for (std::size_t r = 0; r < NR; ++r) {
      for (std::size_t t = 0; t < kJTile; ++t) {
        crow[r][j0 + t] = finish_elem(acc[r][t], bias, j0 + t, relu);
      }
    }
  }
  if (j0 < cols) {
    const std::size_t width = cols - j0;
    float acc[NR][kJTile] = {};
    for (std::size_t k = 0; k < inner; ++k) {
      const float* brow = b.row(k).data() + j0;
      for (std::size_t r = 0; r < NR; ++r) {
        const float aik = arow[r][k];
        if (aik == 0.0f) continue;
        for (std::size_t t = 0; t < width; ++t) acc[r][t] += aik * brow[t];
      }
    }
    for (std::size_t r = 0; r < NR; ++r) {
      for (std::size_t t = 0; t < width; ++t) {
        crow[r][j0 + t] = finish_elem(acc[r][t], bias, j0 + t, relu);
      }
    }
  }
}

/// All rows of the block [i0, i0 + n): full kITile groups, then singles.
inline void matmul_block(const Matrix& a, const Matrix& b, Matrix& c,
                         std::size_t i0, std::size_t n, const float* bias,
                         bool relu) {
  std::size_t i = i0;
  for (; i + kITile <= i0 + n; i += kITile) {
    matmul_rows_tiled<kITile>(a, b, c, i, bias, relu);
  }
  for (; i < i0 + n; ++i) matmul_rows_tiled<1>(a, b, c, i, bias, relu);
}

/// Shared driver of the strict kernels; `bias == nullptr` for plain matmul.
void matmul_fused_driver(const Matrix& a, const Matrix& b, Matrix& c,
                         const float* bias, bool relu) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  if (&c == &a || &c == &b) {
    throw std::invalid_argument("matmul_into: output aliases an input");
  }
  // The kernels write every element of c, so skip resize()'s zero-fill.
  c.reshape_overwrite(a.rows(), b.cols());
  if (worth_parallel(a.rows(), a.cols(), b.cols())) {
    // One task per kITile row group (disjoint writes, any thread count).
    const std::size_t groups = (a.rows() + kITile - 1) / kITile;
    util::parallel_for(groups, [&](std::size_t gidx) {
      const std::size_t i0 = gidx * kITile;
      matmul_block(a, b, c, i0, std::min(kITile, a.rows() - i0), bias, relu);
    });
  } else {
    matmul_block(a, b, c, 0, a.rows(), bias, relu);
  }
}

}  // namespace

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  matmul_fused_driver(a, b, c, nullptr, false);
}

void matmul_bias_act_into(const Matrix& a, const Matrix& b, const Matrix& bias,
                          bool relu, Matrix& c) {
  if (bias.rows() != 1 || bias.cols() != b.cols()) {
    throw std::invalid_argument("matmul_bias_act_into: bad bias shape");
  }
  if (&c == &bias) {
    throw std::invalid_argument("matmul_bias_act_into: output aliases bias");
  }
  matmul_fused_driver(a, b, c, bias.row(0).data(), relu);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_bt: shape mismatch");
  Matrix c(a.rows(), b.rows());
  const auto row_kernel = [&](std::size_t i) {
    const float* arow = a.row(i).data();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j).data();
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      c.at(i, j) = acc;
    }
  };
  if (worth_parallel(a.rows(), a.cols(), b.rows())) {
    util::parallel_for(a.rows(), row_kernel);
  } else {
    for (std::size_t i = 0; i < a.rows(); ++i) row_kernel(i);
  }
  return c;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_at: shape mismatch");
  Matrix c(a.cols(), b.cols());
  // Output rows of c = columns of a, so iterating i outermost makes the
  // writes disjoint per task. Per element the accumulation still runs over
  // n ascending — the exact FP order of the old n-outermost loop.
  const auto col_kernel = [&](std::size_t i) {
    float* crow = c.row(i).data();
    for (std::size_t n = 0; n < a.rows(); ++n) {
      const float ai = a.row(n).data()[i];
      if (ai == 0.0f) continue;
      const float* brow = b.row(n).data();
      for (std::size_t j = 0; j < b.cols(); ++j) {
        crow[j] += ai * brow[j];
      }
    }
  };
  if (worth_parallel(a.cols(), a.rows(), b.cols())) {
    util::parallel_for(a.cols(), col_kernel);
  } else {
    for (std::size_t i = 0; i < a.cols(); ++i) col_kernel(i);
  }
  return c;
}

}  // namespace smart::ml
