// Classification quality metrics beyond plain accuracy: confusion matrix
// and per-class precision/recall/F1 — used by the evaluation reports to
// understand *which* OC groups the classifiers confuse.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smart::ml {

/// Row = true class, column = predicted class. Entries with labels outside
/// [0, num_classes) are ignored.
std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> predicted,
    int num_classes);

struct ClassReport {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t support = 0;  // number of true instances of the class
};

/// Per-class precision/recall/F1 from a confusion matrix.
std::vector<ClassReport> classification_report(
    const std::vector<std::vector<std::size_t>>& confusion);

/// Macro-averaged F1 (mean of per-class F1 over classes with support).
double macro_f1(const std::vector<ClassReport>& report);

}  // namespace smart::ml
