// Tabular dataset containers shared by the GBDT and NN stacks, plus the
// [0,1] max-scaling the paper applies to NN inputs (Sec. IV-E) and k-fold
// cross-validation splitting (Sec. V-A3).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "util/rng.hpp"

namespace smart::ml {

/// Feature matrix + one target per row (class id for classification tasks,
/// real value for regression tasks — only the relevant one is populated).
struct Dataset {
  Matrix x;                     // n x d features
  std::vector<int> labels;      // classification targets (may be empty)
  std::vector<float> targets;   // regression targets (may be empty)

  std::size_t size() const noexcept { return x.rows(); }

  Dataset subset(std::span<const std::size_t> indices) const;
};

/// Scales each feature to [0,1] by dividing by its maximum absolute value
/// (paper Sec. IV-E: "normalize the inputs ... by dividing by the maximum
/// value of each input feature"). Constant-zero features pass through.
class MaxAbsScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  /// transform() into a caller-owned matrix (reshaped as needed) so hot
  /// inference loops reuse one scratch allocation per batch. Bit-identical
  /// to transform(); `out` must not alias `x`.
  void transform_into(const Matrix& x, Matrix& out) const;
  Matrix fit_transform(const Matrix& x) {
    fit(x);
    return transform(x);
  }
  std::span<const float> scales() const noexcept { return scales_; }

  /// Persists the fitted scales (hexfloat); the loaded scaler transforms
  /// bit-identically. Throws std::runtime_error on malformed input.
  void save(std::ostream& out) const;
  static MaxAbsScaler load(std::istream& in);

 private:
  std::vector<float> scales_;
};

/// One train/test split of a k-fold round.
struct FoldSplit {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Shuffled k-fold partitioning: each index lands in exactly one test fold.
std::vector<FoldSplit> kfold_splits(std::size_t n, int folds, util::Rng& rng);

}  // namespace smart::ml
