#include "ml/metrics.hpp"

#include <stdexcept>

namespace smart::ml {

std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> predicted,
    int num_classes) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  if (num_classes < 1) {
    throw std::invalid_argument("confusion_matrix: num_classes < 1");
  }
  std::vector<std::vector<std::size_t>> m(
      static_cast<std::size_t>(num_classes),
      std::vector<std::size_t>(static_cast<std::size_t>(num_classes), 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || truth[i] >= num_classes) continue;
    if (predicted[i] < 0 || predicted[i] >= num_classes) continue;
    ++m[static_cast<std::size_t>(truth[i])][static_cast<std::size_t>(predicted[i])];
  }
  return m;
}

std::vector<ClassReport> classification_report(
    const std::vector<std::vector<std::size_t>>& confusion) {
  const std::size_t k = confusion.size();
  std::vector<ClassReport> out(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::size_t tp = confusion[c][c];
    std::size_t fn = 0;
    std::size_t fp = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j != c) {
        fn += confusion[c][j];
        fp += confusion[j][c];
      }
    }
    out[c].support = tp + fn;
    out[c].precision = tp + fp == 0 ? 0.0
                                    : static_cast<double>(tp) /
                                          static_cast<double>(tp + fp);
    out[c].recall = tp + fn == 0 ? 0.0
                                 : static_cast<double>(tp) /
                                       static_cast<double>(tp + fn);
    out[c].f1 = out[c].precision + out[c].recall == 0.0
                    ? 0.0
                    : 2.0 * out[c].precision * out[c].recall /
                          (out[c].precision + out[c].recall);
  }
  return out;
}

double macro_f1(const std::vector<ClassReport>& report) {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const ClassReport& r : report) {
    if (r.support > 0) {
      sum += r.f1;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace smart::ml
