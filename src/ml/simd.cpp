#include "ml/simd.hpp"

#include <atomic>
#include <stdexcept>
#include <string>

#include "util/env.hpp"

namespace smart::ml {

namespace {

// -1 = unread; otherwise 0/1 (simd) or the Precision enum value.
std::atomic<int> g_simd{-1};
std::atomic<int> g_precision{-1};

int simd_env_default() {
  return util::env_int("SMART_SIMD", 1) != 0 ? 1 : 0;
}

int precision_env_default() {
  const char* raw = std::getenv("SMART_PRECISION");
  if (raw == nullptr || *raw == '\0') {
    return static_cast<int>(Precision::kStrict);
  }
  return static_cast<int>(precision_from_string(raw));
}

}  // namespace

bool simd_enabled() noexcept {
  int v = g_simd.load(std::memory_order_relaxed);
  if (v < 0) {
    v = simd_env_default();
    g_simd.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_simd_enabled(bool on) noexcept {
  g_simd.store(on ? 1 : 0, std::memory_order_relaxed);
}

Precision inference_precision() noexcept {
  int v = g_precision.load(std::memory_order_relaxed);
  if (v < 0) {
    v = precision_env_default();
    g_precision.store(v, std::memory_order_relaxed);
  }
  return static_cast<Precision>(v);
}

void set_inference_precision(Precision p) noexcept {
  g_precision.store(static_cast<int>(p), std::memory_order_relaxed);
}

Precision precision_from_string(const char* name) {
  const std::string s = name == nullptr ? "" : name;
  if (s == "f64") return Precision::kStrict;
  if (s == "f32") return Precision::kRelaxed;
  throw std::invalid_argument("precision must be 'f64' or 'f32', got '" + s +
                              "'");
}

const char* to_string(Precision p) noexcept {
  return p == Precision::kStrict ? "f64" : "f32";
}

}  // namespace smart::ml
