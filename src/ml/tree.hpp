// Histogram-based regression tree: the weak learner of the gradient
// boosting models (the paper builds GBDT / GBRegressor with XGBoost; this
// is the same second-order split machinery at library scale).
//
// Features are pre-binned into at most kMaxBins quantile bins per feature;
// split gain follows the XGBoost objective
//   gain = GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)
// with L2 regularization l and leaf weight -G/(H+l).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace smart::ml {

inline constexpr int kMaxBins = 32;

/// Per-feature quantile bin edges shared by every tree of an ensemble.
class FeatureBinner {
 public:
  /// Computes quantile bin edges per feature column. Throws
  /// std::invalid_argument when any value is NaN: NaN violates
  /// nth_element's strict weak ordering, and a tree fitted on NaN rows
  /// would silently learn from the arbitrary routing. (Prediction-time NaN
  /// is legal and routes right — see RegressionTree.)
  void fit(const Matrix& x, int max_bins = kMaxBins);

  /// Bin index of value `v` for feature `f` (0..bins(f)-1).
  int bin_of(std::size_t f, float v) const;
  int bins(std::size_t f) const {
    return static_cast<int>(edges_[f].size()) + 1;
  }
  std::size_t num_features() const noexcept { return edges_.size(); }

  /// Pre-bins a whole matrix (row-major bin indices).
  std::vector<std::uint8_t> bin_matrix(const Matrix& x) const;

 private:
  std::vector<std::vector<float>> edges_;  // ascending upper edges per feature
};

struct TreeParams {
  int max_depth = 5;
  int min_samples_leaf = 4;
  double lambda = 1.0;        // L2 regularization on leaf weights
  double min_gain = 1e-6;
};

/// A fitted tree. Nodes are stored in a flat array; leaves carry weights.
///
/// NaN routing contract: prediction traverses with `value <= threshold ?
/// left : right`, so a NaN feature fails the comparison at every split and
/// deterministically routes to the right ("greater") child — the same
/// convention in the pointer walk here and in the flattened lockstep layout
/// (ml/flat_forest.hpp). Training inputs must be NaN-free: FeatureBinner::
/// fit rejects NaN outright (NaN breaks nth_element's ordering), so NaN can
/// only ever appear at prediction time.
class RegressionTree {
 public:
  struct Node {
    int feature = -1;      // -1 for leaves
    float threshold = 0.0; // go left if value <= threshold (NaN goes right)
    int left = -1;
    int right = -1;
    double weight = 0.0;   // leaf value
  };

  /// Fits to gradients/hessians over the given row subset.
  /// `binned` is bin_matrix() output for the full matrix `x`.
  void fit(const Matrix& x, std::span<const std::uint8_t> binned,
           const FeatureBinner& binner, std::span<const double> gradients,
           std::span<const double> hessians,
           std::span<const std::size_t> rows, const TreeParams& params);

  double predict_row(std::span<const float> features) const;

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  int depth() const noexcept { return depth_; }

  /// (feature index, split gain) for every internal node of the fitted
  /// tree — the raw material of gain-based feature importance.
  const std::vector<std::pair<int, double>>& split_gains() const noexcept {
    return split_gains_;
  }

  /// Persists the fitted tree (nodes, split gains, depth) as tokens; load()
  /// reproduces predict_row bit-exactly and throws std::runtime_error on
  /// malformed input, dangling child links, or non-finite weights.
  void save(std::ostream& out) const;
  static RegressionTree load(std::istream& in);

  /// Fitted nodes (index 0 is the root) — consumed by FlatForest::build.
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

 private:
  int build(const Matrix& x, std::span<const std::uint8_t> binned,
            const FeatureBinner& binner, std::span<const double> g,
            std::span<const double> h, std::vector<std::size_t>& rows,
            const TreeParams& params, int depth);

  std::vector<Node> nodes_;
  std::vector<std::pair<int, double>> split_gains_;
  int depth_ = 0;
};

}  // namespace smart::ml
