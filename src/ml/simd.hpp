// Process-wide inference-mode switches for the vectorized kernels
// (DESIGN.md §13).
//
// Two independent knobs govern every inference hot path:
//
//  - simd_enabled(): whether the fused / flattened kernels (fused
//    bias+activation matmul epilogues, the flattened lockstep GBDT layout)
//    are used at all. These kernels are *strict*: they perform the exact
//    same floating-point operations in the exact same per-element order as
//    the legacy scalar code, so toggling this knob never changes a single
//    output bit — it only changes how fast the bits are produced. Default
//    on; SMART_SIMD=0 forces the legacy scalar paths (the escape hatch the
//    check.sh equivalence matrix exercises).
//
//  - inference_precision(): kStrict (default, "f64" on the CLI) keeps the
//    historical bit-exact contract. kRelaxed ("f32") additionally allows
//    the dense kernels to reassociate float accumulation and contract
//    mul+add into FMA on ISAs that have it — faster, but only
//    tolerance-equivalent to the strict path. GBDT prediction is exact in
//    either mode (the flattened layout changes memory layout, not math).
//
// The relaxed dense kernel is compiled for several x86 ISA levels and
// dispatched once at runtime (dispatch_isa()); on non-x86 or pre-AVX2
// hardware it falls back to the portable scalar-vector build, so a binary
// built on one machine runs (and stays deterministic per machine) anywhere.
//
// Both knobs read their environment default lazily on first use and can be
// overridden for a scope with the RAII sections below (mirroring
// util::SerialSection) — that is how benches pin the per-call baseline to
// the scalar path while the batched path runs vectorized, and how tests
// compare the modes in-process. Overrides are process-global, not
// thread-local, because the serve daemon evaluates batches on its own
// batcher thread; set them before spawning readers.
#pragma once

namespace smart::ml {

enum class Precision {
  kStrict,   // "f64": bit-identical to the historical scalar path
  kRelaxed,  // "f32": reassociated/FMA float accumulation, tolerance-gated
};

/// Fused/flattened kernels enabled? (SMART_SIMD env, default on.)
bool simd_enabled() noexcept;
void set_simd_enabled(bool on) noexcept;

/// Current inference precision (SMART_PRECISION env: "f64" | "f32").
Precision inference_precision() noexcept;
void set_inference_precision(Precision p) noexcept;

/// Parses "f64"/"f32"; throws std::invalid_argument on anything else.
Precision precision_from_string(const char* name);
const char* to_string(Precision p) noexcept;

/// ISA level the relaxed dense kernel dispatched to on this machine
/// ("avx512f", "avx2+fma" or "scalar") — surfaced by benches and `serve
/// --timing` so recorded numbers name the kernel that produced them.
const char* dispatch_isa() noexcept;

/// RAII override of simd_enabled() for a scope; restores the previous
/// value on destruction. Process-global (see header comment).
class SimdSection {
 public:
  explicit SimdSection(bool on) noexcept : prev_(simd_enabled()) {
    set_simd_enabled(on);
  }
  ~SimdSection() { set_simd_enabled(prev_); }
  SimdSection(const SimdSection&) = delete;
  SimdSection& operator=(const SimdSection&) = delete;

 private:
  bool prev_;
};

/// RAII override of inference_precision() for a scope.
class PrecisionSection {
 public:
  explicit PrecisionSection(Precision p) noexcept
      : prev_(inference_precision()) {
    set_inference_precision(p);
  }
  ~PrecisionSection() { set_inference_precision(prev_); }
  PrecisionSection(const PrecisionSection&) = delete;
  PrecisionSection& operator=(const PrecisionSection&) = delete;

 private:
  Precision prev_;
};

}  // namespace smart::ml
