// Relaxed float32 dense kernels (SMART_PRECISION "f32", DESIGN.md §13).
//
// matmul_relaxed.inc is compiled three times below: a portable baseline
// build (GCC vector extensions at the translation unit's default ISA), an
// AVX2+FMA build and an AVX-512F build. pick_kernel() probes the CPU once
// with __builtin_cpu_supports and installs the widest variant it can run —
// the "runtime-checked scalar fallback": a binary built anywhere runs
// correctly on pre-AVX2 hardware, it just dispatches the baseline build.
// On non-x86 / non-GCC-compatible toolchains only the baseline variant
// exists and the probe compiles away.

#include <cstddef>
#include <stdexcept>

#include "ml/matrix.hpp"
#include "ml/simd.hpp"
#include "util/task_pool.hpp"

namespace smart::ml {

namespace detail {

/// Column-remainder path shared by every ISA variant: a scalar dot product
/// over kRemPartials = 4 interleaved partial sums (reassociated relative to
/// the strict kernel — this is what makes the relaxed kernel relaxed even
/// without FMA). noinline so each element's math is identical no matter
/// which row-group path or ISA variant of the caller invokes it.
__attribute__((noinline)) float relaxed_dot_remainder(
    const float* arow, const float* bcol, std::size_t ldb, std::size_t inner,
    const float* bias, std::size_t j, bool relu) {
  float s0 = 0.0f;
  float s1 = 0.0f;
  float s2 = 0.0f;
  float s3 = 0.0f;
  std::size_t k = 0;
  for (; k + 4 <= inner; k += 4) {
    s0 += arow[k] * bcol[k * ldb];
    s1 += arow[k + 1] * bcol[(k + 1) * ldb];
    s2 += arow[k + 2] * bcol[(k + 2) * ldb];
    s3 += arow[k + 3] * bcol[(k + 3) * ldb];
  }
  for (; k < inner; ++k) s0 += arow[k] * bcol[k * ldb];
  float acc = (s0 + s1) + (s2 + s3);
  if (bias != nullptr) acc += bias[j];
  if (relu) acc = acc > 0.0f ? acc : 0.0f;
  return acc;
}

}  // namespace detail

namespace {

using RelaxedKernelFn = void (*)(const float*, std::size_t, const float*,
                                 std::size_t, const float*, bool, float*,
                                 std::size_t, std::size_t, std::size_t,
                                 std::size_t, std::size_t);

#define SMART_KERNEL_NAME relaxed_rows_baseline
#define SMART_VEC_LANES 8
#include "ml/matmul_relaxed.inc"  // NOLINT
#undef SMART_KERNEL_NAME
#undef SMART_VEC_LANES

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define SMART_HAVE_X86_VARIANTS 1

#pragma GCC push_options
#pragma GCC target("avx2,fma")
#define SMART_KERNEL_NAME relaxed_rows_avx2
#define SMART_VEC_LANES 8
#include "ml/matmul_relaxed.inc"  // NOLINT
#undef SMART_KERNEL_NAME
#undef SMART_VEC_LANES
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx512f")
#define SMART_KERNEL_NAME relaxed_rows_avx512
#define SMART_VEC_LANES 16
#include "ml/matmul_relaxed.inc"  // NOLINT
#undef SMART_KERNEL_NAME
#undef SMART_VEC_LANES
#pragma GCC pop_options

#endif  // x86-64 GCC

struct Dispatch {
  RelaxedKernelFn fn;
  const char* isa;
};

Dispatch pick_kernel() {
#if defined(SMART_HAVE_X86_VARIANTS)
  if (__builtin_cpu_supports("avx512f")) {
    return {relaxed_rows_avx512, "avx512f"};
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {relaxed_rows_avx2, "avx2+fma"};
  }
#endif
  return {relaxed_rows_baseline, "scalar"};
}

const Dispatch& dispatched() {
  static const Dispatch d = pick_kernel();
  return d;
}

/// Same fan-out threshold as the strict kernels in matrix.cpp.
inline bool worth_parallel(std::size_t rows, std::size_t inner,
                           std::size_t cols) {
  return rows >= 16 && rows * inner * cols >= (1u << 15);
}

/// Rows per parallel task (matches the relaxed kernel's row-group size).
constexpr std::size_t kRowGroup = 4;

}  // namespace

const char* dispatch_isa() noexcept { return dispatched().isa; }

void matmul_bias_act_relaxed_into(const Matrix& a, const Matrix& b,
                                  const Matrix& bias, bool relu, Matrix& c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: shape mismatch");
  }
  if (bias.rows() != 1 || bias.cols() != b.cols()) {
    throw std::invalid_argument("matmul_bias_act_relaxed_into: bad bias shape");
  }
  if (&c == &a || &c == &b || &c == &bias) {
    throw std::invalid_argument(
        "matmul_bias_act_relaxed_into: output aliases an input");
  }
  c.reshape_overwrite(a.rows(), b.cols());
  const RelaxedKernelFn fn = dispatched().fn;
  const float* bias_ptr = bias.row(0).data();
  const auto run = [&](std::size_t i0, std::size_t i1) {
    fn(a.data(), a.cols(), b.data(), b.cols(), bias_ptr, relu, c.data(),
       c.cols(), i0, i1, a.cols(), b.cols());
  };
  if (worth_parallel(a.rows(), a.cols(), b.cols())) {
    // One task per row group: disjoint writes, and each row's math is
    // independent of the grouping, so any thread count gives the same bits.
    const std::size_t groups = (a.rows() + kRowGroup - 1) / kRowGroup;
    util::parallel_for(groups, [&](std::size_t gidx) {
      const std::size_t i0 = gidx * kRowGroup;
      run(i0, std::min(a.rows(), i0 + kRowGroup));
    });
  } else {
    run(0, a.rows());
  }
}

}  // namespace smart::ml
