// Gradient-boosted decision trees: GbdtClassifier (softmax objective, one
// tree per class per round — the paper's GBDT for OC selection, Sec. IV-D)
// and GbdtRegressor (squared loss — the paper's GBRegressor for execution-
// time prediction, Sec. IV-E).
#pragma once

#include <iosfwd>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/flat_forest.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace smart::ml {

struct GbdtParams {
  int rounds = 120;
  double learning_rate = 0.12;
  double subsample = 0.85;   // row subsampling per tree
  TreeParams tree{};
  std::uint64_t seed = 42;
};

class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtParams params = GbdtParams{}) : params_(params) {}

  void fit(const Matrix& x, std::span<const float> y);
  double predict_row(std::span<const float> features) const;
  /// Batched prediction: iterates trees-outer/rows-inner over cache-sized
  /// row blocks. Each row adds the trees in ensemble order, so every output
  /// is bit-identical to predict_row on that row for any thread count.
  /// When ml::simd_enabled(), the inner walk uses the flattened lockstep
  /// layout (FlatForest) — same comparisons, same double accumulation, so
  /// still bit-identical in every precision mode; SMART_SIMD=0 falls back
  /// to the per-row pointer walk.
  std::vector<double> predict(const Matrix& x) const;

  std::size_t num_trees() const noexcept { return trees_.size(); }

  /// Gain-based importance per input feature, normalized to sum to 1
  /// (all-zero if no split was ever made).
  std::vector<double> feature_importance(std::size_t num_features) const;

  /// Persists the fitted ensemble (params, base score, trees). The loaded
  /// model predicts bit-identically; the feature binner is NOT persisted
  /// (fit() rebuilds it), so artifacts are inference-ready, not resumable.
  void save(std::ostream& out) const;
  static GbdtRegressor load(std::istream& in);

 private:
  GbdtParams params_;
  FeatureBinner binner_;
  std::vector<RegressionTree> trees_;
  FlatForest flat_;  // rebuilt by fit()/load(), never serialized
  double base_ = 0.0;
};

class GbdtClassifier {
 public:
  explicit GbdtClassifier(GbdtParams params = GbdtParams{}) : params_(params) {}

  void fit(const Matrix& x, std::span<const int> labels, int num_classes);

  /// Class probabilities (softmax over per-class ensemble scores).
  std::vector<double> predict_proba_row(std::span<const float> features) const;
  /// Allocation-free variant: writes the probabilities into `out`
  /// (out.size() must equal num_classes()).
  void predict_proba_into(std::span<const float> features,
                          std::span<double> out) const;
  int predict_row(std::span<const float> features) const;
  /// Batched argmax prediction, trees-outer/rows-inner over row blocks with
  /// one score buffer per block (no per-row allocation). Labels equal
  /// predict_row on every row: the scores accumulate in ensemble order and
  /// softmax is strictly monotone, so the argmax is unchanged. Uses the
  /// flattened lockstep walk when ml::simd_enabled() (bit-identical, see
  /// GbdtRegressor::predict).
  std::vector<int> predict(const Matrix& x) const;

  int num_classes() const noexcept { return num_classes_; }

  /// Gain-based importance per input feature, normalized to sum to 1.
  std::vector<double> feature_importance(std::size_t num_features) const;

  std::size_t num_rounds() const noexcept {
    return num_classes_ == 0 ? 0 : trees_.size() / static_cast<std::size_t>(num_classes_);
  }

  /// Persists the fitted ensemble (params, base scores, trees); the loaded
  /// classifier predicts bit-identically. Binner not persisted (see
  /// GbdtRegressor::save).
  void save(std::ostream& out) const;
  static GbdtClassifier load(std::istream& in);

 private:
  GbdtParams params_;
  FeatureBinner binner_;
  std::vector<RegressionTree> trees_;  // rounds x classes, row-major
  FlatForest flat_;  // rebuilt by fit()/load(), never serialized
  int num_classes_ = 0;
  std::vector<double> base_scores_;    // log class priors
};

}  // namespace smart::ml
