#include "ml/dataset.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/serialize_io.hpp"

namespace smart::ml {

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.x = x.gather_rows(indices);
  if (!labels.empty()) {
    out.labels.reserve(indices.size());
    for (std::size_t i : indices) out.labels.push_back(labels[i]);
  }
  if (!targets.empty()) {
    out.targets.reserve(indices.size());
    for (std::size_t i : indices) out.targets.push_back(targets[i]);
  }
  return out;
}

void MaxAbsScaler::fit(const Matrix& x) {
  scales_.assign(x.cols(), 0.0f);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      scales_[c] = std::max(scales_[c], std::fabs(x.at(r, c)));
    }
  }
  for (float& s : scales_) {
    if (s == 0.0f) s = 1.0f;
  }
}

Matrix MaxAbsScaler::transform(const Matrix& x) const {
  Matrix out;
  transform_into(x, out);
  return out;
}

void MaxAbsScaler::transform_into(const Matrix& x, Matrix& out) const {
  if (x.cols() != scales_.size()) {
    throw std::invalid_argument("MaxAbsScaler: width mismatch");
  }
  if (&out == &x) {
    throw std::invalid_argument("MaxAbsScaler::transform_into: aliased output");
  }
  out.reshape_overwrite(x.rows(), x.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) = x.at(r, c) / scales_[c];
    }
  }
}

void MaxAbsScaler::save(std::ostream& out) const {
  out << "scaler " << scales_.size();
  for (float s : scales_) {
    out << ' ';
    util::write_f32(out, s);
  }
  out << '\n';
}

MaxAbsScaler MaxAbsScaler::load(std::istream& in) {
  util::expect_word(in, "scaler", "MaxAbsScaler::load");
  const std::size_t n = util::read_size(in, "scaler width");
  MaxAbsScaler scaler;
  scaler.scales_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaler.scales_[i] = util::read_f32(in, "scaler scale");
  }
  return scaler;
}

std::vector<FoldSplit> kfold_splits(std::size_t n, int folds, util::Rng& rng) {
  if (folds < 2) throw std::invalid_argument("kfold_splits: folds < 2");
  if (n < static_cast<std::size_t>(folds)) {
    throw std::invalid_argument("kfold_splits: fewer samples than folds");
  }
  const std::vector<std::size_t> perm = rng.permutation(n);
  std::vector<FoldSplit> out(static_cast<std::size_t>(folds));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t fold = i % static_cast<std::size_t>(folds);
    out[fold].test_indices.push_back(perm[i]);
  }
  for (int f = 0; f < folds; ++f) {
    for (int g = 0; g < folds; ++g) {
      if (g == f) continue;
      auto& train = out[static_cast<std::size_t>(f)].train_indices;
      const auto& test = out[static_cast<std::size_t>(g)].test_indices;
      train.insert(train.end(), test.begin(), test.end());
    }
  }
  return out;
}

}  // namespace smart::ml
