// From-scratch neural-network stack: Dense, ReLU, Conv2D/Conv3D layers,
// softmax-cross-entropy and MSE losses, the Adam optimizer, and a
// Sequential container. This substitutes for the paper's TensorFlow v1.15
// models (ConvNet, FcNet, MLP, ConvMLP) at library scale.
//
// Data layout: activations are Matrix rows (one sample per row); conv
// layers interpret each row as a flattened (C, H, W) or (C, D, H, W)
// volume and produce the flattened output volume.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/matrix.hpp"
#include "util/rng.hpp"

namespace smart::ml {

/// A trainable parameter: value and accumulated gradient, same shape.
struct ParamRef {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;
  /// Forward pass; implementations cache what backward() needs.
  virtual Matrix forward(const Matrix& x) = 0;
  /// Inference-only forward: writes the output into `out` (resized in
  /// place) without caching backward() state, so a long-lived `out` makes
  /// repeated prediction allocation-free. Values are bit-identical to
  /// forward() in inference mode. The default delegates to forward().
  virtual void infer(const Matrix& x, Matrix& out) { out = forward(x); }
  /// Backward pass: gradient w.r.t. this layer's input. Parameter
  /// gradients are accumulated into the ParamRef grads.
  virtual Matrix backward(const Matrix& grad_out) = 0;
  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }
  virtual std::size_t output_size(std::size_t input_size) const = 0;
  /// Train/inference mode toggle (only stochastic layers care).
  virtual void set_training(bool training) { (void)training; }
  /// Persists the layer as a tagged token record (weights in hexfloat, so
  /// Sequential::load reproduces inference bit-exactly). Optimizer and
  /// backward state are not persisted — artifacts are inference-ready.
  virtual void save(std::ostream& out) const = 0;
};

class Dense final : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, util::Rng& rng);
  /// Deserialization constructor: adopts fitted weights (in x out) and bias
  /// (1 x out) directly.
  Dense(Matrix w, Matrix b);
  Matrix forward(const Matrix& x) override;
  void infer(const Matrix& x, Matrix& out) override;
  /// Fused inference step used by Sequential's Dense(+ReLU) peephole:
  /// out = act(x * W + b) in one pass. In the default strict precision this
  /// is bit-identical to infer() (+ a ReLU pass when `relu`); in relaxed
  /// "f32" precision it dispatches the runtime-selected SIMD kernel
  /// (ml/simd.hpp), which is tolerance-equivalent only.
  void infer_fused(const Matrix& x, Matrix& out, bool relu);
  Matrix backward(const Matrix& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::size_t output_size(std::size_t) const override { return w_.cols(); }
  void save(std::ostream& out) const override;

 private:
  Matrix w_, b_, dw_, db_;
  Matrix input_;
};

class ReLU final : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  void infer(const Matrix& x, Matrix& out) override;
  Matrix backward(const Matrix& grad_out) override;
  std::size_t output_size(std::size_t input_size) const override {
    return input_size;
  }
  void save(std::ostream& out) const override;

 private:
  Matrix mask_;
};

/// Inverted dropout: keeps activations unbiased at inference. A stochastic
/// regularizer for the deeper FcNet configurations (the paper observes
/// FcNet overfits when too deep, Sec. IV-D).
class Dropout final : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);
  Matrix forward(const Matrix& x) override;
  /// Inference pass-through (inverted dropout keeps activations unbiased);
  /// never consumes randomness regardless of the training flag.
  void infer(const Matrix& x, Matrix& out) override { out = x; }
  Matrix backward(const Matrix& grad_out) override;
  std::size_t output_size(std::size_t input_size) const override {
    return input_size;
  }
  void set_training(bool training) override { training_ = training; }
  /// Persists the rate only: the RNG stream is training state, and loaded
  /// nets are inference artifacts (infer() never consumes randomness).
  void save(std::ostream& out) const override;

 private:
  double rate_;
  bool training_ = true;
  util::Rng rng_;
  Matrix mask_;
};

/// Valid (unpadded) 2-D convolution over (C, H, W) rows, stride 1.
class Conv2D final : public Layer {
 public:
  Conv2D(int in_c, int out_c, int h, int w, int k, util::Rng& rng);
  /// Deserialization constructor: adopts fitted weights and bias.
  Conv2D(int in_c, int out_c, int h, int w, int k, Matrix weights, Matrix bias);
  Matrix forward(const Matrix& x) override;
  void infer(const Matrix& x, Matrix& out) override;
  Matrix backward(const Matrix& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::size_t output_size(std::size_t) const override {
    return static_cast<std::size_t>(out_c_) * oh() * ow();
  }
  void save(std::ostream& out) const override;
  std::size_t oh() const { return static_cast<std::size_t>(h_ - k_ + 1); }
  std::size_t ow() const { return static_cast<std::size_t>(w_ - k_ + 1); }

 private:
  void run_forward(const Matrix& x, Matrix& y) const;

  int in_c_, out_c_, h_, w_, k_;
  Matrix weights_, bias_, dweights_, dbias_;  // weights_: out_c x (in_c*k*k)
  Matrix input_;
};

/// Valid (unpadded) 3-D convolution over (C, D, H, W) rows, stride 1.
class Conv3D final : public Layer {
 public:
  Conv3D(int in_c, int out_c, int d, int h, int w, int k, util::Rng& rng);
  /// Deserialization constructor: adopts fitted weights and bias.
  Conv3D(int in_c, int out_c, int d, int h, int w, int k, Matrix weights,
         Matrix bias);
  Matrix forward(const Matrix& x) override;
  void infer(const Matrix& x, Matrix& out) override;
  Matrix backward(const Matrix& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::size_t output_size(std::size_t) const override {
    return static_cast<std::size_t>(out_c_) * od() * oh() * ow();
  }
  void save(std::ostream& out) const override;
  std::size_t od() const { return static_cast<std::size_t>(d_ - k_ + 1); }
  std::size_t oh() const { return static_cast<std::size_t>(h_ - k_ + 1); }
  std::size_t ow() const { return static_cast<std::size_t>(w_ - k_ + 1); }

 private:
  void run_forward(const Matrix& x, Matrix& y) const;

  int in_c_, out_c_, d_, h_, w_, k_;
  Matrix weights_, bias_, dweights_, dbias_;  // weights_: out_c x (in_c*k^3)
  Matrix input_;
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Matrix forward(const Matrix& x);
  /// Inference-only forward pass ping-ponging between two internal scratch
  /// activations, so repeated prediction performs no per-layer allocations
  /// after the first call. Values are bit-identical to forward() (call
  /// set_training(false) first when the net has stochastic layers). The
  /// returned reference is valid until the next forward/infer call.
  ///
  /// When ml::simd_enabled(), consecutive Dense+ReLU layers execute as one
  /// fused kernel step (Dense::infer_fused). In strict precision the fusion
  /// is bit-identical to the unfused walk; only the relaxed "f32" precision
  /// changes values (within the equivalence suite's tolerance). Batch size
  /// may shrink or grow freely between calls: every layer reshapes the
  /// scratch buffers before writing, and the matmul kernels reject aliased
  /// in/out matrices outright.
  const Matrix& infer(const Matrix& x);
  Matrix backward(const Matrix& grad_out);
  std::vector<ParamRef> params();
  void set_training(bool training);

  std::size_t num_layers() const noexcept { return layers_.size(); }

  /// Persists every layer in order; load() reconstructs a net whose infer()
  /// and forward() are bit-identical to the saved one. Throws
  /// std::runtime_error on unknown layer tags or malformed weights.
  void save(std::ostream& out) const;
  static Sequential load(std::istream& in);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  Matrix infer_a_, infer_b_;  // reusable activation buffers for infer()
};

/// Softmax + cross-entropy on logits. Returns mean loss; writes the
/// gradient w.r.t. logits (already divided by batch size) into `grad`.
double softmax_ce_loss(const Matrix& logits, std::span<const int> labels,
                       Matrix& grad);

/// Argmax class per row of logits.
std::vector<int> argmax_rows(const Matrix& logits);

/// Mean squared error on a single-output column. Gradient as above.
double mse_loss(const Matrix& preds, std::span<const float> targets,
                Matrix& grad);

class Adam {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  /// Applies one update to all params and zeroes their gradients.
  void step(std::vector<ParamRef>& params);

  double learning_rate() const noexcept { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace smart::ml
