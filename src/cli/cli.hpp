// smartctl: command-line front end for the StencilMART pipeline.
//
//   smartctl generate --dims 2 --order 3 --count 5 [--seed N]
//   smartctl profile  --dims 2 --stencils 40 --out corpus.txt [--shard i/N]
//   smartctl merge    --out corpus.txt shard0.txt shard1.txt ...
//   smartctl ocs                          # list Table I combinations
//   smartctl gpus                         # list Table III GPUs
//   smartctl train    --corpus corpus.txt --out model.smart
//   smartctl advise   --model model.smart --shape star --order 2 --gpu V100
//   smartctl advise   --corpus corpus.txt --shape star --order 2 --gpu V100
//   smartctl serve    --model model.smart --socket /tmp/smart.sock
//   smartctl codegen  --shape box --dims 3 --order 2 --oc ST_RT [--out dir]
//
// The argument parser and command dispatch live in the library so they are
// unit-testable; tools/smartctl.cpp is a thin main().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace smart::cli {

/// Parsed command line: one subcommand plus --key value options. Commands
/// that take file operands (`smartctl merge --out FILE SHARD...`) also get
/// the bare positional tokens, in order; for every other command a bare
/// token stays a parse error.
struct CommandLine {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;

  bool has(const std::string& key) const { return options.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const;
  /// Strict integer option: the whole value must parse and fit in int.
  /// Throws std::invalid_argument naming the option on "2x", "", overflow.
  int get_int(const std::string& key, int fallback) const;
  /// Strict unsigned 64-bit option (seeds): rejects negatives and overflow.
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
};

/// Parses argv into a CommandLine. Throws std::invalid_argument for
/// malformed input (option without value, unknown leading token).
CommandLine parse_command_line(const std::vector<std::string>& args);

/// Executes a parsed command, writing human-readable output to `out`.
/// Returns a process exit code (0 = success). Unknown commands print the
/// usage text and return 2.
int run_command(const CommandLine& cmd, std::ostream& out);

/// The usage/help text.
std::string usage();

}  // namespace smart::cli
