#include "cli/cli.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <pthread.h>
#include <unistd.h>

#include "codegen/cuda_codegen.hpp"
#include "core/advisor_server.hpp"
#include "core/corpus_merge.hpp"
#include "core/mart.hpp"
#include "core/serialize.hpp"
#include "core/stencilmart.hpp"
#include "ml/simd.hpp"
#include "stencil/features.hpp"
#include "stencil/tensor_repr.hpp"
#include "util/fault.hpp"
#include "util/serialize_io.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"
#include "util/timing.hpp"
#include "util/transport.hpp"

namespace smart::cli {

namespace {

/// Validates an optional --precision value ("" = inherit SMART_PRECISION)
/// before any expensive work, so a typo exits 2 instantly.
std::string precision_option(const CommandLine& cmd, const char* subcommand) {
  const std::string precision = cmd.get("precision", "");
  if (!precision.empty() && precision != "f64" && precision != "f32") {
    throw std::invalid_argument(std::string(subcommand) +
                                ": --precision must be f64 or f32");
  }
  return precision;
}

stencil::StencilPattern shape_from_options(const CommandLine& cmd) {
  const std::string shape = cmd.get("shape", "star");
  const int dims = cmd.get_int("dims", 2);
  const int order = cmd.get_int("order", 2);
  if (shape == "box") return stencil::make_box(dims, order);
  if (shape == "cross") return stencil::make_cross(dims, order);
  if (shape == "star") return stencil::make_star(dims, order);
  throw std::invalid_argument("unknown --shape '" + shape +
                              "' (star|box|cross)");
}

int cmd_generate(const CommandLine& cmd, std::ostream& out) {
  stencil::GeneratorConfig config;
  config.dims = cmd.get_int("dims", 2);
  config.order = cmd.get_int("order", 4);
  const stencil::RandomStencilGenerator generator(config);
  util::Rng rng(cmd.get_u64("seed", 1));
  const int count = cmd.get_int("count", 3);
  for (int i = 0; i < count; ++i) {
    const auto pattern = generator.generate(rng);
    out << pattern.name() << "  nnz=" << pattern.size() << "  offsets:";
    for (const auto& p : pattern.offsets()) {
      out << ' ' << p.to_string(pattern.dims());
    }
    out << '\n';
  }
  return 0;
}

/// Strict `--shard i/N` grammar: two full decimal tokens around one '/',
/// N >= 1, i < N. Everything else — "2/2", "x/3", "1/3junk", "1/", "/3",
/// "-1/3", "1/0" — is a usage error (rc 2 + usage text), caught before any
/// expensive work.
core::ShardSpec parse_shard_option(const std::string& text) {
  const auto reject = [&text]() -> void {
    throw std::invalid_argument("profile: --shard must be i/N with 0 <= i < N "
                                "(got '" + text + "')");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) reject();
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  if (!util::parse_u64_strict(text.substr(0, slash), index) ||
      !util::parse_u64_strict(text.substr(slash + 1), count)) {
    reject();
  }
  if (count == 0 || index >= count) reject();
  return core::ShardSpec{static_cast<std::size_t>(index),
                         static_cast<std::size_t>(count)};
}

/// `profile --shard i/N --plan`: the fleet-planning view. Runs only the
/// cheap stencil-generation stage and prints every shard's owned-unit
/// count, so operators can sanity-check partition balance before paying
/// for N real sweeps.
int shard_plan(const core::ProfileConfig& config, const core::ShardSpec& shard,
               std::ostream& out) {
  const auto counts = core::shard_unit_counts(config, shard.count);
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  util::Table table({"shard", "units", "share"});
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::string label = std::to_string(i) + "/" + std::to_string(shard.count);
    if (i == shard.index) label += " *";
    table.row()
        .add(label)
        .add(static_cast<long long>(counts[i]))
        .add(total > 0 ? 100.0 * static_cast<double>(counts[i]) /
                             static_cast<double>(total)
                       : 0.0,
             1);
  }
  table.print(out);
  out << "plan: " << total << " work units over " << shard.count
      << " shards (ideal " << total / shard.count
      << " per shard); no measurements were run\n";
  return 0;
}

int cmd_profile(const CommandLine& cmd, std::ostream& out) {
  core::ProfileConfig config;
  config.dims = cmd.get_int("dims", 2);
  config.num_stencils = cmd.get_int("stencils", 40);
  config.samples_per_oc = cmd.get_int("samples", 4);
  config.seed = cmd.get_u64("seed", 1234);

  core::ProfileRunOptions run;
  run.journal_path = cmd.get("journal", "");
  run.resume = cmd.get_int("resume", 0) != 0;
  run.retries = cmd.get_int("retries", run.retries);
  if (cmd.has("shard")) run.shard = parse_shard_option(cmd.get("shard", ""));
  if (run.resume && run.journal_path.empty()) {
    throw std::invalid_argument("profile: --resume requires --journal FILE");
  }
  if (run.retries < 0) {
    throw std::invalid_argument("profile: --retries must be >= 0");
  }
  if (cmd.get_int("plan", 0) != 0) {
    if (!cmd.has("shard")) {
      throw std::invalid_argument("profile: --plan requires --shard i/N");
    }
    return shard_plan(config, run.shard, out);
  }
  // --faults scopes the injected schedule to this run; it overrides (and on
  // exit restores) any SMART_FAULTS environment spec.
  std::optional<util::ScopedFaultInjection> faults;
  if (cmd.has("faults")) {
    faults.emplace(util::parse_fault_spec(cmd.get("faults", "")));
  }

  const auto dataset = core::build_profile_dataset(config, run);
  out << "profiled " << dataset.stencils.size() << " stencils x "
      << core::ProfileDataset::num_ocs() << " OCs x "
      << dataset.num_gpus() << " GPUs (" << dataset.num_instances()
      << " instances, " << util::parallel_threads() << " threads)\n";
  if (run.shard.sharded()) {
    const std::size_t total = dataset.stencils.size() *
                              core::ProfileDataset::num_ocs() *
                              dataset.num_gpus();
    out << "shard " << run.shard.index << '/' << run.shard.count << ": owned "
        << dataset.owned_units << "/" << total << " units ("
        << util::format_double(total > 0 ? 100.0 *
                                               static_cast<double>(
                                                   dataset.owned_units) /
                                               static_cast<double>(total)
                                         : 0.0,
                               1)
        << "% of the sweep; ideal " << total / run.shard.count << ")\n";
  }
  if (dataset.resumed_units > 0) {
    out << "resumed " << dataset.resumed_units << " completed units from "
        << run.journal_path << '\n';
  }
  if (!dataset.quarantined.empty()) {
    out << "quarantined " << dataset.quarantined.size()
        << " units (kept as crash entries in the corpus)\n";
  }
  if (cmd.get_int("checksum", 0) != 0) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(core::dataset_checksum(dataset)));
    out << "checksum " << digest << '\n';
  }
  if (cmd.get_int("timing", 0) != 0) out << util::timing_report();
  if (cmd.has("out")) {
    core::save_dataset(dataset, cmd.get("out", ""));
    out << "saved to " << cmd.get("out", "") << '\n';
  }
  return 0;
}

/// `smartctl merge --out FILE SHARD...`: fold shard corpora back into the
/// single-run corpus. Validation (partition completeness, run identity,
/// ownership) lives in core::merge_shard_corpora; load errors carry
/// "<file>:<line>:" context from core::load_dataset. Both surface through
/// the PR 5 exit-code contract (rc 1, one-line `smartctl: error:`).
int cmd_merge(const CommandLine& cmd, std::ostream& out) {
  if (!cmd.has("out")) {
    throw std::invalid_argument("merge: --out FILE is required");
  }
  if (cmd.positional.empty()) {
    throw std::invalid_argument(
        "merge: at least one shard corpus file is required");
  }
  std::vector<core::ProfileDataset> shards;
  shards.reserve(cmd.positional.size());
  for (const std::string& path : cmd.positional) {
    shards.push_back(core::load_dataset(path));
  }
  auto merged = core::merge_shard_corpora(std::move(shards), cmd.positional);
  core::save_dataset(merged, cmd.get("out", ""));
  out << "merged " << cmd.positional.size() << " shard"
      << (cmd.positional.size() == 1 ? "" : "s") << " -> "
      << cmd.get("out", "") << " (" << merged.stencils.size()
      << " stencils, " << merged.owned_units << " work units";
  if (!merged.quarantined.empty()) {
    out << ", " << merged.quarantined.size() << " quarantined";
  }
  out << ")\n";
  if (cmd.get_int("checksum", 0) != 0) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(core::dataset_checksum(merged)));
    out << "checksum " << digest << '\n';
  }
  if (cmd.get_int("timing", 0) != 0) out << util::timing_report();
  return 0;
}

int cmd_ocs(std::ostream& out) {
  util::Table table({"idx", "combination"});
  const auto& all = gpusim::valid_combinations();
  for (std::size_t i = 0; i < all.size(); ++i) {
    table.row().add(static_cast<long long>(i)).add(all[i].name());
  }
  table.print(out);
  return 0;
}

int cmd_gpus(std::ostream& out) {
  util::Table table({"GPU", "Mem(GB)", "BW(GB/s)", "SMs", "TFLOPS", "$/hr"});
  for (const auto& gpu : gpusim::evaluation_gpus()) {
    table.row()
        .add(gpu.name)
        .add(gpu.mem_gb, 0)
        .add(gpu.mem_bw_gbs, 0)
        .add(gpu.sms)
        .add(gpu.fp64_tflops, 2)
        .add(gpu.rental_usd_hr, 2);
  }
  table.print(out);
  return 0;
}

/// The shared train/advise MartConfig: both CLI paths must agree on every
/// field (notably the regression instance cap) so a model trained by
/// `smartctl train` predicts bit-identically to an in-process `advise
/// --corpus` run over the same corpus.
core::MartConfig mart_config(const CommandLine& cmd, int dims) {
  core::MartConfig config;
  config.profile.dims = dims;
  config.profile.num_stencils = cmd.get_int("stencils", 40);
  config.profile.seed = cmd.get_u64("seed", 99);
  config.regression.instance_cap = 3000;
  return config;
}

int cmd_train(const CommandLine& cmd, std::ostream& out) {
  if (!cmd.has("out")) {
    throw std::invalid_argument("train: --out FILE is required");
  }
  core::MartConfig config = mart_config(cmd, cmd.get_int("dims", 2));
  core::StencilMart mart(config);
  if (cmd.has("corpus")) {
    mart.train(core::load_dataset(cmd.get("corpus", "")));
  } else {
    mart.train();
  }
  core::save_model(mart, cmd.get("out", ""));
  out << "trained " << core::to_string(mart.config().regressor) << " on "
      << mart.dataset().stencils.size() << " stencils; model saved to "
      << cmd.get("out", "") << '\n';
  if (cmd.get_int("timing", 0) != 0) out << util::timing_report();
  return 0;
}

int cmd_advise(const CommandLine& cmd, std::ostream& out) {
  const auto pattern = shape_from_options(cmd);
  if (cmd.has("model") && cmd.has("corpus")) {
    throw std::invalid_argument(
        "advise: --model and --corpus are mutually exclusive");
  }
  const std::string precision = precision_option(cmd, "advise");
  std::optional<ml::PrecisionSection> precision_section;
  if (!precision.empty()) {
    precision_section.emplace(ml::precision_from_string(precision.c_str()));
  }

  std::optional<core::StencilMart> mart;
  if (cmd.has("model")) {
    // Serve-only path: no profiling, no training — just deserialize.
    mart.emplace(core::load_model(cmd.get("model", "")));
    if (mart->config().profile.dims != pattern.dims()) {
      throw std::runtime_error(
          "advise: the model was trained for " +
          std::to_string(mart->config().profile.dims) +
          "-D stencils but the query stencil is " +
          std::to_string(pattern.dims()) + "-D");
    }
  } else {
    mart.emplace(mart_config(cmd, pattern.dims()));
    if (cmd.has("corpus")) {
      // Train on the corpus's measured times (reproducible across calls,
      // and on real hardware: no re-profiling).
      const auto dataset = core::load_dataset(cmd.get("corpus", ""));
      if (dataset.config.dims != pattern.dims()) {
        throw std::invalid_argument("corpus dimensionality mismatch");
      }
      mart->train(dataset);
    } else {
      mart->train();
    }
  }

  // Deliberately the per-item advise()/recommend_gpu() pair — the serve
  // daemon goes through advise_batch(), so the serve-vs-CLI golden
  // equivalence gate compares two genuinely different code paths. Only the
  // report FORMATTER is shared (core::advise_report).
  const std::string gpu = cmd.get("gpu", "V100");
  const auto advice = mart->advise(pattern, gpu);
  const auto rec = mart->recommend_gpu(pattern);
  out << core::advise_report(pattern, gpu, advice, rec);
  if (cmd.get_int("timing", 0) != 0) out << util::timing_report();
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void serve_stop_handler(int) { g_serve_stop.store(true); }

/// Installs a handler for `sig`, restoring the previous disposition on
/// destruction (commands run in-process in the unit tests; handlers must
/// not leak past the serve call).
class ScopedSignal {
 public:
  ScopedSignal(int sig, void (*handler)(int)) : sig_(sig) {
    struct sigaction sa {};
    sa.sa_handler = handler;
    sigemptyset(&sa.sa_mask);
    sigaction(sig_, &sa, &old_);
  }
  ~ScopedSignal() { sigaction(sig_, &old_, nullptr); }
  ScopedSignal(const ScopedSignal&) = delete;
  ScopedSignal& operator=(const ScopedSignal&) = delete;

 private:
  int sig_;
  struct sigaction old_ {};
};

/// Blocks `sig` for the calling thread — and, transitively, every thread
/// spawned afterwards — restoring the previous mask on destruction. The
/// reload poller then reaps the signal synchronously with sigtimedwait:
/// unlike an async handler, delivery cannot be deferred by whatever the
/// receiving thread happens to be blocked in (sanitizer runtimes queue
/// async handlers until the interrupted thread reaches a safe point, which
/// an idle thread may not hit for seconds).
class ScopedSigblock {
 public:
  explicit ScopedSigblock(int sig) {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, sig);
    pthread_sigmask(SIG_BLOCK, &set, &old_);
  }
  ~ScopedSigblock() { pthread_sigmask(SIG_SETMASK, &old_, nullptr); }
  ScopedSigblock(const ScopedSigblock&) = delete;
  ScopedSigblock& operator=(const ScopedSigblock&) = delete;

 private:
  sigset_t old_{};
};

/// One serve client: a line reader plus a thread-safe reply writer. Batched
/// replies are written from the batcher thread, so a write failure (the
/// peer vanished mid-reply) cannot throw there — it is captured and
/// rethrown on the reader thread, where it propagates into the PR 5
/// one-line `smartctl: error:` exit (rc 1) instead of SIGPIPE death.
class ServeConnection {
 public:
  ServeConnection(int read_fd, int write_fd)
      : reader_(read_fd), writer_(write_fd) {}

  core::AdvisorServer::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lk(mu_);
      if (dead_) return;  // the peer is gone: drop further replies quietly
      try {
        writer_.write_all(line + '\n');
      } catch (...) {
        dead_ = true;
        error_ = std::current_exception();
      }
    };
  }

  util::LineChannel& reader() { return reader_; }
  util::LineChannel& writer() { return writer_; }

  /// Stops delivering replies (used by injected write faults to model a
  /// severed peer without tearing down the fd mid-write).
  void cut() {
    const std::lock_guard<std::mutex> lk(mu_);
    dead_ = true;
  }

  void rethrow_write_error() {
    const std::lock_guard<std::mutex> lk(mu_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  util::LineChannel reader_;
  util::LineChannel writer_;
  std::mutex mu_;
  bool dead_ = false;
  std::exception_ptr error_;
};

enum class ConnEnd { kShutdown, kEof, kStop };

ConnEnd serve_connection(core::AdvisorServer& server, int read_fd,
                         int write_fd) {
  ServeConnection conn(read_fd, write_fd);
  const auto sink = conn.sink();
  std::string line;
  try {
    for (;;) {
      const auto r = conn.reader().read_line(line, &g_serve_stop);
      if (r != util::LineChannel::ReadResult::kLine) {
        // EOF or SIGTERM/SIGINT: answer everything already accepted
        // (graceful drain — no request is dropped), then leave.
        server.drain();
        conn.rethrow_write_error();
        return r == util::LineChannel::ReadResult::kEof ? ConnEnd::kEof
                                                        : ConnEnd::kStop;
      }
      const bool keep = server.submit(line, sink);
      conn.rethrow_write_error();
      if (!keep) return ConnEnd::kShutdown;
    }
  } catch (...) {
    // The server queue still holds sinks that capture `conn`; flush them
    // while it is alive (a dead peer drops replies quietly), THEN let the
    // error unwind. Without this, the batcher thread would call into a
    // destroyed connection.
    server.drain();
    throw;
  }
}

/// Per-connection limits of the multi-client accept loop.
struct ServeLimits {
  int max_inflight = 1024;
  int idle_timeout_ms = 0;   // 0 = never reap idle connections
  int write_timeout_ms = 0;  // 0 = block forever on a slow reader
};

/// Best-effort second token of a request line (the id) for cli-layer busy
/// replies; "-" when it is missing or not a protocol-legal id.
std::string line_request_id(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && line[i] == ' ') ++i;
  while (i < line.size() && line[i] != ' ') ++i;  // skip the verb
  while (i < line.size() && line[i] == ' ') ++i;
  const std::size_t start = i;
  while (i < line.size() && line[i] != ' ') ++i;
  const std::string id = line.substr(start, i - start);
  if (id.empty() || id.size() > core::serve::kMaxIdBytes) return "-";
  for (const char c : id) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '-';
    if (!ok) return "-";
  }
  return id;
}

bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

/// One socket session under the multi-client accept loop. A failing peer
/// (disconnect, write error, injected read/write fault, idle timeout) ends
/// only this session — the daemon keeps serving everyone else. Sets
/// g_serve_stop when this client's shutdown verb was accepted.
void serve_session(core::AdvisorServer& server, int fd, std::uint64_t conn_id,
                   const ServeLimits& limits) {
  ServeConnection conn(fd, fd);
  conn.reader().set_idle_timeout_ms(limits.idle_timeout_ms);
  if (limits.write_timeout_ms > 0) {
    conn.writer().set_write_timeout_ms(limits.write_timeout_ms);
  }
  // In-flight = submitted minus replied on THIS connection; the sink
  // wrapper decrements as each reply (batched, memoized, control or shed)
  // is delivered.
  const auto inflight = std::make_shared<std::atomic<int>>(0);
  const auto base = conn.sink();
  const core::AdvisorServer::Sink sink = [base,
                                          inflight](const std::string& line) {
    base(line);
    inflight->fetch_sub(1, std::memory_order_acq_rel);
  };
  const auto& faults = util::FaultInjector::global();
  std::string line;
  int reads = 0;
  int writes = 0;
  try {
    for (;;) {
      const auto r = conn.reader().read_line(line, &g_serve_stop);
      if (r != util::LineChannel::ReadResult::kLine) {
        // EOF, idle timeout or SIGTERM/shutdown: answer everything this
        // client already submitted (graceful drain), then hang up.
        server.drain();
        conn.rethrow_write_error();
        if (r == util::LineChannel::ReadResult::kIdleTimeout) {
          std::fprintf(stderr, "serve: connection %llu: idle timeout, closing\n",
                       static_cast<unsigned long long>(conn_id));
        }
        return;
      }
      faults.inject(util::FaultSite::kRead, conn_id, reads++);
      faults.inject(util::FaultSite::kWrite, conn_id, writes++);
      if (!blank_line(line)) {
        if (inflight->load(std::memory_order_acquire) >= limits.max_inflight) {
          // Per-connection cap: shed at the edge with a structured reply
          // instead of letting one pipelining client monopolize the queue.
          base(core::serve::err_reply(line_request_id(line),
                                      "busy (connection in-flight cap)"));
          conn.rethrow_write_error();
          continue;
        }
        inflight->fetch_add(1, std::memory_order_acq_rel);
      }
      const bool keep = server.submit(line, sink);
      conn.rethrow_write_error();
      if (!keep) {
        // This client's shutdown verb was accepted (or raced another
        // client's): stop the whole daemon.
        g_serve_stop.store(true);
        return;
      }
    }
  } catch (const util::FaultError&) {
    // Injected read/write fault: treat as a severed peer — no further
    // replies reach it; flush the queue, hang up.
    conn.cut();
    server.drain();
  } catch (const std::exception& e) {
    // A broken peer (write error, read error) must not kill the daemon;
    // flush sinks that still capture `conn`, log, and close this session.
    server.drain();
    std::fprintf(stderr, "serve: connection %llu: %s\n",
                 static_cast<unsigned long long>(conn_id), e.what());
  }
}

/// Session threads of the accept loop. Finished sessions are reaped on the
/// next launch (and at join_all), so the thread list stays proportional to
/// the live connection count, not the connection total.
class SessionSet {
 public:
  void launch(std::function<void()> fn) {
    const std::lock_guard<std::mutex> lk(mu_);
    reap_locked();
    threads_.emplace_back([this, fn = std::move(fn)] {
      fn();
      const std::lock_guard<std::mutex> lk2(mu_);
      done_.push_back(std::this_thread::get_id());
    });
  }

  void join_all() {
    std::vector<std::thread> taken;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      taken.swap(threads_);
      done_.clear();
    }
    for (std::thread& t : taken) t.join();
  }

 private:
  void reap_locked() {
    for (const std::thread::id id : done_) {
      for (auto it = threads_.begin(); it != threads_.end(); ++it) {
        if (it->get_id() == id) {
          it->join();
          threads_.erase(it);
          break;
        }
      }
    }
    done_.clear();
  }

  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::vector<std::thread::id> done_;
};

int cmd_serve(const CommandLine& cmd, std::ostream& out) {
  // Every flag is validated BEFORE the model load, so usage errors are
  // instant (and exit 2) instead of surfacing after seconds of deserializing.
  if (!cmd.has("model")) {
    throw std::invalid_argument("serve: --model FILE is required");
  }
  const bool stdio = cmd.get_int("stdio", 0) != 0;
  if (stdio && cmd.has("socket")) {
    throw std::invalid_argument(
        "serve: --socket and --stdio are mutually exclusive");
  }
  const std::string socket_path = cmd.get("socket", "");
  core::ServeConfig config;
  config.max_batch = cmd.get_int("max-batch", 8);
  if (config.max_batch < 1 || config.max_batch > 4096) {
    throw std::invalid_argument("serve: --max-batch must be in [1, 4096]");
  }
  const int max_wait = cmd.get_int("max-wait-us", 200);
  if (max_wait < 0) {
    throw std::invalid_argument("serve: --max-wait-us must be >= 0");
  }
  config.max_wait_us = max_wait;
  const int max_queue = cmd.get_int("max-queue", 1024);
  if (max_queue < 1 || max_queue > (1 << 20)) {
    throw std::invalid_argument("serve: --max-queue must be in [1, 1048576]");
  }
  config.max_queue = static_cast<std::size_t>(max_queue);
  const int deadline_us = cmd.get_int("deadline-us", 0);
  if (deadline_us < 0) {
    throw std::invalid_argument("serve: --deadline-us must be >= 0");
  }
  config.deadline_us = deadline_us;
  const int max_conns = cmd.get_int("max-conns", 16);
  if (max_conns < 1 || max_conns > 1024) {
    throw std::invalid_argument("serve: --max-conns must be in [1, 1024]");
  }
  ServeLimits limits;
  limits.max_inflight = cmd.get_int("max-inflight", 1024);
  if (limits.max_inflight < 1 || limits.max_inflight > (1 << 20)) {
    throw std::invalid_argument(
        "serve: --max-inflight must be in [1, 1048576]");
  }
  limits.idle_timeout_ms = cmd.get_int("idle-timeout-ms", 0);
  if (limits.idle_timeout_ms < 0) {
    throw std::invalid_argument("serve: --idle-timeout-ms must be >= 0");
  }
  limits.write_timeout_ms = cmd.get_int("write-timeout-ms", 0);
  if (limits.write_timeout_ms < 0) {
    throw std::invalid_argument("serve: --write-timeout-ms must be >= 0");
  }
  config.precision = precision_option(cmd, "serve");
  config.simd = cmd.get_int("simd", -1);
  if (config.simd < -1 || config.simd > 1) {
    throw std::invalid_argument("serve: --simd must be 0 or 1");
  }
  // --faults scopes an injected accept/read/write fault schedule to this
  // daemon (chaos harness); it overrides and restores SMART_FAULTS.
  std::optional<util::ScopedFaultInjection> faults;
  if (cmd.has("faults")) {
    faults.emplace(util::parse_fault_spec(cmd.get("faults", "")));
  }
  const bool timing = cmd.get_int("timing", 0) != 0;

  // The provider re-validates the artifact through the strict load_model
  // reader on every (re)load; the daemon starts by loading through the same
  // path, so the banner and the reload verb can never disagree about what a
  // "valid artifact" is.
  const std::string model_path = cmd.get("model", "");
  const core::ModelProvider provider = [model_path] {
    core::ModelSnapshot snapshot;
    const core::ModelArtifactInfo info = core::inspect_model(model_path);
    snapshot.mart = std::make_shared<const core::StencilMart>(
        core::load_model(model_path));
    snapshot.version = info.version;
    snapshot.checksum = info.checksum;
    return snapshot;
  };
  // SIGHUP is blocked before any daemon thread exists, so every thread
  // inherits the mask and a HUP stays pending until the reload poller
  // reaps it with sigtimedwait.
  const ScopedSigblock block_hup(SIGHUP);
  core::AdvisorServer server(provider(), config, provider);

  g_serve_stop.store(false);
  const ScopedSignal on_term(SIGTERM, serve_stop_handler);
  const ScopedSignal on_int(SIGINT, serve_stop_handler);
  const ScopedSignal ignore_pipe(SIGPIPE, SIG_IGN);

  // Startup banner: which artifact is live. Written to stderr in stdio
  // mode, where stdout is the protocol stream.
  {
    const auto snapshot = server.model_snapshot();
    std::ostringstream banner;
    banner << "serve: model " << model_path << " version=" << snapshot.version
           << " checksum=" << snapshot.checksum << " epoch=" << server.epoch();
    if (socket_path.empty()) {
      // stdio mode: stdout is the protocol stream, the banner goes aside.
      std::fprintf(stderr, "%s\n", banner.str().c_str());
    } else {
      out << banner.str() << std::endl;
    }
  }

  // SIGHUP poller: hot reload without interrupting traffic. The blocked
  // signal is reaped synchronously (sigtimedwait doubles as the poll
  // sleep), so reload latency is bounded by the timeout rather than by
  // async-handler delivery. Outcome notices go to stderr (operators watch
  // stderr; protocol stdout stays clean). A failed reload keeps the old
  // model serving.
  std::atomic<bool> poller_stop{false};
  std::thread reload_poller([&server, &poller_stop] {
    sigset_t hup;
    sigemptyset(&hup);
    sigaddset(&hup, SIGHUP);
    const timespec tick{0, 20 * 1000 * 1000};
    while (!poller_stop.load(std::memory_order_acquire)) {
      if (sigtimedwait(&hup, nullptr, &tick) != SIGHUP) continue;
      try {
        const std::uint64_t epoch = server.reload();
        const auto snapshot = server.model_snapshot();
        std::fprintf(stderr,
                     "serve: reloaded epoch=%llu version=%s checksum=%s\n",
                     static_cast<unsigned long long>(epoch),
                     snapshot.version.c_str(), snapshot.checksum.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "serve: reload failed: %s\n", e.what());
      }
    }
  });
  struct PollerJoin {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~PollerJoin() {
      stop.store(true, std::memory_order_release);
      if (thread.joinable()) thread.join();
    }
  } poller_join{poller_stop, reload_poller};

  if (socket_path.empty()) {
    serve_connection(server, STDIN_FILENO, STDOUT_FILENO);
  } else {
    const int listen_fd = util::listen_unix(socket_path);
    out << "serve: listening on " << socket_path << " (max-conns "
        << max_conns << ", max-queue " << max_queue << ")" << std::endl;
    SessionSet sessions;
    std::shared_ptr<std::atomic<int>> active =
        std::make_shared<std::atomic<int>>(0);
    std::uint64_t conn_counter = 0;
    try {
      for (;;) {
        const int fd = util::accept_unix(listen_fd, &g_serve_stop);
        if (fd < 0) break;  // stop flag: SIGTERM/SIGINT or shutdown verb
        const std::uint64_t conn_id = ++conn_counter;
        try {
          util::FaultInjector::global().inject(util::FaultSite::kAccept,
                                               conn_id);
        } catch (const util::FaultError&) {
          ::close(fd);  // injected accept fault: drop the fresh connection
          continue;
        }
        if (active->load(std::memory_order_acquire) >= max_conns) {
          // Connection-capacity shed: one structured line, then hang up —
          // the client knows it was refused, not ignored.
          util::LineChannel refuse(fd);
          try {
            refuse.write_all("err - busy (connection capacity)\n");
          } catch (const std::exception&) {
          }
          ::close(fd);
          continue;
        }
        active->fetch_add(1, std::memory_order_acq_rel);
        sessions.launch([&server, fd, conn_id, limits, active] {
          serve_session(server, fd, conn_id, limits);
          ::close(fd);
          active->fetch_sub(1, std::memory_order_acq_rel);
        });
      }
      sessions.join_all();
      server.drain();
    } catch (...) {
      g_serve_stop.store(true);
      sessions.join_all();
      ::close(listen_fd);
      ::unlink(socket_path.c_str());
      throw;
    }
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
  }

  if (timing) {
    const auto counters = server.counters_snapshot();
    out << "serve: served=" << counters.served
        << " errors=" << counters.errors
        << " memo_hits=" << counters.memo_hits
        << " batches=" << counters.batches
        << " shed_busy=" << counters.shed_busy
        << " shed_deadline=" << counters.shed_deadline
        << " p50_us=" << counters.p50_us
        << " p99_us=" << counters.p99_us
        << " qps=" << util::format_double(counters.qps, 1)
        << " epoch=" << counters.epoch << '\n'
        << util::timing_report();
  }
  return 0;
}

int cmd_codegen(const CommandLine& cmd, std::ostream& out) {
  const auto pattern = shape_from_options(cmd);
  const auto problem = gpusim::ProblemSize::paper_default(pattern.dims());

  gpusim::OptCombination oc;
  const std::string oc_name = cmd.get("oc", "ST");
  bool found = false;
  for (const auto& candidate : gpusim::valid_combinations()) {
    if (candidate.name() == oc_name) {
      oc = candidate;
      found = true;
      break;
    }
  }
  if (!found) throw std::invalid_argument("unknown --oc '" + oc_name + "'");

  const gpusim::ParamSpace space(oc, pattern.dims());
  util::Rng rng(cmd.get_u64("seed", 5));
  const auto setting = space.random_setting(rng);
  const codegen::CudaKernelGenerator generator;
  const auto kernel = generator.generate(pattern, oc, setting, problem);
  out << kernel.source;
  return 0;
}

int cmd_features(const CommandLine& cmd, std::ostream& out) {
  const auto pattern = shape_from_options(cmd);
  constexpr int kMaxOrder = 4;
  const auto features = stencil::extract_features(pattern, kMaxOrder);
  const auto names = stencil::FeatureSet::names(kMaxOrder);
  const auto values = features.to_vector();
  util::Table table({"feature", "value"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.row().add(names[i]).add(values[i], 4);
  }
  table.print(out);
  return 0;
}

}  // namespace

std::string CommandLine::get(const std::string& key,
                             const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

int CommandLine::get_int(const std::string& key, int fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  long long value = 0;
  if (!util::parse_i64_strict(it->second, value) ||
      value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("option --" + key + ": invalid integer '" +
                                it->second + "'");
  }
  return static_cast<int>(value);
}

std::uint64_t CommandLine::get_u64(const std::string& key,
                                   std::uint64_t fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  std::uint64_t value = 0;
  if (!util::parse_u64_strict(it->second, value)) {
    throw std::invalid_argument("option --" + key +
                                ": invalid unsigned integer '" + it->second +
                                "'");
  }
  return value;
}

/// Options that may appear without a value (`--resume` ≡ `--resume 1`).
/// Everything else still requires an explicit value so a forgotten argument
/// (`--out --timing 1`) stays a parse error instead of silently eating the
/// next option.
bool is_boolean_flag(const std::string& key) {
  return key == "resume" || key == "checksum" || key == "timing" ||
         key == "stdio" || key == "plan";
}

CommandLine parse_command_line(const std::vector<std::string>& args) {
  CommandLine cmd;
  if (args.empty()) return cmd;
  if (args[0].starts_with("--")) {
    throw std::invalid_argument("expected a subcommand before options");
  }
  cmd.command = args[0];
  // Only merge takes positional operands (its shard files); everywhere else
  // a bare token is a typo and must stay a loud parse error.
  const bool allow_positional = cmd.command == "merge";
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (!args[i].starts_with("--")) {
      if (allow_positional) {
        cmd.positional.push_back(args[i]);
        continue;
      }
      throw std::invalid_argument("unexpected token '" + args[i] + "'");
    }
    const std::string key = args[i].substr(2);
    if (i + 1 >= args.size() || args[i + 1].starts_with("--")) {
      if (is_boolean_flag(key)) {
        cmd.options[key] = "1";
        continue;
      }
      throw std::invalid_argument("option --" + key + " needs a value");
    }
    cmd.options[key] = args[++i];
  }
  return cmd;
}

std::string usage() {
  return
      "smartctl — StencilMART command line\n"
      "  (SMART_THREADS caps the task pool; SMART_TIMING=1 prints counters;\n"
      "   SMART_SIMD=0 scalar inference; SMART_PRECISION=f32 relaxed FP)\n"
      "  generate --dims D --order N --count K [--seed S]   random stencils\n"
      "  profile  --dims D --stencils N [--out FILE]        build a corpus\n"
      "           [--checksum] [--timing]                   determinism digest\n"
      "           [--journal FILE [--resume]]               checkpoint + resume\n"
      "           [--retries N] [--faults SPEC]             fault injection\n"
      "           (SPEC: seed=N;measure:transient:p=P[:fails=K];\n"
      "                  measure:permanent:p=P;worker:p=P[:fails=K];io:p=P)\n"
      "           [--shard i/N [--plan]]                     sweep shard i of N\n"
      "                                                      (--plan: counts only)\n"
      "  merge    --out FILE SHARD... [--checksum] [--timing]\n"
      "           fold N shard corpora into the bit-identical single-run corpus\n"
      "  train    --out MODEL [--corpus FILE] [--timing 1]  fit + save a model\n"
      "  advise   --shape star|box|cross --dims D --order N\n"
      "           [--gpu NAME] [--corpus FILE] [--timing 1] best-OC advice\n"
      "           [--model MODEL] [--precision f64|f32]     serve a saved model\n"
      "  serve    --model MODEL [--socket PATH | --stdio]   resident daemon\n"
      "           [--max-batch N] [--max-wait-us U] [--timing]\n"
      "           [--max-conns N] [--max-queue N]            concurrency + shedding\n"
      "           [--deadline-us U] [--max-inflight N]\n"
      "           [--idle-timeout-ms T] [--write-timeout-ms T]\n"
      "           [--faults SPEC]                            accept/read/write chaos\n"
      "           [--precision f64|f32] [--simd 0|1]         f32 = relaxed-FP inference\n"
      "           (line protocol: advise|predict|stats|ping|healthz|reload|shutdown;\n"
      "            batches concurrent requests, memoizes per stencil;\n"
      "            SIGHUP or `reload` hot-swaps the --model artifact)\n"
      "  codegen  --shape ... --dims D --order N --oc NAME  emit CUDA\n"
      "  features --shape ... --dims D --order N            Table II vector\n"
      "  ocs                                                Table I OCs\n"
      "  gpus                                               Table III GPUs\n";
}

int run_command(const CommandLine& cmd, std::ostream& out) {
  if (cmd.command == "generate") return cmd_generate(cmd, out);
  if (cmd.command == "profile") return cmd_profile(cmd, out);
  if (cmd.command == "merge") return cmd_merge(cmd, out);
  if (cmd.command == "ocs") return cmd_ocs(out);
  if (cmd.command == "gpus") return cmd_gpus(out);
  if (cmd.command == "train") return cmd_train(cmd, out);
  if (cmd.command == "advise") return cmd_advise(cmd, out);
  if (cmd.command == "serve") return cmd_serve(cmd, out);
  if (cmd.command == "codegen") return cmd_codegen(cmd, out);
  if (cmd.command == "features") return cmd_features(cmd, out);
  out << usage();
  return cmd.command.empty() || cmd.command == "help" ? 0 : 2;
}

}  // namespace smart::cli
