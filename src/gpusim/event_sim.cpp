#include "gpusim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "gpusim/occupancy.hpp"
#include "util/rng.hpp"

namespace smart::gpusim {

namespace {

/// One resident block's state under DRAM processor sharing.
struct ResidentBlock {
  double mem_remaining = 0.0;  // bytes still to move
  double compute_until = 0.0;  // absolute time the compute pipe is done
};

}  // namespace

EventSimResult BlockLevelSimulator::run(const stencil::StencilPattern& pattern,
                                        const ProblemSize& problem,
                                        const OptCombination& oc,
                                        const ParamSetting& setting,
                                        const GpuSpec& gpu) const {
  EventSimResult result;

  // Reuse the analytic model for the per-kernel aggregates and the crash
  // rules; the event simulation re-executes the schedule. Two-phase call so
  // cross-check sweeps over one variant family share the analysis cost
  // profile of the production profiler.
  const KernelAnalysis analysis = model_.analyze(pattern, problem, oc, gpu);
  const KernelProfile profile = model_.evaluate(analysis, setting);
  if (!profile.ok) {
    result.crash_reason = profile.crash_reason;
    return result;
  }

  const OccupancyResult occ = compute_occupancy(
      gpu, setting.threads_per_block(), profile.regs_per_thread,
      profile.smem_per_block_bytes);
  const long long total_blocks = profile.total_blocks;
  const long long slots =
      std::max<long long>(1, static_cast<long long>(occ.blocks_per_sm) * gpu.sms);
  result.blocks = total_blocks;
  result.waves = static_cast<int>((total_blocks + slots - 1) / slots);

  // Wave sampling: full waves are statistically identical, so simulating a
  // bounded number of them and extrapolating keeps the event loop O(1) in
  // the grid size. The partial tail wave is always simulated exactly.
  constexpr long long kMaxSimFullWaves = 6;
  const long long full_waves = total_blocks / slots;
  const long long tail_blocks = total_blocks % slots;
  const long long sim_full_waves = std::min(full_waves, kMaxSimFullWaves);
  const long long sim_blocks = sim_full_waves * slots + tail_blocks;
  const double wave_scale =
      sim_full_waves > 0
          ? static_cast<double>(full_waves) / static_cast<double>(sim_full_waves)
          : 1.0;

  // Per-block service demands, derived from the aggregates.
  const double mem_per_block =
      profile.dram_traffic_bytes / static_cast<double>(total_blocks);
  // Compute: the whole grid's pipe time at full machine utilization is
  // t_comp; with `slots` concurrent blocks a block's own pipe time is its
  // share of the machine for its fraction of the work.
  const double comp_per_block =
      profile.t_comp_ms * 1e-3 * static_cast<double>(slots) /
      static_cast<double>(total_blocks);
  const double sync_per_block =
      profile.t_sync_ms * 1e-3 / static_cast<double>(result.waves);

  // DRAM: total rate shared over resident blocks, but one block can only
  // consume what its threads' outstanding misses cover.
  const double bw_total = gpu.mem_bw_gbs * gpu.peak_bw_frac * 1e9;
  const double block_cap =
      static_cast<double>(setting.threads_per_block()) *
      gpu.bw_per_thread_gbs * 1e9;

  util::Rng rng(util::hash_combine(
      options_.seed, util::hash_combine(pattern.hash(), setting.hash())));

  // Event loop over block completions. Resident blocks advance their
  // memory demand at the shared rate; a block retires when both its memory
  // and its compute+sync phases are done.
  std::vector<ResidentBlock> resident;
  resident.reserve(static_cast<std::size_t>(slots));
  long long launched = 0;
  long long retired = 0;
  double now = 0.0;
  double resident_time_integral = 0.0;

  auto admit = [&](double at) {
    while (launched < sim_blocks &&
           static_cast<long long>(resident.size()) < slots) {
      const double jitter =
          std::exp(options_.block_noise_sigma * rng.normal());
      ResidentBlock block;
      block.mem_remaining = mem_per_block * jitter;
      block.compute_until = at + (comp_per_block + sync_per_block) * jitter;
      resident.push_back(block);
      ++launched;
    }
  };

  admit(now);
  double full_wave_end = 0.0;  // time when the sampled full waves drained
  while (retired < sim_blocks) {
    // Current shared DRAM rate per resident block.
    const double n = static_cast<double>(resident.size());
    const double rate = std::min(block_cap, bw_total / std::max(1.0, n));

    // Next completion: the earliest of each block's finish estimate.
    double next = std::numeric_limits<double>::infinity();
    std::size_t winner = 0;
    for (std::size_t i = 0; i < resident.size(); ++i) {
      const double mem_done = now + resident[i].mem_remaining / rate;
      const double done = std::max(mem_done, resident[i].compute_until);
      if (done < next) {
        next = done;
        winner = i;
      }
    }

    // Advance every other block's memory progress to `next`.
    const double dt = next - now;
    resident_time_integral += n * dt;
    for (std::size_t i = 0; i < resident.size(); ++i) {
      if (i == winner) continue;
      resident[i].mem_remaining =
          std::max(0.0, resident[i].mem_remaining - rate * dt);
    }
    resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(winner));
    ++retired;
    now = next;
    if (retired == sim_full_waves * slots) full_wave_end = now;
    admit(now);
  }

  // Extrapolate the unsampled full waves; the tail ran after the sampled
  // head, so its marginal time (now - full_wave_end) is added unscaled.
  const double head = sim_full_waves > 0 ? full_wave_end : 0.0;
  const double tail = now - head;
  const double total_time = head * wave_scale + tail;

  result.ok = true;
  result.time_ms = (total_time + gpu.launch_us * 1e-6) * 1e3;
  result.avg_resident = now > 0.0 ? resident_time_integral / now : 0.0;
  return result;
}

}  // namespace smart::gpusim
