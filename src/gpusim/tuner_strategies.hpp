// Alternative parameter-search strategies beyond plain random search.
//
// The paper's measurement protocol uses random sampling (Sec. IV-A), and
// cites two smarter tuners: Garvey's grouped exhaustive search and
// csTuner's statistics-assisted genetic algorithm [25]. This module
// implements comparable strategies on top of the same Simulator so the
// bench harness can contrast search quality vs measurement budget:
//  * ExhaustiveTuner    — sweeps the entire valid parameter space;
//  * GeneticTuner       — csTuner-style GA: tournament selection,
//                         per-field uniform crossover, resampling mutation,
//                         elitism, crash-aware fitness.
#pragma once

#include "gpusim/simulator.hpp"
#include "gpusim/tuner.hpp"

namespace smart::gpusim {

/// Evaluates every setting in ParamSpace::enumerate(). The budget is
/// implicit (the space size); samples_tried reports it.
class ExhaustiveTuner {
 public:
  explicit ExhaustiveTuner(const Simulator& sim) : sim_(&sim) {}

  TunedResult tune(const stencil::StencilPattern& pattern,
                   const ProblemSize& problem, const OptCombination& oc,
                   const GpuSpec& gpu) const;

 private:
  const Simulator* sim_;
};

struct GeneticConfig {
  int population = 12;
  int generations = 6;
  double crossover_prob = 0.7;
  double mutation_prob = 0.15;  // per field
  int tournament = 3;
  int elite = 2;
};

/// GA over parameter settings of one OC. The measurement budget is
/// population x generations (matching a random search of the same size for
/// fair comparison). Crashing settings get -inf fitness.
class GeneticTuner {
 public:
  GeneticTuner(const Simulator& sim, GeneticConfig config = GeneticConfig{})
      : sim_(&sim), config_(config) {}

  TunedResult tune(const stencil::StencilPattern& pattern,
                   const ProblemSize& problem, const OptCombination& oc,
                   const GpuSpec& gpu, util::Rng& rng) const;

  const GeneticConfig& config() const noexcept { return config_; }

 private:
  const Simulator* sim_;
  GeneticConfig config_;
};

}  // namespace smart::gpusim
