// Block-level discrete-event execution simulator.
//
// The analytic KernelCostModel aggregates a kernel into closed-form
// roofline terms; this module cross-checks it with an execution-driven
// model of the paper's Sec. II-A: a thread-block scheduler dispatches
// blocks to SM slots round-robin as they free up, resident blocks share
// DRAM bandwidth (processor sharing, capped per block by the
// memory-level-parallelism limit), each block additionally needs its
// compute-pipe time and its serial synchronization time, and per-block
// log-normal work variation models divergence between blocks. The result
// exhibits wave quantization and tail effects the closed form ignores.
//
// Used by tests (the two models must agree in ranking and within a small
// factor in magnitude) and by the `bench_eventsim_crosscheck` bench.
#pragma once

#include "gpusim/cost_model.hpp"

namespace smart::gpusim {

struct EventSimResult {
  bool ok = false;
  std::string crash_reason;
  double time_ms = 0.0;
  long long blocks = 0;
  int waves = 0;              // ceil(blocks / concurrent slots)
  double avg_resident = 0.0;  // time-averaged resident block count
};

struct EventSimOptions {
  double block_noise_sigma = 0.03;  // per-block log-normal work variation
  std::uint64_t seed = 0xb10c;
};

class BlockLevelSimulator {
 public:
  explicit BlockLevelSimulator(EventSimOptions options = EventSimOptions{},
                               CostConstants constants = CostConstants{})
      : options_(options), model_(constants) {}

  /// Simulates one sweep of the variant block by block. Crash conditions
  /// are inherited from the analytic model (same resource rules).
  EventSimResult run(const stencil::StencilPattern& pattern,
                     const ProblemSize& problem, const OptCombination& oc,
                     const ParamSetting& setting, const GpuSpec& gpu) const;

 private:
  EventSimOptions options_;
  KernelCostModel model_;
};

}  // namespace smart::gpusim
