#include "gpusim/opt.hpp"

#include <stdexcept>

namespace smart::gpusim {

std::string to_string(Opt opt) {
  switch (opt) {
    case Opt::kSt: return "ST";
    case Opt::kBm: return "BM";
    case Opt::kCm: return "CM";
    case Opt::kRt: return "RT";
    case Opt::kPr: return "PR";
    case Opt::kTb: return "TB";
  }
  return "?";
}

bool OptCombination::has(Opt opt) const noexcept {
  switch (opt) {
    case Opt::kSt: return st;
    case Opt::kBm: return bm;
    case Opt::kCm: return cm;
    case Opt::kRt: return rt;
    case Opt::kPr: return pr;
    case Opt::kTb: return tb;
  }
  return false;
}

std::uint8_t OptCombination::bits() const noexcept {
  std::uint8_t b = 0;
  if (st) b |= 1u << 0;
  if (bm) b |= 1u << 1;
  if (cm) b |= 1u << 2;
  if (rt) b |= 1u << 3;
  if (pr) b |= 1u << 4;
  if (tb) b |= 1u << 5;
  return b;
}

OptCombination OptCombination::from_bits(std::uint8_t bits) noexcept {
  OptCombination oc;
  oc.st = (bits & (1u << 0)) != 0;
  oc.bm = (bits & (1u << 1)) != 0;
  oc.cm = (bits & (1u << 2)) != 0;
  oc.rt = (bits & (1u << 3)) != 0;
  oc.pr = (bits & (1u << 4)) != 0;
  oc.tb = (bits & (1u << 5)) != 0;
  return oc;
}

std::string OptCombination::name() const {
  std::string out;
  auto append = [&out](bool enabled, const char* abbrev) {
    if (!enabled) return;
    if (!out.empty()) out += '_';
    out += abbrev;
  };
  append(st, "ST");
  append(bm, "BM");
  append(cm, "CM");
  append(rt, "RT");
  append(pr, "PR");
  append(tb, "TB");
  return out.empty() ? "BASE" : out;
}

const std::vector<OptCombination>& valid_combinations() {
  static const std::vector<OptCombination> all = [] {
    std::vector<OptCombination> v;
    for (std::uint8_t bits = 0; bits < (1u << kNumOpts); ++bits) {
      const OptCombination oc = OptCombination::from_bits(bits);
      if (oc.is_valid()) v.push_back(oc);
    }
    return v;
  }();
  return all;
}

int oc_index(const OptCombination& oc) {
  const auto& all = valid_combinations();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i] == oc) return static_cast<int>(i);
  }
  throw std::out_of_range("oc_index: invalid combination " + oc.name());
}

}  // namespace smart::gpusim
