// GPU hardware descriptions (paper Table III) plus the microarchitectural
// constants the analytic cost model needs. The Table III columns (memory,
// bandwidth, SMs, TFLOPS, rental price) are exactly the hardware features
// the paper feeds to its cross-architecture regression models (Sec. IV-E).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smart::gpusim {

struct GpuSpec {
  std::string name;        // e.g. "V100"
  std::string generation;  // e.g. "Volta"

  // --- Table III columns (also the regression-model hardware features) ---
  double mem_gb = 0.0;        // device memory capacity
  double mem_bw_gbs = 0.0;    // peak DRAM bandwidth, GB/s
  int sms = 0;                // number of streaming multiprocessors
  double fp64_tflops = 0.0;   // peak double-precision TFLOPS
  double rental_usd_hr = 0.0; // Google Cloud us-central1, Oct 2021; 0 = n/a

  // --- Microarchitectural constants (vendor whitepapers) ---
  double l2_mb = 0.0;             // L2 cache capacity
  double smem_per_sm_kb = 0.0;    // shared memory per SM
  double smem_per_block_kb = 0.0; // max shared memory per thread block
  int regs_per_sm = 65536;        // 32-bit registers per SM
  int max_threads_per_sm = 2048;  // resident-thread limit per SM
  int max_blocks_per_sm = 32;     // resident-block limit per SM
  double clock_ghz = 0.0;         // sustained SM clock
  // Aggregate non-FP64 issue throughput (INT32 address arithmetic, control,
  // FP32) in TOPS — the pipe that per-point loop overhead runs on.
  double alu_tops = 0.0;

  // --- Calibrated model parameters ---
  // Fraction of peak FP64 sustained on stencil FMA/accumulate chains
  // (register dependencies and issue limits keep it below 1.0; Ampere's
  // FP64 pipe sustains a lower fraction on accumulation-heavy kernels).
  double sustained_fp64_frac = 0.9;
  // Fraction of peak DRAM bandwidth achievable at full occupancy.
  double peak_bw_frac = 0.92;
  // Achievable DRAM bandwidth per resident thread (GB/s): the
  // latency/MLP-limited regime below the saturation knee. Derived from
  // load latency and per-thread outstanding misses; roughly comparable
  // across architectures, so low-occupancy kernels run at similar speed
  // everywhere while peak bandwidth only matters near full occupancy.
  double bw_per_thread_gbs = 0.0075;
  // Average DRAM load latency in ns (reported for diagnostics).
  double dram_latency_ns = 450.0;
  // Cost of one block-wide __syncthreads() + shared-memory shift, in SM
  // cycles (converted via clock_ghz); streaming kernels pay this per plane.
  double sync_cycles = 180.0;
  // Fixed kernel-launch overhead in microseconds.
  double launch_us = 4.0;

  /// Hardware feature vector for the regression models: memory capacity,
  /// bandwidth, #SMs, peak TFLOPS (paper Sec. IV-E), plus rental price 0.
  std::vector<double> feature_vector() const;

  /// Stable hash for measurement-noise seeding.
  std::uint64_t hash() const noexcept;
};

/// The four evaluation GPUs (paper Table III): P100, V100, 2080 Ti, A100.
const std::vector<GpuSpec>& evaluation_gpus();

/// Lookup by name; throws std::out_of_range for unknown names.
const GpuSpec& gpu_by_name(const std::string& name);

}  // namespace smart::gpusim
