// SM occupancy calculation: how many blocks of a kernel can be resident on
// one SM given its register, shared-memory, thread-slot and block-slot
// limits. Mirrors the CUDA occupancy calculator at the granularity the cost
// model needs.
#pragma once

#include "gpusim/gpu_spec.hpp"

namespace smart::gpusim {

struct OccupancyResult {
  int blocks_per_sm = 0;       // resident blocks per SM (0 = unlaunchable)
  int threads_per_sm = 0;      // resident threads per SM
  double occupancy = 0.0;      // threads_per_sm / max_threads_per_sm
  const char* limiter = "";    // which resource capped the block count
};

/// regs_per_thread is the (possibly fractional) model estimate; it is
/// rounded up. smem_per_block_bytes == 0 means no shared memory is used.
OccupancyResult compute_occupancy(const GpuSpec& gpu, int threads_per_block,
                                  double regs_per_thread,
                                  double smem_per_block_bytes);

}  // namespace smart::gpusim
