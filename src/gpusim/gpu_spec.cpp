#include "gpusim/gpu_spec.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace smart::gpusim {

std::vector<double> GpuSpec::feature_vector() const {
  return {mem_gb, mem_bw_gbs, static_cast<double>(sms), fp64_tflops};
}

std::uint64_t GpuSpec::hash() const noexcept {
  std::uint64_t h = 0xc0ffee;
  for (char c : name) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

const std::vector<GpuSpec>& evaluation_gpus() {
  static const std::vector<GpuSpec> gpus = [] {
    std::vector<GpuSpec> v;

    GpuSpec p100;
    p100.name = "P100";
    p100.generation = "Pascal";
    p100.mem_gb = 16.0;
    p100.mem_bw_gbs = 720.0;
    p100.sms = 56;
    p100.fp64_tflops = 5.3;
    p100.rental_usd_hr = 1.46;
    p100.l2_mb = 4.0;
    p100.smem_per_sm_kb = 64.0;
    p100.smem_per_block_kb = 48.0;
    p100.max_threads_per_sm = 2048;
    p100.max_blocks_per_sm = 32;
    p100.clock_ghz = 1.48;
    p100.alu_tops = 10.6;
    p100.sustained_fp64_frac = 0.78;
    p100.peak_bw_frac = 0.88;
    p100.bw_per_thread_gbs = 0.013;  // short queues on GP100 LSUs
    p100.dram_latency_ns = 540.0;
    p100.sync_cycles = 220.0;
    v.push_back(p100);

    GpuSpec v100;
    v100.name = "V100";
    v100.generation = "Volta";
    v100.mem_gb = 32.0;
    v100.mem_bw_gbs = 900.0;
    v100.sms = 80;
    v100.fp64_tflops = 7.8;
    v100.rental_usd_hr = 2.48;
    v100.l2_mb = 6.0;
    v100.smem_per_sm_kb = 96.0;
    v100.smem_per_block_kb = 96.0;
    v100.max_threads_per_sm = 2048;
    v100.max_blocks_per_sm = 32;
    v100.clock_ghz = 1.53;
    v100.alu_tops = 15.7;
    v100.sustained_fp64_frac = 0.95;
    v100.peak_bw_frac = 0.82;
    v100.bw_per_thread_gbs = 0.0078;
    v100.dram_latency_ns = 440.0;
    v100.sync_cycles = 160.0;
    v.push_back(v100);

    GpuSpec turing;
    turing.name = "2080Ti";
    turing.generation = "Turing";
    turing.mem_gb = 11.0;
    turing.mem_bw_gbs = 616.0;
    turing.sms = 68;
    turing.fp64_tflops = 0.41;   // 1/32 FP64 rate on consumer Turing
    turing.rental_usd_hr = 0.0;  // not offered by Google Cloud
    turing.l2_mb = 5.5;
    turing.smem_per_sm_kb = 64.0;
    turing.smem_per_block_kb = 64.0;
    turing.max_threads_per_sm = 1024;  // Turing halves the resident limit
    turing.max_blocks_per_sm = 16;
    turing.clock_ghz = 1.545;
    turing.alu_tops = 13.4;
    turing.sustained_fp64_frac = 0.95;
    turing.peak_bw_frac = 0.97;
    turing.bw_per_thread_gbs = 0.016;  // GDDR6: lowest load-to-use latency
    turing.dram_latency_ns = 480.0;
    turing.sync_cycles = 140.0;
    v.push_back(turing);

    GpuSpec a100;
    a100.name = "A100";
    a100.generation = "Ampere";
    a100.mem_gb = 40.0;
    a100.mem_bw_gbs = 1555.0;
    a100.sms = 108;
    a100.fp64_tflops = 9.7;
    a100.rental_usd_hr = 2.93;
    a100.l2_mb = 40.0;
    a100.smem_per_sm_kb = 164.0;
    a100.smem_per_block_kb = 163.0;
    a100.max_threads_per_sm = 2048;
    a100.max_blocks_per_sm = 32;
    a100.clock_ghz = 1.41;
    a100.alu_tops = 19.5;
    a100.sustained_fp64_frac = 0.70;  // accumulation chains under-fill FP64 pipe
    a100.peak_bw_frac = 0.66;  // HBM2e row-activation inefficiency on stencil strides
    a100.bw_per_thread_gbs = 0.0050;  // HBM2e: deepest queues, most MLP needed
    a100.dram_latency_ns = 470.0;
    a100.sync_cycles = 200.0;
    v.push_back(a100);

    return v;
  }();
  return gpus;
}

const GpuSpec& gpu_by_name(const std::string& name) {
  for (const GpuSpec& g : evaluation_gpus()) {
    if (g.name == name) return g;
  }
  throw std::out_of_range("gpu_by_name: unknown GPU " + name);
}

}  // namespace smart::gpusim
