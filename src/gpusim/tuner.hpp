// Random-search parameter tuning per OC — the measurement protocol of the
// paper's dataset collection (Sec. IV-A: "randomly searches the parameter
// settings under each OC and selects the shortest execution time").
#pragma once

#include <optional>
#include <vector>

#include "gpusim/simulator.hpp"

namespace smart::gpusim {

struct TunedResult {
  OptCombination oc;
  std::optional<ParamSetting> best_setting;  // empty if every sample crashed
  double best_time_ms = 0.0;
  int samples_tried = 0;
  int samples_crashed = 0;
  /// Every (setting, measured time) pair that ran successfully, in sample
  /// order — these become the regression-training instances.
  std::vector<std::pair<ParamSetting, double>> measurements;

  bool ok() const noexcept { return best_setting.has_value(); }
};

class RandomSearchTuner {
 public:
  RandomSearchTuner(const Simulator& sim, int samples_per_oc)
      : sim_(&sim), samples_per_oc_(samples_per_oc) {}

  /// Tunes one OC and keeps the fastest successful setting. When the OC's
  /// parameter space is no larger than `samples_per_oc`, the space is swept
  /// exhaustively in enumeration order (deterministic, no rng draws);
  /// otherwise `samples_per_oc` random settings are drawn (deduplicated).
  /// Either way the variant analysis is computed once and shared across
  /// every sample (two-phase cost model).
  TunedResult tune(const stencil::StencilPattern& pattern,
                   const ProblemSize& problem, const OptCombination& oc,
                   const GpuSpec& gpu, util::Rng& rng) const;

  /// Tunes every valid OC; results are in valid_combinations() order.
  std::vector<TunedResult> tune_all(const stencil::StencilPattern& pattern,
                                    const ProblemSize& problem,
                                    const GpuSpec& gpu, util::Rng& rng) const;

  /// Index (into valid_combinations()) of the best OC in `results`, or -1
  /// if every OC crashed on every sample.
  static int best_oc_index(const std::vector<TunedResult>& results);

 private:
  const Simulator* sim_;
  int samples_per_oc_;
};

}  // namespace smart::gpusim
