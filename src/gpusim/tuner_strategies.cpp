#include "gpusim/tuner_strategies.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::gpusim {

TunedResult ExhaustiveTuner::tune(const stencil::StencilPattern& pattern,
                                  const ProblemSize& problem,
                                  const OptCombination& oc,
                                  const GpuSpec& gpu) const {
  TunedResult result;
  result.oc = oc;
  const ParamSpace space(oc, pattern.dims());
  const std::vector<ParamSetting> all = space.enumerate();
  const util::PhaseTimer timer("tuner.exhaustive", all.size());
  // Measure in parallel (the simulator is a pure function of the variant),
  // then fold in enumeration order — identical to the serial sweep. The
  // analysis is shared read-only across every setting and thread.
  const KernelAnalysis analysis = sim_->analyze(pattern, problem, oc, gpu);
  std::vector<KernelProfile> profiles(all.size());
  util::parallel_for(all.size(), [&](std::size_t i) {
    profiles[i] = sim_->measure(analysis, all[i]);
  });
  for (std::size_t i = 0; i < all.size(); ++i) {
    ++result.samples_tried;
    if (!profiles[i].ok) {
      ++result.samples_crashed;
      continue;
    }
    result.measurements.emplace_back(all[i], profiles[i].time_ms);
    if (!result.best_setting || profiles[i].time_ms < result.best_time_ms) {
      result.best_setting = all[i];
      result.best_time_ms = profiles[i].time_ms;
    }
  }
  return result;
}

namespace {

/// Uniform per-field crossover between two valid settings; falls back to a
/// parent when the child violates the space's structural rules.
ParamSetting crossover(const ParamSetting& a, const ParamSetting& b,
                       const ParamSpace& space, util::Rng& rng) {
  ParamSetting child = a;
  if (rng.bernoulli(0.5)) child.block_x = b.block_x;
  if (rng.bernoulli(0.5)) child.block_y = b.block_y;
  if (rng.bernoulli(0.5)) {
    child.merge_factor = b.merge_factor;
    child.merge_dim = b.merge_dim;
  }
  if (rng.bernoulli(0.5)) child.unroll = b.unroll;
  if (rng.bernoulli(0.5)) {
    child.stream_tile = b.stream_tile;
    child.stream_dim = b.stream_dim;
  }
  if (rng.bernoulli(0.5)) child.use_smem = b.use_smem;
  if (rng.bernoulli(0.5)) child.tb_depth = b.tb_depth;
  return space.is_valid(child) ? child : (rng.bernoulli(0.5) ? a : b);
}

/// Mutation: with probability p per field, resample that field by drawing a
/// fresh valid setting and copying the field over (keeps validity simple).
ParamSetting mutate(const ParamSetting& s, const ParamSpace& space,
                    double prob, util::Rng& rng) {
  const ParamSetting fresh = space.random_setting(rng);
  ParamSetting out = s;
  if (rng.bernoulli(prob)) out.block_x = fresh.block_x;
  if (rng.bernoulli(prob)) out.block_y = fresh.block_y;
  if (rng.bernoulli(prob)) {
    out.merge_factor = fresh.merge_factor;
    out.merge_dim = fresh.merge_dim;
  }
  if (rng.bernoulli(prob)) out.unroll = fresh.unroll;
  if (rng.bernoulli(prob)) {
    out.stream_tile = fresh.stream_tile;
    out.stream_dim = fresh.stream_dim;
  }
  if (rng.bernoulli(prob)) out.use_smem = fresh.use_smem;
  if (rng.bernoulli(prob)) out.tb_depth = fresh.tb_depth;
  return space.is_valid(out) ? out : fresh;
}

}  // namespace

TunedResult GeneticTuner::tune(const stencil::StencilPattern& pattern,
                               const ProblemSize& problem,
                               const OptCombination& oc, const GpuSpec& gpu,
                               util::Rng& rng) const {
  TunedResult result;
  result.oc = oc;
  const ParamSpace space(oc, pattern.dims());
  const util::PhaseTimer timer(
      "tuner.genetic",
      static_cast<std::uint64_t>(config_.population) *
          static_cast<std::uint64_t>(config_.generations));

  struct Individual {
    ParamSetting setting;
    double time_ms = std::numeric_limits<double>::infinity();  // inf = crash
  };

  // Memoize fitness so re-evaluated individuals do not consume budget —
  // the same trick csTuner uses to keep the GA's measurement count low.
  // Each generation is evaluated as one batch: the simulator runs the
  // uncached settings in parallel, then the results fold into the cache in
  // batch order, so samples_tried / measurements / best are identical to a
  // one-at-a-time serial evaluation at any thread count.
  const KernelAnalysis analysis = sim_->analyze(pattern, problem, oc, gpu);
  std::unordered_map<std::uint64_t, double> cache;
  auto evaluate_batch = [&](const std::vector<ParamSetting>& batch) {
    std::vector<std::size_t> fresh;  // first occurrence of each new setting
    std::unordered_set<std::uint64_t> batch_seen;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (cache.count(batch[i].hash()) != 0) continue;
      if (batch_seen.insert(batch[i].hash()).second) fresh.push_back(i);
    }
    std::vector<KernelProfile> profiles(fresh.size());
    util::parallel_for(fresh.size(), [&](std::size_t j) {
      profiles[j] = sim_->measure(analysis, batch[fresh[j]]);
    });
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      const ParamSetting& s = batch[fresh[j]];
      ++result.samples_tried;
      if (!profiles[j].ok) {
        ++result.samples_crashed;
        cache[s.hash()] = std::numeric_limits<double>::infinity();
        continue;
      }
      cache[s.hash()] = profiles[j].time_ms;
      result.measurements.emplace_back(s, profiles[j].time_ms);
      if (!result.best_setting || profiles[j].time_ms < result.best_time_ms) {
        result.best_setting = s;
        result.best_time_ms = profiles[j].time_ms;
      }
    }
    std::vector<double> times(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      times[i] = cache.at(batch[i].hash());
    }
    return times;
  };

  std::vector<Individual> population(static_cast<std::size_t>(config_.population));
  {
    std::vector<ParamSetting> seeds;
    seeds.reserve(population.size());
    for (auto& ind : population) {
      ind.setting = space.random_setting(rng);
      seeds.push_back(ind.setting);
    }
    const std::vector<double> times = evaluate_batch(seeds);
    for (std::size_t i = 0; i < population.size(); ++i) {
      population[i].time_ms = times[i];
    }
  }

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int i = 0; i < config_.tournament; ++i) {
      const auto& candidate = population[static_cast<std::size_t>(
          rng.uniform_int(0, config_.population - 1))];
      if (best == nullptr || candidate.time_ms < best->time_ms) {
        best = &candidate;
      }
    }
    return *best;
  };

  for (int generation = 1; generation < config_.generations; ++generation) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.time_ms < b.time_ms;
              });
    std::vector<Individual> next(population.begin(),
                                 population.begin() + config_.elite);
    // Breeding consumes the shared rng sequentially (selection only reads
    // the previous generation's fitness, so deferring evaluation to the
    // batch below draws the exact same stream the serial loop drew).
    std::vector<ParamSetting> children;
    children.reserve(static_cast<std::size_t>(config_.population) - next.size());
    while (next.size() + children.size() <
           static_cast<std::size_t>(config_.population)) {
      ParamSetting child = rng.bernoulli(config_.crossover_prob)
                               ? crossover(tournament_pick().setting,
                                           tournament_pick().setting, space, rng)
                               : tournament_pick().setting;
      children.push_back(mutate(child, space, config_.mutation_prob, rng));
    }
    const std::vector<double> times = evaluate_batch(children);
    for (std::size_t i = 0; i < children.size(); ++i) {
      next.push_back({children[i], times[i]});
    }
    population = std::move(next);
  }
  return result;
}

}  // namespace smart::gpusim
