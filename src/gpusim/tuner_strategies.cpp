#include "gpusim/tuner_strategies.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace smart::gpusim {

TunedResult ExhaustiveTuner::tune(const stencil::StencilPattern& pattern,
                                  const ProblemSize& problem,
                                  const OptCombination& oc,
                                  const GpuSpec& gpu) const {
  TunedResult result;
  result.oc = oc;
  const ParamSpace space(oc, pattern.dims());
  for (const ParamSetting& s : space.enumerate()) {
    ++result.samples_tried;
    const KernelProfile prof = sim_->measure(pattern, problem, oc, s, gpu);
    if (!prof.ok) {
      ++result.samples_crashed;
      continue;
    }
    result.measurements.emplace_back(s, prof.time_ms);
    if (!result.best_setting || prof.time_ms < result.best_time_ms) {
      result.best_setting = s;
      result.best_time_ms = prof.time_ms;
    }
  }
  return result;
}

namespace {

/// Uniform per-field crossover between two valid settings; falls back to a
/// parent when the child violates the space's structural rules.
ParamSetting crossover(const ParamSetting& a, const ParamSetting& b,
                       const ParamSpace& space, util::Rng& rng) {
  ParamSetting child = a;
  if (rng.bernoulli(0.5)) child.block_x = b.block_x;
  if (rng.bernoulli(0.5)) child.block_y = b.block_y;
  if (rng.bernoulli(0.5)) {
    child.merge_factor = b.merge_factor;
    child.merge_dim = b.merge_dim;
  }
  if (rng.bernoulli(0.5)) child.unroll = b.unroll;
  if (rng.bernoulli(0.5)) {
    child.stream_tile = b.stream_tile;
    child.stream_dim = b.stream_dim;
  }
  if (rng.bernoulli(0.5)) child.use_smem = b.use_smem;
  if (rng.bernoulli(0.5)) child.tb_depth = b.tb_depth;
  return space.is_valid(child) ? child : (rng.bernoulli(0.5) ? a : b);
}

/// Mutation: with probability p per field, resample that field by drawing a
/// fresh valid setting and copying the field over (keeps validity simple).
ParamSetting mutate(const ParamSetting& s, const ParamSpace& space,
                    double prob, util::Rng& rng) {
  const ParamSetting fresh = space.random_setting(rng);
  ParamSetting out = s;
  if (rng.bernoulli(prob)) out.block_x = fresh.block_x;
  if (rng.bernoulli(prob)) out.block_y = fresh.block_y;
  if (rng.bernoulli(prob)) {
    out.merge_factor = fresh.merge_factor;
    out.merge_dim = fresh.merge_dim;
  }
  if (rng.bernoulli(prob)) out.unroll = fresh.unroll;
  if (rng.bernoulli(prob)) {
    out.stream_tile = fresh.stream_tile;
    out.stream_dim = fresh.stream_dim;
  }
  if (rng.bernoulli(prob)) out.use_smem = fresh.use_smem;
  if (rng.bernoulli(prob)) out.tb_depth = fresh.tb_depth;
  return space.is_valid(out) ? out : fresh;
}

}  // namespace

TunedResult GeneticTuner::tune(const stencil::StencilPattern& pattern,
                               const ProblemSize& problem,
                               const OptCombination& oc, const GpuSpec& gpu,
                               util::Rng& rng) const {
  TunedResult result;
  result.oc = oc;
  const ParamSpace space(oc, pattern.dims());

  struct Individual {
    ParamSetting setting;
    double time_ms = std::numeric_limits<double>::infinity();  // inf = crash
  };

  // Memoize fitness so re-evaluated individuals do not consume budget —
  // the same trick csTuner uses to keep the GA's measurement count low.
  std::unordered_map<std::uint64_t, double> cache;
  auto evaluate = [&](const ParamSetting& s) {
    const auto [it, inserted] = cache.try_emplace(s.hash(), 0.0);
    if (inserted) {
      ++result.samples_tried;
      const KernelProfile prof = sim_->measure(pattern, problem, oc, s, gpu);
      if (!prof.ok) {
        ++result.samples_crashed;
        it->second = std::numeric_limits<double>::infinity();
      } else {
        it->second = prof.time_ms;
        result.measurements.emplace_back(s, prof.time_ms);
        if (!result.best_setting || prof.time_ms < result.best_time_ms) {
          result.best_setting = s;
          result.best_time_ms = prof.time_ms;
        }
      }
    }
    return it->second;
  };

  std::vector<Individual> population(static_cast<std::size_t>(config_.population));
  for (auto& ind : population) {
    ind.setting = space.random_setting(rng);
    ind.time_ms = evaluate(ind.setting);
  }

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int i = 0; i < config_.tournament; ++i) {
      const auto& candidate = population[static_cast<std::size_t>(
          rng.uniform_int(0, config_.population - 1))];
      if (best == nullptr || candidate.time_ms < best->time_ms) {
        best = &candidate;
      }
    }
    return *best;
  };

  for (int generation = 1; generation < config_.generations; ++generation) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.time_ms < b.time_ms;
              });
    std::vector<Individual> next(population.begin(),
                                 population.begin() + config_.elite);
    while (static_cast<int>(next.size()) < config_.population) {
      ParamSetting child = rng.bernoulli(config_.crossover_prob)
                               ? crossover(tournament_pick().setting,
                                           tournament_pick().setting, space, rng)
                               : tournament_pick().setting;
      child = mutate(child, space, config_.mutation_prob, rng);
      next.push_back({child, evaluate(child)});
    }
    population = std::move(next);
  }
  return result;
}

}  // namespace smart::gpusim
