#include "gpusim/tuner.hpp"

#include <unordered_set>

#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::gpusim {

TunedResult RandomSearchTuner::tune(const stencil::StencilPattern& pattern,
                                    const ProblemSize& problem,
                                    const OptCombination& oc,
                                    const GpuSpec& gpu,
                                    util::Rng& rng) const {
  TunedResult result;
  result.oc = oc;
  const ParamSpace space(oc, pattern.dims());
  // One analysis for the whole search: the per-sample loop only pays the
  // setting-dependent arithmetic.
  const KernelAnalysis analysis = sim_->analyze(pattern, problem, oc, gpu);
  const auto try_setting = [&](const ParamSetting& s) {
    ++result.samples_tried;
    const KernelProfile prof = sim_->measure(analysis, s);
    if (!prof.ok) {
      ++result.samples_crashed;
      return;
    }
    result.measurements.emplace_back(s, prof.time_ms);
    if (!result.best_setting || prof.time_ms < result.best_time_ms) {
      result.best_setting = s;
      result.best_time_ms = prof.time_ms;
    }
  };

  if (samples_per_oc_ > 0 &&
      space.size() <= static_cast<std::size_t>(samples_per_oc_)) {
    // The sampling budget covers the whole space: random draws would burn
    // most of it on duplicates (and silently try fewer distinct settings),
    // so sweep the space exhaustively in enumeration order instead. No rng
    // draws are consumed on this path.
    for (const ParamSetting& s : space.enumerate()) try_setting(s);
    return result;
  }

  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < samples_per_oc_; ++i) {
    const ParamSetting s = space.random_setting(rng);
    if (!seen.insert(s.hash()).second) continue;  // duplicate draw
    try_setting(s);
  }
  return result;
}

std::vector<TunedResult> RandomSearchTuner::tune_all(
    const stencil::StencilPattern& pattern, const ProblemSize& problem,
    const GpuSpec& gpu, util::Rng& rng) const {
  const auto& ocs = valid_combinations();
  const util::PhaseTimer timer("tuner.tune_all", ocs.size());
  // One independent stream per OC (Rng::split) instead of one shared
  // sequential stream, so candidate evaluation parallelizes across OCs
  // while the result stays bit-identical for any thread count. Advancing
  // the caller's generator once keeps back-to-back tune_all calls on
  // distinct split families.
  rng();
  std::vector<TunedResult> out(ocs.size());
  util::parallel_for(ocs.size(), [&](std::size_t i) {
    util::Rng oc_rng = rng.split(i);
    out[i] = tune(pattern, problem, ocs[i], gpu, oc_rng);
  });
  return out;
}

int RandomSearchTuner::best_oc_index(const std::vector<TunedResult>& results) {
  int best = -1;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) continue;
    if (best < 0 || results[i].best_time_ms < results[static_cast<std::size_t>(best)].best_time_ms) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace smart::gpusim
