// Simulator: the "measurement" facade the rest of StencilMART profiles
// against. Wraps the deterministic KernelCostModel with reproducible
// multiplicative log-normal measurement noise, seeded from the identity of
// (stencil, OC, parameter setting, GPU) so that repeated runs of any
// experiment observe the same timings — like re-reading a results database.
#pragma once

#include "gpusim/cost_model.hpp"

namespace smart::gpusim {

class Simulator {
 public:
  struct Options {
    // Log-space std-dev of the per-measurement perturbation. This bundles
    // run-to-run measurement noise with deterministic per-variant
    // microarchitectural idiosyncrasies the analytic model does not
    // capture (bank conflicts, partition camping, DVFS residency); it is
    // seeded by the variant's identity, so re-measuring reproduces it.
    double noise_sigma = 0.04;
    std::uint64_t seed = 0x57e4c11;
    CostConstants constants{};
  };

  Simulator() : Simulator(Options{}) {}
  explicit Simulator(Options options)
      : opts_(options), model_(options.constants) {}

  /// Phase 1 of the measurement protocol: the cost model's
  /// setting-independent analysis plus the noise-seed prefix (seed ⊕
  /// pattern ⊕ OC), so repeated measure() calls re-hash only the setting.
  /// The analysis is read-only and safe to share across threads; it
  /// borrows the GpuSpec (keep it alive).
  KernelAnalysis analyze(const stencil::StencilPattern& pattern,
                         const ProblemSize& problem, const OptCombination& oc,
                         const GpuSpec& gpu) const;

  /// Phase 2: one "measured" run against a cached analysis — bit-identical
  /// to the one-shot overload below for the same variant. When fault
  /// injection is active (util/fault, SMART_FAULTS), this is the measure
  /// fault site: a faulty variant identity throws util::FaultError instead
  /// of measuring; `attempt` indexes the retry (transient faults pass once
  /// it reaches the rule's fail count). Fault checks are pure hashes —
  /// they consume no RNG state, so a retried measurement is bit-identical
  /// to a fault-free one.
  KernelProfile measure(const KernelAnalysis& analysis,
                        const ParamSetting& setting, int attempt = 0) const;

  /// One "measured" run: model time perturbed by deterministic noise.
  /// Crashing variants come back with ok == false and time 0.
  KernelProfile measure(const stencil::StencilPattern& pattern,
                        const ProblemSize& problem, const OptCombination& oc,
                        const ParamSetting& setting, const GpuSpec& gpu) const {
    return measure(analyze(pattern, problem, oc, gpu), setting);
  }

  /// Noise-free model evaluation (for tests and ablations).
  KernelProfile evaluate(const KernelAnalysis& analysis,
                         const ParamSetting& setting) const {
    return model_.evaluate(analysis, setting);
  }
  KernelProfile evaluate(const stencil::StencilPattern& pattern,
                         const ProblemSize& problem, const OptCombination& oc,
                         const ParamSetting& setting, const GpuSpec& gpu) const {
    return model_.evaluate(pattern, problem, oc, setting, gpu);
  }

  const Options& options() const noexcept { return opts_; }

 private:
  Options opts_;
  KernelCostModel model_;
};

}  // namespace smart::gpusim
