// Analytic GPU kernel cost model for stencil variants.
//
// This is the substitute for the paper's physical GPUs + CUDA kernels (see
// DESIGN.md "Substitutions"). Given a stencil pattern, a problem size, an
// optimization combination, a parameter setting, and a GPU spec, it
// estimates the execution time of one stencil sweep as
//
//     T = overlap(T_mem, T_compute) + T_sync + T_launch
//
// where
//  * T_mem models DRAM traffic (cold reads + cache-limited neighbour
//    redundancy + tile halos + spills) over occupancy-dependent sustained
//    bandwidth with a latency-bound floor,
//  * T_compute models FLOPs plus per-point instruction overhead over the
//    sustained FP64 rate, scaled by SM utilization,
//  * T_sync models the per-plane block barrier of streaming kernels (hidden
//    partially by prefetching),
//  * register and shared-memory pressure feed an occupancy model, and
//    exceeding hard limits makes the variant *crash* (paper Sec. III-A
//    observes such crashes, e.g. TB without ST on 3-D order-4 stencils).
//
// The model is deterministic; measurement noise is added by the Simulator.
#pragma once

#include <string>

#include "gpusim/gpu_spec.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/opt.hpp"
#include "gpusim/params.hpp"
#include "gpusim/problem.hpp"
#include "stencil/pattern.hpp"

namespace smart::gpusim {

struct KernelProfile {
  bool ok = false;
  std::string crash_reason;  // non-empty iff !ok

  double time_ms = 0.0;      // modelled execution time of one sweep

  // Diagnostics (also useful for tests and the examples' explain output).
  double regs_per_thread = 0.0;
  double smem_per_block_bytes = 0.0;
  double occupancy = 0.0;
  long long total_blocks = 0;
  double dram_traffic_bytes = 0.0;
  double flops = 0.0;
  double t_mem_ms = 0.0;
  double t_comp_ms = 0.0;
  double t_sync_ms = 0.0;
};

/// Setting-independent analysis of one (pattern, problem, OC, GPU) tuple:
/// everything KernelCostModel::evaluate needs that does not depend on the
/// parameter setting, computed once by analyze() and reused across the
/// whole per-setting sweep. This is the profiling hot-path contract: the
/// pattern walks (planes_along, hash) and the OC/GPU-derived coefficients
/// are paid once per (pattern, OC, GPU), never per sample.
///
/// An analysis borrows the GpuSpec it was built from (`gpu` pointer) and is
/// bound to the constants of the model that produced it; keep the spec
/// alive and evaluate through the same model.
struct KernelAnalysis {
  bool ok = false;            // false => every evaluate() reports the crash
  std::string crash_reason;   // set when !ok (invalid OC / dims mismatch)
  OptCombination oc;
  const GpuSpec* gpu = nullptr;

  // --- pattern/problem-derived ---------------------------------------
  int d = 0;
  double r = 0.0;             // stencil order
  double nnz = 0.0;           // accessed points
  double volume = 0.0;        // problem points
  bool merging = false;       // oc.bm || oc.cm
  bool periodic = false;
  double halo2 = 0.0;         // 2r
  double X = 0.0, Y = 0.0, Z = 0.0;
  double extent[3] = {};      // problem extent per axis
  double planes[3] = {};      // pattern.planes_along per axis (axes < d)
  double bytes_ideal = 0.0;   // volume * 8
  double regs_base = 0.0;     // base + per-dim registers
  double stream_regs[3] = {}; // ST plane-buffer registers per stream axis
  double prefetch_regs[3] = {};  // PR buffer registers per stream axis
  double kept_planes_st[3] = {}; // smem planes kept per stream axis (ST)
  double kept_planes_nost = 1.0; // smem planes kept without ST
  double extra_2d = 0.0;         // 2-D cached cross-row read redundancy
  double read_scale_3d = 1.0;    // 3-D uncached-plane read factor
  double fp64_per_point = 0.0;   // FP64 ops per point (RT applied)
  double overhead_ops = 0.0;     // INT/FP32 ops per point (periodic applied)

  // --- GPU-derived coefficients ---------------------------------------
  double smem_limit_bytes = 0.0;
  double sms_d = 0.0;            // double(gpu.sms)
  double peak_bw_gbs = 0.0;      // mem_bw_gbs * peak_bw_frac
  double bw_per_thread_gbs = 0.0;
  double fp64_rate = 0.0;        // fp64_tflops * 1e12 * sustained_fp64_frac
  double alu_rate = 0.0;         // alu_tops * 1e12
  double sync_cycles = 0.0;
  double clock_hz = 0.0;         // clock_ghz * 1e9
  double launch_s = 0.0;         // launch_us * 1e-6
  double per_sync_st = 0.0;      // streaming barrier cost (PR hide applied)

  // --- identity (lets the Simulator reseed noise without re-hashing) ---
  std::uint64_t pattern_hash = 0;
  std::uint64_t gpu_hash = 0;
  std::uint64_t noise_seed_prefix = 0;  // filled by Simulator::analyze
};

/// Tunable model constants (calibrated once; exposed for ablation benches).
struct CostConstants {
  double regs_base = 26.0;          // addressing + loop state
  double regs_per_dim = 1.5;
  double regs_stream_per_plane = 2.2;
  double retime_reg_scale = 0.45;   // RT homogenizes stream registers
  double retime_reg_overhead = 6.0;
  double prefetch_regs = 6.0;
  double merge_reg_growth = 0.27;   // per extra merged point
  double unroll_reg_growth = 0.08;
  double spill_threshold = 255.0;   // regs/thread before spilling
  double crash_regs = 440.0;        // beyond this the build fails
  double spill_bytes_per_reg = 4.0; // DRAM bytes per point per spilled reg

  double l2_row_reuse_extra = 0.15;   // 2-D cached cross-row redundancy
  double uncached_plane_cost = 0.85;  // 3-D re-read fraction per spilled plane
  double nosmem_halo_penalty = 1.6;   // halo via cache instead of smem
  double nosmem_traffic_scale = 1.08;
  double bm_coalesce_penalty = 0.35;  // per merged point along x
  double cm_traffic_scale = 1.02;
  double merge_reuse_gain = 0.04;     // per log2(merge) off the x axis

  double flops_per_point_factor = 2.0;  // one FMA pair per tap
  double instr_overhead_ops = 16.0;     // per point, amortized by merging
  double retime_compute_overhead = 0.05;
  double compute_sat_occupancy = 0.25;

  double periodic_wrap_ops = 6.0;    // extra index arithmetic per point
  double periodic_halo_scale = 1.04; // wrapped halo lines coalesce worse

  double prefetch_sync_hide = 0.30;  // fraction of sync cost left with PR
  double tb_sync_growth = 0.30;      // extra sync per fused step
  double mlp_loads_per_thread = 4.0; // in-flight loads (latency floor)
  double overlap_fraction = 0.35;    // min(Tmem,Tcomp) not hidden
};

class KernelCostModel {
 public:
  explicit KernelCostModel(CostConstants constants = {})
      : c_(constants) {}

  /// Phase 1: computes every setting-independent quantity of the variant
  /// family (pattern walks, OC validity, occupancy inputs, traffic and
  /// compute coefficients) once. The result is reusable across any number
  /// of evaluate() calls and across threads (it is read-only), and borrows
  /// the GpuSpec — keep it alive for the analysis' lifetime.
  KernelAnalysis analyze(const stencil::StencilPattern& pattern,
                         const ProblemSize& problem, const OptCombination& oc,
                         const GpuSpec& gpu) const;

  /// Phase 2: applies the per-setting arithmetic to a cached analysis.
  /// Bit-identical to the one-shot evaluate() below for the same inputs.
  KernelProfile evaluate(const KernelAnalysis& analysis,
                         const ParamSetting& setting) const;

  /// One-shot convenience: analyze + evaluate. Never throws for resource
  /// overflows — those are reported as crashes in the profile (exactly how
  /// a failed CUDA launch shows up to an autotuner).
  KernelProfile evaluate(const stencil::StencilPattern& pattern,
                         const ProblemSize& problem, const OptCombination& oc,
                         const ParamSetting& setting, const GpuSpec& gpu) const {
    return evaluate(analyze(pattern, problem, oc, gpu), setting);
  }

  const CostConstants& constants() const noexcept { return c_; }

 private:
  CostConstants c_;
};

}  // namespace smart::gpusim
