// Analytic GPU kernel cost model for stencil variants.
//
// This is the substitute for the paper's physical GPUs + CUDA kernels (see
// DESIGN.md "Substitutions"). Given a stencil pattern, a problem size, an
// optimization combination, a parameter setting, and a GPU spec, it
// estimates the execution time of one stencil sweep as
//
//     T = overlap(T_mem, T_compute) + T_sync + T_launch
//
// where
//  * T_mem models DRAM traffic (cold reads + cache-limited neighbour
//    redundancy + tile halos + spills) over occupancy-dependent sustained
//    bandwidth with a latency-bound floor,
//  * T_compute models FLOPs plus per-point instruction overhead over the
//    sustained FP64 rate, scaled by SM utilization,
//  * T_sync models the per-plane block barrier of streaming kernels (hidden
//    partially by prefetching),
//  * register and shared-memory pressure feed an occupancy model, and
//    exceeding hard limits makes the variant *crash* (paper Sec. III-A
//    observes such crashes, e.g. TB without ST on 3-D order-4 stencils).
//
// The model is deterministic; measurement noise is added by the Simulator.
#pragma once

#include <string>

#include "gpusim/gpu_spec.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/opt.hpp"
#include "gpusim/params.hpp"
#include "gpusim/problem.hpp"
#include "stencil/pattern.hpp"

namespace smart::gpusim {

struct KernelProfile {
  bool ok = false;
  std::string crash_reason;  // non-empty iff !ok

  double time_ms = 0.0;      // modelled execution time of one sweep

  // Diagnostics (also useful for tests and the examples' explain output).
  double regs_per_thread = 0.0;
  double smem_per_block_bytes = 0.0;
  double occupancy = 0.0;
  long long total_blocks = 0;
  double dram_traffic_bytes = 0.0;
  double flops = 0.0;
  double t_mem_ms = 0.0;
  double t_comp_ms = 0.0;
  double t_sync_ms = 0.0;
};

/// Tunable model constants (calibrated once; exposed for ablation benches).
struct CostConstants {
  double regs_base = 26.0;          // addressing + loop state
  double regs_per_dim = 1.5;
  double regs_stream_per_plane = 2.2;
  double retime_reg_scale = 0.45;   // RT homogenizes stream registers
  double retime_reg_overhead = 6.0;
  double prefetch_regs = 6.0;
  double merge_reg_growth = 0.27;   // per extra merged point
  double unroll_reg_growth = 0.08;
  double spill_threshold = 255.0;   // regs/thread before spilling
  double crash_regs = 440.0;        // beyond this the build fails
  double spill_bytes_per_reg = 4.0; // DRAM bytes per point per spilled reg

  double l2_row_reuse_extra = 0.15;   // 2-D cached cross-row redundancy
  double uncached_plane_cost = 0.85;  // 3-D re-read fraction per spilled plane
  double nosmem_halo_penalty = 1.6;   // halo via cache instead of smem
  double nosmem_traffic_scale = 1.08;
  double bm_coalesce_penalty = 0.35;  // per merged point along x
  double cm_traffic_scale = 1.02;
  double merge_reuse_gain = 0.04;     // per log2(merge) off the x axis

  double flops_per_point_factor = 2.0;  // one FMA pair per tap
  double instr_overhead_ops = 16.0;     // per point, amortized by merging
  double retime_compute_overhead = 0.05;
  double compute_sat_occupancy = 0.25;

  double periodic_wrap_ops = 6.0;    // extra index arithmetic per point
  double periodic_halo_scale = 1.04; // wrapped halo lines coalesce worse

  double prefetch_sync_hide = 0.30;  // fraction of sync cost left with PR
  double tb_sync_growth = 0.30;      // extra sync per fused step
  double mlp_loads_per_thread = 4.0; // in-flight loads (latency floor)
  double overlap_fraction = 0.35;    // min(Tmem,Tcomp) not hidden
};

class KernelCostModel {
 public:
  explicit KernelCostModel(CostConstants constants = {})
      : c_(constants) {}

  /// Evaluates one variant. Never throws for resource overflows — those are
  /// reported as crashes in the profile (exactly how a failed CUDA launch
  /// shows up to an autotuner).
  KernelProfile evaluate(const stencil::StencilPattern& pattern,
                         const ProblemSize& problem, const OptCombination& oc,
                         const ParamSetting& setting, const GpuSpec& gpu) const;

  const CostConstants& constants() const noexcept { return c_; }

 private:
  CostConstants c_;
};

}  // namespace smart::gpusim
