// Problem sizes for the profiled stencil sweeps. The paper fixes the input
// grids to 8192^2 (2-D) and 512^3 (3-D) and leaves grid-size-aware models
// to future work (Sec. V-A2); we default to the same shapes.
#pragma once

#include <cstdint>
#include <vector>

#include "stencil/boundary.hpp"

namespace smart::gpusim {

struct ProblemSize {
  int nx = 0;
  int ny = 0;
  int nz = 1;  // 1 for 2-D problems
  /// Boundary handling of the generated kernels (extension of the paper's
  /// future work; the paper's evaluation uses Dirichlet-zero).
  stencil::Boundary boundary = stencil::Boundary::kDirichletZero;

  int dims() const noexcept { return nz == 1 ? 2 : 3; }

  long long volume() const noexcept {
    return static_cast<long long>(nx) * ny * nz;
  }

  int extent(int axis) const noexcept {
    return axis == 0 ? nx : axis == 1 ? ny : nz;
  }

  /// The paper's evaluation grids: 8192^2 for 2-D, 512^3 for 3-D.
  static ProblemSize paper_default(int dims) {
    return dims == 2 ? ProblemSize{8192, 8192, 1} : ProblemSize{512, 512, 512};
  }

  /// Candidate grids for the grid-size-aware extension (sizes bracketing
  /// the paper defaults, all fitting the evaluation GPUs' memory).
  static std::vector<ProblemSize> size_candidates(int dims) {
    if (dims == 2) {
      return {ProblemSize{4096, 4096, 1}, ProblemSize{8192, 8192, 1},
              ProblemSize{16384, 16384, 1}};
    }
    return {ProblemSize{256, 256, 256}, ProblemSize{512, 512, 512},
            ProblemSize{768, 768, 768}};
  }

  /// Model-input features for the grid-size/boundary extension:
  /// log2 extents plus the boundary flag.
  std::vector<double> feature_vector() const;
};

}  // namespace smart::gpusim
