#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smart::gpusim {

namespace {

double ceil_div(double a, double b) { return std::ceil(a / b); }

}  // namespace

KernelAnalysis KernelCostModel::analyze(const stencil::StencilPattern& pattern,
                                        const ProblemSize& problem,
                                        const OptCombination& oc,
                                        const GpuSpec& gpu) const {
  KernelAnalysis a;
  a.oc = oc;
  a.gpu = &gpu;
  if (!oc.is_valid()) {
    a.crash_reason = "invalid optimization combination";
    return a;
  }
  const int d = pattern.dims();
  if (problem.dims() != d) {
    a.crash_reason = "problem/pattern dimensionality mismatch";
    return a;
  }
  a.ok = true;

  a.d = d;
  a.r = static_cast<double>(pattern.order());
  a.nnz = static_cast<double>(pattern.size());
  a.volume = static_cast<double>(problem.volume());
  a.merging = oc.bm || oc.cm;
  a.periodic = problem.boundary == stencil::Boundary::kPeriodic;
  a.halo2 = 2.0 * a.r;
  a.X = problem.nx;
  a.Y = problem.ny;
  a.Z = problem.nz;
  for (int axis = 0; axis < d; ++axis) {
    a.extent[axis] = static_cast<double>(problem.extent(axis));
    a.planes[axis] = static_cast<double>(pattern.planes_along(axis));
  }
  a.bytes_ideal = a.volume * 8.0;
  a.regs_base = c_.regs_base + c_.regs_per_dim * d;

  // Per-stream-axis register and shared-memory coefficients (the stream
  // axis is the only setting field the pattern walks depend on, and it has
  // at most two legal values — hoist both).
  for (int axis = 0; axis < d; ++axis) {
    double stream_regs = c_.regs_stream_per_plane * a.planes[axis];
    if (oc.rt) {
      stream_regs = stream_regs * c_.retime_reg_scale + c_.retime_reg_overhead;
    }
    a.stream_regs[axis] = stream_regs;
    a.prefetch_regs[axis] =
        c_.prefetch_regs + 1.2 * (a.nnz / std::max(1.0, a.planes[axis]));
    a.kept_planes_st[axis] =
        d == 3 ? (oc.rt ? 2.0 : std::min(2.0 * a.r + 1.0, a.planes[axis]))
               : 1.0;
  }
  a.kept_planes_nost =
      d == 3 ? std::min(2.0 * a.r + 1.0, a.planes[2]) : 1.0;

  // DRAM-read redundancy factors of the non-streamed paths (fully
  // determined by pattern geometry, problem extents and the L2 size).
  if (d == 2) {
    const double rows = a.planes[1];
    const double row_ws = rows * a.X * 8.0;
    a.extra_2d = row_ws <= gpu.l2_mb * 1024.0 * 1024.0
                     ? c_.l2_row_reuse_extra * (rows - 1.0)
                     : 0.5 * (rows - 1.0);
  } else {
    const double planes_z = a.planes[2];
    const double plane_bytes = a.X * a.Y * 8.0;
    const double l2_planes =
        std::max(1.0, std::floor(gpu.l2_mb * 1024.0 * 1024.0 / plane_bytes));
    const double uncached = std::max(0.0, planes_z - l2_planes);
    a.read_scale_3d = 1.0 + c_.uncached_plane_cost * uncached;
  }

  // Per-point op counts (the RT and periodic adjustments are OC/problem
  // level; only the TB redundancy factor remains per-setting).
  double fp64_per_point = c_.flops_per_point_factor * a.nnz;
  if (oc.rt) fp64_per_point *= 1.0 + c_.retime_compute_overhead;
  a.fp64_per_point = fp64_per_point;
  double overhead_ops = c_.instr_overhead_ops + 2.0 * a.nnz;
  if (a.periodic) overhead_ops += c_.periodic_wrap_ops;
  a.overhead_ops = overhead_ops;

  // GPU-derived coefficients, grouped exactly as the evaluate() arithmetic
  // consumes them so the per-setting expressions stay bit-identical.
  a.smem_limit_bytes = gpu.smem_per_block_kb * 1024.0;
  a.sms_d = static_cast<double>(gpu.sms);
  a.peak_bw_gbs = gpu.mem_bw_gbs * gpu.peak_bw_frac;
  a.bw_per_thread_gbs = gpu.bw_per_thread_gbs;
  a.fp64_rate = gpu.fp64_tflops * 1e12 * gpu.sustained_fp64_frac;
  a.alu_rate = gpu.alu_tops * 1e12;
  a.sync_cycles = gpu.sync_cycles;
  a.clock_hz = gpu.clock_ghz * 1e9;
  a.launch_s = gpu.launch_us * 1e-6;
  double per_sync = gpu.sync_cycles / a.clock_hz;
  if (oc.pr) per_sync *= c_.prefetch_sync_hide;
  a.per_sync_st = per_sync;

  a.pattern_hash = pattern.hash();
  a.gpu_hash = gpu.hash();
  return a;
}

KernelProfile KernelCostModel::evaluate(const KernelAnalysis& a,
                                        const ParamSetting& s) const {
  KernelProfile p;
  if (!a.ok) {
    p.crash_reason = a.crash_reason;
    return p;
  }
  const int d = a.d;
  const OptCombination& oc = a.oc;
  const double r = a.r;
  const double volume = a.volume;
  const bool merging = a.merging;
  const double m = static_cast<double>(s.merge_factor);
  const double t = static_cast<double>(s.tb_depth);
  const int stream_axis = oc.st ? s.stream_dim : -1;
  if (oc.st && (stream_axis < 0 || stream_axis >= d)) {
    throw std::invalid_argument("planes_along: bad axis");
  }

  // ----- Tile geometry -------------------------------------------------
  // mx/my/mz: thread-coarsening factors per axis from merging.
  const double mx = (merging && s.merge_dim == 0) ? m : 1.0;
  const double my = (merging && s.merge_dim == 1) ? m : 1.0;
  const double mz = (merging && s.merge_dim == 2) ? m : 1.0;
  const double tile_x = s.block_x * mx;
  // In a streaming kernel the y-threads cooperate on one plane row-set; in
  // a non-streaming 3-D kernel each thread covers one z (times merging).
  const double tile_y = s.block_y * my;

  // ----- Register pressure ---------------------------------------------
  double regs = a.regs_base;
  if (oc.st) {
    regs += a.stream_regs[stream_axis] + 4.0;
  }
  if (oc.pr) {
    // Prefetch buffers hold the next plane's contribution per thread.
    regs += a.prefetch_regs[stream_axis];
  }
  if (oc.tb) {
    // With streaming, TB keeps t partial time-planes flowing through the
    // pipeline; without it the temporal halo lives in registers/smem and
    // each thread is coarsened over the trapezoid's redundant cells.
    regs += oc.st ? 4.0 * t : 8.0 * t + 1.0 * (2.0 * r * t + 1.0);
  }
  if (merging) regs *= 1.0 + c_.merge_reg_growth * (m - 1.0);
  regs *= 1.0 + c_.unroll_reg_growth * (s.unroll - 1.0);
  p.regs_per_thread = regs;
  if (regs > c_.crash_regs) {
    p.crash_reason = "register pressure: " + std::to_string(static_cast<int>(regs)) +
                     " regs/thread exceeds the build limit";
    return p;
  }
  const double spilled_regs = std::max(0.0, regs - c_.spill_threshold);

  // ----- Shared memory ---------------------------------------------------
  double smem = 0.0;
  const double halo2 = a.halo2;
  if (oc.st && s.use_smem) {
    const double kept_planes = a.kept_planes_st[stream_axis];
    smem = (tile_x + halo2) * (tile_y + halo2) * 8.0 * kept_planes;
    if (oc.tb) smem *= t;
  } else if (!oc.st && s.use_smem) {
    smem = (tile_x + halo2) * (tile_y + halo2) * 8.0 * a.kept_planes_nost;
  }
  if (oc.tb && !oc.st) {
    // Without streaming, temporal blocking must keep the whole fused-time
    // working set of the tile resident: the tile plus a halo of r*t cells,
    // across 2*r*t+1 z-planes for 3-D stencils. This is what makes TB
    // infeasible for high-order 3-D stencils without ST (paper Sec. III-A).
    const double halo_t = 2.0 * r * t;
    const double planes_t = d == 3 ? 2.0 * r * t + 1.0 : 1.0;
    // x2: ping-pong buffers — the fused time loop reads step s-1 while
    // writing step s, so both versions of the tile must be resident.
    const double tb_smem =
        (tile_x + halo_t) * (tile_y + halo_t) * 16.0 * planes_t;
    smem = std::max(smem, tb_smem);
  }
  p.smem_per_block_bytes = smem;
  if (smem > a.smem_limit_bytes) {
    p.crash_reason = "shared memory: block needs " +
                     std::to_string(static_cast<long long>(smem / 1024.0)) +
                     " KB, limit is " +
                     std::to_string(static_cast<long long>(a.gpu->smem_per_block_kb)) +
                     " KB";
    return p;
  }

  // ----- Occupancy and device concurrency --------------------------------
  const OccupancyResult occ =
      compute_occupancy(*a.gpu, s.threads_per_block(), regs, smem);
  if (occ.blocks_per_sm == 0) {
    p.crash_reason = std::string("unlaunchable: zero occupancy (") +
                     occ.limiter + ")";
    return p;
  }
  p.occupancy = occ.occupancy;

  const double X = a.X;
  const double Y = a.Y;
  const double Z = a.Z;
  double blocks = 0.0;
  double stream_iters = 0.0;
  if (oc.st) {
    const double stream_extent = a.extent[stream_axis];
    const double tiles_stream =
        ceil_div(stream_extent, static_cast<double>(s.stream_tile));
    if (d == 2) {
      blocks = ceil_div(X, tile_x) * tiles_stream;
    } else {
      // Stream along z: xy tile; stream along y: xz tile (x stays coalesced).
      const double other = stream_axis == 2 ? Y : Z;
      blocks = ceil_div(X, tile_x) * ceil_div(other, tile_y) * tiles_stream;
    }
    stream_iters =
        ceil_div(std::min(static_cast<double>(s.stream_tile), stream_extent),
                 static_cast<double>(s.unroll));
  } else {
    if (d == 2) {
      blocks = ceil_div(X, tile_x) * ceil_div(Y, tile_y);
    } else {
      blocks = ceil_div(X, tile_x) * ceil_div(Y, tile_y) * ceil_div(Z, mz);
    }
  }
  p.total_blocks = static_cast<long long>(blocks);

  const double concurrent_blocks =
      std::min(blocks, static_cast<double>(occ.blocks_per_sm) * a.sms_d);
  const double resident_threads = concurrent_blocks * s.threads_per_block();
  const double sm_util = std::min(1.0, blocks / a.sms_d);
  const double waves =
      std::max(1.0, std::ceil(blocks / std::max(1.0, concurrent_blocks)));

  // ----- DRAM traffic ----------------------------------------------------
  const double bytes_ideal = a.bytes_ideal;
  double read = bytes_ideal;
  if (oc.st) {
    // Streaming reuses planes along the stream axis; the residual traffic
    // is tile halos (free via smem, costlier via cache) plus the re-read
    // of 2r halo planes at each stream-tile boundary.
    double halo_frac = halo2 / tile_x;
    if (d == 3) halo_frac += halo2 / tile_y;
    if (!s.use_smem) halo_frac *= c_.nosmem_halo_penalty;
    halo_frac += halo2 / static_cast<double>(s.stream_tile);
    read *= 1.0 + halo_frac;
    if (!s.use_smem) read *= c_.nosmem_traffic_scale;
  } else if (d == 2) {
    read *= 1.0 + a.extra_2d;
  } else {
    // 3-D without streaming: distinct z-planes are separate streams; only
    // as many planes as fit in L2 get reused across neighbouring threads.
    read *= a.read_scale_3d;
    if (s.use_smem) {
      // Spatial smem tiling recovers intra-tile reuse but pays tile halos.
      const double tiled = 1.0 + halo2 / tile_x + halo2 / tile_y;
      read = std::min(read, bytes_ideal * tiled);
    }
  }
  if (oc.bm && s.merge_dim == 0) {
    // Block merging along the contiguous dimension de-coalesces loads:
    // each merged point widens the per-thread stride (paper Sec. II-B2).
    read *= 1.0 + c_.bm_coalesce_penalty * (m - 1.0);
  } else if (oc.cm) {
    read *= c_.cm_traffic_scale;
  } else if (oc.bm) {
    read *= std::max(0.85, 1.0 - c_.merge_reuse_gain * std::log2(m));
  }

  double traffic = read + bytes_ideal;  // + one write per output point
  double redundant_compute = 0.0;
  if (oc.tb) {
    if (oc.st) {
      // Streamed TB: fused steps divide traffic; halo redundancy grows
      // only in the tiled dimensions, relative to the already-haloed tile.
      const double ext =
          ((tile_x + 2.0 * r * t) * (tile_y + 2.0 * r * t)) /
          ((tile_x + halo2) * (tile_y + halo2));
      traffic = traffic / t * ext;
      redundant_compute += 0.5 * (ext - 1.0) + 0.04 * t;
    } else {
      // TB without streaming: every fused step recomputes the full
      // trapezoid halo around the bare tile (no streaming pipeline to
      // amortize it), so redundancy is charged in full — this is why the
      // paper never observes TB/TB_BM/TB_CM as a best OC (Fig. 2).
      const double ext = ((tile_x + 2.0 * r * t) * (tile_y + 2.0 * r * t)) /
                         (tile_x * tile_y);
      traffic = traffic / t * ext;
      redundant_compute += 1.2 * (ext - 1.0) + 0.04 * t;
    }
  }
  traffic += volume * spilled_regs * c_.spill_bytes_per_reg * 2.0;
  if (a.periodic) {
    // Wrapped halo reads touch the opposite domain edge: extra uncoalesced
    // lines proportional to the boundary surface.
    traffic *= c_.periodic_halo_scale;
  }
  p.dram_traffic_bytes = traffic;

  // ----- Memory time -------------------------------------------------------
  // Below the saturation knee the achieved bandwidth is limited by
  // memory-level parallelism (resident threads x per-thread throughput);
  // at the knee it clips to the sustained fraction of peak. This is what
  // lets a desktop GPU match an HBM part on low-occupancy variants while
  // losing at full occupancy (paper Sec. III-D).
  const double bw =
      std::min(a.peak_bw_gbs, resident_threads * a.bw_per_thread_gbs) * 1e9;
  const double t_mem = traffic / bw;

  // ----- Compute time ------------------------------------------------------
  // FP64 arithmetic runs on the (possibly narrow) FP64 pipe; per-point loop
  // overhead (addressing, predicates) runs on the INT/FP32 pipes and only
  // binds when it exceeds the FP64 work — this is what keeps low-order
  // stencils competitive on consumer GPUs with 1/32 FP64 rate.
  double fp64_per_point = a.fp64_per_point;
  fp64_per_point *= 1.0 + redundant_compute;
  const double overhead_per_point = a.overhead_ops / (m * s.unroll);
  p.flops = volume * fp64_per_point;
  const double comp_eff =
      std::min(1.0, occ.occupancy / c_.compute_sat_occupancy) * sm_util;
  const double t_fp64 =
      volume * fp64_per_point / (a.fp64_rate * std::max(0.05, comp_eff));
  const double t_alu = volume * overhead_per_point /
                       (a.alu_rate * std::max(0.05, comp_eff));
  const double t_comp = std::max(t_fp64, t_alu);

  // ----- Synchronization ---------------------------------------------------
  double t_sync = 0.0;
  if (oc.st) {
    double iters = stream_iters;
    if (oc.tb) iters *= 1.0 + c_.tb_sync_growth * t;
    t_sync = iters * a.per_sync_st * waves;
  } else if (oc.tb) {
    // Unstreamed TB: load/compute/store barriers per fused step.
    t_sync = waves * 4.0 * t * a.sync_cycles / a.clock_hz;
  } else if (s.use_smem) {
    t_sync = waves * a.sync_cycles / a.clock_hz;
  }

  const double t_launch = a.launch_s / (oc.tb ? t : 1.0);
  const double t_core = std::max(t_mem, t_comp) +
                        c_.overlap_fraction * std::min(t_mem, t_comp);
  const double total = t_core + t_sync + t_launch;

  p.t_mem_ms = t_mem * 1e3;
  p.t_comp_ms = t_comp * 1e3;
  p.t_sync_ms = t_sync * 1e3;
  p.time_ms = total * 1e3;
  p.ok = true;
  return p;
}

}  // namespace smart::gpusim
