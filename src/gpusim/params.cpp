#include "gpusim/params.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace smart::gpusim {

namespace {

constexpr int kMinThreads = 128;
constexpr int kMaxThreads = 1024;

const std::vector<int> kBlockX{16, 32, 64, 128};
const std::vector<int> kBlockY{4, 8, 16, 32};
const std::vector<int> kMerge{2, 4, 8};
const std::vector<int> kUnroll{1, 2, 4};
const std::vector<int> kStreamTile{64, 128, 256, 512};
const std::vector<int> kTbDepth{2, 4};

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

double log2d(int x) { return std::log2(static_cast<double>(x)); }

bool contains(const std::vector<int>& xs, int v) {
  for (int x : xs) {
    if (x == v) return true;
  }
  return false;
}

}  // namespace

std::vector<double> ParamSetting::to_feature_vector() const {
  return {log2d(block_x),
          log2d(block_y),
          log2d(merge_factor),
          static_cast<double>(merge_dim + 1),
          log2d(unroll),
          std::log2(static_cast<double>(stream_tile) + 1.0),
          static_cast<double>(stream_dim + 1),
          use_smem ? 1.0 : 0.0,
          log2d(tb_depth)};
}

std::vector<std::string> ParamSetting::feature_names() {
  return {"log2_block_x",  "log2_block_y", "log2_merge", "merge_dim",
          "log2_unroll",   "log2_stream_tile", "stream_dim", "use_smem",
          "log2_tb_depth"};
}

std::uint64_t ParamSetting::hash() const noexcept {
  std::uint64_t h = 0xabcd;
  auto mix = [&h](long long v) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(v));
  };
  mix(block_x);
  mix(block_y);
  mix(merge_factor);
  mix(merge_dim);
  mix(unroll);
  mix(stream_tile);
  mix(stream_dim);
  mix(use_smem ? 1 : 0);
  mix(tb_depth);
  return h;
}

std::string ParamSetting::to_string() const {
  std::ostringstream os;
  os << "b" << block_x << "x" << block_y;
  if (merge_factor > 1) os << " m" << merge_factor << "@d" << merge_dim;
  if (unroll > 1) os << " u" << unroll;
  if (stream_tile > 0) os << " st" << stream_tile << "@d" << stream_dim;
  os << (use_smem ? " smem" : " nosmem");
  if (tb_depth > 1) os << " tb" << tb_depth;
  return os.str();
}

ParamSpace::ParamSpace(OptCombination oc, int dims) : oc_(oc), dims_(dims) {
  if (!oc_.is_valid()) throw std::invalid_argument("ParamSpace: invalid OC");
  if (dims_ < 2 || dims_ > 3) throw std::invalid_argument("ParamSpace: dims");
}

bool ParamSpace::is_valid(const ParamSetting& s) const {
  if (!contains(kBlockX, s.block_x) || !contains(kBlockY, s.block_y)) {
    return false;
  }
  const int threads = s.threads_per_block();
  if (threads < kMinThreads || threads > kMaxThreads) return false;
  if (!is_pow2(s.merge_factor) || !is_pow2(s.unroll) || !is_pow2(s.tb_depth)) {
    return false;
  }

  const bool merging = oc_.bm || oc_.cm;
  if (merging) {
    if (!contains(kMerge, s.merge_factor)) return false;
    if (s.merge_dim < 0 || s.merge_dim >= dims_) return false;
  } else {
    if (s.merge_factor != 1 || s.merge_dim != -1) return false;
  }

  if (oc_.st) {
    // 2-D streams along y; 3-D may stream along y or z.
    if (dims_ == 2 && s.stream_dim != 1) return false;
    if (dims_ == 3 && s.stream_dim != 1 && s.stream_dim != 2) return false;
    if (!contains(kStreamTile, s.stream_tile)) return false;
    if (!contains(kUnroll, s.unroll)) return false;
    if (merging && s.merge_dim == s.stream_dim) return false;
  } else {
    if (s.stream_dim != -1 || s.stream_tile != 0 || s.unroll != 1) {
      return false;
    }
  }

  if (oc_.tb) {
    if (!contains(kTbDepth, s.tb_depth)) return false;
  } else {
    if (s.tb_depth != 1) return false;
  }
  return true;
}

ParamSetting ParamSpace::random_setting(util::Rng& rng) const {
  const bool merging = oc_.bm || oc_.cm;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    ParamSetting s;
    s.block_x = rng.pick(kBlockX);
    s.block_y = rng.pick(kBlockY);
    s.use_smem = rng.bernoulli(0.5);
    if (merging) {
      s.merge_factor = rng.pick(kMerge);
      s.merge_dim = static_cast<int>(rng.uniform_int(0, dims_ - 1));
    }
    if (oc_.st) {
      s.stream_dim = dims_ == 2
                         ? 1
                         : static_cast<int>(rng.uniform_int(1, 2));
      s.stream_tile = rng.pick(kStreamTile);
      s.unroll = rng.pick(kUnroll);
    }
    if (oc_.tb) s.tb_depth = rng.pick(kTbDepth);
    // Fast-path acceptance: every field above is drawn from its valid list
    // (and untouched fields keep their neutral defaults), so of is_valid()'s
    // rules only the thread-count bound and the merge/stream axis clash can
    // actually fail. The rejection decisions — and therefore the rng
    // sequence — are identical to running the full check; corpus sampling
    // calls this tens of thousands of times per build.
    // tests/gpusim/params_test.cpp pins random draws against is_valid().
    const int threads = s.threads_per_block();
    if (threads >= kMinThreads && threads <= kMaxThreads &&
        !(merging && oc_.st && s.merge_dim == s.stream_dim)) {
      return s;
    }
  }
  throw std::runtime_error("ParamSpace::random_setting: no valid setting found");
}

std::size_t ParamSpace::size() const {
  // Mirrors is_valid(): the only cross-field constraints are the
  // thread-count bound on (block_x, block_y) and merge_dim != stream_dim
  // when merging and streaming combine. Everything else is a plain cross
  // product. tests/gpusim/params_test.cpp pins this against
  // enumerate().size() for every valid OC.
  std::size_t block_pairs = 0;
  for (int bx : kBlockX) {
    for (int by : kBlockY) {
      const int threads = bx * by;
      if (threads >= kMinThreads && threads <= kMaxThreads) ++block_pairs;
    }
  }
  const bool merging = oc_.bm || oc_.cm;
  std::size_t merge = 1;
  if (merging) {
    const std::size_t merge_axes =
        static_cast<std::size_t>(oc_.st ? dims_ - 1 : dims_);
    merge = kMerge.size() * merge_axes;
  }
  std::size_t stream = 1;
  if (oc_.st) {
    const std::size_t stream_axes = dims_ == 2 ? 1 : 2;
    stream = kStreamTile.size() * kUnroll.size() * stream_axes;
  }
  const std::size_t tb = oc_.tb ? kTbDepth.size() : 1;
  return block_pairs * merge * stream * tb * 2;  // x2: use_smem
}

std::vector<ParamSetting> ParamSpace::enumerate() const {
  const bool merging = oc_.bm || oc_.cm;
  const std::vector<int> merges = merging ? kMerge : std::vector<int>{1};
  std::vector<int> merge_dims;
  if (merging) {
    for (int d = 0; d < dims_; ++d) merge_dims.push_back(d);
  } else {
    merge_dims.push_back(-1);
  }
  const std::vector<int> unrolls = oc_.st ? kUnroll : std::vector<int>{1};
  const std::vector<int> tiles = oc_.st ? kStreamTile : std::vector<int>{0};
  std::vector<int> stream_dims;
  if (oc_.st) {
    stream_dims.push_back(1);
    if (dims_ == 3) stream_dims.push_back(2);
  } else {
    stream_dims.push_back(-1);
  }
  const std::vector<int> tbs = oc_.tb ? kTbDepth : std::vector<int>{1};

  std::vector<ParamSetting> out;
  for (int bx : kBlockX) {
    for (int by : kBlockY) {
      for (int m : merges) {
        for (int md : merge_dims) {
          for (int u : unrolls) {
            for (int tile : tiles) {
              for (int sd : stream_dims) {
                for (int tb : tbs) {
                  for (int smem = 0; smem < 2; ++smem) {
                    ParamSetting s;
                    s.block_x = bx;
                    s.block_y = by;
                    s.merge_factor = m;
                    s.merge_dim = md;
                    s.unroll = u;
                    s.stream_tile = tile;
                    s.stream_dim = sd;
                    s.use_smem = smem != 0;
                    s.tb_depth = tb;
                    if (is_valid(s)) out.push_back(s);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace smart::gpusim
