#include "gpusim/problem.hpp"

#include <cmath>

namespace smart::gpusim {

std::vector<double> ProblemSize::feature_vector() const {
  return {std::log2(static_cast<double>(nx)), std::log2(static_cast<double>(ny)),
          std::log2(static_cast<double>(nz)),
          boundary == stencil::Boundary::kPeriodic ? 1.0 : 0.0};
}

}  // namespace smart::gpusim
