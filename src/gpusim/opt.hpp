// Optimization combinations (paper Table I).
//
// Six stencil optimizations with validity constraints:
//   ST  streaming            (2.5-D spatial blocking over one dimension)
//   BM  block merging        (invalid together with CM)
//   CM  cyclic merging       (invalid together with BM)
//   RT  retiming             (valid only with ST)
//   PR  prefetching          (valid only with ST)
//   TB  temporal blocking
// Under these constraints there are exactly 30 valid combinations
// (merging in {none, BM, CM} x TB x [ST x RT x PR | no-ST]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smart::gpusim {

enum class Opt : std::uint8_t { kSt = 0, kBm, kCm, kRt, kPr, kTb };

inline constexpr int kNumOpts = 6;

std::string to_string(Opt opt);

struct OptCombination {
  bool st = false;
  bool bm = false;
  bool cm = false;
  bool rt = false;
  bool pr = false;
  bool tb = false;

  /// Checks the Table I constraints: !(bm && cm), rt => st, pr => st.
  bool is_valid() const noexcept {
    if (bm && cm) return false;
    if (rt && !st) return false;
    if (pr && !st) return false;
    return true;
  }

  bool has(Opt opt) const noexcept;

  /// Compact bitmask (bit i = optimization i enabled), stable across runs.
  std::uint8_t bits() const noexcept;
  static OptCombination from_bits(std::uint8_t bits) noexcept;

  /// "BASE" for the empty combination, else underscore-joined abbreviations
  /// in Table I order, e.g. "ST_RT_PR" or "TB_CM".
  std::string name() const;

  friend bool operator==(const OptCombination&, const OptCombination&) = default;
  friend auto operator<=>(const OptCombination&, const OptCombination&) = default;
};

/// All valid combinations in a deterministic order (sorted by bits()).
const std::vector<OptCombination>& valid_combinations();

/// Index of `oc` within valid_combinations(); throws std::out_of_range if
/// the combination is invalid.
int oc_index(const OptCombination& oc);

}  // namespace smart::gpusim
