// Per-OC tuning-parameter space (paper Sec. IV-E): numeric parameters are
// powers of two, Boolean parameters are {0,1}, enumeration parameters are
// numbered from 1. When converted to model features, numeric parameters are
// log2-scaled for training stability, exactly as the paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/opt.hpp"
#include "util/rng.hpp"

namespace smart::gpusim {

/// One concrete parameter setting. Fields not applicable under the OC hold
/// their neutral values (merge_factor 1, stream_tile 0, tb_depth 1, ...).
struct ParamSetting {
  int block_x = 32;     // threads along the contiguous dimension (pow2)
  int block_y = 8;      // threads along the second dimension (pow2)
  int merge_factor = 1; // points merged per thread (pow2; >1 iff BM or CM)
  int merge_dim = -1;   // 0-based axis of merging; -1 when not merging
  int unroll = 1;       // streaming-loop unroll factor (pow2; ST only)
  int stream_tile = 0;  // planes per block along the stream dim (ST only)
  int stream_dim = -1;  // 0-based streaming axis; -1 without ST
  bool use_smem = true; // stage tiles through shared memory
  int tb_depth = 1;     // fused time steps (>1 iff TB)

  int threads_per_block() const noexcept { return block_x * block_y; }

  /// Fixed-length feature layout shared by every OC (absent params stay at
  /// neutral values): [log2 bx, log2 by, log2 merge, merge_dim+1,
  /// log2 unroll, log2(stream_tile+1), stream_dim+1, use_smem, log2 tb].
  static constexpr int kNumFeatures = 9;
  std::vector<double> to_feature_vector() const;
  static std::vector<std::string> feature_names();

  std::uint64_t hash() const noexcept;
  std::string to_string() const;

  friend bool operator==(const ParamSetting&, const ParamSetting&) = default;
};

/// Generates valid settings for an OC on a d-dimensional problem.
class ParamSpace {
 public:
  ParamSpace(OptCombination oc, int dims);

  const OptCombination& oc() const noexcept { return oc_; }
  int dims() const noexcept { return dims_; }

  /// Uniformly samples one valid setting.
  ParamSetting random_setting(util::Rng& rng) const;

  /// Number of valid settings, i.e. enumerate().size(), computed in closed
  /// form without materializing the cross product (tuners use it to decide
  /// whether a sampling budget covers the whole space).
  std::size_t size() const;

  /// Enumerates the complete valid cross product (used by exhaustive tests
  /// and the motivation study; a few hundred to a few thousand settings).
  std::vector<ParamSetting> enumerate() const;

  /// True if `s` satisfies all structural rules for this OC/dims:
  /// pow2 fields, thread-count bounds, merge/stream axis exclusion, and
  /// neutral values for inapplicable parameters.
  bool is_valid(const ParamSetting& s) const;

 private:
  OptCombination oc_;
  int dims_;
};

}  // namespace smart::gpusim
