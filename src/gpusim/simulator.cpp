#include "gpusim/simulator.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace smart::gpusim {

KernelProfile Simulator::measure(const stencil::StencilPattern& pattern,
                                 const ProblemSize& problem,
                                 const OptCombination& oc,
                                 const ParamSetting& setting,
                                 const GpuSpec& gpu) const {
  KernelProfile p = model_.evaluate(pattern, problem, oc, setting, gpu);
  if (!p.ok) return p;
  std::uint64_t seed = opts_.seed;
  seed = util::hash_combine(seed, pattern.hash());
  seed = util::hash_combine(seed, oc.bits());
  seed = util::hash_combine(seed, setting.hash());
  seed = util::hash_combine(seed, gpu.hash());
  util::Rng rng(seed);
  p.time_ms *= std::exp(opts_.noise_sigma * rng.normal());
  return p;
}

}  // namespace smart::gpusim
