#include "gpusim/simulator.hpp"

#include <cmath>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace smart::gpusim {

KernelAnalysis Simulator::analyze(const stencil::StencilPattern& pattern,
                                  const ProblemSize& problem,
                                  const OptCombination& oc,
                                  const GpuSpec& gpu) const {
  KernelAnalysis a = model_.analyze(pattern, problem, oc, gpu);
  // Crashing analyses never reach the noise path, but fill the prefix
  // unconditionally: pattern_hash is only set for valid analyses, so hash
  // it here where the pattern is still in hand.
  std::uint64_t seed = util::hash_combine(opts_.seed, pattern.hash());
  a.noise_seed_prefix = util::hash_combine(seed, oc.bits());
  return a;
}

KernelProfile Simulator::measure(const KernelAnalysis& analysis,
                                 const ParamSetting& setting,
                                 int attempt) const {
  const util::FaultInjector& injector = util::FaultInjector::global();
  if (injector.enabled()) {
    // The variant's fault identity is the same triple that seeds its noise,
    // so the fault schedule is a pure function of (stencil, OC, setting,
    // GPU) — independent of thread count and of which process retries.
    std::uint64_t id =
        util::hash_combine(analysis.noise_seed_prefix, setting.hash());
    id = util::hash_combine(id, analysis.gpu_hash);
    injector.inject(util::FaultSite::kMeasure, id, attempt);
  }
  KernelProfile p = model_.evaluate(analysis, setting);
  if (!p.ok) return p;
  std::uint64_t seed = util::hash_combine(analysis.noise_seed_prefix,
                                          setting.hash());
  seed = util::hash_combine(seed, analysis.gpu_hash);
  util::Rng rng(seed);
  p.time_ms *= std::exp(opts_.noise_sigma * rng.normal());
  return p;
}

}  // namespace smart::gpusim
