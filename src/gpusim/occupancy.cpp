#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smart::gpusim {

OccupancyResult compute_occupancy(const GpuSpec& gpu, int threads_per_block,
                                  double regs_per_thread,
                                  double smem_per_block_bytes) {
  if (threads_per_block <= 0) {
    throw std::invalid_argument("compute_occupancy: threads_per_block <= 0");
  }
  OccupancyResult r;

  int limit = gpu.max_blocks_per_sm;
  r.limiter = "block-slots";

  const int by_threads = gpu.max_threads_per_sm / threads_per_block;
  if (by_threads < limit) {
    limit = by_threads;
    r.limiter = "thread-slots";
  }

  const int regs = std::max(1, static_cast<int>(std::ceil(regs_per_thread)));
  const long long regs_per_block =
      static_cast<long long>(regs) * threads_per_block;
  const int by_regs =
      static_cast<int>(static_cast<long long>(gpu.regs_per_sm) / regs_per_block);
  if (by_regs < limit) {
    limit = by_regs;
    r.limiter = "registers";
  }

  if (smem_per_block_bytes > 0.0) {
    const double smem_per_sm = gpu.smem_per_sm_kb * 1024.0;
    const int by_smem =
        static_cast<int>(std::floor(smem_per_sm / smem_per_block_bytes));
    if (by_smem < limit) {
      limit = by_smem;
      r.limiter = "shared-memory";
    }
  }

  r.blocks_per_sm = std::max(0, limit);
  r.threads_per_sm =
      std::min(r.blocks_per_sm * threads_per_block, gpu.max_threads_per_sm);
  r.occupancy = static_cast<double>(r.threads_per_sm) /
                static_cast<double>(gpu.max_threads_per_sm);
  return r;
}

}  // namespace smart::gpusim
