#include "stencil/point.hpp"

#include <sstream>

namespace smart::stencil {

std::string Point::to_string(int dims) const {
  std::ostringstream os;
  os << '(';
  for (int a = 0; a < dims; ++a) {
    if (a != 0) os << ',';
    os << static_cast<int>(coords[static_cast<std::size_t>(a)]);
  }
  os << ')';
  return os.str();
}

std::vector<Point> moore_neighbours(const Point& p, int dims) {
  std::vector<Point> out;
  out.reserve(dims == 2 ? 8 : 26);
  const int zlo = dims >= 3 ? -1 : 0;
  const int zhi = dims >= 3 ? 1 : 0;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = zlo; dz <= zhi; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        Point q;
        q.coords[0] = static_cast<std::int8_t>(p[0] + dx);
        q.coords[1] = static_cast<std::int8_t>(p[1] + dy);
        q.coords[2] = static_cast<std::int8_t>(p[2] + dz);
        out.push_back(q);
      }
    }
  }
  return out;
}

}  // namespace smart::stencil
