#include "stencil/pattern.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace smart::stencil {

std::string to_string(Shape shape) {
  switch (shape) {
    case Shape::kStar: return "star";
    case Shape::kBox: return "box";
    case Shape::kCross: return "cross";
    case Shape::kIrregular: return "irr";
  }
  return "?";
}

StencilPattern::StencilPattern(int dims, std::vector<Point> offsets)
    : dims_(dims), order_(0), offsets_(std::move(offsets)) {
  if (dims_ < 2 || dims_ > kMaxDims) {
    throw std::invalid_argument("StencilPattern: dims must be 2 or 3");
  }
  for (const Point& p : offsets_) {
    for (int a = dims_; a < kMaxDims; ++a) {
      if (p[a] != 0) {
        throw std::invalid_argument(
            "StencilPattern: offset uses axis beyond dims");
      }
    }
  }
  offsets_.push_back(Point{});  // ensure the centre is present
  std::sort(offsets_.begin(), offsets_.end());
  offsets_.erase(std::unique(offsets_.begin(), offsets_.end()),
                 offsets_.end());
  for (const Point& p : offsets_) order_ = std::max(order_, p.order());
}

bool StencilPattern::contains(const Point& p) const {
  return std::binary_search(offsets_.begin(), offsets_.end(), p);
}

std::vector<Point> StencilPattern::points_of_order(int n) const {
  std::vector<Point> out;
  for (const Point& p : offsets_) {
    if (p.order() == n) out.push_back(p);
  }
  return out;
}

int StencilPattern::count_of_order(int n) const {
  int count = 0;
  for (const Point& p : offsets_) {
    if (p.order() == n) ++count;
  }
  return count;
}

Shape StencilPattern::classify() const {
  if (order_ == 0) return Shape::kIrregular;  // degenerate: centre only
  bool all_axis = true;
  bool all_diag = true;
  for (const Point& p : offsets_) {
    if (p.is_centre()) continue;
    if (!p.on_axis()) all_axis = false;
    if (!p.on_diagonal(dims_)) all_diag = false;
  }
  // Star: every axis point up to the order along every axis.
  if (all_axis) {
    const int expected = 2 * dims_ * order_ + 1;
    if (size() == expected) return Shape::kStar;
    return Shape::kIrregular;
  }
  // Cross: every full-diagonal point up to the order.
  if (all_diag) {
    const int diag_dirs = dims_ == 2 ? 4 : 8;
    const int expected = diag_dirs * order_ + 1;
    if (size() == expected) return Shape::kCross;
    return Shape::kIrregular;
  }
  // Box: the complete Chebyshev ball of radius `order`.
  long long volume = 1;
  for (int a = 0; a < dims_; ++a) volume *= (2 * order_ + 1);
  if (static_cast<long long>(size()) == volume) return Shape::kBox;
  return Shape::kIrregular;
}

int StencilPattern::planes_along(int axis) const {
  if (axis < 0 || axis >= dims_) {
    throw std::invalid_argument("planes_along: bad axis");
  }
  bool seen[2 * 127 + 1] = {};
  int count = 0;
  for (const Point& p : offsets_) {
    const int idx = p[axis] + 127;
    if (!seen[idx]) {
      seen[idx] = true;
      ++count;
    }
  }
  return count;
}

std::uint64_t StencilPattern::hash() const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(dims_);
  for (const Point& p : offsets_) {
    std::uint64_t word = 0;
    for (int a = 0; a < kMaxDims; ++a) {
      word = (word << 8) |
             static_cast<std::uint8_t>(p.coords[static_cast<std::size_t>(a)]);
    }
    h = util::hash_combine(h, word);
  }
  return h;
}

std::string StencilPattern::name() const {
  const Shape shape = classify();
  std::ostringstream os;
  os << to_string(shape) << dims_ << 'd' << order_ << 'r';
  if (shape == Shape::kIrregular) os << size() << 'p';
  return os.str();
}

StencilPattern make_star(int dims, int radius) {
  std::vector<Point> pts;
  for (int a = 0; a < dims; ++a) {
    for (int r = 1; r <= radius; ++r) {
      Point plus;
      Point minus;
      plus.coords[static_cast<std::size_t>(a)] = static_cast<std::int8_t>(r);
      minus.coords[static_cast<std::size_t>(a)] = static_cast<std::int8_t>(-r);
      pts.push_back(plus);
      pts.push_back(minus);
    }
  }
  return StencilPattern(dims, std::move(pts));
}

StencilPattern make_box(int dims, int radius) {
  std::vector<Point> pts;
  const int zlo = dims >= 3 ? -radius : 0;
  const int zhi = dims >= 3 ? radius : 0;
  for (int x = -radius; x <= radius; ++x) {
    for (int y = -radius; y <= radius; ++y) {
      for (int z = zlo; z <= zhi; ++z) {
        pts.push_back(dims == 2 ? Point{x, y} : Point{x, y, z});
      }
    }
  }
  return StencilPattern(dims, std::move(pts));
}

StencilPattern make_cross(int dims, int radius) {
  std::vector<Point> pts;
  const int num_dirs = dims == 2 ? 4 : 8;
  for (int dir = 0; dir < num_dirs; ++dir) {
    const int sx = (dir & 1) != 0 ? 1 : -1;
    const int sy = (dir & 2) != 0 ? 1 : -1;
    const int sz = (dir & 4) != 0 ? 1 : -1;
    for (int r = 1; r <= radius; ++r) {
      pts.push_back(dims == 2 ? Point{sx * r, sy * r}
                              : Point{sx * r, sy * r, sz * r});
    }
  }
  return StencilPattern(dims, std::move(pts));
}

std::vector<StencilPattern> representative_gallery() {
  std::vector<StencilPattern> gallery;
  for (int dims : {2, 3}) {
    for (int radius = 1; radius <= 4; ++radius) {
      gallery.push_back(make_star(dims, radius));
    }
    for (int radius = 1; radius <= 4; ++radius) {
      gallery.push_back(make_box(dims, radius));
    }
    for (int radius = 1; radius <= 4; ++radius) {
      gallery.push_back(make_cross(dims, radius));
    }
  }
  return gallery;
}

}  // namespace smart::stencil
