// Grid offsets: the building block of a stencil access pattern.
//
// A stencil of dimensionality d accesses a set of integer offsets around the
// centre point (0,...,0). The *order* of an offset is its Chebyshev norm
// (max |coordinate|), matching the paper's definition of stencil order as
// "the extent of the neighbors along each dimension" (Sec. I).
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace smart::stencil {

/// Maximum supported dimensionality (the paper evaluates 2-D and 3-D).
inline constexpr int kMaxDims = 3;

/// An integer offset from the stencil centre. Unused trailing coordinates
/// are zero, so a Point is comparable across code paths regardless of dims.
struct Point {
  std::array<std::int8_t, kMaxDims> coords{0, 0, 0};

  constexpr Point() = default;
  constexpr Point(int x, int y) : coords{static_cast<std::int8_t>(x),
                                         static_cast<std::int8_t>(y), 0} {}
  constexpr Point(int x, int y, int z)
      : coords{static_cast<std::int8_t>(x), static_cast<std::int8_t>(y),
               static_cast<std::int8_t>(z)} {}

  constexpr int operator[](int axis) const { return coords[static_cast<std::size_t>(axis)]; }

  /// Chebyshev norm: the order of this offset.
  constexpr int order() const {
    int m = 0;
    for (auto c : coords) {
      const int a = c < 0 ? -c : c;
      if (a > m) m = a;
    }
    return m;
  }

  /// Manhattan norm, used by shape classification (star points have
  /// manhattan == chebyshev since only one coordinate is non-zero).
  constexpr int manhattan() const {
    int s = 0;
    for (auto c : coords) s += (c < 0 ? -c : c);
    return s;
  }

  /// True if at most one coordinate is non-zero (lies on an axis).
  constexpr bool on_axis() const {
    int non_zero = 0;
    for (auto c : coords) {
      if (c != 0) ++non_zero;
    }
    return non_zero <= 1;
  }

  /// True if all non-zero coordinates have the same magnitude and every
  /// coordinate within the first `dims` axes is non-zero (a full diagonal).
  bool on_diagonal(int dims) const {
    int magnitude = -1;
    for (int a = 0; a < dims; ++a) {
      const int v = std::abs((*this)[a]);
      if (v == 0) return false;
      if (magnitude < 0) magnitude = v;
      else if (v != magnitude) return false;
    }
    return true;
  }

  constexpr bool is_centre() const {
    for (auto c : coords) {
      if (c != 0) return false;
    }
    return true;
  }

  friend constexpr bool operator==(const Point&, const Point&) = default;
  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  std::string to_string(int dims) const;
};

/// The Moore neighbourhood (all offsets at Chebyshev distance exactly 1)
/// of a point, restricted to the first `dims` axes: 8 points in 2-D,
/// 26 in 3-D. This is the neighbour relation used by the random stencil
/// generator (paper Algorithm 1).
std::vector<Point> moore_neighbours(const Point& p, int dims);

struct PointHash {
  std::size_t operator()(const Point& p) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (auto c : p.coords) {
      h ^= static_cast<std::size_t>(static_cast<std::uint8_t>(c));
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace smart::stencil
