// CPU reference executors for stencil computations.
//
// On real hardware, StencilMART's generated CUDA variants are validated
// against a naive kernel; here the naive executor is the oracle and the
// tiled / temporally-blocked executors model (and verify the semantics of)
// the spatial-tiling and temporal-blocking code transformations that the
// GPU cost model reasons about. All executors use Dirichlet-zero halos and
// produce bitwise-identical results (same operations in the same per-point
// order).
#pragma once

#include <span>
#include <vector>

#include "stencil/boundary.hpp"
#include "stencil/grid.hpp"
#include "stencil/pattern.hpp"

namespace smart::stencil {

/// A stencil with per-offset coefficients, applied for `steps` Jacobi
/// iterations. weights.size() must equal pattern.size(); weights align with
/// pattern.offsets() order. Out-of-domain reads follow `boundary`.
struct StencilOp {
  const StencilPattern& pattern;
  std::span<const double> weights;
  Boundary boundary = Boundary::kDirichletZero;
};

/// Uniform 1/nnz weights (the smoothing stencil the paper's examples use).
std::vector<double> uniform_weights(const StencilPattern& pattern);

/// Naive executor: full-grid sweep per time step, ping-pong buffers.
/// `input` halo must be >= pattern.order(). Returns the final grid.
Grid run_naive(const StencilOp& op, const Grid& input, int steps);

/// Spatially tiled executor: same arithmetic, loop-blocked over tiles of
/// size (tile_x, tile_y[, tile_z]). Bitwise-equal to run_naive.
Grid run_tiled(const StencilOp& op, const Grid& input, int steps, int tile_x,
               int tile_y, int tile_z = 1);

/// Overlapped (trapezoidal) temporal blocking: time steps are fused in
/// chunks of `time_block`; each tile loads a halo of order*time_block and
/// performs redundant edge computation so chunk results match the naive
/// executor exactly. Models the TB optimization of paper Table I.
Grid run_temporal_blocked(const StencilOp& op, const Grid& input, int steps,
                          int tile_x, int tile_y, int tile_z, int time_block);

}  // namespace smart::stencil
