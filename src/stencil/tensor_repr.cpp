#include "stencil/tensor_repr.hpp"

#include <stdexcept>

namespace smart::stencil {

PatternTensor::PatternTensor(const StencilPattern& pattern, int max_order)
    : dims_(pattern.dims()), max_order_(max_order) {
  if (max_order_ < 1) {
    throw std::invalid_argument("PatternTensor: max_order must be >= 1");
  }
  if (pattern.order() > max_order_) {
    throw std::invalid_argument("PatternTensor: pattern order exceeds max_order");
  }
  std::size_t volume = 1;
  for (int a = 0; a < dims_; ++a) {
    volume *= static_cast<std::size_t>(extent());
  }
  cells_.assign(volume, 0);
  for (const Point& p : pattern.offsets()) {
    cells_[index(p[0], p[1], dims_ == 3 ? p[2] : 0)] = 1;
    ++nnz_;
  }
}

std::size_t PatternTensor::index(int x, int y, int z) const {
  const int e = extent();
  const int ix = x + max_order_;
  const int iy = y + max_order_;
  const int iz = z + max_order_;
  if (ix < 0 || ix >= e || iy < 0 || iy >= e ||
      (dims_ == 3 && (iz < 0 || iz >= e))) {
    throw std::out_of_range("PatternTensor: coordinate out of range");
  }
  std::size_t idx = static_cast<std::size_t>(ix) * static_cast<std::size_t>(e) +
                    static_cast<std::size_t>(iy);
  if (dims_ == 3) {
    idx = idx * static_cast<std::size_t>(e) + static_cast<std::size_t>(iz);
  }
  return idx;
}

bool PatternTensor::at(int x, int y, int z) const {
  return cells_[index(x, y, z)] != 0;
}

std::vector<float> PatternTensor::to_floats() const {
  return {cells_.begin(), cells_.end()};
}

StencilPattern PatternTensor::to_pattern() const {
  std::vector<Point> pts;
  const int n = max_order_;
  const int zlo = dims_ == 3 ? -n : 0;
  const int zhi = dims_ == 3 ? n : 0;
  for (int x = -n; x <= n; ++x) {
    for (int y = -n; y <= n; ++y) {
      for (int z = zlo; z <= zhi; ++z) {
        if (at(x, y, z)) {
          pts.push_back(dims_ == 2 ? Point{x, y} : Point{x, y, z});
        }
      }
    }
  }
  return StencilPattern(dims_, std::move(pts));
}

}  // namespace smart::stencil
