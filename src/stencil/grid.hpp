// Dense computation grid with a zero-filled halo, for the CPU reference
// executors. The halo implements Dirichlet-zero boundaries: reads up to
// `halo` cells outside the interior return 0 and are never written.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace smart::stencil {

class Grid {
 public:
  /// 2-D grid: nz == 1 and dims() == 2. 3-D grid: nz > 1.
  Grid(int nx, int ny, int nz, int halo);

  static Grid make_2d(int nx, int ny, int halo) { return {nx, ny, 1, halo}; }

  int dims() const noexcept { return nz_ == 1 ? 2 : 3; }
  int nx() const noexcept { return nx_; }
  int ny() const noexcept { return ny_; }
  int nz() const noexcept { return nz_; }
  int halo() const noexcept { return halo_; }
  std::size_t interior_size() const noexcept {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
           static_cast<std::size_t>(nz_);
  }

  /// Interior coordinates are [0, n); reads may reach into [-halo, n+halo).
  double at(int i, int j, int k = 0) const { return data_[index(i, j, k)]; }
  double& at(int i, int j, int k = 0) { return data_[index(i, j, k)]; }

  /// Fills the interior with f(i, j, k); halo stays zero.
  template <typename F>
  void fill(F&& f) {
    for (int i = 0; i < nx_; ++i) {
      for (int j = 0; j < ny_; ++j) {
        for (int k = 0; k < nz_; ++k) {
          at(i, j, k) = f(i, j, k);
        }
      }
    }
  }

  /// Max absolute interior difference between two same-shape grids.
  static double max_abs_diff(const Grid& a, const Grid& b);

 private:
  std::size_t index(int i, int j, int k) const {
    const int pi = i + halo_;
    const int pj = j + halo_;
    const int pk = k + halo_;
#ifndef NDEBUG
    if (pi < 0 || pi >= nx_ + 2 * halo_ || pj < 0 || pj >= ny_ + 2 * halo_ ||
        pk < 0 || pk >= nz_ + 2 * halo_) {
      throw std::out_of_range("Grid: index outside halo");
    }
#endif
    return (static_cast<std::size_t>(pi) * static_cast<std::size_t>(ny_ + 2 * halo_) +
            static_cast<std::size_t>(pj)) *
               static_cast<std::size_t>(nz_ + 2 * halo_) +
           static_cast<std::size_t>(pk);
  }

  int nx_;
  int ny_;
  int nz_;
  int halo_;
  std::vector<double> data_;
};

}  // namespace smart::stencil
