#include "stencil/grid.hpp"

#include <cmath>

namespace smart::stencil {

Grid::Grid(int nx, int ny, int nz, int halo)
    : nx_(nx), ny_(ny), nz_(nz), halo_(halo) {
  if (nx < 1 || ny < 1 || nz < 1 || halo < 0) {
    throw std::invalid_argument("Grid: bad extents");
  }
  data_.assign(static_cast<std::size_t>(nx + 2 * halo) *
                   static_cast<std::size_t>(ny + 2 * halo) *
                   static_cast<std::size_t>(nz + 2 * halo),
               0.0);
}

double Grid::max_abs_diff(const Grid& a, const Grid& b) {
  if (a.nx_ != b.nx_ || a.ny_ != b.ny_ || a.nz_ != b.nz_) {
    throw std::invalid_argument("Grid::max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (int i = 0; i < a.nx_; ++i) {
    for (int j = 0; j < a.ny_; ++j) {
      for (int k = 0; k < a.nz_; ++k) {
        worst = std::max(worst, std::fabs(a.at(i, j, k) - b.at(i, j, k)));
      }
    }
  }
  return worst;
}

}  // namespace smart::stencil
