#include "stencil/reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace smart::stencil {

namespace {

void validate(const StencilOp& op, const Grid& input) {
  if (static_cast<int>(op.weights.size()) != op.pattern.size()) {
    throw std::invalid_argument("StencilOp: weights/pattern size mismatch");
  }
  if (input.halo() < op.pattern.order()) {
    throw std::invalid_argument("run: grid halo smaller than stencil order");
  }
  if (input.dims() != op.pattern.dims()) {
    throw std::invalid_argument("run: grid/pattern dimensionality mismatch");
  }
}

constexpr int wrap(int i, int n) { return ((i % n) + n) % n; }

/// Boundary-aware read: Dirichlet reads resolve through the zero halo,
/// periodic reads wrap around the domain.
double read_cell(const Grid& g, int i, int j, int k, Boundary boundary) {
  if (boundary == Boundary::kPeriodic) {
    return g.at(wrap(i, g.nx()), wrap(j, g.ny()), wrap(k, g.nz()));
  }
  return g.at(i, j, k);
}

/// One sweep over a box of interior cells, reading `src` and writing `dst`.
void sweep_box(const StencilOp& op, const Grid& src, Grid& dst, int i0, int i1,
               int j0, int j1, int k0, int k1) {
  const auto offsets = op.pattern.offsets();
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      for (int k = k0; k < k1; ++k) {
        double acc = 0.0;
        for (std::size_t p = 0; p < offsets.size(); ++p) {
          const Point& d = offsets[p];
          acc += op.weights[p] *
                 read_cell(src, i + d[0], j + d[1], k + d[2], op.boundary);
        }
        dst.at(i, j, k) = acc;
      }
    }
  }
}

}  // namespace

std::vector<double> uniform_weights(const StencilPattern& pattern) {
  return std::vector<double>(static_cast<std::size_t>(pattern.size()),
                             1.0 / static_cast<double>(pattern.size()));
}

Grid run_naive(const StencilOp& op, const Grid& input, int steps) {
  validate(op, input);
  Grid cur = input;
  Grid next(input.nx(), input.ny(), input.nz(), input.halo());
  for (int s = 0; s < steps; ++s) {
    sweep_box(op, cur, next, 0, cur.nx(), 0, cur.ny(), 0, cur.nz());
    std::swap(cur, next);
  }
  return cur;
}

Grid run_tiled(const StencilOp& op, const Grid& input, int steps, int tile_x,
               int tile_y, int tile_z) {
  validate(op, input);
  if (tile_x < 1 || tile_y < 1 || tile_z < 1) {
    throw std::invalid_argument("run_tiled: tile extents must be >= 1");
  }
  Grid cur = input;
  Grid next(input.nx(), input.ny(), input.nz(), input.halo());
  for (int s = 0; s < steps; ++s) {
    for (int i0 = 0; i0 < cur.nx(); i0 += tile_x) {
      for (int j0 = 0; j0 < cur.ny(); j0 += tile_y) {
        for (int k0 = 0; k0 < cur.nz(); k0 += tile_z) {
          sweep_box(op, cur, next, i0, std::min(i0 + tile_x, cur.nx()), j0,
                    std::min(j0 + tile_y, cur.ny()), k0,
                    std::min(k0 + tile_z, cur.nz()));
        }
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

Grid run_temporal_blocked(const StencilOp& op, const Grid& input, int steps,
                          int tile_x, int tile_y, int tile_z, int time_block) {
  validate(op, input);
  if (time_block < 1) {
    throw std::invalid_argument("run_temporal_blocked: time_block must be >= 1");
  }
  if (tile_x < 1 || tile_y < 1 || tile_z < 1) {
    throw std::invalid_argument("run_temporal_blocked: tile extents must be >= 1");
  }
  const int r = op.pattern.order();
  const auto offsets = op.pattern.offsets();
  Grid cur = input;

  int done = 0;
  while (done < steps) {
    const int t = std::min(time_block, steps - done);
    const int halo = r * t;  // overlapped-tiling halo for t fused steps
    Grid out(cur.nx(), cur.ny(), cur.nz(), cur.halo());
    const int bz_extent = cur.dims() == 3 ? tile_z : 1;

    for (int ti = 0; ti < cur.nx(); ti += tile_x) {
      for (int tj = 0; tj < cur.ny(); tj += tile_y) {
        for (int tk = 0; tk < cur.nz(); tk += bz_extent) {
          const int tx = std::min(tile_x, cur.nx() - ti);
          const int ty = std::min(tile_y, cur.ny() - tj);
          const int tz = std::min(bz_extent, cur.nz() - tk);
          // Local buffers cover the tile plus the fused-time halo. Reads
          // that fall outside the global domain are Dirichlet zeros, and
          // such cells are never recomputed so they stay zero at every
          // intermediate step, exactly like the naive executor's halo.
          const int lx = tx + 2 * halo;
          const int ly = ty + 2 * halo;
          const int lz = cur.dims() == 3 ? tz + 2 * halo : 1;
          Grid buf_a(lx, ly, lz, r);
          Grid buf_b(lx, ly, lz, r);
          const int koff = cur.dims() == 3 ? halo : 0;
          for (int i = 0; i < lx; ++i) {
            for (int j = 0; j < ly; ++j) {
              for (int k = 0; k < lz; ++k) {
                const int gi = ti + i - halo;
                const int gj = tj + j - halo;
                const int gk = tk + k - koff;
                if (op.boundary == Boundary::kPeriodic) {
                  buf_a.at(i, j, k) = cur.at(wrap(gi, cur.nx()),
                                             wrap(gj, cur.ny()),
                                             wrap(gk, cur.nz()));
                } else {
                  const bool inside = gi >= 0 && gi < cur.nx() && gj >= 0 &&
                                      gj < cur.ny() && gk >= 0 && gk < cur.nz();
                  buf_a.at(i, j, k) = inside ? cur.at(gi, gj, gk) : 0.0;
                }
              }
            }
          }
          Grid* src = &buf_a;
          Grid* dst = &buf_b;
          for (int s = 1; s <= t; ++s) {
            // After s fused steps, only cells at distance >= s*r from the
            // buffer edge hold correct values (the trapezoid shrink).
            const int i_lo = s * r;
            // Copy-then-update: carry forward stale edge cells so later
            // (never-read) regions stay defined, then recompute the valid
            // trapezoid region.
            *dst = *src;
            const int k_lo = cur.dims() == 3 ? i_lo : 0;
            const int k_hi = cur.dims() == 3 ? lz - s * r : 1;
            for (int i = i_lo; i < lx - s * r; ++i) {
              for (int j = i_lo; j < ly - s * r; ++j) {
                for (int k = k_lo; k < k_hi; ++k) {
                  if (op.boundary == Boundary::kDirichletZero) {
                    const int gi = ti + i - halo;
                    const int gj = tj + j - halo;
                    const int gk = tk + k - koff;
                    if (gi < 0 || gi >= cur.nx() || gj < 0 || gj >= cur.ny() ||
                        gk < 0 || gk >= cur.nz()) {
                      continue;  // out-of-domain cells remain Dirichlet zero
                    }
                  }  // periodic: every buffer cell is a live domain cell
                  double acc = 0.0;
                  for (std::size_t p = 0; p < offsets.size(); ++p) {
                    const Point& d = offsets[p];
                    acc += op.weights[p] * src->at(i + d[0], j + d[1], k + d[2]);
                  }
                  dst->at(i, j, k) = acc;
                }
              }
            }
            std::swap(src, dst);
          }
          // Write back the tile interior (local coords [halo, halo+t?)).
          for (int i = 0; i < tx; ++i) {
            for (int j = 0; j < ty; ++j) {
              for (int k = 0; k < tz; ++k) {
                out.at(ti + i, tj + j, tk + k) =
                    src->at(i + halo, j + halo, cur.dims() == 3 ? k + halo : k);
              }
            }
          }
        }
      }
    }
    cur = std::move(out);
    done += t;
  }
  return cur;
}

}  // namespace smart::stencil
