// Random stencil generator (paper Algorithm 1).
//
// Naive uniform sampling inside the (2N+1)^d tensor would produce patterns
// that do not look like stencils (isolated far points with no neighbour
// chain). Algorithm 1 instead grows the pattern order by order: the order-k
// candidate set is the Moore neighbourhood of the selected order-(k-1)
// points, minus the points already selected at orders k-1 and k-2; a random
// subset of the candidates is kept. Every generated pattern therefore
// satisfies the *neighbour-access invariant*: each order-k point is a Moore
// neighbour of some selected order-(k-1) point.
#pragma once

#include <vector>

#include "stencil/pattern.hpp"
#include "util/rng.hpp"

namespace smart::stencil {

struct GeneratorConfig {
  int dims = 2;        // 2 or 3
  int order = 4;       // target maximum order N (paper uses N = 4)
  double keep_prob = 0.45;  // probability of keeping each candidate point
  bool force_full_order = true;  // retry until order N is actually reached
  int max_attempts = 64;         // resampling budget per order
};

class RandomStencilGenerator {
 public:
  explicit RandomStencilGenerator(GeneratorConfig config);

  /// Generates one random pattern. With force_full_order, the result's
  /// order equals config.order; otherwise it may be smaller (but >= 1).
  StencilPattern generate(util::Rng& rng) const;

  /// Generates `count` patterns with distinct identities (deduplicated by
  /// pattern hash; duplicates are re-rolled).
  std::vector<StencilPattern> generate_batch(util::Rng& rng, int count) const;

  const GeneratorConfig& config() const noexcept { return config_; }

 private:
  GeneratorConfig config_;
};

}  // namespace smart::stencil
