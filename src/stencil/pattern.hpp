// StencilPattern: the canonical description of a stencil's access pattern —
// a deduplicated, sorted set of offsets (always containing the centre) plus
// the dimensionality. Everything downstream (binary tensor, Table II
// features, the GPU cost model, reference executors) derives from it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stencil/point.hpp"

namespace smart::stencil {

/// Stencil shape taxonomy used in the paper's motivation (star, box, cross).
enum class Shape : std::uint8_t { kStar, kBox, kCross, kIrregular };

std::string to_string(Shape shape);

class StencilPattern {
 public:
  /// Builds a pattern from offsets. The centre is inserted if missing;
  /// duplicates are removed; offsets are kept sorted for canonical identity.
  /// Throws std::invalid_argument for dims outside {2, 3} or offsets with
  /// non-zero coordinates beyond `dims`.
  StencilPattern(int dims, std::vector<Point> offsets);

  int dims() const noexcept { return dims_; }

  /// Number of accessed points, centre included ("nnz" in the paper).
  int size() const noexcept { return static_cast<int>(offsets_.size()); }

  /// Maximum Chebyshev norm over all offsets (the stencil order).
  int order() const noexcept { return order_; }

  std::span<const Point> offsets() const noexcept { return offsets_; }

  bool contains(const Point& p) const;

  /// Points whose order is exactly n (n >= 1); n = 0 yields the centre.
  std::vector<Point> points_of_order(int n) const;

  /// Count of points of order exactly n.
  int count_of_order(int n) const;

  /// Shape classification: star (axes only), box (full Moore ball),
  /// cross (centre + full diagonals only), otherwise irregular.
  Shape classify() const;

  /// Number of distinct (dims-1)-dimensional planes along `axis` that the
  /// pattern touches, i.e. distinct values of the coordinate on that axis.
  /// Drives the streaming/traffic terms of the GPU cost model.
  int planes_along(int axis) const;

  /// Stable 64-bit identity hash of (dims, offsets); used to derive
  /// deterministic per-stencil measurement-noise seeds.
  std::uint64_t hash() const noexcept;

  /// e.g. "star2d3r" for recognized shapes, "irr2d3r17p" for irregular ones
  /// (order and point count).
  std::string name() const;

  friend bool operator==(const StencilPattern& a, const StencilPattern& b) {
    return a.dims_ == b.dims_ && a.offsets_ == b.offsets_;
  }

 private:
  int dims_;
  int order_;
  std::vector<Point> offsets_;  // sorted, unique, includes centre
};

/// Factory helpers for the canonical shape gallery (paper Figs. 1, 4):
/// star = axis points up to radius r; box = all points with Chebyshev
/// norm <= r; cross = centre plus all full-diagonal points up to radius r.
StencilPattern make_star(int dims, int radius);
StencilPattern make_box(int dims, int radius);
StencilPattern make_cross(int dims, int radius);

/// The 14 representative stencils used in the motivation study: shapes
/// {star, box, cross} x orders {1..4} x dims {2, 3}, trimmed to the sizes
/// the paper plots (box3d capped at order 4, etc.). Ordered 2-D first.
std::vector<StencilPattern> representative_gallery();

}  // namespace smart::stencil
