#include "stencil/generator.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>

namespace smart::stencil {

namespace {

/// One sampling round for a given order: candidates are Moore neighbours of
/// the previous selection that actually sit at Chebyshev distance `order`
/// from the centre (Alg. 1 lines 8-14). No membership check against the
/// already-selected points is needed: everything selected so far has
/// Chebyshev order < `order`, so the order filter excludes it. Duplicates
/// (a shell point is reachable from several inner points) are dropped via a
/// dense (2*order+1)^3 bitmap; the candidate pool is then read back by
/// scanning that bitmap in ascending cell order, which IS lexicographic
/// (x, y, z) Point order — so the rng consumes the exact same draws, in the
/// same order, as the earlier sort-the-pool implementation, without
/// materializing or sorting a pool. This function is on the profiler's
/// critical path (thousands of short calls per corpus), hence the
/// thread_local scratch bitmap.
std::vector<Point> sample_order(const std::vector<Point>& previous, int dims,
                                int order, double keep_prob, util::Rng& rng) {
  const std::size_t w = static_cast<std::size_t>(2 * order + 1);
  static thread_local std::vector<std::uint8_t> seen;
  seen.assign(w * w * w, 0);
  const int zlo = dims >= 3 ? -1 : 0;
  const int zhi = dims >= 3 ? 1 : 0;
  for (const Point& p : previous) {
    // No zero-offset check needed: dx = dy = dz = 0 reproduces p itself,
    // whose Chebyshev order is `order - 1`, so the order filter drops it.
    // The per-axis |.| and row offsets hoist out of the inner loops.
    for (int dx = -1; dx <= 1; ++dx) {
      const int x = p[0] + dx;
      const int ax = x < 0 ? -x : x;
      const std::size_t xoff = static_cast<std::size_t>(x + order) * w;
      for (int dy = -1; dy <= 1; ++dy) {
        const int y = p[1] + dy;
        const int ay = y < 0 ? -y : y;
        const int axy = ax > ay ? ax : ay;
        const std::size_t xyoff =
            (xoff + static_cast<std::size_t>(y + order)) * w;
        for (int dz = zlo; dz <= zhi; ++dz) {
          const int z = p[2] + dz;
          const int az = z < 0 ? -z : z;
          if ((axy > az ? axy : az) != order) continue;  // lower-order backtrack
          seen[xyoff + static_cast<std::size_t>(z + order)] = 1;
        }
      }
    }
  }
  std::vector<Point> selected;
  for (std::size_t cell = 0; cell < seen.size(); ++cell) {
    if (seen[cell] == 0 || !rng.bernoulli(keep_prob)) continue;
    Point q;
    q.coords[0] = static_cast<std::int8_t>(
        static_cast<int>(cell / (w * w)) - order);
    q.coords[1] = static_cast<std::int8_t>(
        static_cast<int>((cell / w) % w) - order);
    q.coords[2] = static_cast<std::int8_t>(static_cast<int>(cell % w) - order);
    selected.push_back(q);
  }
  return selected;
}

}  // namespace

RandomStencilGenerator::RandomStencilGenerator(GeneratorConfig config)
    : config_(config) {
  if (config_.dims < 2 || config_.dims > kMaxDims) {
    throw std::invalid_argument("RandomStencilGenerator: dims must be 2 or 3");
  }
  if (config_.order < 1) {
    throw std::invalid_argument("RandomStencilGenerator: order must be >= 1");
  }
  if (config_.keep_prob <= 0.0 || config_.keep_prob > 1.0) {
    throw std::invalid_argument("RandomStencilGenerator: keep_prob in (0,1]");
  }
}

StencilPattern RandomStencilGenerator::generate(util::Rng& rng) const {
  std::vector<Point> all_points;
  const Point centre{};
  all_points.push_back(centre);

  std::vector<Point> previous{centre};
  for (int order = 1; order <= config_.order; ++order) {
    std::vector<Point> selected;
    // Resample until at least one point of this order is kept (so that the
    // chain can continue growing), within the attempt budget.
    for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
      selected =
          sample_order(previous, config_.dims, order, config_.keep_prob, rng);
      if (!selected.empty() || !config_.force_full_order) break;
    }
    if (selected.empty()) break;  // pattern tops out below the target order
    all_points.insert(all_points.end(), selected.begin(), selected.end());
    previous = std::move(selected);
  }
  return StencilPattern(config_.dims, std::move(all_points));
}

std::vector<StencilPattern> RandomStencilGenerator::generate_batch(
    util::Rng& rng, int count) const {
  std::vector<StencilPattern> batch;
  std::unordered_set<std::uint64_t> seen;
  batch.reserve(static_cast<std::size_t>(count));
  int stale = 0;
  while (static_cast<int>(batch.size()) < count) {
    StencilPattern p = generate(rng);
    if (seen.insert(p.hash()).second) {
      batch.push_back(std::move(p));
      stale = 0;
    } else if (++stale > 10000) {
      // Pattern space exhausted (can happen for tiny configs in tests).
      throw std::runtime_error(
          "generate_batch: could not find enough distinct patterns");
    }
  }
  return batch;
}

}  // namespace smart::stencil
