#include "stencil/generator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace smart::stencil {

namespace {

using PointSet = std::unordered_set<Point, PointHash>;

/// One sampling round for a given order: candidates are Moore neighbours of
/// the previous selection that actually sit at Chebyshev distance `order`
/// from the centre, excluding already-selected lower-order points
/// (Alg. 1 lines 8-14).
std::vector<Point> sample_order(const std::vector<Point>& previous,
                                const PointSet& taken, int dims, int order,
                                double keep_prob, util::Rng& rng) {
  PointSet candidates;
  for (const Point& p : previous) {
    for (const Point& q : moore_neighbours(p, dims)) {
      if (q.order() != order) continue;  // drops order-1/order-2 backtracks
      if (taken.contains(q)) continue;
      candidates.insert(q);
    }
  }
  std::vector<Point> pool(candidates.begin(), candidates.end());
  std::sort(pool.begin(), pool.end());  // determinism across set iteration
  std::vector<Point> selected;
  for (const Point& q : pool) {
    if (rng.bernoulli(keep_prob)) selected.push_back(q);
  }
  return selected;
}

}  // namespace

RandomStencilGenerator::RandomStencilGenerator(GeneratorConfig config)
    : config_(config) {
  if (config_.dims < 2 || config_.dims > kMaxDims) {
    throw std::invalid_argument("RandomStencilGenerator: dims must be 2 or 3");
  }
  if (config_.order < 1) {
    throw std::invalid_argument("RandomStencilGenerator: order must be >= 1");
  }
  if (config_.keep_prob <= 0.0 || config_.keep_prob > 1.0) {
    throw std::invalid_argument("RandomStencilGenerator: keep_prob in (0,1]");
  }
}

StencilPattern RandomStencilGenerator::generate(util::Rng& rng) const {
  std::vector<Point> all_points;
  PointSet taken;
  const Point centre{};
  taken.insert(centre);
  all_points.push_back(centre);

  std::vector<Point> previous{centre};
  for (int order = 1; order <= config_.order; ++order) {
    std::vector<Point> selected;
    // Resample until at least one point of this order is kept (so that the
    // chain can continue growing), within the attempt budget.
    for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
      selected = sample_order(previous, taken, config_.dims, order,
                              config_.keep_prob, rng);
      if (!selected.empty() || !config_.force_full_order) break;
    }
    if (selected.empty()) break;  // pattern tops out below the target order
    for (const Point& p : selected) {
      taken.insert(p);
      all_points.push_back(p);
    }
    previous = std::move(selected);
  }
  return StencilPattern(config_.dims, std::move(all_points));
}

std::vector<StencilPattern> RandomStencilGenerator::generate_batch(
    util::Rng& rng, int count) const {
  std::vector<StencilPattern> batch;
  std::unordered_set<std::uint64_t> seen;
  batch.reserve(static_cast<std::size_t>(count));
  int stale = 0;
  while (static_cast<int>(batch.size()) < count) {
    StencilPattern p = generate(rng);
    if (seen.insert(p.hash()).second) {
      batch.push_back(std::move(p));
      stale = 0;
    } else if (++stale > 10000) {
      // Pattern space exhausted (can happen for tiny configs in tests).
      throw std::runtime_error(
          "generate_batch: could not find enough distinct patterns");
    }
  }
  return batch;
}

}  // namespace smart::stencil
