#include "stencil/features.hpp"

#include <cmath>
#include <stdexcept>

namespace smart::stencil {

std::vector<double> FeatureSet::to_vector(bool include_dims) const {
  std::vector<double> v;
  v.reserve(3 + nnz_per_order.size() + ratio_per_order.size() +
            (include_dims ? 1 : 0));
  if (include_dims) v.push_back(static_cast<double>(dims));
  v.push_back(static_cast<double>(order));
  v.push_back(static_cast<double>(nnz));
  v.push_back(sparsity);
  for (int c : nnz_per_order) v.push_back(static_cast<double>(c));
  for (double r : ratio_per_order) v.push_back(r);
  return v;
}

std::vector<std::string> FeatureSet::names(int max_order, bool include_dims) {
  std::vector<std::string> names;
  if (include_dims) names.emplace_back("dims");
  names.emplace_back("order");
  names.emplace_back("nnz");
  names.emplace_back("sparsity");
  for (int n = 1; n <= max_order; ++n) {
    names.push_back("nnz_order-" + std::to_string(n));
  }
  for (int n = 1; n <= max_order; ++n) {
    names.push_back("nnzRatio_order-" + std::to_string(n));
  }
  return names;
}

FeatureSet extract_features(const StencilPattern& pattern, int max_order) {
  if (pattern.order() > max_order) {
    throw std::invalid_argument("extract_features: pattern order exceeds max_order");
  }
  FeatureSet f;
  f.dims = pattern.dims();
  f.order = pattern.order();
  f.nnz = pattern.size();
  double volume = 1.0;
  for (int a = 0; a < pattern.dims(); ++a) {
    volume *= static_cast<double>(2 * max_order + 1);
  }
  f.sparsity = static_cast<double>(f.nnz) / volume;
  f.nnz_per_order.resize(static_cast<std::size_t>(max_order), 0);
  f.ratio_per_order.resize(static_cast<std::size_t>(max_order), 0.0);
  for (int n = 1; n <= max_order; ++n) {
    const int count = pattern.count_of_order(n);
    f.nnz_per_order[static_cast<std::size_t>(n - 1)] = count;
    f.ratio_per_order[static_cast<std::size_t>(n - 1)] =
        static_cast<double>(count) / static_cast<double>(f.nnz);
  }
  return f;
}

}  // namespace smart::stencil
