// Boundary-condition taxonomy. The paper's conclusion lists stencil kernels
// with boundary conditions as future work: "we need to quantify the impact
// of boundary conditions on performance and further parameterize them as
// model input". This reproduction implements that extension: the functional
// executors support both conditions, the GPU cost model charges periodic
// wrap-around its extra address arithmetic and halo traffic, and the
// regression features carry the boundary as a model input.
#pragma once

#include <string>

namespace smart::stencil {

enum class Boundary {
  kDirichletZero,  // out-of-domain reads are 0 (the paper's setting)
  kPeriodic,       // out-of-domain reads wrap around the domain
};

inline std::string to_string(Boundary boundary) {
  return boundary == Boundary::kDirichletZero ? "dirichlet0" : "periodic";
}

}  // namespace smart::stencil
