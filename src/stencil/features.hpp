// The candidate feature set of a stencil (paper Table II):
//   1. order       — maximum extent of non-zeros
//   2. nnz         — number of non-zeros in the tensor
//   3. sparsity    — density of non-zeros in the (2*max_order+1)^d tensor
//   4. nnz_order-n — number of non-zeros of order-n neighbours (n = 1..max)
//   5. nnzRatio_order-n — ratio of order-n non-zeros over all non-zeros
// plus the dimensionality, which the paper encodes implicitly by training
// separate 2-D/3-D models and we expose explicitly for mixed datasets.
#pragma once

#include <string>
#include <vector>

#include "stencil/pattern.hpp"

namespace smart::stencil {

struct FeatureSet {
  int dims = 0;
  int order = 0;
  int nnz = 0;
  double sparsity = 0.0;
  std::vector<int> nnz_per_order;       // index n-1 => order-n count
  std::vector<double> ratio_per_order;  // index n-1 => order-n ratio

  /// Flattened numeric vector of fixed length 3 + 2*max_order (order, nnz,
  /// sparsity, then per-order counts and ratios padded with zeros). `dims`
  /// is prepended when include_dims is true.
  std::vector<double> to_vector(bool include_dims = false) const;

  /// Human-readable names aligned with to_vector(), for reports.
  static std::vector<std::string> names(int max_order, bool include_dims = false);
};

/// Extracts the Table II features relative to a fixed maximum order (the
/// per-order slots are padded so all stencils share one feature layout).
FeatureSet extract_features(const StencilPattern& pattern, int max_order);

}  // namespace smart::stencil
