// Binary tensor representation of a stencil (paper Sec. IV-B/C, Fig. 6).
//
// A d-dimensional stencil with maximum order N is embedded in a dense
// (2N+1)^d binary tensor: cell 1 where the pattern accesses the offset,
// 0 elsewhere. The tensor is what the convolutional models (ConvNet,
// ConvMLP) consume; it captures the spatial distribution of the accessed
// neighbours and their Euclidean distances.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stencil/pattern.hpp"

namespace smart::stencil {

class PatternTensor {
 public:
  /// Embeds `pattern` into a (2*max_order+1)^dims binary tensor.
  /// Throws std::invalid_argument if pattern.order() > max_order.
  PatternTensor(const StencilPattern& pattern, int max_order);

  int dims() const noexcept { return dims_; }
  int max_order() const noexcept { return max_order_; }

  /// Side length 2*max_order + 1.
  int extent() const noexcept { return 2 * max_order_ + 1; }

  /// Total number of cells: extent()^dims.
  int volume() const noexcept { return static_cast<int>(cells_.size()); }

  /// Cell accessor; coordinates are offsets in [-max_order, +max_order]
  /// (z ignored for 2-D tensors).
  bool at(int x, int y, int z = 0) const;

  int nnz() const noexcept { return nnz_; }

  /// Row-major flattened cells as floats in {0,1} — the NN input layout.
  std::vector<float> to_floats() const;

  std::span<const std::uint8_t> cells() const noexcept { return cells_; }

  /// Reconstructs the pattern (inverse of the embedding).
  StencilPattern to_pattern() const;

 private:
  std::size_t index(int x, int y, int z) const;

  int dims_;
  int max_order_;
  int nnz_ = 0;
  std::vector<std::uint8_t> cells_;  // row-major, axis order (x, y[, z])
};

}  // namespace smart::stencil
