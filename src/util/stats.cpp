#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smart::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(),
                                xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mape(std::span<const double> truth, std::span<const double> pred) {
  if (truth.size() != pred.size()) throw std::invalid_argument("mape: size mismatch");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0) continue;
    acc += std::abs(pred[i] - truth[i]) / std::abs(truth[i]);
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * acc / static_cast<double>(n);
}

double accuracy(std::span<const int> truth, std::span<const int> pred) {
  if (truth.size() != pred.size()) throw std::invalid_argument("accuracy: size mismatch");
  if (truth.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double kendall_tau(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("kendall_tau: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  long long concordant = 0;
  long long discordant = 0;
  long long tied_x = 0;  // pairs tied in x (but not in both): excluded from
  long long tied_y = 0;  // the tau-b denominator on the x / y side
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx == 0.0 && dy == 0.0) {
        ++tied_x;
        ++tied_y;
      } else if (dx == 0.0) {
        ++tied_x;
      } else if (dy == 0.0) {
        ++tied_y;
      } else if (dx * dy > 0.0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  const double denom_x = pairs - static_cast<double>(tied_x);
  const double denom_y = pairs - static_cast<double>(tied_y);
  if (denom_x <= 0.0 || denom_y <= 0.0) return 0.0;  // a constant input
  return static_cast<double>(concordant - discordant) /
         std::sqrt(denom_x * denom_y);
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace smart::util
