#include "util/rng.hpp"

#include <algorithm>

namespace smart::util {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace smart::util
