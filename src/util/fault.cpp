#include "util/fault.hpp"

#include <cstdlib>
#include <iomanip>
#include <mutex>
#include <sstream>

#include "util/rng.hpp"
#include "util/serialize_io.hpp"

namespace smart::util {

namespace {

/// One well-mixed uniform in [0, 1) from a 64-bit key (splitmix64 finisher;
/// hash_combine alone is too linear to act as a fair coin).
double u01_from_key(std::uint64_t key) noexcept {
  std::uint64_t state = key;
  const std::uint64_t mixed = splitmix64(state);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

std::uint64_t site_tag(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kMeasure: return 0x6d656173ULL;  // "meas"
    case FaultSite::kWorker: return 0x776f726bULL;   // "work"
    case FaultSite::kIo: return 0x696fULL;           // "io"
    case FaultSite::kAccept: return 0x61636370ULL;   // "accp"
    case FaultSite::kRead: return 0x72656164ULL;     // "read"
    case FaultSite::kWrite: return 0x77726974ULL;    // "writ"
  }
  return 0;
}

[[noreturn]] void bad_spec(const std::string& element, const std::string& why) {
  throw std::invalid_argument("fault spec element '" + element + "': " + why);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string token;
  std::istringstream stream(text);
  while (std::getline(stream, token, sep)) parts.push_back(token);
  return parts;
}

double parse_p(const std::string& element, const std::string& field) {
  if (field.rfind("p=", 0) != 0) bad_spec(element, "expected 'p=<float>'");
  double p = 0.0;
  if (!parse_f64_strict(field.substr(2), p)) {
    bad_spec(element, "unparsable probability '" + field.substr(2) + "'");
  }
  if (!(p >= 0.0 && p <= 1.0)) bad_spec(element, "p must be in [0, 1]");
  return p;
}

int parse_fails(const std::string& element, const std::string& field) {
  if (field.rfind("fails=", 0) != 0) {
    bad_spec(element, "expected 'fails=<uint>'");
  }
  std::uint64_t fails = 0;
  if (!parse_u64_strict(field.substr(6), fails) || fails == 0 ||
      fails > 1000000) {
    bad_spec(element, "fails must be an integer in [1, 1e6]");
  }
  return static_cast<int>(fails);
}

FaultInjector& mutable_global() {
  static FaultInjector injector = [] {
    const char* raw = std::getenv("SMART_FAULTS");
    return FaultInjector(parse_fault_spec(raw == nullptr ? "" : raw));
  }();
  return injector;
}

std::mutex& global_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kMeasure: return "measure";
    case FaultSite::kWorker: return "worker";
    case FaultSite::kIo: return "io";
    case FaultSite::kAccept: return "accept";
    case FaultSite::kRead: return "read";
    case FaultSite::kWrite: return "write";
  }
  return "?";
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  // 17 significant digits round-trip any double, so
  // parse_fault_spec(to_string()) reproduces the exact probabilities.
  out << std::setprecision(17);
  out << "seed=" << seed;
  for (const FaultRule& rule : rules) {
    out << ';' << smart::util::to_string(rule.site);
    if (rule.site == FaultSite::kMeasure) {
      out << (rule.permanent ? ":permanent" : ":transient");
    }
    out << ":p=" << rule.p;
    if (!rule.permanent && rule.fails != 1) out << ":fails=" << rule.fails;
  }
  return out.str();
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& element : split(text, ';')) {
    if (element.empty()) continue;
    if (element.rfind("seed=", 0) == 0) {
      if (!parse_u64_strict(element.substr(5), spec.seed)) {
        bad_spec(element, "unparsable seed");
      }
      continue;
    }
    const auto fields = split(element, ':');
    FaultRule rule;
    if (fields[0] == "measure") {
      if (fields.size() < 3) {
        bad_spec(element, "expected measure:transient|permanent:p=<float>");
      }
      if (fields[1] == "transient") {
        rule.permanent = false;
      } else if (fields[1] == "permanent") {
        rule.permanent = true;
      } else {
        bad_spec(element, "unknown kind '" + fields[1] +
                              "' (transient|permanent)");
      }
      rule.site = FaultSite::kMeasure;
      rule.p = parse_p(element, fields[2]);
      if (fields.size() > 3) {
        if (rule.permanent) bad_spec(element, "permanent faults take no fails=");
        rule.fails = parse_fails(element, fields[3]);
        if (fields.size() > 4) bad_spec(element, "trailing fields");
      }
    } else if (fields[0] == "worker") {
      if (fields.size() < 2) bad_spec(element, "expected worker:p=<float>");
      rule.site = FaultSite::kWorker;
      rule.p = parse_p(element, fields[1]);
      if (fields.size() > 2) {
        rule.fails = parse_fails(element, fields[2]);
        if (fields.size() > 3) bad_spec(element, "trailing fields");
      }
    } else if (fields[0] == "io") {
      if (fields.size() != 2) bad_spec(element, "expected io:p=<float>");
      rule.site = FaultSite::kIo;
      rule.permanent = true;
      rule.p = parse_p(element, fields[1]);
    } else if (fields[0] == "accept" || fields[0] == "read" ||
               fields[0] == "write") {
      if (fields.size() < 2) {
        bad_spec(element, "expected " + fields[0] + ":p=<float>");
      }
      rule.site = fields[0] == "accept"  ? FaultSite::kAccept
                  : fields[0] == "read" ? FaultSite::kRead
                                        : FaultSite::kWrite;
      rule.p = parse_p(element, fields[1]);
      if (fields.size() > 2) {
        rule.fails = parse_fails(element, fields[2]);
        if (fields.size() > 3) bad_spec(element, "trailing fields");
      }
    } else {
      bad_spec(element, "unknown site '" + fields[0] +
                            "' (measure|worker|io|accept|read|write)");
    }
    spec.rules.push_back(rule);
  }
  return spec;
}

const FaultRule* FaultInjector::check(FaultSite site, std::uint64_t identity,
                                      int attempt) const noexcept {
  for (std::size_t r = 0; r < spec_.rules.size(); ++r) {
    const FaultRule& rule = spec_.rules[r];
    if (rule.site != site || rule.p <= 0.0) continue;
    const std::uint64_t key = hash_combine(
        hash_combine(spec_.seed, site_tag(site) + (r << 40)), identity);
    if (u01_from_key(key) >= rule.p) continue;  // this identity is healthy
    if (rule.permanent || attempt < rule.fails) return &rule;
  }
  return nullptr;
}

void FaultInjector::inject(FaultSite site, std::uint64_t identity,
                           int attempt) const {
  const FaultRule* rule = check(site, identity, attempt);
  if (rule == nullptr) return;
  std::ostringstream what;
  what << "injected " << smart::util::to_string(site)
       << (rule->site == FaultSite::kMeasure
               ? (rule->permanent ? " permanent" : " transient")
               : "")
       << " fault (identity " << std::hex << identity << std::dec
       << ", attempt " << attempt << ")";
  if (site == FaultSite::kWorker) throw WorkerCrashError(what.str());
  throw FaultError(what.str(), !rule->permanent);
}

const FaultInjector& FaultInjector::global() { return mutable_global(); }

void FaultInjector::set_global(FaultSpec spec) {
  const std::lock_guard<std::mutex> lock(global_mutex());
  mutable_global() = FaultInjector(std::move(spec));
}

ScopedFaultInjection::ScopedFaultInjection(FaultSpec spec)
    : previous_(FaultInjector::global().spec()) {
  FaultInjector::set_global(std::move(spec));
}

ScopedFaultInjection::ScopedFaultInjection(const std::string& spec_text)
    : ScopedFaultInjection(parse_fault_spec(spec_text)) {}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::set_global(std::move(previous_));
}

}  // namespace smart::util
