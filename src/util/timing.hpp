// Lightweight per-phase timing counters for the profiling + training
// pipeline. Each instrumented phase ("profile.measure", "tuner.tune_all",
// "ml.gbdt.fit", ...) accumulates wall time, call count and task count in a
// process-wide registry; smartctl (SMART_TIMING=1 or profile --timing 1)
// and the bench harness print the registry as a table. Recording happens
// once per phase entry/exit — never per task — so the counters cost nothing
// on the hot paths they observe.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace smart::util {

struct PhaseStats {
  double wall_ms = 0.0;      // accumulated wall time across calls
  std::uint64_t calls = 0;   // times the phase was entered
  std::uint64_t tasks = 0;   // work items processed (loop trip counts)
};

/// Adds one phase invocation to the registry (thread-safe).
void timing_record(const std::string& phase, double wall_ms,
                   std::uint64_t tasks = 0);

/// Snapshot of every recorded phase, sorted by phase name.
std::vector<std::pair<std::string, PhaseStats>> timing_snapshot();

/// Clears the registry (tests / repeated bench runs).
void timing_reset();

/// Formatted multi-line counter table; empty string when nothing recorded.
std::string timing_report();

/// RAII phase scope: accumulates the enclosed wall time on destruction.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase, std::uint64_t tasks = 0)
      : phase_(std::move(phase)),
        tasks_(tasks),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timing_record(phase_,
                  std::chrono::duration<double, std::milli>(elapsed).count(),
                  tasks_);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::uint64_t tasks_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace smart::util
