#include "util/serialize_io.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace smart::util {

bool parse_f64_strict(const std::string& token, double& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (errno == ERANGE && std::isinf(value)) return false;  // overflowed
  out = value;
  return true;
}

bool parse_i64_strict(const std::string& token, long long& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  if (errno == ERANGE) return false;
  out = value;
  return true;
}

bool parse_u64_strict(const std::string& token, std::uint64_t& out) {
  if (token.empty()) return false;
  // strtoull happily negates "-1" into 2^64-1; only digits are acceptable.
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  if (errno == ERANGE) return false;
  out = value;
  return true;
}

std::string read_token(std::istream& in, const std::string& what) {
  std::string token;
  if (!(in >> token)) {
    throw std::runtime_error(what + ": unexpected end of input");
  }
  return token;
}

void expect_word(std::istream& in, const std::string& word,
                 const std::string& what) {
  const std::string token = read_token(in, what);
  if (token != word) {
    throw std::runtime_error(what + ": expected '" + word + "', got '" + token +
                             "'");
  }
}

long long read_i64(std::istream& in, const std::string& what) {
  const std::string token = read_token(in, what);
  long long value = 0;
  if (!parse_i64_strict(token, value)) {
    throw std::runtime_error(what + ": bad integer '" + token + "'");
  }
  return value;
}

std::uint64_t read_u64(std::istream& in, const std::string& what) {
  const std::string token = read_token(in, what);
  std::uint64_t value = 0;
  if (!parse_u64_strict(token, value)) {
    throw std::runtime_error(what + ": bad unsigned integer '" + token + "'");
  }
  return value;
}

int read_int(std::istream& in, const std::string& what) {
  const long long value = read_i64(in, what);
  if (value < INT_MIN || value > INT_MAX) {
    throw std::runtime_error(what + ": integer out of range");
  }
  return static_cast<int>(value);
}

std::size_t read_size(std::istream& in, const std::string& what) {
  const std::uint64_t value = read_u64(in, what);
  if (value > std::numeric_limits<std::size_t>::max()) {
    throw std::runtime_error(what + ": size out of range");
  }
  return static_cast<std::size_t>(value);
}

double read_f64(std::istream& in, const std::string& what,
                bool require_finite) {
  const std::string token = read_token(in, what);
  double value = 0.0;
  if (!parse_f64_strict(token, value)) {
    throw std::runtime_error(what + ": bad number '" + token + "'");
  }
  if (require_finite && !std::isfinite(value)) {
    throw std::runtime_error(what + ": non-finite value '" + token + "'");
  }
  return value;
}

float read_f32(std::istream& in, const std::string& what, bool require_finite) {
  // Parse as double, then narrow: every float is exactly representable as a
  // double and write_f32 widened exactly, so the narrowing is lossless.
  const double value = read_f64(in, what, require_finite);
  return static_cast<float>(value);
}

void write_f64(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out << buf;
}

void write_f32(std::ostream& out, float v) {
  write_f64(out, static_cast<double>(v));
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace smart::util
