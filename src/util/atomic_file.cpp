#include "util/atomic_file.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/fault.hpp"
#include "util/serialize_io.hpp"

namespace smart::util {

void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& writer) {
  // Suffix with the pid so concurrent writers of the same destination
  // cannot clobber each other's temp file; last rename wins atomically.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("atomic_write: cannot open temp file " + tmp);
    }
    // The io fault site models a write that dies mid-stream (disk full,
    // quota): it must surface as an error with the destination untouched.
    FaultInjector::global().inject(FaultSite::kIo, fnv1a64(path));
    writer(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("atomic_write: write to " + tmp + " failed");
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write: cannot rename " + tmp + " over " +
                             path);
  }
}

}  // namespace smart::util
