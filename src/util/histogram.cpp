#include "util/histogram.hpp"

#include <bit>
#include <cmath>

namespace smart::util {

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kLinearMax) return static_cast<std::size_t>(value);
  const int exponent = std::bit_width(value) - 1;  // >= kSubBits + 1
  const std::uint64_t sub = (value >> (exponent - kSubBits)) & ((1u << kSubBits) - 1);
  return static_cast<std::size_t>(kLinearMax) +
         static_cast<std::size_t>(exponent - (kSubBits + 1)) * (1u << kSubBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::size_t bucket) noexcept {
  if (bucket < kLinearMax) return bucket;
  const std::size_t rel = bucket - static_cast<std::size_t>(kLinearMax);
  const int exponent = static_cast<int>(rel / (1u << kSubBits)) + kSubBits + 1;
  const std::uint64_t sub = rel % (1u << kSubBits);
  const std::uint64_t width = 1ull << (exponent - kSubBits);
  return (1ull << exponent) + (sub + 1) * width - 1;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  ++total_;
  if (value > max_) max_ = value;
  if (value >= kMaxTrackable) {
    ++overflow_;
    return;
  }
  ++counts_[bucket_index(value)];
}

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  if (total_ == 0) return 0;
  if (p <= 0.0) p = 100.0 / static_cast<double>(total_);
  if (p > 100.0) p = 100.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += counts_[b];
    if (cumulative >= rank) return bucket_upper_bound(b);
  }
  return max_;  // rank falls into the overflow bucket
}

void LatencyHistogram::reset() noexcept {
  counts_.fill(0);
  overflow_ = 0;
  total_ = 0;
  max_ = 0;
}

}  // namespace smart::util
