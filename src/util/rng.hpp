// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in StencilMART (stencil generation, parameter sampling,
// simulated measurement noise, weight initialization, data shuffling) flows
// through Rng so that every experiment is bit-reproducible given a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace smart::util {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine two 64-bit values into one (boost::hash_combine style, widened).
/// Used to derive per-measurement noise seeds from (stencil, OC, GPU) hashes.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Lemire-style rejection-free mapping (bias is negligible at 64 bits,
    // but use the multiply-shift reduction for uniformity anyway).
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * span;
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no trig, deterministic).
  double normal() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    have_cached_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derives an independent stream for parallel task `index`. The child
  /// depends only on this generator's current state and the index — never
  /// on which thread runs the task or in which order tasks are claimed —
  /// so seeding one split per loop index keeps parallel results
  /// bit-identical for any thread count (see util/task_pool.hpp). Does not
  /// advance this generator; advance it explicitly (one operator() call)
  /// between consecutive split families that must differ.
  Rng split(std::uint64_t index) const noexcept {
    const std::uint64_t mixed =
        hash_combine(hash_combine(state_[0], state_[1]),
                     hash_combine(state_[2] ^ state_[3], index));
    return Rng(mixed);
  }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    shuffle(idx);
    return idx;
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace smart::util
