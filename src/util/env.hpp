// Experiment scaling knobs. The paper trains on 500+500 stencils and ~141k
// profiled instances per GPU; the bench harness defaults to a scaled-down
// dataset so that every figure regenerates in seconds on a laptop. Set
// SMART_SCALE=1.0 (or more) to approach paper scale.
#pragma once

#include <string>

namespace smart::util {

/// Reads a double from the environment, returning fallback when unset or
/// unparsable.
double env_double(const std::string& name, double fallback);

/// Reads an integer from the environment, returning fallback when unset or
/// unparsable.
long long env_int(const std::string& name, long long fallback);

/// Global experiment scale in (0, inf). 1.0 reproduces a paper-sized run;
/// the default 0.25 keeps every bench to a few minutes on one core.
double experiment_scale();

/// max(minimum, round(base * experiment_scale())).
int scaled(int base, int minimum = 1);

}  // namespace smart::util
