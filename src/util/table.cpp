#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smart::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) row();
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule_width = 2 * widths.size();
  for (std::size_t w : widths) rule_width += w;
  os << "  " << std::string(rule_width - 2, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      // Quote cells containing separators.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : cells[c]) {
          if (ch == '"') out << "\"\"";
          else out << ch;
        }
        out << '"';
      } else {
        out << cells[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace smart::util
