// Fixed thread pool with chunked, self-scheduling parallel loops — the
// parallel substrate for the profiling + training pipeline (replaces the
// OpenMP-only parallel.hpp shim).
//
// Determinism contract:
//  * parallel_for invokes body(i) exactly once per index and requires
//    disjoint writes per index, so outputs are bit-identical for any
//    thread count (including SMART_THREADS=1).
//  * parallel_reduce decomposes [0, n) into a block grid that depends only
//    on n — never on the thread count — computes each block sequentially
//    and combines partials in block order, so its result is also
//    independent of the thread count.
//  * Randomized parallel work must derive one generator per index via
//    util::Rng::split (rng.hpp) instead of sharing a sequential stream.
//
// Scheduling: loops are split into ~8 chunks per participating thread and
// claimed through an atomic cursor, so threads that finish early steal the
// remaining tail from slow ones. The calling thread always participates,
// which also makes nested parallel_for safe (an inner loop completes on
// its caller even when every pool worker is busy in the outer loop).
//
// Exceptions: the first exception thrown by any body is rethrown on the
// caller once the loop drains; remaining chunks are skipped (their bodies
// may never run), so state touched by a throwing loop is unspecified.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace smart::util {

/// RAII guard: while any SerialSection is alive on a thread, every parallel
/// loop issued from that thread runs inline on it. This is how the
/// determinism tests (and scripts/check.sh) obtain a 1-thread run without
/// restarting the process with SMART_THREADS=1.
class SerialSection {
 public:
  SerialSection() noexcept { ++depth_; }
  ~SerialSection() { --depth_; }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;
  static bool active() noexcept { return depth_ > 0; }

 private:
  // Inline so every TU accesses the TLS slot directly; an out-of-line
  // definition makes GCC route access through a TLS wrapper call that
  // UBSan flags as a potential null dereference (GCC bug 84250).
  static inline thread_local int depth_ = 0;
};

class TaskPool {
 public:
  /// Thread count the pool starts for `requested`: a positive request wins,
  /// otherwise the SMART_THREADS env var, otherwise hardware concurrency.
  static int decide_threads(int requested = 0);

  /// The process-wide pool (sized by decide_threads(0) at first use).
  static TaskPool& global();

  explicit TaskPool(int threads = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Threads participating in a loop: pool workers + the calling thread.
  int num_threads() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Invokes body(i) exactly once for every i in [0, n). Bodies must write
  /// disjoint state per index. The first exception is rethrown here.
  template <typename Body>
  void for_each(std::size_t n, Body&& body) {
    if (n == 0) return;
    if (workers_.empty() || n == 1 || SerialSection::active()) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    const std::function<void(std::size_t, std::size_t)> range =
        [&body](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) body(i);
        };
    run_chunked(n, range);
  }

  /// Deterministic reduction: folds combine(acc, map(i)) over a block grid
  /// fixed by n alone, then folds the per-block partials in block order.
  /// Requires combine(identity, x) == x. The result is identical for any
  /// thread count (though the FP rounding may differ from a single
  /// left-to-right fold — it matches the fixed block decomposition).
  template <typename T, typename Map, typename Combine>
  T reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
    if (n == 0) return identity;
    const std::size_t blocks = reduce_blocks(n);
    std::vector<T> partials(blocks, identity);
    for_each(blocks, [&](std::size_t b) {
      const std::size_t begin = b * n / blocks;
      const std::size_t end = (b + 1) * n / blocks;
      T acc = std::move(partials[b]);
      for (std::size_t i = begin; i < end; ++i) {
        acc = combine(std::move(acc), map(i));
      }
      partials[b] = std::move(acc);
    });
    T out = std::move(partials[0]);
    for (std::size_t b = 1; b < blocks; ++b) {
      out = combine(std::move(out), std::move(partials[b]));
    }
    return out;
  }

  /// Block count reduce() uses for n items — a function of n only.
  static std::size_t reduce_blocks(std::size_t n) noexcept {
    return n < kReduceBlocks ? n : kReduceBlocks;
  }

 private:
  struct Task;
  static constexpr std::size_t kReduceBlocks = 64;

  void run_chunked(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& range);
  void work_on(Task& task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  bool stop_ = false;
};

/// Threads the global pool's loops use.
inline int parallel_threads() { return TaskPool::global().num_threads(); }

/// Global-pool frontends — the common call sites.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  TaskPool::global().for_each(n, std::forward<Body>(body));
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
  return TaskPool::global().reduce(n, identity, std::forward<Map>(map),
                                   std::forward<Combine>(combine));
}

}  // namespace smart::util
