#include "util/env.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace smart::util {

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

long long env_int(const std::string& name, long long fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

double experiment_scale() {
  static const double scale = [] {
    const double s = env_double("SMART_SCALE", 0.25);
    return s > 0.0 ? s : 0.1;
  }();
  return scale;
}

int scaled(int base, int minimum) {
  const double scaled_value = std::round(static_cast<double>(base) * experiment_scale());
  return std::max(minimum, static_cast<int>(scaled_value));
}

}  // namespace smart::util
