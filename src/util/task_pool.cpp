#include "util/task_pool.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace smart::util {

/// One parallel loop in flight. Chunks are claimed through `next`; `running`
/// counts threads currently inside work_on so the caller knows when every
/// helper has drained. Workers hold a shared_ptr, so a Task outlives its
/// entry in the pool queue; the range functor pointer is only dereferenced
/// while unclaimed chunks remain, which the caller's completion wait
/// guarantees cannot happen after run_chunked returns.
struct TaskPool::Task {
  const std::function<void(std::size_t, std::size_t)>* range = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<int> running{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mu;
  std::condition_variable done;
};

int TaskPool::decide_threads(int requested) {
  long long n = requested;
  if (n <= 0) n = env_int("SMART_THREADS", 0);
  if (n <= 0) n = static_cast<long long>(std::thread::hardware_concurrency());
  return static_cast<int>(std::clamp<long long>(n, 1, 256));
}

TaskPool& TaskPool::global() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool(int threads) {
  const int total = decide_threads(threads);
  workers_.reserve(static_cast<std::size_t>(total - 1));
  for (int t = 1; t < total; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // predicate held, so stop_ is set
      task = queue_.front();
    }
    work_on(*task);
    // Drop the task from the queue once its chunks are all claimed, so idle
    // workers stop revisiting it. The issuing thread also erases it; the
    // double erase is resolved by the find.
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(queue_.begin(), queue_.end(), task);
    if (it != queue_.end() &&
        task->next.load(std::memory_order_relaxed) >= task->n) {
      queue_.erase(it);
    }
  }
}

void TaskPool::work_on(Task& t) {
  t.running.fetch_add(1, std::memory_order_acq_rel);
  for (;;) {
    const std::size_t begin = t.next.fetch_add(t.chunk, std::memory_order_relaxed);
    if (begin >= t.n) break;
    const std::size_t end = std::min(t.n, begin + t.chunk);
    if (t.failed.load(std::memory_order_relaxed)) continue;  // drain, skip work
    try {
      (*t.range)(begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(t.mu);
      if (!t.failed.exchange(true)) t.error = std::current_exception();
    }
  }
  if (t.running.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last one out: wake the caller (lock pairs with its predicate check).
    const std::lock_guard<std::mutex> lock(t.mu);
    t.done.notify_all();
  }
}

void TaskPool::run_chunked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& range) {
  const auto task = std::make_shared<Task>();
  task->range = &range;
  task->n = n;
  // ~8 chunks per participant: low claiming overhead, but enough slack that
  // finished threads steal the tail from slow ones.
  const std::size_t parts = static_cast<std::size_t>(num_threads()) * 8;
  task->chunk = std::max<std::size_t>(1, (n + parts - 1) / parts);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(task);
  }
  cv_.notify_all();
  work_on(*task);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(task->mu);
    task->done.wait(lock, [&] {
      return task->next.load(std::memory_order_acquire) >= task->n &&
             task->running.load(std::memory_order_acquire) == 0;
    });
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(queue_.begin(), queue_.end(), task);
    if (it != queue_.end()) queue_.erase(it);
  }
  if (task->error) std::rethrow_exception(task->error);
}

}  // namespace smart::util
