// Plain-text table and CSV emitters used by the bench harness to print
// paper-style rows (one table/figure per bench binary).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace smart::util {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision. Rendered with a header rule, suitable for logs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 3);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders the table (header, rule, rows) to the stream.
  void print(std::ostream& os) const;

  /// Writes the table as CSV (header + rows) to the given path.
  /// Throws std::runtime_error if the file cannot be opened.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with Table).
std::string format_double(double value, int precision);

}  // namespace smart::util
