#include "util/transport.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace smart::util {

namespace {

constexpr int kPollTimeoutMs = 50;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

void LineChannel::set_write_timeout_ms(int ms) {
  write_timeout_ms_ = ms;
  if (ms <= 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("serve: fcntl(F_GETFL) failed");
  if ((flags & O_NONBLOCK) == 0 &&
      ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("serve: fcntl(F_SETFL, O_NONBLOCK) failed");
  }
}

bool LineChannel::fill(const std::atomic<bool>* stop,
                       LineChannel::ReadResult& result, int& waited_ms) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      result = ReadResult::kInterrupted;
      return false;
    }
    if (idle_timeout_ms_ > 0 && waited_ms >= idle_timeout_ms_) {
      result = ReadResult::kIdleTimeout;
      return false;
    }
    int slice = kPollTimeoutMs;
    if (idle_timeout_ms_ > 0 && idle_timeout_ms_ - waited_ms < slice) {
      slice = idle_timeout_ms_ - waited_ms;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the stop flag
      throw_errno("serve: poll failed");
    }
    if (ready == 0) {
      waited_ms += slice;  // timeout: re-check stop flag and idle budget
      continue;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A non-blocking fd (write-timeout mode) can race poll readiness.
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("serve: read failed");
    }
    if (n == 0) {
      result = ReadResult::kEof;
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
}

LineChannel::ReadResult LineChannel::read_line(std::string& line,
                                               const std::atomic<bool>* stop) {
  int waited_ms = 0;  // idle budget spans the whole read_line call
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      if (discarding_) {
        // Tail of an oversize line: drop it and hand back the truncated head.
        pos_ = nl + 1;
        discarding_ = false;
        line = std::move(oversize_);
        oversize_.clear();
      } else {
        line.assign(buf_, pos_, nl - pos_);
        pos_ = nl + 1;
      }
      if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
      } else if (pos_ > kMaxLineBytes) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return ReadResult::kLine;
    }

    // No newline buffered. Cap the pending partial line before reading more.
    if (!discarding_ && buf_.size() - pos_ > kMaxLineBytes) {
      oversize_.assign(buf_, pos_, kMaxLineBytes + 1);
      discarding_ = true;
      buf_.clear();
      pos_ = 0;
    } else if (discarding_) {
      buf_.clear();
      pos_ = 0;
    }

    ReadResult result = ReadResult::kEof;
    if (!fill(stop, result, waited_ms)) {
      if (result == ReadResult::kEof) {
        if (discarding_) {
          discarding_ = false;
          line = std::move(oversize_);
          oversize_.clear();
          return ReadResult::kLine;
        }
        if (pos_ < buf_.size()) {
          // Unterminated final line.
          line.assign(buf_, pos_, buf_.size() - pos_);
          buf_.clear();
          pos_ = 0;
          if (!line.empty() && line.back() == '\r') line.pop_back();
          return ReadResult::kLine;
        }
      }
      return result;
    }
  }
}

void LineChannel::write_all(std::string_view data) {
  std::size_t written = 0;
  int stalled_ms = 0;  // time spent waiting for the peer's buffer to drain
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd (write-timeout mode): wait for drain, bounded.
        if (write_timeout_ms_ > 0 && stalled_ms >= write_timeout_ms_) {
          throw std::runtime_error(
              "serve: peer too slow draining replies (write timeout)");
        }
        int slice = kPollTimeoutMs;
        if (write_timeout_ms_ > 0 && write_timeout_ms_ - stalled_ms < slice) {
          slice = write_timeout_ms_ - stalled_ms;
        }
        pollfd pfd{fd_, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, slice);
        if (ready < 0 && errno != EINTR) throw_errno("serve: poll(out) failed");
        if (ready == 0) stalled_ms += slice;
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        throw std::runtime_error(
            "serve: peer closed the connection mid-reply");
      }
      throw_errno("serve: write failed");
    }
    written += static_cast<std::size_t>(n);
    stalled_ms = 0;  // progress resets the stall clock
  }
}

namespace {

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path '" + path +
                             "' is empty or too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket failed");
  ::unlink(path.c_str());  // take over a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: bind('" + path + "') failed");
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw_errno("serve: listen failed");
  }
  return fd;
}

int accept_unix(int listen_fd, const std::atomic<bool>* stop) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return -1;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve: poll(listen) failed");
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("serve: accept failed");
    }
    return fd;
  }
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("serve: socket failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    if (saved == EINTR) continue;  // interrupted: retry with a fresh socket
    errno = saved;
    throw_errno("serve: connect('" + path + "') failed");
  }
}

}  // namespace smart::util
