// Byte transports for the serve daemon: a buffered line reader/writer over
// a raw file descriptor (works for stdin/stdout and for sockets alike) plus
// AF_UNIX listen/accept/connect helpers. All blocking operations poll with
// a short timeout and honour an optional stop flag, so a SIGTERM handler
// that sets the flag unblocks the daemon within one poll interval without
// relying on EINTR semantics of any particular libc wrapper.
//
// Oversize handling: a line longer than kMaxLineBytes is returned truncated
// to kMaxLineBytes + 1 bytes and the remainder up to the next newline is
// discarded, so the protocol layer sees one over-limit "line" (which it
// rejects) and the stream stays synchronized — an attacker feeding an
// endless newline-free stream cannot grow the buffer without bound.
//
// Error handling: write_all throws std::runtime_error on any write failure
// (EPIPE surfaces as an exception instead of SIGPIPE death — the daemon
// ignores SIGPIPE while serving), and read failures other than EOF throw
// likewise.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

namespace smart::util {

/// Hard cap on one protocol line (request or response).
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

class LineChannel {
 public:
  /// Wraps (but does not own) an open file descriptor.
  explicit LineChannel(int fd) noexcept : fd_(fd) {}

  enum class ReadResult {
    kLine,         // `line` holds the next newline-terminated line
    kEof,          // orderly end of stream (no partial data pending)
    kInterrupted,  // the stop flag was raised before a full line arrived
  };

  /// Reads the next '\n'-terminated line (terminator stripped; a trailing
  /// '\r' is also stripped so CRLF clients work). A final unterminated line
  /// at EOF is returned as a line; the following call reports kEof. Lines
  /// beyond kMaxLineBytes are truncated to kMaxLineBytes + 1 bytes (see
  /// header comment). Throws std::runtime_error on read errors.
  ReadResult read_line(std::string& line, const std::atomic<bool>* stop = nullptr);

  /// Writes every byte of `data`. Throws std::runtime_error on failure
  /// (EPIPE is reported as "peer closed the connection mid-reply").
  void write_all(std::string_view data);

  int fd() const noexcept { return fd_; }

 private:
  /// Appends more bytes to buf_. Returns false on EOF/stop with `result`
  /// set; true when bytes arrived.
  bool fill(const std::atomic<bool>* stop, ReadResult& result);

  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;     // first unconsumed byte of buf_
  bool discarding_ = false; // inside the tail of an oversize line
  std::string oversize_;    // truncated head of the oversize line
};

/// Creates, binds and listens on an AF_UNIX stream socket. Any stale socket
/// file at `path` is removed first (the daemon takes ownership of the
/// path). Throws std::runtime_error on failure (including over-long paths).
int listen_unix(const std::string& path);

/// Accepts one connection, polling so `stop` is honoured. Returns the
/// connection fd, or -1 when the stop flag was raised. Throws on errors.
int accept_unix(int listen_fd, const std::atomic<bool>* stop = nullptr);

/// Connects to an AF_UNIX stream socket. Throws std::runtime_error when the
/// connection cannot be established.
int connect_unix(const std::string& path);

}  // namespace smart::util
