// Byte transports for the serve daemon: a buffered line reader/writer over
// a raw file descriptor (works for stdin/stdout and for sockets alike) plus
// AF_UNIX listen/accept/connect helpers. All blocking operations poll with
// a short timeout and honour an optional stop flag, so a SIGTERM handler
// that sets the flag unblocks the daemon within one poll interval without
// relying on EINTR semantics of any particular libc wrapper. Interrupted
// poll/read/write/connect calls (EINTR) are always retried — a SIGHUP
// aimed at the reload path must never surface as a spurious I/O error on
// an unrelated connection.
//
// Oversize handling: a line longer than kMaxLineBytes is returned truncated
// to kMaxLineBytes + 1 bytes and the remainder up to the next newline is
// discarded, so the protocol layer sees one over-limit "line" (which it
// rejects) and the stream stays synchronized — an attacker feeding an
// endless newline-free stream cannot grow the buffer without bound.
//
// Error handling: write_all throws std::runtime_error on any write failure
// (EPIPE surfaces as an exception instead of SIGPIPE death — the daemon
// ignores SIGPIPE while serving), and read failures other than EOF throw
// likewise.
//
// Timeouts: set_idle_timeout_ms bounds how long read_line waits for the
// next byte (kIdleTimeout result — the daemon reaps idle connections);
// set_write_timeout_ms switches the fd to non-blocking and bounds how long
// write_all waits for the peer to drain its socket buffer (a slow reader
// becomes a thrown error instead of a stalled daemon thread).
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

namespace smart::util {

/// Hard cap on one protocol line (request or response).
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

class LineChannel {
 public:
  /// Wraps (but does not own) an open file descriptor.
  explicit LineChannel(int fd) noexcept : fd_(fd) {}

  enum class ReadResult {
    kLine,         // `line` holds the next newline-terminated line
    kEof,          // orderly end of stream (no partial data pending)
    kInterrupted,  // the stop flag was raised before a full line arrived
    kIdleTimeout,  // no bytes arrived within the idle timeout
  };

  /// Reads the next '\n'-terminated line (terminator stripped; a trailing
  /// '\r' is also stripped so CRLF clients work). A final unterminated line
  /// at EOF is returned as a line; the following call reports kEof. Lines
  /// beyond kMaxLineBytes are truncated to kMaxLineBytes + 1 bytes (see
  /// header comment). Throws std::runtime_error on read errors.
  ReadResult read_line(std::string& line, const std::atomic<bool>* stop = nullptr);

  /// Writes every byte of `data`. Throws std::runtime_error on failure
  /// (EPIPE is reported as "peer closed the connection mid-reply"; a write
  /// timeout as "peer too slow draining replies").
  void write_all(std::string_view data);

  /// Bounds one read_line call: when no bytes arrive for `ms` milliseconds
  /// the call returns kIdleTimeout instead of blocking forever. 0 disables
  /// (the default).
  void set_idle_timeout_ms(int ms) noexcept { idle_timeout_ms_ = ms; }

  /// Bounds one write_all call: when the peer's socket buffer stays full
  /// for `ms` milliseconds the call throws. Switches the fd to
  /// non-blocking mode (reads keep working — fill() handles EAGAIN).
  /// 0 disables (the default).
  void set_write_timeout_ms(int ms);

  int fd() const noexcept { return fd_; }

 private:
  /// Appends more bytes to buf_. Returns false on EOF/stop/idle-timeout
  /// with `result` set; true when bytes arrived. `waited_ms` accumulates
  /// poll time across fill calls of one read_line.
  bool fill(const std::atomic<bool>* stop, ReadResult& result, int& waited_ms);

  int fd_;
  int idle_timeout_ms_ = 0;
  int write_timeout_ms_ = 0;
  std::string buf_;
  std::size_t pos_ = 0;     // first unconsumed byte of buf_
  bool discarding_ = false; // inside the tail of an oversize line
  std::string oversize_;    // truncated head of the oversize line
};

/// Creates, binds and listens on an AF_UNIX stream socket. Any stale socket
/// file at `path` is removed first (the daemon takes ownership of the
/// path). Throws std::runtime_error on failure (including over-long paths).
int listen_unix(const std::string& path);

/// Accepts one connection, polling so `stop` is honoured. Returns the
/// connection fd, or -1 when the stop flag was raised. Throws on errors.
int accept_unix(int listen_fd, const std::atomic<bool>* stop = nullptr);

/// Connects to an AF_UNIX stream socket, retrying interrupted attempts.
/// Throws std::runtime_error when the connection cannot be established.
int connect_unix(const std::string& path);

}  // namespace smart::util
