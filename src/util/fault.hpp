// Deterministic fault injection for the profiling pipeline.
//
// Real profiling sweeps die in three characteristic ways: a measurement
// fails transiently (launch timeout, ECC retry, preemption), a worker hits
// an unexpected exception (driver bug, OOM), or an artifact write fails
// mid-stream (disk full, quota). This harness injects all three at seeded
// points so every recovery path — retry, quarantine, journal resume,
// atomic-write rollback — is testable without real hardware or real luck.
//
// Determinism contract: whether a fault fires is a pure function of
// (spec seed, site, identity hash, attempt index). No global RNG state is
// consumed, so injected faults never perturb measured values — a run that
// retries through transient faults produces measurements bit-identical to a
// fault-free run — and the fault schedule is independent of thread count
// and of process restarts (the attempt index is persisted by the profiling
// journal across resumes).
//
// Spec grammar (SMART_FAULTS env var or `smartctl profile --faults`):
//
//   spec    := element (';' element)*
//   element := 'seed=' uint
//            | 'measure:transient:p=' float [':fails=' uint]
//            | 'measure:permanent:p=' float
//            | 'worker:p=' float [':fails=' uint]
//            | 'io:p=' float
//            | 'accept:p=' float [':fails=' uint]
//            | 'read:p=' float [':fails=' uint]
//            | 'write:p=' float [':fails=' uint]
//
// `p` is the probability that a given identity is faulty at all; `fails`
// (default 1) is how many leading attempts a faulty transient/worker
// identity fails before succeeding. Permanent and io faults fail every
// attempt.
//
// The accept/read/write sites target the serve daemon (identity = the
// connection counter, attempt = the per-connection operation index): an
// injected accept fault drops a freshly accepted connection, read/write
// faults sever an established one mid-stream. They throw transient
// FaultErrors; the daemon's chaos contract is that surviving connections
// still receive byte-deterministic replies.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace smart::util {

enum class FaultSite { kMeasure, kWorker, kIo, kAccept, kRead, kWrite };

const char* to_string(FaultSite site) noexcept;

struct FaultRule {
  FaultSite site = FaultSite::kMeasure;
  bool permanent = false;  // fails every attempt (measure:permanent, io)
  double p = 0.0;          // probability an identity is faulty
  int fails = 1;           // leading attempts a faulty identity fails
};

struct FaultSpec {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const noexcept { return rules.empty(); }
  /// Canonical text form; parse_fault_spec(to_string()) == *this. Used by
  /// the profiling journal to pin a resume to the original fault schedule.
  std::string to_string() const;
};

/// Parses the spec grammar above. Throws std::invalid_argument naming the
/// offending element on malformed input (unknown site, p outside [0, 1],
/// unparsable number). An empty string yields an empty (disabled) spec.
FaultSpec parse_fault_spec(const std::string& text);

/// Injected transient/permanent measurement failures. The retry loop in the
/// corpus sweep catches these: transient() faults are retried within the
/// budget, everything else quarantines the work unit.
class FaultError : public std::runtime_error {
 public:
  FaultError(const std::string& what, bool transient)
      : std::runtime_error(what), transient_(transient) {}
  bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// Injected unexpected worker exception. Deliberately NOT a FaultError:
/// it models a crash the sweep does not know how to handle, so it escapes
/// the retry loop, aborts the run through the task pool, and exercises the
/// journal + --resume recovery path.
class WorkerCrashError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

  bool enabled() const noexcept { return !spec_.empty(); }
  const FaultSpec& spec() const noexcept { return spec_; }

  /// Pure decision: the first rule for `site` that fires at
  /// (identity, attempt), or nullptr. Thread-safe, consumes no RNG state.
  const FaultRule* check(FaultSite site, std::uint64_t identity,
                         int attempt) const noexcept;

  /// Throws the fault matched by check(): FaultError for measure sites
  /// (transient or permanent), WorkerCrashError for worker, FaultError
  /// (permanent) for io. No-op when nothing fires.
  void inject(FaultSite site, std::uint64_t identity, int attempt = 0) const;

  /// The process-wide injector. First use parses SMART_FAULTS (empty /
  /// unset = disabled); set_global replaces it (CLI --faults, tests).
  static const FaultInjector& global();
  static void set_global(FaultSpec spec);

 private:
  FaultSpec spec_;
};

/// RAII for tests: installs `spec` as the global injector and restores the
/// previous global on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultSpec spec);
  explicit ScopedFaultInjection(const std::string& spec_text);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultSpec previous_;
};

}  // namespace smart::util
