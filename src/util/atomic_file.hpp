// Crash-safe file replacement: write to a temp file in the destination's
// directory, flush, then rename over the destination. Rename is atomic on
// POSIX, so readers observe either the complete old file or the complete
// new one — never a truncated tail. save_dataset / save_model / every
// checksummed artifact writer goes through here, because a half-written
// checksummed file is indistinguishable from corruption to its reader.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace smart::util {

/// Streams `writer(out)` into `<path>.tmp.<pid>` and renames it over
/// `path` after a successful flush. On ANY failure — writer exception,
/// stream error, rename failure, injected io fault (util/fault) — the
/// temp file is removed and `path` is left exactly as it was. Throws
/// std::runtime_error (or rethrows the writer's exception).
void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& writer);

}  // namespace smart::util
