// Minimal data-parallel loop helper. Uses OpenMP when compiled with it and
// degrades to a serial loop otherwise; all call sites are race-free by
// construction (each index writes only its own output slot).
#pragma once

#include <cstddef>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace smart::util {

/// Number of hardware threads the parallel loops will use.
inline int parallel_threads() noexcept {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Invokes body(i) for i in [0, n), potentially in parallel.
/// The body must not throw and must touch disjoint state per index.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
#if defined(_OPENMP)
#pragma omp parallel for schedule(dynamic, 1)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace smart::util
