// Monotonic latency histogram for the serve-mode request counters: a
// log-linear bucket layout (HdrHistogram-style) over microsecond values.
// Values below kLinearMax land in exact unit buckets; above that, each
// power-of-two octave is split into 2^kSubBits linear sub-buckets, so the
// relative quantization error is bounded by 1/2^kSubBits (6.25%). Values at
// or beyond kMaxTrackable go to a dedicated overflow bucket. record() is
// O(1) with no allocation, so the serve hot path can time every request.
//
// Percentiles use the nearest-rank definition (the smallest recorded bucket
// whose cumulative count reaches ceil(p/100 * n)) and return the bucket's
// inclusive upper bound, which makes p50/p99 on known sequences exact as
// long as the values are bucket-exact (e.g. < kLinearMax). Not thread-safe;
// the serve layer guards it with its stats mutex.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace smart::util {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear buckets per octave.
  static constexpr int kSubBits = 4;
  /// Values in [0, kLinearMax) are recorded exactly (unit buckets).
  static constexpr std::uint64_t kLinearMax = 1ull << (kSubBits + 1);
  /// Values >= kMaxTrackable (~71 minutes in microseconds) overflow.
  static constexpr std::uint64_t kMaxTrackable = 1ull << 32;

  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t overflow_count() const noexcept { return overflow_; }
  std::uint64_t max_recorded() const noexcept { return max_; }

  /// Nearest-rank percentile, p in (0, 100]. Returns the inclusive upper
  /// bound of the bucket holding the rank-th smallest recorded value; if
  /// that rank lands in the overflow bucket, returns max_recorded().
  /// Returns 0 when nothing has been recorded.
  std::uint64_t percentile(double p) const noexcept;

  void reset() noexcept;

  /// Bucket index a value maps to (exposed for the unit tests).
  static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Largest value mapping to `bucket` (the percentile representative).
  static std::uint64_t bucket_upper_bound(std::size_t bucket) noexcept;

 private:
  // Octaves with exponent in [kSubBits+1, 31] each contribute 2^kSubBits
  // sub-buckets after the kLinearMax exact unit buckets.
  static constexpr std::size_t kOctaves = 32 - (kSubBits + 1);
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kLinearMax) + kOctaves * (1u << kSubBits);

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace smart::util
