#include "util/timing.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>

namespace smart::util {

namespace {

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, PhaseStats>& registry() {
  static std::map<std::string, PhaseStats> phases;
  return phases;
}

}  // namespace

void timing_record(const std::string& phase, double wall_ms,
                   std::uint64_t tasks) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  PhaseStats& stats = registry()[phase];
  stats.wall_ms += wall_ms;
  stats.calls += 1;
  stats.tasks += tasks;
}

std::vector<std::pair<std::string, PhaseStats>> timing_snapshot() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  return {registry().begin(), registry().end()};  // std::map is name-sorted
}

void timing_reset() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
}

std::string timing_report() {
  const auto phases = timing_snapshot();
  if (phases.empty()) return {};
  std::size_t name_width = 5;  // "phase"
  for (const auto& [name, stats] : phases) {
    name_width = std::max(name_width, name.size());
  }
  std::string out = "-- timing counters --\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %12s %8s %10s\n",
                static_cast<int>(name_width), "phase", "wall_ms", "calls",
                "tasks");
  out += line;
  for (const auto& [name, stats] : phases) {
    std::snprintf(line, sizeof(line), "%-*s %12.3f %8llu %10llu\n",
                  static_cast<int>(name_width), name.c_str(), stats.wall_ms,
                  static_cast<unsigned long long>(stats.calls),
                  static_cast<unsigned long long>(stats.tasks));
    out += line;
  }
  return out;
}

}  // namespace smart::util
