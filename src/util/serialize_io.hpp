// Strict token-level I/O shared by every (de)serializer in the tree: the
// dataset corpus format (core/serialize) and the versioned model-artifact
// format (save_model/load_model) both read whitespace-delimited tokens and
// must fail LOUDLY on malformed input — a half-parsed number silently
// becoming 0.0 turns file corruption into garbage predictions.
//
// Numbers round-trip bit-exactly: floating-point values are written as
// hexfloat tokens and parsed back with end-pointer-validated strtod, so a
// save/load cycle reproduces every float and double to the bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace smart::util {

/// End-pointer-validated double parse: the WHOLE token must be consumed
/// (so "2x", "", and "1.0junk" all fail). Returns false on any malformed
/// input; out is untouched on failure. Accepts hexfloat, "nan" and "inf"
/// spellings (callers decide whether non-finite values are legal).
bool parse_f64_strict(const std::string& token, double& out);

/// End-pointer-validated signed integer parse with range checking.
bool parse_i64_strict(const std::string& token, long long& out);

/// End-pointer-validated unsigned parse; rejects leading '-' (strtoull
/// would silently wrap it) and range overflow.
bool parse_u64_strict(const std::string& token, std::uint64_t& out);

/// Reads one whitespace-delimited token; throws std::runtime_error
/// ("<what>: unexpected end of input") when the stream is exhausted.
std::string read_token(std::istream& in, const std::string& what);

/// Reads a token and requires it to equal `word` exactly.
void expect_word(std::istream& in, const std::string& word,
                 const std::string& what);

long long read_i64(std::istream& in, const std::string& what);
std::uint64_t read_u64(std::istream& in, const std::string& what);
int read_int(std::istream& in, const std::string& what);
std::size_t read_size(std::istream& in, const std::string& what);

/// Reads a floating-point token. With require_finite (the default for
/// model weights) NaN and infinity throw — a NaN smuggled into a weight
/// would silently poison every downstream prediction.
double read_f64(std::istream& in, const std::string& what,
                bool require_finite = true);
float read_f32(std::istream& in, const std::string& what,
               bool require_finite = true);

/// Writes one hexfloat token (no surrounding whitespace). Floats are
/// widened to double first; the widening is exact, so the round trip is
/// bit-identical.
void write_f64(std::ostream& out, double v);
void write_f32(std::ostream& out, float v);

/// FNV-1a 64-bit digest of a byte string (the model-artifact checksum).
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

}  // namespace smart::util
