// Descriptive statistics and error metrics used throughout the evaluation:
// Pearson correlation (paper Fig. 3 / Sec. III-C), MAPE (Sec. V-C), geometric
// mean speedups (Figs. 10-11), and distribution summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smart::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double geomean(std::span<const double> xs);   // requires all xs > 0
double median(std::vector<double> xs);        // by value: sorts a copy

/// p-th percentile (p in [0,100]) with linear interpolation.
double percentile(std::vector<double> xs, double p);

/// Pearson correlation coefficient between two equal-length series.
/// Returns 0 when either series has zero variance (degenerate case).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Mean absolute percentage error: mean(|pred - truth| / |truth|) * 100.
/// Entries with truth == 0 are skipped.
double mape(std::span<const double> truth, std::span<const double> pred);

/// Fraction of positions where the two label series agree, in [0,1].
double accuracy(std::span<const int> truth, std::span<const int> pred);

/// Kendall rank correlation (tau-b), used by ordinal-regression baselines
/// (paper Sec. II-C cites Kendall coefficients for ranking quality). Tau-b
/// corrects the denominator for ties — (C-D)/sqrt((n0-n1)(n0-n2)) with
/// n1/n2 counting tied pairs in xs/ys — so a tie-free perfect ranking and
/// one that only merges equal values both score 1. Returns 0 when either
/// input is constant (no untied pair to rank).
double kendall_tau(std::span<const double> xs, std::span<const double> ys);

/// Streaming min/max/mean accumulator for one-pass summaries.
class Accumulator {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace smart::util
