// Dataset (de)serialization: profiling is the expensive step of the
// pipeline on real hardware (hours of kernel measurements), so StencilMART
// persists profiled corpora to a plain-text format that is stable across
// runs and diff-friendly. The format is sectioned:
//
//   [header]   dims max_order num_stencils samples_per_oc seed noise_sigma
//   [stencil]  dims nx ny nz boundary offsets(x:y:z;...)
//   [settings] stencil_idx oc_idx block_x block_y ... tb_depth
//   [times]    stencil_idx gpu_idx oc_idx setting_idx time_ms|crash
#pragma once

#include <iosfwd>
#include <string>

#include "core/profile_dataset.hpp"

namespace smart::core {

/// Writes `dataset` to the stream / file. Throws std::runtime_error on I/O
/// failure.
void save_dataset(const ProfileDataset& dataset, std::ostream& out);
void save_dataset(const ProfileDataset& dataset, const std::string& path);

/// Reads a dataset back. Throws std::runtime_error on parse errors; the
/// result is bit-identical to the saved dataset (validated by tests).
ProfileDataset load_dataset(std::istream& in);
ProfileDataset load_dataset(const std::string& path);

}  // namespace smart::core
