// Dataset and model (de)serialization. Profiling and training are the
// expensive steps of the pipeline (on real hardware: hours of kernel
// measurements, then model fitting), so StencilMART persists both:
//
// Profiled corpora use a plain-text sectioned format that is stable across
// runs and diff-friendly:
//
//   [header]   dims max_order num_stencils samples_per_oc seed noise_sigma
//   [shard]    shard_idx shard_count retries fault_spec|-   (shards only)
//   [stencil]  dims nx ny nz boundary offsets(x:y:z;...)
//   [settings] stencil_idx oc_idx block_x block_y ... tb_depth
//   [times]    stencil_idx gpu_idx oc_idx setting_idx time_ms|crash
//
// Trained models use a versioned, checksummed artifact (the train-once /
// serve-many path):
//
//   stencilmart-model-v1          <- magic + format version
//   payload <byte count>
//   <payload bytes>               <- config / merger / classifiers /
//                                    regression sections, hexfloat weights
//   checksum <16-hex FNV-1a 64>   <- digest of the payload bytes
//
// The envelope makes the failure modes distinguishable: a wrong magic, an
// unsupported version, a truncated payload, and a corrupted payload each
// raise a distinct std::runtime_error. Weights are written as hexfloat
// tokens, so a loaded model predicts bit-identically to the saved one.
#pragma once

#include <iosfwd>
#include <string>

#include "core/mart.hpp"
#include "core/profile_dataset.hpp"

namespace smart::core {

/// Writes `dataset` to the stream / file. Throws std::runtime_error on I/O
/// failure. The path overload writes atomically (util/atomic_file): a
/// failed or interrupted save leaves the destination untouched.
void save_dataset(const ProfileDataset& dataset, std::ostream& out);
void save_dataset(const ProfileDataset& dataset, const std::string& path);

/// Reads a dataset back. Throws std::runtime_error on parse errors with
/// "<source>:<line>: ..." context (e.g. "corpus.txt:1042: unparsable time
/// field '1.2.3'"); the result is bit-identical to the saved dataset
/// (validated by tests). `source` names the stream in error messages.
ProfileDataset load_dataset(std::istream& in,
                            const std::string& source = "<stream>");
ProfileDataset load_dataset(const std::string& path);

/// Writes a trained StencilMart (config, OC merger, per-GPU classifiers,
/// fitted regressor) as a versioned model artifact. Throws std::logic_error
/// before train() and std::runtime_error on I/O failure. Records the
/// "serialize.save" timing phase. The path overload writes atomically.
void save_model(const StencilMart& mart, std::ostream& out);
void save_model(const StencilMart& mart, const std::string& path);

/// Reads a model artifact back into a ready-to-serve StencilMart: advise()
/// and recommend_gpu() work immediately, predict bit-identically to the
/// saved instance, and need no profiling corpus (the loaded mart carries a
/// zero-stencil serving dataset). Throws std::runtime_error with a distinct
/// message for bad magic, unsupported version, truncation, checksum
/// mismatch, and malformed payload; payload parse errors carry
/// "<source>: payload byte offset N: ..." context. Records
/// "serialize.load".
StencilMart load_model(std::istream& in,
                       const std::string& source = "<stream>");
StencilMart load_model(const std::string& path);

/// Envelope metadata of a model artifact, read without parsing the payload.
/// The serve daemon's startup banner and `healthz` reply report these so
/// operators can confirm which artifact is live after a hot reload.
struct ModelArtifactInfo {
  std::string version;   // magic line, e.g. "stencilmart-model-v1"
  std::string checksum;  // 16-hex FNV-1a 64 digest of the payload bytes
};

/// Reads and validates the artifact envelope (magic, payload byte count,
/// checksum) and returns its metadata. Throws the same distinct
/// std::runtime_error diagnostics as load_model for bad magic, unsupported
/// version, truncation, and checksum mismatch.
ModelArtifactInfo inspect_model(std::istream& in);
ModelArtifactInfo inspect_model(const std::string& path);

}  // namespace smart::core
