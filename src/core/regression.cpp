#include "core/regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "gpusim/opt.hpp"
#include "ml/dataset.hpp"
#include "stencil/features.hpp"
#include "stencil/tensor_repr.hpp"
#include "util/serialize_io.hpp"
#include "util/stats.hpp"
#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::core {

namespace {

/// Rows per batched-inference block: bounds the transient feature/tensor
/// matrices (a ConvMLP tensor row is (2N+1)^d floats) while keeping model
/// calls large enough to amortize their fixed cost.
constexpr std::size_t kPredictRows = 512;

}  // namespace

std::string to_string(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kMlp: return "MLP";
    case RegressorKind::kConvMlp: return "ConvMLP";
    case RegressorKind::kGbr: return "GBRegressor";
  }
  return "?";
}

RegressorKind regressor_kind_from_string(const std::string& name) {
  if (name == "MLP") return RegressorKind::kMlp;
  if (name == "ConvMLP") return RegressorKind::kConvMlp;
  if (name == "GBRegressor") return RegressorKind::kGbr;
  throw std::runtime_error("unknown regressor kind '" + name + "'");
}

RegressionTask::RegressionTask(const ProfileDataset& dataset,
                               RegressionConfig config)
    : dataset_(&dataset), config_(config), cache_(dataset) {
  for (std::size_t s = 0; s < dataset.stencils.size(); ++s) {
    for (std::size_t oc = 0; oc < ProfileDataset::num_ocs(); ++oc) {
      for (std::size_t k = 0; k < dataset.settings[s][oc].size(); ++k) {
        for (std::size_t g = 0; g < dataset.num_gpus(); ++g) {
          const double t = dataset.times[s][g][oc][k];
          if (std::isnan(t)) continue;
          instances_.push_back({s, oc, k, g, t});
        }
      }
    }
  }
  if (instances_.size() > config_.instance_cap) {
    util::Rng rng(config_.seed);
    auto keep =
        rng.sample_without_replacement(instances_.size(), config_.instance_cap);
    std::sort(keep.begin(), keep.end());  // keep triple-major ordering
    std::vector<RegressionInstance> subset;
    subset.reserve(keep.size());
    for (std::size_t i : keep) subset.push_back(instances_[i]);
    instances_ = std::move(subset);
  }
  validate_instance_grouping();
}

void RegressionTask::validate_instance_grouping() const {
  for (std::size_t i = 1; i < instances_.size(); ++i) {
    const RegressionInstance& p = instances_[i - 1];
    const RegressionInstance& c = instances_[i];
    const auto pt = std::tie(p.stencil, p.oc, p.setting);
    const auto ct = std::tie(c.stencil, c.oc, c.setting);
    if (ct < pt || (ct == pt && c.gpu <= p.gpu)) {
      throw std::logic_error(
          "RegressionTask: instances not grouped by (stencil, OC, setting) "
          "with strictly increasing GPU — GpuAdvisor and triple_starts() "
          "rely on triple-major ordering");
    }
  }
}

std::vector<std::size_t> RegressionTask::triple_starts() const {
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (i == 0 || instances_[i].stencil != instances_[i - 1].stencil ||
        instances_[i].oc != instances_[i - 1].oc ||
        instances_[i].setting != instances_[i - 1].setting) {
      starts.push_back(i);
    }
  }
  return starts;
}

double RegressionTask::measured(std::size_t idx, std::size_t gpu) const {
  const RegressionInstance& ins = instances_[idx];
  return dataset_->times[ins.stencil][gpu][ins.oc][ins.setting];
}

ml::Matrix RegressionTask::build_aux_features(
    const std::vector<RegressionInstance>& rows,
    bool include_stencil_features) const {
  // Rows assemble from cached segments (bit-identical to feature_row);
  // assemble_aux_rows writes disjoint matrix rows in parallel, so the fill
  // is thread-count invariant.
  std::vector<AuxRowKey> keys;
  keys.reserve(rows.size());
  for (const RegressionInstance& ins : rows) {
    keys.push_back({ins.stencil, ins.oc, ins.setting, ins.gpu});
  }
  ml::Matrix out;
  cache_.assemble_aux_rows(out, keys, include_stencil_features);
  return out;
}

double RegressionTask::predict_variant(const stencil::StencilPattern& pattern,
                                       const gpusim::ProblemSize& problem,
                                       std::size_t oc,
                                       const gpusim::ParamSetting& setting,
                                       std::size_t gpu) const {
  const VariantQuery query{&pattern, problem, oc, setting, gpu};
  return predict_variants({&query, 1})[0];
}

std::vector<double> RegressionTask::predict_variants(
    std::span<const VariantQuery> queries) const {
  if (!fitted_) throw std::logic_error("predict_variant before fit_full");
  const util::PhaseTimer timer("infer.predict_batch", queries.size());
  const bool include_sf = fitted_kind_ != RegressorKind::kConvMlp;
  const bool want_tensor = fitted_kind_ == RegressorKind::kConvMlp;
  const std::size_t dim = cache_.aux_dim(include_sf);

  // Per-call pattern memo: a one-pattern sweep over GPUs/settings (the
  // facade's recommend_gpu) encodes the stencil once, not once per query.
  struct PatternEncoding {
    const stencil::StencilPattern* pattern = nullptr;
    std::vector<float> features;
    std::vector<float> tensor;
  };
  std::vector<PatternEncoding> memo;
  auto encode = [&](const stencil::StencilPattern* p) -> std::size_t {
    for (std::size_t m = 0; m < memo.size(); ++m) {
      if (memo[m].pattern == p) return m;
    }
    PatternEncoding e;
    e.pattern = p;
    if (include_sf) {
      const auto sf =
          stencil::extract_features(*p, dataset_->config.max_order).to_vector();
      e.features.reserve(sf.size());
      for (double v : sf) e.features.push_back(static_cast<float>(v));
    }
    if (want_tensor) {
      e.tensor =
          stencil::PatternTensor(*p, dataset_->config.max_order).to_floats();
    }
    memo.push_back(std::move(e));
    return memo.size() - 1;
  };

  std::vector<double> out(queries.size());
  ml::Matrix aux;
  ml::Matrix tensors;
  // memo index -> block-local tensor row (-1 = not yet in this block).
  std::vector<int> memo_slot;
  std::vector<std::size_t> tensor_row;
  for (std::size_t begin = 0; begin < queries.size(); begin += kPredictRows) {
    const std::size_t n = std::min(queries.size() - begin, kPredictRows);
    aux.resize(n, dim);
    if (want_tensor) tensor_row.resize(n);
    std::vector<std::size_t> uniq;  // memo indices, first-appearance order
    for (std::size_t i = 0; i < n; ++i) {
      const VariantQuery& q = queries[begin + i];
      const std::size_t mi = encode(q.pattern);
      const PatternEncoding& enc = memo[mi];
      float* dst = aux.row(i).data();
      if (include_sf) {
        dst = std::copy(enc.features.begin(), enc.features.end(), dst);
      }
      const auto of = cache_.oc_flags(q.oc);
      dst = std::copy(of.begin(), of.end(), dst);
      for (double v : q.setting.to_feature_vector()) {
        *dst++ = static_cast<float>(v);
      }
      const auto gf = cache_.gpu_features(q.gpu);
      dst = std::copy(gf.begin(), gf.end(), dst);
      for (double v : q.problem.feature_vector()) {
        *dst++ = static_cast<float>(v);
      }
      if (want_tensor) {
        memo_slot.resize(memo.size(), -1);
        if (memo_slot[mi] < 0) {
          memo_slot[mi] = static_cast<int>(uniq.size());
          uniq.push_back(mi);
        }
        tensor_row[i] = static_cast<std::size_t>(memo_slot[mi]);
      }
    }
    if (want_tensor) {
      tensors.resize(uniq.size(), cache_.tensor_dim());
      for (std::size_t u = 0; u < uniq.size(); ++u) {
        const auto& t = memo[uniq[u]].tensor;
        std::copy(t.begin(), t.end(), tensors.row(u).begin());
      }
      for (const std::size_t mi : uniq) memo_slot[mi] = -1;
    }
    const std::vector<double> preds =
        predict_block_log(aux, &tensors, tensor_row);
    for (std::size_t i = 0; i < n; ++i) out[begin + i] = std::exp2(preds[i]);
  }
  return out;
}

ml::Matrix RegressionTask::build_tensor_features(
    const std::vector<RegressionInstance>& rows) const {
  ml::Matrix out(rows.size(), cache_.tensor_dim());
  util::parallel_for(rows.size(), [&](std::size_t i) {
    const auto t = cache_.tensor(rows[i].stencil);
    std::copy(t.begin(), t.end(), out.row(i).begin());
  });
  return out;
}

std::vector<float> RegressionTask::build_targets(
    const std::vector<RegressionInstance>& rows) const {
  std::vector<float> out;
  out.reserve(rows.size());
  for (const RegressionInstance& ins : rows) {
    out.push_back(static_cast<float>(std::log2(ins.time_ms)));
  }
  return out;
}

RegressionCvResult RegressionTask::cross_validate(RegressorKind kind) {
  if (instances_.size() < static_cast<std::size_t>(config_.folds)) {
    throw std::invalid_argument("RegressionTask: too few instances");
  }
  util::Rng rng(config_.seed + static_cast<std::uint64_t>(kind));
  const auto folds = ml::kfold_splits(instances_.size(), config_.folds, rng);

  std::vector<std::vector<double>> truth_per_gpu(dataset_->num_gpus());
  std::vector<std::vector<double>> pred_per_gpu(dataset_->num_gpus());
  std::vector<double> truth_all;
  std::vector<double> pred_all;

  for (const auto& fold : folds) {
    std::vector<RegressionInstance> train_rows;
    std::vector<RegressionInstance> test_rows;
    for (std::size_t i : fold.train_indices) train_rows.push_back(instances_[i]);
    for (std::size_t i : fold.test_indices) test_rows.push_back(instances_[i]);

    const std::vector<float> y_train = build_targets(train_rows);
    std::vector<double> preds_log;

    if (kind == RegressorKind::kGbr) {
      const ml::Matrix x_train = build_aux_features(train_rows, true);
      const ml::Matrix x_test = build_aux_features(test_rows, true);
      ml::GbdtParams params;
      params.seed = config_.seed;
      ml::GbdtRegressor model(params);
      model.fit(x_train, y_train);
      preds_log = model.predict(x_test);
    } else if (kind == RegressorKind::kMlp) {
      ml::MaxAbsScaler scaler;
      const ml::Matrix x_train =
          scaler.fit_transform(build_aux_features(train_rows, true));
      const ml::Matrix x_test =
          scaler.transform(build_aux_features(test_rows, true));
      util::Rng net_rng(config_.seed * 13 + 1);
      ml::TrainConfig tc{config_.epochs, config_.batch_size,
                         config_.learning_rate, config_.seed};
      ml::NnRegressor model(
          ml::make_mlp(x_train.cols(), config_.mlp_hidden_layers,
                       config_.mlp_width, net_rng),
          tc);
      model.fit(x_train, y_train);
      preds_log = model.predict(x_test);
    } else {
      ml::MaxAbsScaler scaler;
      const ml::Matrix aux_train =
          scaler.fit_transform(build_aux_features(train_rows, false));
      const ml::Matrix aux_test =
          scaler.transform(build_aux_features(test_rows, false));
      const ml::Matrix t_train = build_tensor_features(train_rows);
      const ml::Matrix t_test = build_tensor_features(test_rows);
      ml::TrainConfig tc{config_.epochs, config_.batch_size,
                         config_.learning_rate, config_.seed};
      ml::ConvMlpRegressor model(dataset_->config.dims,
                                 dataset_->config.max_order, aux_train.cols(),
                                 tc);
      model.fit(t_train, aux_train, y_train);
      preds_log = model.predict(t_test, aux_test);
    }

    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      const double truth = test_rows[i].time_ms;
      const double pred = std::exp2(preds_log[i]);
      truth_all.push_back(truth);
      pred_all.push_back(pred);
      truth_per_gpu[test_rows[i].gpu].push_back(truth);
      pred_per_gpu[test_rows[i].gpu].push_back(pred);
    }
  }

  RegressionCvResult result;
  result.mape_overall = util::mape(truth_all, pred_all);
  result.mape_per_gpu.resize(dataset_->num_gpus());
  for (std::size_t g = 0; g < dataset_->num_gpus(); ++g) {
    result.mape_per_gpu[g] = util::mape(truth_per_gpu[g], pred_per_gpu[g]);
  }
  return result;
}

void RegressionTask::fit_full(RegressorKind kind) {
  const std::vector<float> y = build_targets(instances_);
  fitted_kind_ = kind;
  if (kind == RegressorKind::kGbr) {
    const ml::Matrix x = build_aux_features(instances_, true);
    ml::GbdtParams params;
    params.seed = config_.seed;
    gbr_ = std::make_unique<ml::GbdtRegressor>(params);
    gbr_->fit(x, y);
  } else if (kind == RegressorKind::kMlp) {
    const ml::Matrix x =
        aux_scaler_.fit_transform(build_aux_features(instances_, true));
    util::Rng net_rng(config_.seed * 13 + 1);
    ml::TrainConfig tc{config_.epochs, config_.batch_size,
                       config_.learning_rate, config_.seed};
    mlp_ = std::make_unique<ml::NnRegressor>(
        ml::make_mlp(x.cols(), config_.mlp_hidden_layers, config_.mlp_width,
                     net_rng),
        tc);
    mlp_->fit(x, y);
  } else {
    const ml::Matrix aux =
        aux_scaler_.fit_transform(build_aux_features(instances_, false));
    const ml::Matrix tensors = build_tensor_features(instances_);
    ml::TrainConfig tc{config_.epochs, config_.batch_size,
                       config_.learning_rate, config_.seed};
    convmlp_ = std::make_unique<ml::ConvMlpRegressor>(
        dataset_->config.dims, dataset_->config.max_order, aux.cols(), tc);
    convmlp_->fit(tensors, aux, y);
  }
  fitted_ = true;
}

void RegressionTask::save_fitted(std::ostream& out) const {
  if (!fitted_) {
    throw std::logic_error("RegressionTask::save_fitted before fit_full");
  }
  out << "fitted " << to_string(fitted_kind_) << '\n';
  aux_scaler_.save(out);
  if (fitted_kind_ == RegressorKind::kGbr) {
    gbr_->save(out);
  } else if (fitted_kind_ == RegressorKind::kMlp) {
    mlp_->save(out);
  } else {
    convmlp_->save(out);
  }
}

void RegressionTask::load_fitted(std::istream& in) {
  util::expect_word(in, "fitted", "RegressionTask::load_fitted");
  const RegressorKind kind =
      regressor_kind_from_string(util::read_token(in, "regressor kind"));
  ml::MaxAbsScaler scaler = ml::MaxAbsScaler::load(in);
  // The NN kinds scale their inputs, so the scaler width is the model's
  // feature width — compare it against this dataset's encoding. (GBR
  // consumes raw features and saves an unfitted, zero-width scaler.)
  if (!scaler.scales().empty()) {
    const bool include_sf = kind != RegressorKind::kConvMlp;
    if (scaler.scales().size() != cache_.aux_dim(include_sf)) {
      throw std::runtime_error(
          "RegressionTask::load_fitted: feature width mismatch — the model "
          "was trained under a different dims/max_order geometry");
    }
  }
  gbr_.reset();
  mlp_.reset();
  convmlp_.reset();
  if (kind == RegressorKind::kGbr) {
    gbr_ = std::make_unique<ml::GbdtRegressor>(ml::GbdtRegressor::load(in));
  } else if (kind == RegressorKind::kMlp) {
    mlp_ = std::make_unique<ml::NnRegressor>(ml::NnRegressor::load(in));
  } else {
    convmlp_ =
        std::make_unique<ml::ConvMlpRegressor>(ml::ConvMlpRegressor::load(in));
  }
  aux_scaler_ = std::move(scaler);
  fitted_kind_ = kind;
  fitted_ = true;
}

std::vector<double> RegressionTask::predict_block_log(
    const ml::Matrix& aux, const ml::Matrix* unique_tensors,
    std::span<const std::size_t> tensor_row) const {
  if (fitted_kind_ == RegressorKind::kGbr) {
    // GBR consumes raw (unscaled) features, matching fit_full.
    return gbr_->predict(aux);
  }
  // The NN kinds scale into a reused scratch matrix: the batched sweeps
  // call this once per 512-row block, and the allocating transform()
  // dominated small-block latency.
  aux_scaler_.transform_into(aux, scaled_scratch_);
  if (fitted_kind_ == RegressorKind::kMlp) {
    return mlp_->predict(scaled_scratch_);
  }
  return convmlp_->predict_gathered(*unique_tensors, tensor_row,
                                    scaled_scratch_);
}

void RegressionTask::predict_pairs(
    std::span<const std::pair<std::size_t, std::size_t>> pairs,
    std::span<double> out_ms) const {
  if (!fitted_) throw std::logic_error("RegressionTask::predict before fit_full");
  const util::PhaseTimer timer("infer.predict_batch", pairs.size());
  const bool include_sf = fitted_kind_ != RegressorKind::kConvMlp;
  ml::Matrix aux;
  ml::Matrix tensors;
  std::vector<AuxRowKey> keys;
  // stencil -> block-local tensor row; reset (for touched entries only)
  // after each block.
  std::vector<int> stencil_slot;
  if (fitted_kind_ == RegressorKind::kConvMlp) {
    stencil_slot.assign(cache_.num_stencils(), -1);
  }
  std::vector<std::size_t> tensor_row;
  for (std::size_t begin = 0; begin < pairs.size(); begin += kPredictRows) {
    const std::size_t n = std::min(pairs.size() - begin, kPredictRows);
    keys.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& [idx, gpu] = pairs[begin + i];
      const RegressionInstance& ins = instances_[idx];
      keys[i] = {ins.stencil, ins.oc, ins.setting, gpu};
    }
    cache_.assemble_aux_rows(aux, keys, include_sf);
    if (fitted_kind_ == RegressorKind::kConvMlp) {
      // An advisor sweep repeats each stencil across many OC/setting/GPU
      // rows: the conv branch only needs each distinct tensor once.
      tensor_row.resize(n);
      std::vector<std::size_t> uniq;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = instances_[pairs[begin + i].first].stencil;
        if (stencil_slot[s] < 0) {
          stencil_slot[s] = static_cast<int>(uniq.size());
          uniq.push_back(s);
        }
        tensor_row[i] = static_cast<std::size_t>(stencil_slot[s]);
      }
      tensors.resize(uniq.size(), cache_.tensor_dim());
      util::parallel_for(uniq.size(), [&](std::size_t u) {
        const auto t = cache_.tensor(uniq[u]);
        std::copy(t.begin(), t.end(), tensors.row(u).begin());
      });
      for (const std::size_t s : uniq) stencil_slot[s] = -1;
    }
    const std::vector<double> preds =
        predict_block_log(aux, &tensors, tensor_row);
    for (std::size_t i = 0; i < n; ++i) out_ms[begin + i] = std::exp2(preds[i]);
  }
}

double RegressionTask::predict(std::size_t idx, std::size_t gpu) const {
  const std::pair<std::size_t, std::size_t> pair{idx, gpu};
  double out = 0.0;
  predict_pairs({&pair, 1}, {&out, 1});
  return out;
}

std::vector<double> RegressionTask::predict_batch(
    std::span<const std::size_t> idxs, std::size_t gpu) const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(idxs.size());
  for (std::size_t idx : idxs) pairs.emplace_back(idx, gpu);
  std::vector<double> out(idxs.size());
  predict_pairs(pairs, out);
  return out;
}

PredictionTable RegressionTask::predict_table(
    std::span<const std::size_t> idxs, std::span<const std::size_t> gpus) const {
  PredictionTable table;
  table.instance_indices.assign(idxs.begin(), idxs.end());
  table.gpu_indices.assign(gpus.begin(), gpus.end());
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(idxs.size() * gpus.size());
  for (std::size_t idx : idxs) {
    for (std::size_t g : gpus) pairs.emplace_back(idx, g);
  }
  table.time_ms.resize(pairs.size());
  predict_pairs(pairs, table.time_ms);
  return table;
}

PredictionTable RegressionTask::predict_table() const {
  std::vector<std::size_t> idxs(instances_.size());
  for (std::size_t i = 0; i < idxs.size(); ++i) idxs[i] = i;
  std::vector<std::size_t> gpus(dataset_->num_gpus());
  for (std::size_t g = 0; g < gpus.size(); ++g) gpus[g] = g;
  return predict_table(idxs, gpus);
}

}  // namespace smart::core
