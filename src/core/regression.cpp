#include "core/regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gpusim/opt.hpp"
#include "ml/dataset.hpp"
#include "stencil/features.hpp"
#include "stencil/tensor_repr.hpp"
#include "util/stats.hpp"

namespace smart::core {

std::string to_string(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kMlp: return "MLP";
    case RegressorKind::kConvMlp: return "ConvMLP";
    case RegressorKind::kGbr: return "GBRegressor";
  }
  return "?";
}

RegressionTask::RegressionTask(const ProfileDataset& dataset,
                               RegressionConfig config)
    : dataset_(&dataset), config_(config) {
  for (std::size_t s = 0; s < dataset.stencils.size(); ++s) {
    for (std::size_t oc = 0; oc < ProfileDataset::num_ocs(); ++oc) {
      for (std::size_t k = 0; k < dataset.settings[s][oc].size(); ++k) {
        for (std::size_t g = 0; g < dataset.num_gpus(); ++g) {
          const double t = dataset.times[s][g][oc][k];
          if (std::isnan(t)) continue;
          instances_.push_back({s, oc, k, g, t});
        }
      }
    }
  }
  if (instances_.size() > config_.instance_cap) {
    util::Rng rng(config_.seed);
    auto keep =
        rng.sample_without_replacement(instances_.size(), config_.instance_cap);
    std::sort(keep.begin(), keep.end());  // keep triple-major ordering
    std::vector<RegressionInstance> subset;
    subset.reserve(keep.size());
    for (std::size_t i : keep) subset.push_back(instances_[i]);
    instances_ = std::move(subset);
  }
}

double RegressionTask::measured(std::size_t idx, std::size_t gpu) const {
  const RegressionInstance& ins = instances_[idx];
  return dataset_->times[ins.stencil][gpu][ins.oc][ins.setting];
}

std::vector<float> RegressionTask::feature_row(
    const stencil::StencilPattern& pattern, const gpusim::ProblemSize& problem,
    std::size_t oc_idx, const gpusim::ParamSetting& setting, std::size_t gpu,
    bool include_stencil_features) const {
  const auto& ocs = gpusim::valid_combinations();
  std::vector<float> f;
  if (include_stencil_features) {
    const auto sf =
        stencil::extract_features(pattern, dataset_->config.max_order)
            .to_vector();
    f.insert(f.end(), sf.begin(), sf.end());
  }
  const gpusim::OptCombination& oc = ocs[oc_idx];
  for (int b = 0; b < gpusim::kNumOpts; ++b) {
    f.push_back(oc.has(static_cast<gpusim::Opt>(b)) ? 1.0f : 0.0f);
  }
  const auto pf = setting.to_feature_vector();
  f.insert(f.end(), pf.begin(), pf.end());
  const auto gf = dataset_->gpus[gpu].feature_vector();
  f.insert(f.end(), gf.begin(), gf.end());
  // Grid-size + boundary model inputs (future-work extension; constant
  // columns when the dataset does not vary them, which MaxAbs scaling and
  // tree splits both tolerate).
  const auto prob_f = problem.feature_vector();
  f.insert(f.end(), prob_f.begin(), prob_f.end());
  return f;
}

ml::Matrix RegressionTask::build_aux_features(
    const std::vector<RegressionInstance>& rows,
    bool include_stencil_features) const {
  std::vector<std::vector<float>> out;
  out.reserve(rows.size());
  for (const RegressionInstance& ins : rows) {
    out.push_back(feature_row(dataset_->stencils[ins.stencil],
                              dataset_->problems[ins.stencil], ins.oc,
                              dataset_->settings[ins.stencil][ins.oc][ins.setting],
                              ins.gpu, include_stencil_features));
  }
  return ml::Matrix::from_rows(out);
}

double RegressionTask::predict_variant(const stencil::StencilPattern& pattern,
                                       const gpusim::ProblemSize& problem,
                                       std::size_t oc,
                                       const gpusim::ParamSetting& setting,
                                       std::size_t gpu) const {
  if (!fitted_) throw std::logic_error("predict_variant before fit_full");
  double pred_log = 0.0;
  if (fitted_kind_ == RegressorKind::kGbr) {
    const auto row = feature_row(pattern, problem, oc, setting, gpu, true);
    pred_log = gbr_->predict_row(row);
  } else if (fitted_kind_ == RegressorKind::kMlp) {
    const ml::Matrix x = aux_scaler_.transform(
        ml::Matrix::from_rows({feature_row(pattern, problem, oc, setting, gpu, true)}));
    pred_log = mlp_->predict(x)[0];
  } else {
    const ml::Matrix aux = aux_scaler_.transform(
        ml::Matrix::from_rows({feature_row(pattern, problem, oc, setting, gpu, false)}));
    const ml::Matrix tensors = ml::Matrix::from_rows(
        {stencil::PatternTensor(pattern, dataset_->config.max_order).to_floats()});
    pred_log = convmlp_->predict(tensors, aux)[0];
  }
  return std::exp2(pred_log);
}

ml::Matrix RegressionTask::build_tensor_features(
    const std::vector<RegressionInstance>& rows) const {
  std::vector<std::vector<float>> out;
  out.reserve(rows.size());
  for (const RegressionInstance& ins : rows) {
    out.push_back(stencil::PatternTensor(dataset_->stencils[ins.stencil],
                                         dataset_->config.max_order)
                      .to_floats());
  }
  return ml::Matrix::from_rows(out);
}

std::vector<float> RegressionTask::build_targets(
    const std::vector<RegressionInstance>& rows) const {
  std::vector<float> out;
  out.reserve(rows.size());
  for (const RegressionInstance& ins : rows) {
    out.push_back(static_cast<float>(std::log2(ins.time_ms)));
  }
  return out;
}

RegressionCvResult RegressionTask::cross_validate(RegressorKind kind) {
  if (instances_.size() < static_cast<std::size_t>(config_.folds)) {
    throw std::invalid_argument("RegressionTask: too few instances");
  }
  util::Rng rng(config_.seed + static_cast<std::uint64_t>(kind));
  const auto folds = ml::kfold_splits(instances_.size(), config_.folds, rng);

  std::vector<std::vector<double>> truth_per_gpu(dataset_->num_gpus());
  std::vector<std::vector<double>> pred_per_gpu(dataset_->num_gpus());
  std::vector<double> truth_all;
  std::vector<double> pred_all;

  for (const auto& fold : folds) {
    std::vector<RegressionInstance> train_rows;
    std::vector<RegressionInstance> test_rows;
    for (std::size_t i : fold.train_indices) train_rows.push_back(instances_[i]);
    for (std::size_t i : fold.test_indices) test_rows.push_back(instances_[i]);

    const std::vector<float> y_train = build_targets(train_rows);
    std::vector<double> preds_log;

    if (kind == RegressorKind::kGbr) {
      const ml::Matrix x_train = build_aux_features(train_rows, true);
      const ml::Matrix x_test = build_aux_features(test_rows, true);
      ml::GbdtParams params;
      params.seed = config_.seed;
      ml::GbdtRegressor model(params);
      model.fit(x_train, y_train);
      preds_log = model.predict(x_test);
    } else if (kind == RegressorKind::kMlp) {
      ml::MaxAbsScaler scaler;
      const ml::Matrix x_train =
          scaler.fit_transform(build_aux_features(train_rows, true));
      const ml::Matrix x_test =
          scaler.transform(build_aux_features(test_rows, true));
      util::Rng net_rng(config_.seed * 13 + 1);
      ml::TrainConfig tc{config_.epochs, config_.batch_size,
                         config_.learning_rate, config_.seed};
      ml::NnRegressor model(
          ml::make_mlp(x_train.cols(), config_.mlp_hidden_layers,
                       config_.mlp_width, net_rng),
          tc);
      model.fit(x_train, y_train);
      preds_log = model.predict(x_test);
    } else {
      ml::MaxAbsScaler scaler;
      const ml::Matrix aux_train =
          scaler.fit_transform(build_aux_features(train_rows, false));
      const ml::Matrix aux_test =
          scaler.transform(build_aux_features(test_rows, false));
      const ml::Matrix t_train = build_tensor_features(train_rows);
      const ml::Matrix t_test = build_tensor_features(test_rows);
      ml::TrainConfig tc{config_.epochs, config_.batch_size,
                         config_.learning_rate, config_.seed};
      ml::ConvMlpRegressor model(dataset_->config.dims,
                                 dataset_->config.max_order, aux_train.cols(),
                                 tc);
      model.fit(t_train, aux_train, y_train);
      preds_log = model.predict(t_test, aux_test);
    }

    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      const double truth = test_rows[i].time_ms;
      const double pred = std::exp2(preds_log[i]);
      truth_all.push_back(truth);
      pred_all.push_back(pred);
      truth_per_gpu[test_rows[i].gpu].push_back(truth);
      pred_per_gpu[test_rows[i].gpu].push_back(pred);
    }
  }

  RegressionCvResult result;
  result.mape_overall = util::mape(truth_all, pred_all);
  result.mape_per_gpu.resize(dataset_->num_gpus());
  for (std::size_t g = 0; g < dataset_->num_gpus(); ++g) {
    result.mape_per_gpu[g] = util::mape(truth_per_gpu[g], pred_per_gpu[g]);
  }
  return result;
}

void RegressionTask::fit_full(RegressorKind kind) {
  const std::vector<float> y = build_targets(instances_);
  fitted_kind_ = kind;
  if (kind == RegressorKind::kGbr) {
    const ml::Matrix x = build_aux_features(instances_, true);
    ml::GbdtParams params;
    params.seed = config_.seed;
    gbr_ = std::make_unique<ml::GbdtRegressor>(params);
    gbr_->fit(x, y);
  } else if (kind == RegressorKind::kMlp) {
    const ml::Matrix x =
        aux_scaler_.fit_transform(build_aux_features(instances_, true));
    util::Rng net_rng(config_.seed * 13 + 1);
    ml::TrainConfig tc{config_.epochs, config_.batch_size,
                       config_.learning_rate, config_.seed};
    mlp_ = std::make_unique<ml::NnRegressor>(
        ml::make_mlp(x.cols(), config_.mlp_hidden_layers, config_.mlp_width,
                     net_rng),
        tc);
    mlp_->fit(x, y);
  } else {
    const ml::Matrix aux =
        aux_scaler_.fit_transform(build_aux_features(instances_, false));
    const ml::Matrix tensors = build_tensor_features(instances_);
    ml::TrainConfig tc{config_.epochs, config_.batch_size,
                       config_.learning_rate, config_.seed};
    convmlp_ = std::make_unique<ml::ConvMlpRegressor>(
        dataset_->config.dims, dataset_->config.max_order, aux.cols(), tc);
    convmlp_->fit(tensors, aux, y);
  }
  fitted_ = true;
}

double RegressionTask::predict(std::size_t idx, std::size_t gpu) const {
  if (!fitted_) throw std::logic_error("RegressionTask::predict before fit_full");
  RegressionInstance probe = instances_[idx];
  probe.gpu = gpu;
  const std::vector<RegressionInstance> rows{probe};
  double pred_log = 0.0;
  if (fitted_kind_ == RegressorKind::kGbr) {
    const ml::Matrix x = build_aux_features(rows, true);
    pred_log = gbr_->predict_row(x.row(0));
  } else if (fitted_kind_ == RegressorKind::kMlp) {
    const ml::Matrix x = aux_scaler_.transform(build_aux_features(rows, true));
    pred_log = mlp_->predict(x)[0];
  } else {
    const ml::Matrix aux =
        aux_scaler_.transform(build_aux_features(rows, false));
    const ml::Matrix tensors = build_tensor_features(rows);
    pred_log = convmlp_->predict(tensors, aux)[0];
  }
  return std::exp2(pred_log);
}

}  // namespace smart::core
