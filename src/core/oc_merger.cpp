#include "core/oc_merger.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>
#include <set>
#include <stdexcept>

#include "util/serialize_io.hpp"
#include "util/stats.hpp"

namespace smart::core {

namespace {

}  // namespace

std::vector<OcPairCorr> pairwise_pcc(const ProfileDataset& dataset,
                                     std::size_t gpu) {
  const std::size_t num_ocs = dataset.num_ocs();
  const std::size_t n = dataset.stencils.size();

  // Centered log best-times: subtracting each stencil's mean log time
  // removes the dominant "bigger stencil = slower under every OC" signal,
  // so the correlation reflects how similarly two OCs *rank* stencils —
  // the paper's notion of "small difference in performance achieved by
  // pairwise OCs under the same stencil" (Sec. III-C).
  std::vector<std::vector<double>> centered(
      n, std::vector<double>(num_ocs, std::numeric_limits<double>::quiet_NaN()));
  for (std::size_t s = 0; s < n; ++s) {
    double sum = 0.0;
    int count = 0;
    for (std::size_t oc = 0; oc < num_ocs; ++oc) {
      if (!dataset.oc_ok(s, gpu, oc)) continue;
      const double lt = std::log(dataset.oc_best_time(s, gpu, oc));
      centered[s][oc] = lt;
      sum += lt;
      ++count;
    }
    if (count == 0) continue;
    const double mean = sum / count;
    for (std::size_t oc = 0; oc < num_ocs; ++oc) centered[s][oc] -= mean;
  }

  std::vector<OcPairCorr> out;
  for (std::size_t a = 0; a < num_ocs; ++a) {
    for (std::size_t b = a + 1; b < num_ocs; ++b) {
      // Pairwise-complete (crashed OCs are missing data).
      std::vector<double> xs;
      std::vector<double> ys;
      for (std::size_t s = 0; s < n; ++s) {
        if (std::isnan(centered[s][a]) || std::isnan(centered[s][b])) continue;
        xs.push_back(centered[s][a]);
        ys.push_back(centered[s][b]);
      }
      OcPairCorr pair;
      pair.oc_a = static_cast<int>(a);
      pair.oc_b = static_cast<int>(b);
      pair.pcc = xs.size() >= 3 ? std::fabs(util::pearson(xs, ys)) : 0.0;
      out.push_back(pair);
    }
  }
  return out;
}

void OcMerger::fit(const ProfileDataset& dataset, Options options) {
  const int num_ocs = static_cast<int>(dataset.num_ocs());
  if (options.target_groups < 1 || options.target_groups > num_ocs) {
    throw std::invalid_argument("OcMerger: bad target_groups");
  }
  const std::size_t num_gpus = dataset.num_gpus();

  // Top-K pairs per GPU, and the pair-key sets for the intersection stat.
  top_pccs_per_gpu_.assign(num_gpus, {});
  std::vector<std::set<long long>> top_sets(num_gpus);
  std::vector<std::vector<OcPairCorr>> all_pairs(num_gpus);
  auto key_of = [num_ocs](const OcPairCorr& p) {
    return static_cast<long long>(p.oc_a) * num_ocs + p.oc_b;
  };
  for (std::size_t g = 0; g < num_gpus; ++g) {
    all_pairs[g] = pairwise_pcc(dataset, g);
    std::sort(all_pairs[g].begin(), all_pairs[g].end(),
              [](const OcPairCorr& a, const OcPairCorr& b) {
                return a.pcc > b.pcc;
              });
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(options.top_pairs), all_pairs[g].size());
    for (std::size_t i = 0; i < k; ++i) {
      top_pccs_per_gpu_[g].push_back(all_pairs[g][i].pcc);
      top_sets[g].insert(key_of(all_pairs[g][i]));
    }
  }

  // Intersection of the top-K sets across all GPUs.
  std::set<long long> intersection = top_sets.empty() ? std::set<long long>{}
                                                      : top_sets[0];
  for (std::size_t g = 1; g < num_gpus; ++g) {
    std::set<long long> next;
    std::set_intersection(intersection.begin(), intersection.end(),
                          top_sets[g].begin(), top_sets[g].end(),
                          std::inserter(next, next.begin()));
    intersection = std::move(next);
  }
  intersection_fraction_ =
      top_pccs_per_gpu_.empty() || top_pccs_per_gpu_[0].empty()
          ? 0.0
          : static_cast<double>(intersection.size()) /
                static_cast<double>(top_pccs_per_gpu_[0].size());

  // Aggregate PCC per pair = minimum across GPUs (a pair must correlate on
  // every architecture to be generically mergeable, Sec. III-C); pairs in
  // the cross-GPU top-K intersection get a similarity bonus so they merge
  // first, mirroring the paper's intersection-driven grouping.
  std::vector<std::vector<double>> sim(
      static_cast<std::size_t>(num_ocs),
      std::vector<double>(static_cast<std::size_t>(num_ocs), 0.0));
  for (const OcPairCorr& p : all_pairs[0]) {
    double value = p.pcc;
    for (std::size_t g = 1; g < num_gpus; ++g) {
      for (const OcPairCorr& q : all_pairs[g]) {
        if (q.oc_a == p.oc_a && q.oc_b == p.oc_b) {
          value = std::min(value, q.pcc);
          break;
        }
      }
    }
    if (intersection.contains(key_of(p))) value += 1.0;
    sim[static_cast<std::size_t>(p.oc_a)][static_cast<std::size_t>(p.oc_b)] = value;
    sim[static_cast<std::size_t>(p.oc_b)][static_cast<std::size_t>(p.oc_a)] = value;
  }

  // Average-linkage agglomerative clustering down to target_groups.
  // (Greedy transitive union merging degenerates into one giant chained
  // cluster; average linkage plus a size cap keeps groups coherent AND
  // ensures "each class contains sufficient data objects" (Sec. IV-D) —
  // one mega-group would starve the other classes of training labels.)
  const std::size_t max_group_size =
      (static_cast<std::size_t>(num_ocs) * 3) /
      (static_cast<std::size_t>(options.target_groups) * 2);
  std::vector<std::vector<int>> clusters;
  for (int oc = 0; oc < num_ocs; ++oc) clusters.push_back({oc});
  while (static_cast<int>(clusters.size()) > options.target_groups) {
    double best_link = -1.0;
    std::size_t best_a = 0;
    std::size_t best_b = 1;
    for (std::size_t a = 0; a < clusters.size(); ++a) {
      for (std::size_t b = a + 1; b < clusters.size(); ++b) {
        if (clusters[a].size() + clusters[b].size() > max_group_size) continue;
        double acc = 0.0;
        for (int oa : clusters[a]) {
          for (int ob : clusters[b]) {
            acc += sim[static_cast<std::size_t>(oa)][static_cast<std::size_t>(ob)];
          }
        }
        const double link =
            acc / (static_cast<double>(clusters[a].size()) *
                   static_cast<double>(clusters[b].size()));
        if (link > best_link) {
          best_link = link;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_link < 0.0) {
      // No merge satisfies the size cap: merge the two smallest clusters.
      std::sort(clusters.begin(), clusters.end(),
                [](const auto& a, const auto& b) { return a.size() < b.size(); });
      best_a = 0;
      best_b = 1;
    }
    auto& target = clusters[best_a];
    target.insert(target.end(), clusters[best_b].begin(), clusters[best_b].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_b));
  }

  group_.assign(static_cast<std::size_t>(num_ocs), -1);
  for (std::size_t gid = 0; gid < clusters.size(); ++gid) {
    for (int oc : clusters[gid]) {
      group_[static_cast<std::size_t>(oc)] = static_cast<int>(gid);
    }
  }
  num_groups_ = static_cast<int>(clusters.size());

  // Representative of each group: the member winning the most cases.
  std::vector<std::vector<long long>> wins(
      static_cast<std::size_t>(num_groups_),
      std::vector<long long>(static_cast<std::size_t>(num_ocs), 0));
  for (std::size_t s = 0; s < dataset.stencils.size(); ++s) {
    for (std::size_t g = 0; g < num_gpus; ++g) {
      const int best = dataset.best_oc(s, g);
      if (best < 0) continue;
      ++wins[static_cast<std::size_t>(group_[static_cast<std::size_t>(best)])]
           [static_cast<std::size_t>(best)];
    }
  }
  representatives_.assign(static_cast<std::size_t>(num_groups_), 0);
  for (int gid = 0; gid < num_groups_; ++gid) {
    long long best_wins = -1;
    for (int oc = 0; oc < num_ocs; ++oc) {
      if (group_[static_cast<std::size_t>(oc)] != gid) continue;
      const long long w = wins[static_cast<std::size_t>(gid)][static_cast<std::size_t>(oc)];
      if (w > best_wins) {
        best_wins = w;
        representatives_[static_cast<std::size_t>(gid)] = oc;
      }
    }
  }
}

std::vector<int> OcMerger::members(int group) const {
  std::vector<int> out;
  for (std::size_t oc = 0; oc < group_.size(); ++oc) {
    if (group_[oc] == group) out.push_back(static_cast<int>(oc));
  }
  return out;
}

void OcMerger::save(std::ostream& out) const {
  out << "ocmerger " << num_groups_ << ' ' << group_.size();
  for (int g : group_) out << ' ' << g;
  for (int r : representatives_) out << ' ' << r;
  out << '\n';
}

OcMerger OcMerger::load(std::istream& in) {
  util::expect_word(in, "ocmerger", "OcMerger::load");
  const int num_groups = util::read_int(in, "ocmerger group count");
  const std::size_t num_ocs = util::read_size(in, "ocmerger oc count");
  if (num_groups < 1) {
    throw std::runtime_error("OcMerger::load: no groups");
  }
  OcMerger merger;
  merger.num_groups_ = num_groups;
  merger.group_.resize(num_ocs);
  for (int& g : merger.group_) {
    g = util::read_int(in, "ocmerger group id");
    if (g < 0 || g >= num_groups) {
      throw std::runtime_error("OcMerger::load: group id out of range");
    }
  }
  merger.representatives_.resize(static_cast<std::size_t>(num_groups));
  for (int gid = 0; gid < num_groups; ++gid) {
    const int rep = util::read_int(in, "ocmerger representative");
    if (rep < 0 || static_cast<std::size_t>(rep) >= num_ocs ||
        merger.group_[static_cast<std::size_t>(rep)] != gid) {
      throw std::runtime_error(
          "OcMerger::load: representative not a member of its group");
    }
    merger.representatives_[static_cast<std::size_t>(gid)] = rep;
  }
  return merger;
}

std::string OcMerger::group_name(int group) const {
  const auto& all = gpusim::valid_combinations();
  return "G" + std::to_string(group) + "[" +
         all[static_cast<std::size_t>(representative(group))].name() + "]";
}

}  // namespace smart::core
