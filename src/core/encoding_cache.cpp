#include "core/encoding_cache.hpp"

#include <algorithm>

#include "gpusim/opt.hpp"
#include "gpusim/params.hpp"
#include "stencil/features.hpp"
#include "stencil/tensor_repr.hpp"
#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::core {

namespace {

/// Narrows a double feature vector into a float destination exactly as the
/// old per-row std::vector<float>::insert did (static_cast per element).
void narrow_into(const std::vector<double>& src, float* dst) {
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

}  // namespace

EncodingCache::EncodingCache(const ProfileDataset& ds) {
  num_stencils_ = ds.stencils.size();
  num_ocs_ = ProfileDataset::num_ocs();
  const int max_order = ds.config.max_order;
  stencil_dim_ = static_cast<std::size_t>(3 + 2 * max_order);
  std::size_t extent = static_cast<std::size_t>(2 * max_order + 1);
  tensor_dim_ = 1;
  for (int d = 0; d < ds.config.dims; ++d) tensor_dim_ *= extent;
  oc_dim_ = static_cast<std::size_t>(gpusim::kNumOpts);
  setting_dim_ = gpusim::ParamSetting{}.to_feature_vector().size();
  gpu_dim_ = gpusim::GpuSpec{}.feature_vector().size();
  problem_dim_ = gpusim::ProblemSize{}.feature_vector().size();

  const util::PhaseTimer encode_timer("infer.encode", num_stencils_);

  // OC flag rows (one per valid combination).
  const auto& ocs = gpusim::valid_combinations();
  oc_flags_.resize(num_ocs_ * oc_dim_);
  for (std::size_t oc = 0; oc < num_ocs_; ++oc) {
    for (int b = 0; b < gpusim::kNumOpts; ++b) {
      oc_flags_[oc * oc_dim_ + static_cast<std::size_t>(b)] =
          ocs[oc].has(static_cast<gpusim::Opt>(b)) ? 1.0f : 0.0f;
    }
  }

  // GPU hardware feature rows.
  gpu_feats_.resize(ds.gpus.size() * gpu_dim_);
  for (std::size_t g = 0; g < ds.gpus.size(); ++g) {
    narrow_into(ds.gpus[g].feature_vector(), gpu_feats_.data() + g * gpu_dim_);
  }

  // Setting-row offsets: serial prefix sum (counts may vary per OC), then
  // the per-stencil fills below write disjoint ranges in parallel.
  setting_offsets_.resize(num_stencils_ * num_ocs_);
  std::size_t total_settings = 0;
  for (std::size_t s = 0; s < num_stencils_; ++s) {
    for (std::size_t oc = 0; oc < num_ocs_; ++oc) {
      setting_offsets_[s * num_ocs_ + oc] = total_settings * setting_dim_;
      total_settings += ds.settings[s][oc].size();
    }
  }
  setting_feats_.resize(total_settings * setting_dim_);

  stencil_feats_.resize(num_stencils_ * stencil_dim_);
  tensors_.resize(num_stencils_ * tensor_dim_);
  problem_feats_.resize(num_stencils_ * problem_dim_);

  util::parallel_for(num_stencils_, [&](std::size_t s) {
    narrow_into(
        stencil::extract_features(ds.stencils[s], max_order).to_vector(),
        stencil_feats_.data() + s * stencil_dim_);
    const std::vector<float> t =
        stencil::PatternTensor(ds.stencils[s], max_order).to_floats();
    std::copy(t.begin(), t.end(), tensors_.begin() + static_cast<std::ptrdiff_t>(
                                      s * tensor_dim_));
    narrow_into(ds.problems[s].feature_vector(),
                problem_feats_.data() + s * problem_dim_);
    for (std::size_t oc = 0; oc < num_ocs_; ++oc) {
      float* base = setting_feats_.data() + setting_offsets_[s * num_ocs_ + oc];
      for (std::size_t k = 0; k < ds.settings[s][oc].size(); ++k) {
        narrow_into(ds.settings[s][oc][k].to_feature_vector(),
                    base + k * setting_dim_);
      }
    }
  });
}

void EncodingCache::assemble_aux_row(std::span<float> dst, std::size_t stencil,
                                     std::size_t oc, std::size_t setting,
                                     std::size_t gpu,
                                     bool include_stencil_features) const {
  float* out = dst.data();
  if (include_stencil_features) {
    const auto sf = stencil_features(stencil);
    out = std::copy(sf.begin(), sf.end(), out);
  }
  const auto of = oc_flags(oc);
  out = std::copy(of.begin(), of.end(), out);
  const auto pf = setting_features(stencil, oc, setting);
  out = std::copy(pf.begin(), pf.end(), out);
  const auto gf = gpu_features(gpu);
  out = std::copy(gf.begin(), gf.end(), out);
  const auto prob_f = problem_features(stencil);
  std::copy(prob_f.begin(), prob_f.end(), out);
}

void EncodingCache::assemble_aux_rows(ml::Matrix& out,
                                      std::span<const AuxRowKey> keys,
                                      bool include_stencil_features) const {
  const std::size_t dim = aux_dim(include_stencil_features);
  out.reshape_overwrite(keys.size(), dim);
  util::parallel_for(keys.size(), [&](std::size_t i) {
    const AuxRowKey& k = keys[i];
    assemble_aux_row({out.row(i).data(), dim}, k.stencil, k.oc, k.setting,
                     k.gpu, include_stencil_features);
  });
}

}  // namespace smart::core
