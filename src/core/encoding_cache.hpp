// Per-stencil encoding cache for the batched inference engine: the Table II
// feature vector, the (2N+1)^d binary tensor, the per-instance parameter
// setting features and the per-OC / per-GPU / per-problem segments of a
// regression feature row are each computed ONCE per dataset entity, not
// once per (stencil, OC, setting, GPU) instance. Feature rows then assemble
// by copying cached float segments, which removes all per-row recomputation
// and heap churn from RegressionTask's feature building and from the GPU
// advisor's prediction sweeps.
//
// Every cached value is the same double->float narrowing of the same
// deterministic function the uncached per-row path evaluated, so assembled
// rows are bit-identical to RegressionTask::feature_row output.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/profile_dataset.hpp"
#include "ml/matrix.hpp"

namespace smart::core {

/// Identifies one auxiliary feature row for EncodingCache::assemble_aux_rows:
/// the (stencil, OC, setting, GPU) coordinates of a profiled instance.
struct AuxRowKey {
  std::size_t stencil = 0;
  std::size_t oc = 0;
  std::size_t setting = 0;
  std::size_t gpu = 0;
};

class EncodingCache {
 public:
  /// Encodes every stencil/OC/GPU of `ds` (parallel over stencils; each
  /// stencil writes disjoint ranges, so the build is thread-count
  /// invariant). Records the "infer.encode" timing phase.
  explicit EncodingCache(const ProfileDataset& ds);

  std::size_t num_stencils() const noexcept { return num_stencils_; }

  /// Table II feature-vector length (3 + 2 * max_order).
  std::size_t stencil_dim() const noexcept { return stencil_dim_; }
  /// Binary tensor length (2 * max_order + 1)^dims.
  std::size_t tensor_dim() const noexcept { return tensor_dim_; }
  /// Full auxiliary feature-row length, with or without the leading
  /// Table II segment (ConvMLP consumes the tensor instead).
  std::size_t aux_dim(bool include_stencil_features) const noexcept {
    return (include_stencil_features ? stencil_dim_ : 0) + oc_dim_ +
           setting_dim_ + gpu_dim_ + problem_dim_;
  }

  std::span<const float> stencil_features(std::size_t stencil) const {
    return {stencil_feats_.data() + stencil * stencil_dim_, stencil_dim_};
  }
  std::span<const float> tensor(std::size_t stencil) const {
    return {tensors_.data() + stencil * tensor_dim_, tensor_dim_};
  }
  std::span<const float> oc_flags(std::size_t oc) const {
    return {oc_flags_.data() + oc * oc_dim_, oc_dim_};
  }
  std::span<const float> setting_features(std::size_t stencil, std::size_t oc,
                                          std::size_t k) const {
    return {setting_feats_.data() +
                setting_offsets_[stencil * num_ocs_ + oc] + k * setting_dim_,
            setting_dim_};
  }
  std::span<const float> gpu_features(std::size_t gpu) const {
    return {gpu_feats_.data() + gpu * gpu_dim_, gpu_dim_};
  }
  std::span<const float> problem_features(std::size_t stencil) const {
    return {problem_feats_.data() + stencil * problem_dim_, problem_dim_};
  }

  /// Assembles the auxiliary feature row of one profiled (stencil, OC,
  /// setting, GPU) instance into `dst` (length aux_dim(...)). The segment
  /// order matches RegressionTask::feature_row: [stencil features?]
  /// [OC flags] [setting] [GPU] [problem].
  void assemble_aux_row(std::span<float> dst, std::size_t stencil,
                        std::size_t oc, std::size_t setting, std::size_t gpu,
                        bool include_stencil_features) const;

  /// Batched assemble_aux_row: reshapes `out` to keys.size() x aux_dim(...)
  /// and fills row i from keys[i], fanning rows over the task pool (each row
  /// is a disjoint write, so the result is thread-count invariant and
  /// bit-identical to per-row assembly). This is the single feature-assembly
  /// entry point of the batched inference paths.
  void assemble_aux_rows(ml::Matrix& out, std::span<const AuxRowKey> keys,
                         bool include_stencil_features) const;

 private:
  std::size_t num_stencils_ = 0;
  std::size_t num_ocs_ = 0;
  std::size_t stencil_dim_ = 0;
  std::size_t tensor_dim_ = 0;
  std::size_t oc_dim_ = 0;
  std::size_t setting_dim_ = 0;
  std::size_t gpu_dim_ = 0;
  std::size_t problem_dim_ = 0;

  // Flattened row-major segment pools (strides = the *_dim_ fields).
  std::vector<float> stencil_feats_;
  std::vector<float> tensors_;
  std::vector<float> oc_flags_;
  std::vector<float> setting_feats_;
  std::vector<float> gpu_feats_;
  std::vector<float> problem_feats_;
  /// Absolute float offset of (stencil, oc)'s first setting row in
  /// setting_feats_ (settings per OC may vary, so offsets are prefix sums).
  std::vector<std::size_t> setting_offsets_;
};

}  // namespace smart::core
