// Wire protocol of `smartctl serve`: newline-delimited requests, one reply
// line per request. The grammar is deliberately tiny — printable-ASCII
// tokens separated by single spaces — so a malformed line is always
// answerable with a one-line `err` reply and can never desynchronize the
// stream.
//
//   request  := verb SP id (SP key "=" value)*
//   verb     := "advise" | "predict" | "stats" | "ping" | "healthz"
//             | "reload" | "shutdown"
//   id       := 1..64 chars of [A-Za-z0-9_.:-]
//   keys     := shape=star|box|cross  dims=2|3  order=1..4  gpu=NAME
//               offsets=x,y[,z];x,y[,z];...   (alternative to shape/dims/
//               order: an explicit offset list; dims = tuple arity)
//   response := "ok" SP id SP payload | "err" SP id SP message
//
// advise/predict take a stencil spec + gpu; stats/ping/healthz/reload/
// shutdown take no keys. healthz reports the live model's version,
// checksum and epoch; reload asks the daemon to re-validate and swap in
// the model artifact it was started from (the epoch increments on
// success). Empty lines are ignored. Anything else — unknown verbs, bad ids,
// duplicate/unknown keys, malformed numbers, out-of-range geometry,
// control bytes, oversize lines — yields `err <id-or-dash> <reason>`.
//
// parse_request is a pure function (no I/O, no globals), which is what the
// fuzz/property tests and the daemon share: a crash or hang here is a bug
// regardless of transport.
#pragma once

#include <string>
#include <string_view>

#include "stencil/pattern.hpp"

namespace smart::core::serve {

/// Longest request line the protocol accepts. Matches the transport cap
/// (util::kMaxLineBytes) so an over-long line is rejected, not split.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;
inline constexpr std::size_t kMaxIdBytes = 64;

enum class Verb { kAdvise, kPredict, kStats, kPing, kHealthz, kReload, kShutdown };

std::string to_string(Verb verb);

struct Request {
  Verb verb = Verb::kPing;
  std::string id;
  stencil::StencilPattern pattern{2, {}};  // advise/predict only
  std::string gpu = "V100";                // advise/predict only
  /// Canonical identity of the (verb, stencil, gpu) query — equal for any
  /// two requests that must produce equal payloads (shape/offsets spellings
  /// of the same stencil normalize to the same key). The serve layer uses
  /// it for cross-request memoization and within-batch deduplication.
  std::string memo_key;
};

struct ParseResult {
  bool ok = false;
  Request request;       // valid only when ok
  std::string id = "-";  // best-effort id for err replies
  std::string error;     // one line, no '\n', set when !ok
};

/// Parses one request line. Never throws; never crashes on arbitrary bytes.
ParseResult parse_request(std::string_view line);

/// Escapes multi-line payload text onto one protocol line:
/// '\\' -> "\\\\", '\n' -> "\\n". unescape_text inverts it (unknown escape
/// sequences and a trailing lone backslash pass through unchanged).
std::string escape_text(std::string_view text);
std::string unescape_text(std::string_view text);

/// Reply builders. err_reply flattens control bytes in `message` to spaces
/// so the reply is always exactly one line.
std::string ok_reply(const std::string& id, const std::string& payload);
std::string err_reply(const std::string& id, const std::string& message);

}  // namespace smart::core::serve
