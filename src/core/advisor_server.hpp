// Resident advisory daemon core (the `smartctl serve` engine): one loaded
// StencilMart serves advise/predict requests arriving as protocol lines,
// coalescing concurrent arrivals into StencilMart::advise_batch calls —
// admission batching over the batched-inference layer — with a per-stencil
// response memo so repeated queries for the same (verb, stencil, GPU) never
// recompute. Transport-agnostic: the caller feeds lines in and receives
// reply lines through a per-request sink callback, so the same engine runs
// under stdio, a unix socket, the in-process tests and the bench harness.
//
// Determinism contract: a reply's BYTES depend only on the request's
// canonical (verb, stencil, GPU) key and the model EPOCH that answered it —
// never on arrival order, batch composition, `max_batch`, `max_wait_us`,
// SMART_THREADS, connection count, shedding decisions, or memo hits. That
// holds because advise_batch is bit-identical to per-item
// advise()/recommend_gpu() (core/mart.hpp), every cached value is the
// deterministic function it memoizes, the memo is wholesale-cleared on
// reload (it never mixes epochs), and shed replies are fixed strings. The
// black-box harness (tests + scripts/check.sh) enforces it: shuffled
// request sets at any batch size, thread count and connection count must
// produce response sets whose surviving members are byte-identical to
// one-shot `smartctl advise --model` output for their epoch.
//
// Overload: the admission queue is bounded (`max_queue`); a request that
// arrives while the queue is full is shed with a structured
// `err <id> busy (admission queue full)` reply — never buffered without
// bound, never silently dropped. An optional `deadline_us` sheds requests
// that waited longer than the deadline before their batch executed
// (`err <id> deadline exceeded before execution`). Both shed classes are
// counted separately in `stats`.
//
// Hot reload: the model lives in an epoch-tagged slot. reload() (driven by
// the `reload` verb or SIGHUP) obtains a fresh validated model from the
// ModelProvider, atomically swaps the slot and bumps the epoch; in-flight
// batches finish on the snapshot they took, and the response memo is
// cleared so no reply ever mixes epochs. A failed reload (provider throw)
// leaves the serving model untouched.
//
// Threading: submit() may be called concurrently from many producer
// threads (one transport reader per connection); replies for batched work
// are delivered on the internal batcher thread, and control-plane replies
// (ping/stats/healthz/reload/errors/memo hits/shedding) on the submitting
// thread — sinks must therefore be thread-safe. Control-plane verbs answer
// immediately and are not ordered relative to in-flight advise/predict
// work.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/mart.hpp"
#include "core/serve_protocol.hpp"
#include "ml/simd.hpp"
#include "util/histogram.hpp"

namespace smart::core {

/// The exact multi-line report `smartctl advise` prints for one stencil —
/// shared by the CLI and the serve daemon so their outputs cannot drift.
std::string advise_report(const stencil::StencilPattern& pattern,
                          const std::string& gpu, const OcAdvice& advice,
                          const GpuRecommendation& rec);

struct ServeConfig {
  /// Admission batch flush thresholds: a batch executes as soon as
  /// max_batch requests are pending, or max_wait_us after the OLDEST
  /// pending request arrived, whichever comes first.
  int max_batch = 8;
  long long max_wait_us = 200;
  /// Bound on the admission queue. A request arriving while max_queue
  /// requests are already pending is shed with a structured busy error.
  std::size_t max_queue = 1024;
  /// Per-request deadline: a queued request older than this when its batch
  /// starts executing is shed with a structured deadline error. 0 disables.
  long long deadline_us = 0;
  /// Response-memo entries kept before the cache is wholesale evicted
  /// (simple epoch eviction; correctness never depends on cache state).
  std::size_t memo_capacity = 1 << 16;
  /// Inference-mode overrides held for the server's lifetime (the knobs are
  /// process-global — see ml/simd.hpp — so the batcher thread inherits
  /// them; the previous values are restored on destruction). `precision` is
  /// "" (inherit), "f64" or "f32"; `simd` is -1 (inherit), 0 or 1. An
  /// unknown precision string throws std::invalid_argument at construction.
  /// With "f32" the determinism contract below still holds per machine:
  /// the relaxed kernels' per-element math is batch-size-, row-group- and
  /// thread-count-invariant.
  std::string precision;
  int simd = -1;
};

/// Snapshot of the serve counters (the `stats` verb payload).
struct ServeCounters {
  std::uint64_t served = 0;       // ok replies to advise/predict
  std::uint64_t errors = 0;       // err replies (parse + execution + shed)
  std::uint64_t memo_hits = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch_seen = 0;
  std::uint64_t shed_busy = 0;     // requests shed: admission queue full
  std::uint64_t shed_deadline = 0; // requests shed: deadline expired
  std::uint64_t p50_us = 0;       // request latency percentiles
  std::uint64_t p99_us = 0;
  double qps = 0.0;               // served / seconds since last reset
  std::uint64_t epoch = 0;        // model epoch (not part of the window)
};

/// The model slot's content: a trained mart plus the artifact metadata the
/// banner / healthz report. An in-process mart (tests, bench) carries
/// version "in-process" and checksum "-".
struct ModelSnapshot {
  std::shared_ptr<const StencilMart> mart;
  std::string version = "in-process";
  std::string checksum = "-";
};

/// Produces a fresh, fully validated ModelSnapshot (e.g. re-reading the
/// artifact through the strict load_model reader). Throws on any failure;
/// a throw leaves the currently served model untouched.
using ModelProvider = std::function<ModelSnapshot()>;

class AdvisorServer {
 public:
  /// Reply sink: receives exactly one reply line (no trailing newline) per
  /// submitted non-empty request line. Must be thread-safe.
  using Sink = std::function<void(const std::string&)>;

  /// `mart` must be trained and must outlive the server. No reload support
  /// (the `reload` verb answers with an error) — the in-process ctor for
  /// tests and bench.
  AdvisorServer(const StencilMart& mart, ServeConfig config);

  /// Serves `initial.mart` (which must be trained) at epoch 1. When
  /// `provider` is set, the `reload` verb / reload() swap in whatever it
  /// returns.
  AdvisorServer(ModelSnapshot initial, ServeConfig config,
                ModelProvider provider = nullptr);

  ~AdvisorServer();
  AdvisorServer(const AdvisorServer&) = delete;
  AdvisorServer& operator=(const AdvisorServer&) = delete;

  /// Feeds one request line. Empty / all-space lines are ignored (no
  /// reply). Returns false once a shutdown request has been accepted — all
  /// requests submitted before it are answered first (drain), then the
  /// shutdown's own `ok <id> bye` reply is delivered; the caller should
  /// stop reading. Lines submitted after shutdown get an err reply.
  /// Safe to call concurrently from many producer threads.
  bool submit(std::string_view line, const Sink& sink);

  /// Blocks until every pending request has been answered (EOF/SIGTERM
  /// drain). The server stays usable afterwards.
  void drain();

  /// Validates a fresh model via the provider and atomically swaps it into
  /// the slot, bumping the epoch and clearing the response memo. In-flight
  /// batches finish on the old model. Returns the new epoch. Throws
  /// std::runtime_error when no provider is configured or the provider
  /// fails — the serving model is untouched in both cases. Thread-safe;
  /// concurrent reloads are serialized.
  std::uint64_t reload();

  /// Current model epoch (starts at 1, bumped by each successful reload).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Metadata of the currently served model (for the startup banner).
  ModelSnapshot model_snapshot() const;

  /// Counters + latency percentiles since the last reset. The `stats` verb
  /// replies with this snapshot and then RESETS it (documented
  /// reset-on-stats semantics; the epoch field is not windowed), so
  /// successive stats requests report disjoint windows.
  ServeCounters counters_snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    serve::Request request;
    Sink sink;
    Clock::time_point enqueued{};
  };

  void batcher_loop();
  void execute_batch(std::vector<Pending> batch);
  /// Delivers a reply, records latency + served/error counters.
  void respond(const Pending& pending, bool ok, const std::string& payload);
  /// Delivers a structured shed error (fixed bytes) + counters.
  void shed(const Pending& pending, bool deadline);
  std::string healthz_payload() const;
  ServeCounters snapshot_locked() const;

  ServeConfig config_;
  // Applied before the batcher thread spawns; destroyed after it joins
  // (members precede batcher_, and the destructor joins explicitly), so the
  // overrides cover every batch the server ever executes.
  std::optional<ml::SimdSection> simd_override_;
  std::optional<ml::PrecisionSection> precision_override_;

  // Epoch-tagged model slot. model_mu_ guards the snapshot; epoch_ is
  // additionally atomic so healthz/stats read it without the lock. Batches
  // copy {mart, epoch} under the lock and run on that copy — a concurrent
  // reload cannot free a model a batch still uses (shared_ptr) and cannot
  // change the bytes that batch produces.
  mutable std::mutex model_mu_;
  ModelSnapshot model_;
  std::atomic<std::uint64_t> epoch_{1};
  ModelProvider provider_;
  std::mutex reload_mu_;  // serializes whole reload() calls

  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue producer -> batcher
  std::condition_variable idle_cv_;   // batcher -> drain()/shutdown waiters
  std::vector<Pending> queue_;
  bool busy_ = false;                 // a batch is executing
  bool draining_ = false;             // flush regardless of thresholds
  bool stopping_ = false;             // destructor: batcher thread exits
  std::atomic<bool> shutdown_{false}; // shutdown verb accepted

  mutable std::mutex memo_mu_;
  struct MemoEntry {
    bool ok = false;
    std::string payload;
  };
  std::unordered_map<std::string, MemoEntry> memo_;
  std::uint64_t memo_epoch_ = 1;  // epoch the memo contents belong to

  mutable std::mutex stats_mu_;
  util::LatencyHistogram latency_;
  std::uint64_t served_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t max_batch_seen_ = 0;
  std::uint64_t shed_busy_ = 0;
  std::uint64_t shed_deadline_ = 0;
  Clock::time_point window_start_ = Clock::now();

  std::thread batcher_;
};

}  // namespace smart::core
