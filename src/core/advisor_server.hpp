// Resident advisory daemon core (the `smartctl serve` engine): one loaded
// StencilMart serves advise/predict requests arriving as protocol lines,
// coalescing concurrent arrivals into StencilMart::advise_batch calls —
// admission batching over the batched-inference layer — with a per-stencil
// response memo so repeated queries for the same (verb, stencil, GPU) never
// recompute. Transport-agnostic: the caller feeds lines in and receives
// reply lines through a per-request sink callback, so the same engine runs
// under stdio, a unix socket, the in-process tests and the bench harness.
//
// Determinism contract: a reply's BYTES depend only on the request's
// canonical (verb, stencil, GPU) key and the loaded model — never on
// arrival order, batch composition, `max_batch`, `max_wait_us`,
// SMART_THREADS, or memo hits. That holds because advise_batch is
// bit-identical to per-item advise()/recommend_gpu() (core/mart.hpp) and
// every cached value is the deterministic function it memoizes. The
// black-box harness (tests + scripts/check.sh) enforces it: shuffled
// request sets at any batch size and thread count must produce
// byte-identical response sets, equal to one-shot `smartctl advise
// --model` output.
//
// Threading: submit() may be called from one producer thread (the
// transport reader); replies for batched work are delivered on the
// internal batcher thread, and control-plane replies (ping/stats/errors/
// memo hits) on the submitting thread — sinks must therefore be
// thread-safe. stats/ping are control-plane: they answer immediately and
// are not ordered relative to in-flight advise/predict work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/mart.hpp"
#include "core/serve_protocol.hpp"
#include "ml/simd.hpp"
#include "util/histogram.hpp"

namespace smart::core {

/// The exact multi-line report `smartctl advise` prints for one stencil —
/// shared by the CLI and the serve daemon so their outputs cannot drift.
std::string advise_report(const stencil::StencilPattern& pattern,
                          const std::string& gpu, const OcAdvice& advice,
                          const GpuRecommendation& rec);

struct ServeConfig {
  /// Admission batch flush thresholds: a batch executes as soon as
  /// max_batch requests are pending, or max_wait_us after the OLDEST
  /// pending request arrived, whichever comes first.
  int max_batch = 8;
  long long max_wait_us = 200;
  /// Response-memo entries kept before the cache is wholesale evicted
  /// (simple epoch eviction; correctness never depends on cache state).
  std::size_t memo_capacity = 1 << 16;
  /// Inference-mode overrides held for the server's lifetime (the knobs are
  /// process-global — see ml/simd.hpp — so the batcher thread inherits
  /// them; the previous values are restored on destruction). `precision` is
  /// "" (inherit), "f64" or "f32"; `simd` is -1 (inherit), 0 or 1. An
  /// unknown precision string throws std::invalid_argument at construction.
  /// With "f32" the determinism contract below still holds per machine:
  /// the relaxed kernels' per-element math is batch-size-, row-group- and
  /// thread-count-invariant.
  std::string precision;
  int simd = -1;
};

/// Snapshot of the serve counters (the `stats` verb payload).
struct ServeCounters {
  std::uint64_t served = 0;       // ok replies to advise/predict
  std::uint64_t errors = 0;       // err replies (parse + execution)
  std::uint64_t memo_hits = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch_seen = 0;
  std::uint64_t p50_us = 0;       // request latency percentiles
  std::uint64_t p99_us = 0;
  double qps = 0.0;               // served / seconds since last reset
};

class AdvisorServer {
 public:
  /// Reply sink: receives exactly one reply line (no trailing newline) per
  /// submitted non-empty request line. Must be thread-safe.
  using Sink = std::function<void(const std::string&)>;

  /// `mart` must be trained and must outlive the server.
  AdvisorServer(const StencilMart& mart, ServeConfig config);
  ~AdvisorServer();
  AdvisorServer(const AdvisorServer&) = delete;
  AdvisorServer& operator=(const AdvisorServer&) = delete;

  /// Feeds one request line. Empty / all-space lines are ignored (no
  /// reply). Returns false once a shutdown request has been accepted — all
  /// requests submitted before it are answered first (drain), then the
  /// shutdown's own `ok <id> bye` reply is delivered; the caller should
  /// stop reading. Lines submitted after shutdown get an err reply.
  bool submit(std::string_view line, const Sink& sink);

  /// Blocks until every pending request has been answered (EOF/SIGTERM
  /// drain). The server stays usable afterwards.
  void drain();

  /// Counters + latency percentiles since the last reset. The `stats` verb
  /// replies with this snapshot and then RESETS it (documented
  /// reset-on-stats semantics), so successive stats requests report
  /// disjoint windows.
  ServeCounters counters_snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    serve::Request request;
    Sink sink;
    Clock::time_point enqueued{};
  };

  void batcher_loop();
  void execute_batch(std::vector<Pending> batch);
  /// Delivers a reply, records latency + served/error counters.
  void respond(const Pending& pending, bool ok, const std::string& payload);
  ServeCounters snapshot_locked() const;

  const StencilMart& mart_;
  ServeConfig config_;
  // Applied before the batcher thread spawns; destroyed after it joins
  // (members precede batcher_, and the destructor joins explicitly), so the
  // overrides cover every batch the server ever executes.
  std::optional<ml::SimdSection> simd_override_;
  std::optional<ml::PrecisionSection> precision_override_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue producer -> batcher
  std::condition_variable idle_cv_;   // batcher -> drain()/shutdown waiters
  std::vector<Pending> queue_;
  bool busy_ = false;                 // a batch is executing
  bool draining_ = false;             // flush regardless of thresholds
  bool stopping_ = false;             // destructor: batcher thread exits
  bool shutdown_ = false;             // shutdown verb accepted

  mutable std::mutex memo_mu_;
  struct MemoEntry {
    bool ok = false;
    std::string payload;
  };
  std::unordered_map<std::string, MemoEntry> memo_;

  mutable std::mutex stats_mu_;
  util::LatencyHistogram latency_;
  std::uint64_t served_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t max_batch_seen_ = 0;
  Clock::time_point window_start_ = Clock::now();

  std::thread batcher_;
};

}  // namespace smart::core
