#include "core/serialize.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/serialize_io.hpp"
#include "util/timing.hpp"

namespace smart::core {

namespace {

constexpr const char* kMagic = "stencilmart-dataset-v1";
constexpr const char* kModelMagic = "stencilmart-model-v1";
constexpr const char* kModelMagicPrefix = "stencilmart-model-";

std::string checksum_hex(std::string_view bytes) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(util::fnv1a64(bytes)));
  return buf;
}

std::string encode_offsets(const stencil::StencilPattern& pattern) {
  std::ostringstream os;
  bool first = true;
  for (const stencil::Point& p : pattern.offsets()) {
    if (!first) os << ';';
    first = false;
    os << static_cast<int>(p[0]) << ':' << static_cast<int>(p[1]) << ':'
       << static_cast<int>(p[2]);
  }
  return os.str();
}

stencil::StencilPattern decode_offsets(int dims, const std::string& text) {
  std::vector<stencil::Point> points;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ';')) {
    int x = 0;
    int y = 0;
    int z = 0;
    if (std::sscanf(token.c_str(), "%d:%d:%d", &x, &y, &z) != 3) {
      throw std::runtime_error("load_dataset: bad offset token '" + token + "'");
    }
    points.push_back(stencil::Point{x, y, z});
  }
  return stencil::StencilPattern(dims, std::move(points));
}

void encode_setting(std::ostream& out, const gpusim::ParamSetting& s) {
  out << s.block_x << ' ' << s.block_y << ' ' << s.merge_factor << ' '
      << s.merge_dim << ' ' << s.unroll << ' ' << s.stream_tile << ' '
      << s.stream_dim << ' ' << (s.use_smem ? 1 : 0) << ' ' << s.tb_depth;
}

gpusim::ParamSetting decode_setting(std::istream& in) {
  gpusim::ParamSetting s;
  int use_smem = 0;
  in >> s.block_x >> s.block_y >> s.merge_factor >> s.merge_dim >> s.unroll >>
      s.stream_tile >> s.stream_dim >> use_smem >> s.tb_depth;
  s.use_smem = use_smem != 0;
  return s;
}

/// Parse-error context for the corpus reader: every failure names the
/// source and 1-based line, e.g. "corpus.txt:1042: unparsable time field".
class DatasetParseContext {
 public:
  explicit DatasetParseContext(std::string source)
      : source_(std::move(source)) {}

  void advance() noexcept { ++line_no_; }
  std::size_t line() const noexcept { return line_no_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(source_ + ":" + std::to_string(line_no_) + ": " +
                             what);
  }
  void expect(bool condition, const std::string& what) const {
    if (!condition) fail(what);
  }

 private:
  std::string source_;
  std::size_t line_no_ = 0;
};

}  // namespace

void save_dataset(const ProfileDataset& ds, std::ostream& out) {
  const util::PhaseTimer timer("serialize.save_corpus");
  out << kMagic << '\n';
  out << std::setprecision(17);
  out << ds.config.dims << ' ' << ds.config.max_order << ' '
      << ds.stencils.size() << ' ' << ds.config.samples_per_oc << ' '
      << ds.config.seed << ' ' << ds.config.sim.noise_sigma << ' '
      << (ds.config.vary_problem_size ? 1 : 0) << ' '
      << (ds.config.vary_boundary ? 1 : 0) << '\n';
  // Shard header: only partial corpora carry one, so a complete corpus —
  // including `smartctl merge` output — stays byte-identical to the
  // pre-shard format (and to an uninterrupted single-process run).
  if (ds.shard.sharded()) {
    out << "shard " << ds.shard.index << ' ' << ds.shard.count << ' '
        << ds.shard_retries << ' '
        << (ds.shard_fault_spec.empty() ? "-" : ds.shard_fault_spec) << '\n';
  }

  for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
    const auto& prob = ds.problems[s];
    out << "stencil " << prob.nx << ' ' << prob.ny << ' ' << prob.nz << ' '
        << (prob.boundary == stencil::Boundary::kPeriodic ? 1 : 0) << ' '
        << encode_offsets(ds.stencils[s]) << '\n';
  }
  for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
    for (std::size_t oc = 0; oc < ProfileDataset::num_ocs(); ++oc) {
      for (const auto& setting : ds.settings[s][oc]) {
        out << "setting " << s << ' ' << oc << ' ';
        encode_setting(out, setting);
        out << '\n';
      }
    }
  }
  for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      for (std::size_t oc = 0; oc < ProfileDataset::num_ocs(); ++oc) {
        const auto& ts = ds.times[s][g][oc];
        for (std::size_t k = 0; k < ts.size(); ++k) {
          out << "time " << s << ' ' << g << ' ' << oc << ' ' << k << ' ';
          if (std::isnan(ts[k])) {
            out << "crash";
          } else {
            out << std::hexfloat << ts[k] << std::defaultfloat;
          }
          out << '\n';
        }
      }
    }
  }
  for (const auto& q : ds.quarantined) {
    out << "quar " << q.stencil << ' ' << q.oc << ' ' << q.gpu << ' '
        << q.reason << '\n';
  }
  if (!out) throw std::runtime_error("save_dataset: stream write failed");
}

void save_dataset(const ProfileDataset& dataset, const std::string& path) {
  util::atomic_write(
      path, [&dataset](std::ostream& out) { save_dataset(dataset, out); });
}

ProfileDataset load_dataset(std::istream& in, const std::string& source) {
  const util::PhaseTimer timer("serialize.load_corpus");
  DatasetParseContext ctx(source);
  std::string line;

  ctx.advance();
  ctx.expect(static_cast<bool>(std::getline(in, line)), "empty corpus file");
  ctx.expect(line == kMagic,
             "not a StencilMART corpus (bad magic '" + line + "')");

  ProfileDataset ds;
  std::size_t num_stencils = 0;
  {
    ctx.advance();
    ctx.expect(static_cast<bool>(std::getline(in, line)), "missing header");
    std::istringstream header(line);
    int vary_size = 0;
    int vary_boundary = 0;
    header >> ds.config.dims >> ds.config.max_order >> num_stencils >>
        ds.config.samples_per_oc >> ds.config.seed >>
        ds.config.sim.noise_sigma >> vary_size >> vary_boundary;
    ctx.expect(static_cast<bool>(header), "unparsable header");
    ds.config.num_stencils = static_cast<int>(num_stencils);
    ds.config.vary_problem_size = vary_size != 0;
    ds.config.vary_boundary = vary_boundary != 0;
  }
  ds.problem = gpusim::ProblemSize::paper_default(ds.config.dims);
  ds.gpus = gpusim::evaluation_gpus();

  const std::size_t num_ocs = ProfileDataset::num_ocs();
  ds.settings.assign(num_stencils,
                     std::vector<std::vector<gpusim::ParamSetting>>(num_ocs));
  ds.times.assign(num_stencils,
                  std::vector<std::vector<std::vector<double>>>(
                      ds.gpus.size(),
                      std::vector<std::vector<double>>(num_ocs)));

  while (std::getline(in, line)) {
    ctx.advance();
    if (line.empty()) continue;
    std::istringstream record(line);
    std::string tag;
    record >> tag;
    if (tag == "shard") {
      ctx.expect(!ds.shard.sharded(), "duplicate shard header");
      std::string spec;
      record >> ds.shard.index >> ds.shard.count >> ds.shard_retries >> spec;
      ctx.expect(static_cast<bool>(record), "unparsable shard header");
      ctx.expect(ds.shard.count >= 2 && ds.shard.index < ds.shard.count,
                 "shard header out of range (want 0 <= i < N, N >= 2)");
      ctx.expect(ds.shard_retries >= 0, "negative shard retry budget");
      ds.shard_fault_spec = spec == "-" ? std::string{} : spec;
    } else if (tag == "stencil") {
      gpusim::ProblemSize prob;
      int periodic = 0;
      std::string offsets;
      record >> prob.nx >> prob.ny >> prob.nz >> periodic >> offsets;
      ctx.expect(static_cast<bool>(record), "unparsable stencil record");
      prob.boundary = periodic != 0 ? stencil::Boundary::kPeriodic
                                    : stencil::Boundary::kDirichletZero;
      ds.problems.push_back(prob);
      try {
        ds.stencils.push_back(decode_offsets(ds.config.dims, offsets));
      } catch (const std::runtime_error& e) {
        ctx.fail(e.what());
      }
    } else if (tag == "setting") {
      std::size_t s = 0;
      std::size_t oc = 0;
      record >> s >> oc;
      ctx.expect(static_cast<bool>(record), "unparsable setting indices");
      ctx.expect(s < num_stencils && oc < num_ocs,
                 "setting index out of range");
      ds.settings[s][oc].push_back(decode_setting(record));
      ctx.expect(static_cast<bool>(record), "unparsable setting record");
    } else if (tag == "time") {
      std::size_t s = 0;
      std::size_t g = 0;
      std::size_t oc = 0;
      std::size_t k = 0;
      std::string value;
      record >> s >> g >> oc >> k >> value;
      ctx.expect(static_cast<bool>(record), "unparsable time record");
      ctx.expect(s < num_stencils && g < ds.gpus.size() && oc < num_ocs,
                 "time index out of range");
      auto& ts = ds.times[s][g][oc];
      ctx.expect(k == ts.size(), "time records out of order");
      if (value == "crash") {
        ts.push_back(std::numeric_limits<double>::quiet_NaN());
      } else {
        // Strict parse: a half-parsed token silently becoming 0.0 (or a
        // smuggled NaN/inf) would corrupt every model trained on the corpus.
        double time_ms = 0.0;
        ctx.expect(util::parse_f64_strict(value, time_ms),
                   "unparsable time field '" + value + "'");
        ctx.expect(std::isfinite(time_ms) && time_ms > 0.0,
                   "non-finite or non-positive time field '" + value + "'");
        ts.push_back(time_ms);
      }
    } else if (tag == "quar") {
      QuarantineRecord q;
      record >> q.stencil >> q.oc >> q.gpu;
      ctx.expect(static_cast<bool>(record), "unparsable quarantine record");
      ctx.expect(q.stencil < num_stencils && q.gpu < ds.gpus.size() &&
                     q.oc < num_ocs,
                 "quarantine index out of range");
      std::getline(record, q.reason);
      if (!q.reason.empty() && q.reason.front() == ' ') q.reason.erase(0, 1);
      ds.quarantined.push_back(std::move(q));
    } else {
      ctx.fail("unknown tag '" + tag + "'");
    }
  }
  ctx.expect(ds.stencils.size() == num_stencils,
             "stencil count mismatch (header says " +
                 std::to_string(num_stencils) + ", file has " +
                 std::to_string(ds.stencils.size()) + ")");
  return ds;
}

ProfileDataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_dataset: cannot open " + path);
  return load_dataset(in, path);
}

// ----- model artifacts -------------------------------------------------------

void save_model(const StencilMart& mart, std::ostream& out) {
  const util::PhaseTimer timer("serialize.save");
  if (!mart.trained()) {
    throw std::logic_error("save_model: StencilMart is not trained");
  }

  std::ostringstream payload;
  const MartConfig& c = mart.config_;
  payload << "config " << c.profile.dims << ' ' << c.profile.max_order << ' '
          << c.profile.num_stencils << ' ' << c.profile.samples_per_oc << ' '
          << c.profile.seed << ' ';
  util::write_f64(payload, c.profile.sim.noise_sigma);
  payload << ' ' << c.profile.sim.seed << ' '
          << (c.profile.vary_problem_size ? 1 : 0) << ' '
          << (c.profile.vary_boundary ? 1 : 0) << '\n';
  const RegressionConfig& r = c.regression;
  payload << "regconfig " << r.folds << ' ' << r.epochs << ' ' << r.batch_size
          << ' ';
  util::write_f64(payload, r.learning_rate);
  payload << ' ' << r.mlp_hidden_layers << ' ' << r.mlp_width << ' '
          << r.instance_cap << ' ' << r.seed << '\n';
  payload << "regressor " << to_string(c.regressor) << ' ' << c.tuning_samples
          << '\n';
  mart.merger_.save(payload);
  payload << "classifiers " << mart.classifiers_.size() << '\n';
  for (const auto& clf : mart.classifiers_) clf.save(payload);
  mart.regression_->save_fitted(payload);

  const std::string bytes = payload.str();
  out << kModelMagic << '\n';
  out << "payload " << bytes.size() << '\n';
  out << bytes;
  out << "checksum " << checksum_hex(bytes) << '\n';
  if (!out) throw std::runtime_error("save_model: stream write failed");
}

void save_model(const StencilMart& mart, const std::string& path) {
  util::atomic_write(
      path, [&mart](std::ostream& out) { save_model(mart, out); });
}

StencilMart load_model(std::istream& in, const std::string& source) {
  const util::PhaseTimer timer("serialize.load");
  std::string magic;
  if (!std::getline(in, magic)) {
    throw std::runtime_error("load_model: empty stream");
  }
  if (magic != kModelMagic) {
    if (magic.rfind(kModelMagicPrefix, 0) == 0) {
      throw std::runtime_error("load_model: unsupported model format version '" +
                               magic + "' (this build reads " +
                               std::string(kModelMagic) + ")");
    }
    throw std::runtime_error(
        "load_model: not a StencilMART model artifact (bad magic)");
  }
  util::expect_word(in, "payload", "load_model payload header");
  const std::size_t payload_size =
      util::read_size(in, "load_model payload size");
  if (in.get() != '\n') {
    throw std::runtime_error("load_model: malformed payload header");
  }
  std::string bytes(payload_size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::size_t>(in.gcount()) != payload_size) {
    throw std::runtime_error(
        "load_model: truncated artifact (payload cut short)");
  }
  util::expect_word(in, "checksum", "load_model checksum header");
  const std::string digest = util::read_token(in, "load_model checksum");
  if (digest != checksum_hex(bytes)) {
    throw std::runtime_error(
        "load_model: checksum mismatch — the artifact is corrupted");
  }

  std::istringstream payload(bytes);
  try {
    MartConfig config;
    util::expect_word(payload, "config", "load_model config section");
    config.profile.dims = util::read_int(payload, "config dims");
    config.profile.max_order = util::read_int(payload, "config max_order");
    config.profile.num_stencils = util::read_int(payload, "config num_stencils");
    config.profile.samples_per_oc =
        util::read_int(payload, "config samples_per_oc");
    config.profile.seed = util::read_u64(payload, "config seed");
    config.profile.sim.noise_sigma =
        util::read_f64(payload, "config noise_sigma");
    config.profile.sim.seed = util::read_u64(payload, "config sim seed");
    config.profile.vary_problem_size =
        util::read_int(payload, "config vary_problem_size") != 0;
    config.profile.vary_boundary =
        util::read_int(payload, "config vary_boundary") != 0;
    if (config.profile.dims != 2 && config.profile.dims != 3) {
      throw std::runtime_error("load_model: config dims out of range");
    }
    util::expect_word(payload, "regconfig", "load_model regression config");
    RegressionConfig& r = config.regression;
    r.folds = util::read_int(payload, "regconfig folds");
    r.epochs = util::read_int(payload, "regconfig epochs");
    r.batch_size = util::read_int(payload, "regconfig batch_size");
    r.learning_rate = util::read_f64(payload, "regconfig learning_rate");
    r.mlp_hidden_layers = util::read_int(payload, "regconfig mlp_hidden_layers");
    r.mlp_width = util::read_size(payload, "regconfig mlp_width");
    r.instance_cap = util::read_size(payload, "regconfig instance_cap");
    r.seed = util::read_u64(payload, "regconfig seed");
    util::expect_word(payload, "regressor", "load_model regressor section");
    config.regressor =
        regressor_kind_from_string(util::read_token(payload, "regressor kind"));
    config.tuning_samples = util::read_int(payload, "regressor tuning_samples");

    StencilMart mart(config);
    // Serving needs no profiled stencils: classification, tuning and variant
    // prediction only read the config geometry, the static OC table and the
    // GPU table, so the loaded mart carries a zero-stencil dataset.
    ProfileDataset serving;
    serving.config = config.profile;
    serving.problem = gpusim::ProblemSize::paper_default(config.profile.dims);
    serving.gpus = gpusim::evaluation_gpus();
    mart.dataset_ = std::make_unique<ProfileDataset>(std::move(serving));

    mart.merger_ = OcMerger::load(payload);
    if (mart.merger_.groups().size() != ProfileDataset::num_ocs()) {
      throw std::runtime_error(
          "load_model: OC count does not match this build's OC table");
    }
    util::expect_word(payload, "classifiers", "load_model classifier section");
    const std::size_t num_classifiers =
        util::read_size(payload, "classifier count");
    if (num_classifiers != mart.dataset_->gpus.size()) {
      throw std::runtime_error(
          "load_model: classifier count does not match the GPU table");
    }
    mart.classifiers_.clear();
    mart.classifiers_.reserve(num_classifiers);
    for (std::size_t g = 0; g < num_classifiers; ++g) {
      mart.classifiers_.push_back(ml::GbdtClassifier::load(payload));
      if (mart.classifiers_.back().num_classes() != mart.merger_.num_groups()) {
        throw std::runtime_error(
            "load_model: classifier class count does not match the OC grouping");
      }
    }
    mart.regression_ =
        std::make_unique<RegressionTask>(*mart.dataset_, config.regression);
    mart.regression_->load_fitted(payload);
    std::string extra;
    if (payload >> extra) {
      throw std::runtime_error(
          "load_model: trailing data after the regression section");
    }
    mart.trained_ = true;
    return mart;
  } catch (const std::exception& e) {
    // Pinpoint where inside the (checksum-valid) payload parsing stopped:
    // with the envelope intact, a parse failure here means a format skew
    // between writer and reader, and the byte offset locates the section.
    payload.clear();
    const auto pos = payload.tellg();
    const std::size_t offset =
        pos < 0 ? bytes.size() : static_cast<std::size_t>(pos);
    throw std::runtime_error(source + ": payload byte offset " +
                             std::to_string(offset) + ": " + e.what());
  }
}

StencilMart load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  return load_model(in, path);
}

ModelArtifactInfo inspect_model(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic)) {
    throw std::runtime_error("load_model: empty stream");
  }
  if (magic != kModelMagic) {
    if (magic.rfind(kModelMagicPrefix, 0) == 0) {
      throw std::runtime_error("load_model: unsupported model format version '" +
                               magic + "' (this build reads " +
                               std::string(kModelMagic) + ")");
    }
    throw std::runtime_error(
        "load_model: not a StencilMART model artifact (bad magic)");
  }
  util::expect_word(in, "payload", "load_model payload header");
  const std::size_t payload_size =
      util::read_size(in, "load_model payload size");
  if (in.get() != '\n') {
    throw std::runtime_error("load_model: malformed payload header");
  }
  std::string bytes(payload_size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::size_t>(in.gcount()) != payload_size) {
    throw std::runtime_error(
        "load_model: truncated artifact (payload cut short)");
  }
  util::expect_word(in, "checksum", "load_model checksum header");
  const std::string digest = util::read_token(in, "load_model checksum");
  if (digest != checksum_hex(bytes)) {
    throw std::runtime_error(
        "load_model: checksum mismatch — the artifact is corrupted");
  }
  return ModelArtifactInfo{magic, digest};
}

ModelArtifactInfo inspect_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  return inspect_model(in);
}

}  // namespace smart::core
