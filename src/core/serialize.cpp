#include "core/serialize.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace smart::core {

namespace {

constexpr const char* kMagic = "stencilmart-dataset-v1";

std::string encode_offsets(const stencil::StencilPattern& pattern) {
  std::ostringstream os;
  bool first = true;
  for (const stencil::Point& p : pattern.offsets()) {
    if (!first) os << ';';
    first = false;
    os << static_cast<int>(p[0]) << ':' << static_cast<int>(p[1]) << ':'
       << static_cast<int>(p[2]);
  }
  return os.str();
}

stencil::StencilPattern decode_offsets(int dims, const std::string& text) {
  std::vector<stencil::Point> points;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ';')) {
    int x = 0;
    int y = 0;
    int z = 0;
    if (std::sscanf(token.c_str(), "%d:%d:%d", &x, &y, &z) != 3) {
      throw std::runtime_error("load_dataset: bad offset token '" + token + "'");
    }
    points.push_back(stencil::Point{x, y, z});
  }
  return stencil::StencilPattern(dims, std::move(points));
}

void encode_setting(std::ostream& out, const gpusim::ParamSetting& s) {
  out << s.block_x << ' ' << s.block_y << ' ' << s.merge_factor << ' '
      << s.merge_dim << ' ' << s.unroll << ' ' << s.stream_tile << ' '
      << s.stream_dim << ' ' << (s.use_smem ? 1 : 0) << ' ' << s.tb_depth;
}

gpusim::ParamSetting decode_setting(std::istream& in) {
  gpusim::ParamSetting s;
  int use_smem = 0;
  in >> s.block_x >> s.block_y >> s.merge_factor >> s.merge_dim >> s.unroll >>
      s.stream_tile >> s.stream_dim >> use_smem >> s.tb_depth;
  s.use_smem = use_smem != 0;
  return s;
}

void expect(bool condition, const std::string& what) {
  if (!condition) throw std::runtime_error("load_dataset: " + what);
}

}  // namespace

void save_dataset(const ProfileDataset& ds, std::ostream& out) {
  out << kMagic << '\n';
  out << std::setprecision(17);
  out << ds.config.dims << ' ' << ds.config.max_order << ' '
      << ds.stencils.size() << ' ' << ds.config.samples_per_oc << ' '
      << ds.config.seed << ' ' << ds.config.sim.noise_sigma << ' '
      << (ds.config.vary_problem_size ? 1 : 0) << ' '
      << (ds.config.vary_boundary ? 1 : 0) << '\n';

  for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
    const auto& prob = ds.problems[s];
    out << "stencil " << prob.nx << ' ' << prob.ny << ' ' << prob.nz << ' '
        << (prob.boundary == stencil::Boundary::kPeriodic ? 1 : 0) << ' '
        << encode_offsets(ds.stencils[s]) << '\n';
  }
  for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
    for (std::size_t oc = 0; oc < ProfileDataset::num_ocs(); ++oc) {
      for (const auto& setting : ds.settings[s][oc]) {
        out << "setting " << s << ' ' << oc << ' ';
        encode_setting(out, setting);
        out << '\n';
      }
    }
  }
  for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      for (std::size_t oc = 0; oc < ProfileDataset::num_ocs(); ++oc) {
        const auto& ts = ds.times[s][g][oc];
        for (std::size_t k = 0; k < ts.size(); ++k) {
          out << "time " << s << ' ' << g << ' ' << oc << ' ' << k << ' ';
          if (std::isnan(ts[k])) {
            out << "crash";
          } else {
            out << std::hexfloat << ts[k] << std::defaultfloat;
          }
          out << '\n';
        }
      }
    }
  }
  if (!out) throw std::runtime_error("save_dataset: stream write failed");
}

void save_dataset(const ProfileDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_dataset: cannot open " + path);
  save_dataset(dataset, out);
}

ProfileDataset load_dataset(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  expect(magic == kMagic, "bad magic '" + magic + "'");

  ProfileDataset ds;
  std::size_t num_stencils = 0;
  int vary_size = 0;
  int vary_boundary = 0;
  in >> ds.config.dims >> ds.config.max_order >> num_stencils >>
      ds.config.samples_per_oc >> ds.config.seed >>
      ds.config.sim.noise_sigma >> vary_size >> vary_boundary;
  expect(static_cast<bool>(in), "bad header");
  ds.config.num_stencils = static_cast<int>(num_stencils);
  ds.config.vary_problem_size = vary_size != 0;
  ds.config.vary_boundary = vary_boundary != 0;
  ds.problem = gpusim::ProblemSize::paper_default(ds.config.dims);
  ds.gpus = gpusim::evaluation_gpus();

  const std::size_t num_ocs = ProfileDataset::num_ocs();
  ds.settings.assign(num_stencils,
                     std::vector<std::vector<gpusim::ParamSetting>>(num_ocs));
  ds.times.assign(num_stencils,
                  std::vector<std::vector<std::vector<double>>>(
                      ds.gpus.size(),
                      std::vector<std::vector<double>>(num_ocs)));

  std::string tag;
  while (in >> tag) {
    if (tag == "stencil") {
      gpusim::ProblemSize prob;
      int periodic = 0;
      std::string offsets;
      in >> prob.nx >> prob.ny >> prob.nz >> periodic >> offsets;
      expect(static_cast<bool>(in), "bad stencil record");
      prob.boundary = periodic != 0 ? stencil::Boundary::kPeriodic
                                    : stencil::Boundary::kDirichletZero;
      ds.problems.push_back(prob);
      ds.stencils.push_back(decode_offsets(ds.config.dims, offsets));
    } else if (tag == "setting") {
      std::size_t s = 0;
      std::size_t oc = 0;
      in >> s >> oc;
      expect(s < num_stencils && oc < num_ocs, "setting index out of range");
      ds.settings[s][oc].push_back(decode_setting(in));
      expect(static_cast<bool>(in), "bad setting record");
    } else if (tag == "time") {
      std::size_t s = 0;
      std::size_t g = 0;
      std::size_t oc = 0;
      std::size_t k = 0;
      std::string value;
      in >> s >> g >> oc >> k >> value;
      expect(static_cast<bool>(in), "bad time record");
      expect(s < num_stencils && g < ds.gpus.size() && oc < num_ocs,
             "time index out of range");
      auto& ts = ds.times[s][g][oc];
      expect(k == ts.size(), "time records out of order");
      if (value == "crash") {
        ts.push_back(std::numeric_limits<double>::quiet_NaN());
      } else {
        ts.push_back(std::strtod(value.c_str(), nullptr));
      }
    } else {
      throw std::runtime_error("load_dataset: unknown tag '" + tag + "'");
    }
  }
  expect(ds.stencils.size() == num_stencils, "stencil count mismatch");
  return ds;
}

ProfileDataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_dataset: cannot open " + path);
  return load_dataset(in);
}

}  // namespace smart::core
