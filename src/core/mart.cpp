#include "core/mart.hpp"

#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "gpusim/tuner.hpp"
#include "stencil/features.hpp"
#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::core {

StencilMart::StencilMart(MartConfig config) : config_(std::move(config)) {}

void StencilMart::train() {
  dataset_ = std::make_unique<ProfileDataset>(
      build_profile_dataset(config_.profile));
  fit_models();
}

void StencilMart::train(const ProfileDataset& dataset) {
  if (dataset.stencils.empty()) {
    throw std::invalid_argument("StencilMart::train: empty corpus");
  }
  dataset_ = std::make_unique<ProfileDataset>(dataset);
  config_.profile = dataset_->config;
  fit_models();
}

void StencilMart::fit_models() {
  merger_.fit(*dataset_);

  // One classifier per GPU (the paper trains per target architecture).
  const ml::Matrix features = stencil_feature_matrix(*dataset_);
  classifiers_.clear();
  for (std::size_t g = 0; g < dataset_->num_gpus(); ++g) {
    const auto labels = true_groups(*dataset_, merger_, g);
    std::vector<std::size_t> rows;
    std::vector<int> y;
    for (std::size_t s = 0; s < labels.size(); ++s) {
      if (labels[s] >= 0) {
        rows.push_back(s);
        y.push_back(labels[s]);
      }
    }
    if (rows.empty()) {
      // Every stencil quarantined/crashed on this GPU: nothing to learn
      // from, and GbdtClassifier::fit on a 0-row matrix would fail deep in
      // the tree builder with an unhelpful message.
      throw std::runtime_error(
          "StencilMart::train: no labelled stencils for GPU '" +
          dataset_->gpus[g].name +
          "' (every work unit crashed or was quarantined)");
    }
    ml::GbdtClassifier clf;
    clf.fit(features.gather_rows(rows), y, merger_.num_groups());
    classifiers_.push_back(std::move(clf));
  }

  regression_ = std::make_unique<RegressionTask>(*dataset_, config_.regression);
  regression_->fit_full(config_.regressor);
  trained_ = true;
}

std::size_t StencilMart::gpu_index(const std::string& name) const {
  for (std::size_t g = 0; g < dataset_->num_gpus(); ++g) {
    if (dataset_->gpus[g].name == name) return g;
  }
  throw std::out_of_range("StencilMart: unknown GPU " + name);
}

OcAdvice StencilMart::advise(const stencil::StencilPattern& pattern,
                             const std::string& gpu_name) const {
  if (!trained_) throw std::logic_error("StencilMart::advise before train()");
  const std::size_t g = gpu_index(gpu_name);
  OcAdvice advice = advise_variant(pattern, g);
  advice.predicted_time_ms = regression_->predict_variant(
      pattern, gpusim::ProblemSize::paper_default(pattern.dims()),
      static_cast<std::size_t>(gpusim::oc_index(advice.oc)), advice.setting, g);
  return advice;
}

OcAdvice StencilMart::advise_variant(const stencil::StencilPattern& pattern,
                                     std::size_t g) const {
  if (pattern.dims() != config_.profile.dims) {
    throw std::invalid_argument(
        "StencilMart::advise: pattern dimensionality differs from the "
        "training corpus");
  }

  const auto fv = stencil::extract_features(pattern, config_.profile.max_order)
                      .to_vector();
  const std::vector<float> row(fv.begin(), fv.end());
  OcAdvice advice;
  advice.group = classifiers_[g].predict_row(row);
  advice.group_name = merger_.group_name(advice.group);
  const int rep = merger_.representative(advice.group);
  advice.oc = gpusim::valid_combinations()[static_cast<std::size_t>(rep)];

  // Tune the advised OC only (this is the whole point: 1/30 of the cost).
  const gpusim::Simulator sim(config_.profile.sim);
  const gpusim::RandomSearchTuner tuner(sim, config_.tuning_samples);
  util::Rng rng(util::hash_combine(pattern.hash(), g));
  const auto problem = gpusim::ProblemSize::paper_default(pattern.dims());
  auto result = tuner.tune(pattern, problem, advice.oc, dataset_->gpus[g], rng);
  if (!result.ok()) {
    // The representative crashed everywhere: fall back to the group's
    // members in win order.
    for (int member : merger_.members(advice.group)) {
      const auto& oc = gpusim::valid_combinations()[static_cast<std::size_t>(member)];
      result = tuner.tune(pattern, problem, oc, dataset_->gpus[g], rng);
      if (result.ok()) {
        advice.oc = oc;
        break;
      }
    }
  }
  if (!result.ok()) {
    throw std::runtime_error("StencilMart::advise: no runnable variant in group " +
                             advice.group_name);
  }
  advice.setting = *result.best_setting;
  advice.expected_time_ms = result.best_time_ms;
  return advice;
}

std::vector<AdviseBatchResult> StencilMart::advise_batch(
    std::span<const AdviseBatchItem> items) const {
  if (!trained_) throw std::logic_error("StencilMart::advise before train()");
  const std::size_t num_gpus = dataset_->num_gpus();
  std::vector<AdviseBatchResult> results(items.size());

  // Distinct (stencil, GPU) variants needed by the batch: each is
  // classified + tuned exactly once, however many items reference it.
  struct VariantJob {
    const stencil::StencilPattern* pattern = nullptr;
    std::size_t g = 0;
    OcAdvice advice{};
    std::string error;
  };
  std::vector<VariantJob> jobs;
  std::map<std::string, std::size_t> job_index;
  const auto job_for = [&](const stencil::StencilPattern& pattern,
                           std::size_t g) {
    std::string key = std::to_string(g);
    key += '|';
    key += std::to_string(pattern.dims());
    for (const auto& p : pattern.offsets()) {
      for (int a = 0; a < stencil::kMaxDims; ++a) {
        key += ',';
        key += std::to_string(p[a]);
      }
    }
    const auto [it, inserted] = job_index.try_emplace(key, jobs.size());
    if (inserted) jobs.push_back(VariantJob{&pattern, g, {}, {}});
    return it->second;
  };

  struct ItemPlan {
    bool valid = false;
    bool recommend = false;
    std::size_t own_job = 0;
    std::vector<std::size_t> rec_jobs;  // one per GPU, in GPU order
  };
  std::vector<ItemPlan> plans(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const AdviseBatchItem& item = items[i];
    if (item.pattern.dims() != config_.profile.dims) {
      // Same diagnostics advise() throws, so serve-mode error replies match
      // the one-shot CLI behaviour.
      results[i].error =
          "StencilMart::advise: pattern dimensionality differs from the "
          "training corpus";
      continue;
    }
    std::size_t g = num_gpus;
    for (std::size_t c = 0; c < num_gpus; ++c) {
      if (dataset_->gpus[c].name == item.gpu) {
        g = c;
        break;
      }
    }
    if (g == num_gpus) {
      results[i].error = "StencilMart: unknown GPU " + item.gpu;
      continue;
    }
    ItemPlan& plan = plans[i];
    plan.valid = true;
    plan.recommend = item.recommend;
    plan.own_job = job_for(item.pattern, g);
    if (item.recommend) {
      plan.rec_jobs.reserve(num_gpus);
      for (std::size_t c = 0; c < num_gpus; ++c) {
        plan.rec_jobs.push_back(job_for(item.pattern, c));
      }
    }
  }

  {
    // Tuning dominates the batch cost; jobs are independent and their RNG is
    // derived from (pattern hash, GPU), so the fan-out is order- and
    // thread-count-invariant.
    const util::PhaseTimer timer("advisor.batch_tune", jobs.size());
    util::parallel_for(jobs.size(), [&](std::size_t j) {
      try {
        jobs[j].advice = advise_variant(*jobs[j].pattern, jobs[j].g);
      } catch (const std::exception& e) {
        jobs[j].error = e.what();
      }
    });
  }

  // ONE batched regression call for every prediction the batch needs.
  const auto problem_for = [](const stencil::StencilPattern& p) {
    return gpusim::ProblemSize::paper_default(p.dims());
  };
  std::vector<VariantQuery> queries;
  std::vector<std::size_t> query_job;
  queries.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].error.empty()) continue;
    queries.push_back(
        {jobs[j].pattern, problem_for(*jobs[j].pattern),
         static_cast<std::size_t>(gpusim::oc_index(jobs[j].advice.oc)),
         jobs[j].advice.setting, jobs[j].g});
    query_job.push_back(j);
  }
  if (!queries.empty()) {
    const std::vector<double> predicted = regression_->predict_variants(queries);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      jobs[query_job[q]].advice.predicted_time_ms = predicted[q];
    }
  }

  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!results[i].error.empty()) continue;
    const ItemPlan& plan = plans[i];
    AdviseBatchResult& out = results[i];
    const VariantJob& own = jobs[plan.own_job];
    if (!own.error.empty()) {
      out.error = own.error;
      continue;
    }
    out.advice = own.advice;
    if (!plan.recommend) continue;
    // Same fold as recommend_gpu(), over the same per-GPU advised variants.
    double best_time = std::numeric_limits<double>::infinity();
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < num_gpus && out.error.empty(); ++g) {
      const VariantJob& job = jobs[plan.rec_jobs[g]];
      if (!job.error.empty()) {
        out.error = job.error;  // recommend_gpu() would have thrown here
        break;
      }
      const double predicted_time_ms = job.advice.predicted_time_ms;
      if (predicted_time_ms < best_time) {
        best_time = predicted_time_ms;
        out.rec.fastest_gpu = dataset_->gpus[g].name;
        out.rec.fastest_time_ms = predicted_time_ms;
      }
      const double price = dataset_->gpus[g].rental_usd_hr;
      if (price > 0.0) {
        const double score = predicted_time_ms * price;
        if (score < best_cost) {
          best_cost = score;
          out.rec.cheapest_gpu = dataset_->gpus[g].name;
          out.rec.cheapest_cost_score = score;
        }
      }
    }
  }
  return results;
}

GpuRecommendation StencilMart::recommend_gpu(
    const stencil::StencilPattern& pattern) const {
  if (!trained_) throw std::logic_error("StencilMart::recommend_gpu before train()");

  // Classify + tune per GPU, then predict every advised variant in ONE
  // batched regression call (the pattern is encoded once for the sweep).
  const auto problem = gpusim::ProblemSize::paper_default(pattern.dims());
  std::vector<OcAdvice> advices;
  std::vector<VariantQuery> queries;
  advices.reserve(dataset_->num_gpus());
  queries.reserve(dataset_->num_gpus());
  for (std::size_t g = 0; g < dataset_->num_gpus(); ++g) {
    advices.push_back(advise_variant(pattern, g));
    queries.push_back(
        {&pattern, problem,
         static_cast<std::size_t>(gpusim::oc_index(advices.back().oc)),
         advices.back().setting, g});
  }
  const std::vector<double> predicted = regression_->predict_variants(queries);

  GpuRecommendation rec;
  double best_time = std::numeric_limits<double>::infinity();
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < dataset_->num_gpus(); ++g) {
    const double predicted_time_ms = predicted[g];
    if (predicted_time_ms < best_time) {
      best_time = predicted_time_ms;
      rec.fastest_gpu = dataset_->gpus[g].name;
      rec.fastest_time_ms = predicted_time_ms;
    }
    const double price = dataset_->gpus[g].rental_usd_hr;
    if (price > 0.0) {
      const double score = predicted_time_ms * price;
      if (score < best_cost) {
        best_cost = score;
        rec.cheapest_gpu = dataset_->gpus[g].name;
        rec.cheapest_cost_score = score;
      }
    }
  }
  return rec;
}

}  // namespace smart::core
