#include "core/baselines.hpp"

#include <limits>

namespace smart::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double oc_time(const ProfileDataset& dataset, std::size_t stencil,
               std::size_t gpu, const gpusim::OptCombination& oc) {
  const int idx = gpusim::oc_index(oc);
  return dataset.oc_best_time(stencil, gpu, static_cast<std::size_t>(idx));
}

}  // namespace

double an5d_time(const ProfileDataset& dataset, std::size_t stencil,
                 std::size_t gpu) {
  gpusim::OptCombination st_tb;
  st_tb.st = true;
  st_tb.tb = true;
  const double with_tb = oc_time(dataset, stencil, gpu, st_tb);
  if (with_tb < kInf) return with_tb;
  gpusim::OptCombination st;
  st.st = true;
  return oc_time(dataset, stencil, gpu, st);
}

double artemis_time(const ProfileDataset& dataset, std::size_t stencil,
                    std::size_t gpu) {
  // Stage 1: the streaming family (high-impact optimizations first).
  const bool rt_choices[] = {false, true};
  const bool pr_choices[] = {false, true};
  gpusim::OptCombination winner;
  double best = kInf;
  for (bool rt : rt_choices) {
    for (bool pr : pr_choices) {
      gpusim::OptCombination oc;
      oc.st = true;
      oc.rt = rt;
      oc.pr = pr;
      const double t = oc_time(dataset, stencil, gpu, oc);
      if (t < best) {
        best = t;
        winner = oc;
      }
    }
  }
  if (best == kInf) return kInf;
  // Stage 2: refine the winner with merging candidates.
  for (int merge = 0; merge < 2; ++merge) {
    gpusim::OptCombination oc = winner;
    oc.bm = merge == 0;
    oc.cm = merge == 1;
    best = std::min(best, oc_time(dataset, stencil, gpu, oc));
  }
  return best;
}

double group_time(const ProfileDataset& dataset, const OcMerger& merger,
                  std::size_t stencil, std::size_t gpu, int group) {
  const int rep = merger.representative(group);
  const double rep_time =
      dataset.oc_best_time(stencil, gpu, static_cast<std::size_t>(rep));
  if (rep_time < kInf) return rep_time;
  double best = kInf;
  for (int member : merger.members(group)) {
    best = std::min(best, dataset.oc_best_time(stencil, gpu,
                                               static_cast<std::size_t>(member)));
  }
  return best;
}

}  // namespace smart::core
