#include "core/profile_journal.hpp"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/serialize_io.hpp"
#include "util/timing.hpp"

namespace smart::core {

namespace {

constexpr const char* kJournalMagic = "stencilmart-journal-v1";

/// The journal's identity line: everything that shapes the fault/retry
/// schedule. A resume with ANY difference would splice two incompatible
/// runs, so the line is compared as a whole string.
std::string config_line(const ProfileConfig& config,
                        const ProfileRunOptions& opts,
                        const std::string& fault_spec) {
  std::ostringstream out;
  out << "config " << config.dims << ' ' << config.max_order << ' '
      << config.num_stencils << ' ' << config.samples_per_oc << ' '
      << config.seed << ' ';
  util::write_f64(out, config.sim.noise_sigma);
  out << ' ' << config.sim.seed << ' ' << (config.vary_problem_size ? 1 : 0)
      << ' ' << (config.vary_boundary ? 1 : 0) << ' ' << opts.retries << ' '
      << (fault_spec.empty() ? "-" : fault_spec) << ' ' << opts.shard.index
      << '/' << opts.shard.count;
  return out.str();
}

[[noreturn]] void corrupt(const std::string& path, std::size_t line_no,
                          const std::string& what) {
  throw std::runtime_error("profile journal " + path + ":" +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

void ProfileJournal::start(const std::string& path,
                           const ProfileConfig& config,
                           const ProfileRunOptions& opts,
                           const std::string& fault_spec) {
  close();
  out_.open(path, std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("profile journal: cannot create " + path);
  }
  out_ << kJournalMagic << '\n'
       << config_line(config, opts, fault_spec) << '\n'
       << std::flush;
  if (!out_) {
    throw std::runtime_error("profile journal: cannot write header to " + path);
  }
}

JournalReplay ProfileJournal::resume(const std::string& path,
                                     const ProfileConfig& config,
                                     const ProfileRunOptions& opts,
                                     const std::string& fault_spec,
                                     std::size_t num_ocs,
                                     std::size_t num_gpus) {
  JournalReplay replay;
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      // Nothing to resume: behave like a fresh run so `--resume` is safe to
      // pass unconditionally (the check.sh resume-until-done loop relies on
      // this).
      start(path, config, opts, fault_spec);
      return replay;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  // A kill mid-append leaves exactly one casualty: a final line without its
  // newline. Parse only up to the last '\n'; everything past it is the
  // partial tail, truncated below before the journal reopens for append.
  const std::size_t valid_end = text.rfind('\n') + 1;  // npos+1 == 0
  const auto replay_start = std::chrono::steady_clock::now();

  std::istringstream lines(text.substr(0, valid_end));
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(lines, line)) corrupt(path, 1, "missing magic line");
  ++line_no;
  if (line != kJournalMagic) corrupt(path, 1, "bad magic '" + line + "'");
  if (!std::getline(lines, line)) corrupt(path, 2, "missing config line");
  ++line_no;
  const std::string want = config_line(config, opts, fault_spec);
  if (line != want) {
    throw std::runtime_error(
        "profile journal " + path +
        " was written by a different profiling run (config/retries/fault "
        "spec mismatch)\n  journal: " +
        line + "\n  this run: " + want);
  }

  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    std::size_t s = 0;
    std::size_t oc = 0;
    std::size_t g = 0;
    if (!(ls >> s >> oc >> g)) corrupt(path, line_no, "bad unit indices");
    if (oc >= num_ocs || g >= num_gpus ||
        s >= static_cast<std::size_t>(config.num_stencils)) {
      corrupt(path, line_no, "unit index out of range");
    }
    const std::uint64_t key = unit_key(s, oc, g, num_ocs, num_gpus);
    if (tag == "unit") {
      std::size_t n = 0;
      if (!(ls >> n) || n > 4096) corrupt(path, line_no, "bad time count");
      std::vector<double> times;
      times.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        std::string token;
        if (!(ls >> token)) corrupt(path, line_no, "truncated time list");
        if (token == "crash") {
          times.push_back(std::numeric_limits<double>::quiet_NaN());
        } else {
          double t = 0.0;
          if (!util::parse_f64_strict(token, t) || !std::isfinite(t) ||
              t <= 0.0) {
            corrupt(path, line_no, "unparsable time field '" + token + "'");
          }
          times.push_back(t);
        }
      }
      std::string extra;
      if (ls >> extra) corrupt(path, line_no, "trailing tokens");
      replay.units[key] = std::move(times);
    } else if (tag == "retry") {
      int attempt = 0;
      std::string kind;
      if (!(ls >> attempt >> kind) || attempt < 0) {
        corrupt(path, line_no, "bad retry record");
      }
      int& next = replay.attempts[key];
      next = std::max(next, attempt + 1);
    } else if (tag == "quar") {
      QuarantineRecord record;
      record.stencil = s;
      record.oc = oc;
      record.gpu = g;
      std::getline(ls, record.reason);
      if (!record.reason.empty() && record.reason.front() == ' ') {
        record.reason.erase(0, 1);
      }
      replay.quarantined.push_back(std::move(record));
    } else {
      corrupt(path, line_no, "unknown tag '" + tag + "'");
    }
    ++replay.replayed_lines;
  }
  const auto replay_elapsed = std::chrono::steady_clock::now() - replay_start;
  util::timing_record(
      "profile.journal",
      std::chrono::duration<double, std::milli>(replay_elapsed).count(),
      replay.replayed_lines);

  // Drop the partial tail so appends continue from a clean line boundary.
  if (valid_end < text.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, valid_end, ec);
    if (ec) {
      throw std::runtime_error("profile journal: cannot truncate partial tail of " +
                               path + ": " + ec.message());
    }
  }
  close();
  out_.open(path, std::ios::app);
  if (!out_) {
    throw std::runtime_error("profile journal: cannot reopen " + path +
                             " for append");
  }
  return replay;
}

void ProfileJournal::append(const std::string& line) {
  const auto start = std::chrono::steady_clock::now();
  bool ok = true;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out_ << line << '\n' << std::flush;
    ok = static_cast<bool>(out_);
    ++appended_;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    append_ms_ += std::chrono::duration<double, std::milli>(elapsed).count();
  }
  if (!ok) {
    throw std::runtime_error("profile journal: append failed (disk full?)");
  }
}

void ProfileJournal::record_unit(std::size_t s, std::size_t oc, std::size_t g,
                                 const std::vector<double>& times) {
  std::ostringstream line;
  line << "unit " << s << ' ' << oc << ' ' << g << ' ' << times.size();
  for (const double t : times) {
    line << ' ';
    if (std::isnan(t)) {
      line << "crash";
    } else {
      util::write_f64(line, t);
    }
  }
  append(line.str());
}

void ProfileJournal::record_retry(std::size_t s, std::size_t oc, std::size_t g,
                                  int attempt, const char* kind) {
  std::ostringstream line;
  line << "retry " << s << ' ' << oc << ' ' << g << ' ' << attempt << ' '
       << kind;
  append(line.str());
}

void ProfileJournal::record_quarantine(const QuarantineRecord& record) {
  std::ostringstream line;
  line << "quar " << record.stencil << ' ' << record.oc << ' ' << record.gpu
       << ' ' << record.reason;
  append(line.str());
}

void ProfileJournal::close() {
  if (!out_.is_open()) return;
  out_.flush();
  out_.close();
  if (appended_ > 0) {
    util::timing_record("profile.journal", append_ms_, appended_);
  }
  append_ms_ = 0.0;
  appended_ = 0;
}

}  // namespace smart::core
