// Profiled stencil dataset (paper Sec. IV-A / V-A2): random stencils are
// profiled under every valid OC with randomly sampled parameter settings on
// every GPU. The same settings are measured on all GPUs ("we randomly
// select parameter settings from OCs and make measurements on four
// different GPUs"), so each (stencil, OC, setting) instance has a time per
// architecture — which is what cross-architecture regression and the
// GPU-selection case study (Figs. 12, 14, 15) consume. Per-OC best times
// drive OC selection (classification, Figs. 1-2, 9-11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/gpu_spec.hpp"
#include "gpusim/problem.hpp"
#include "gpusim/simulator.hpp"
#include "stencil/pattern.hpp"

namespace smart::core {

struct ProfileConfig {
  int dims = 2;
  int max_order = 4;        // paper: maximum stencil order 4
  int num_stencils = 60;    // paper: 500 per dimensionality
  int samples_per_oc = 4;   // random parameter settings measured per OC
  std::uint64_t seed = 1234;
  gpusim::Simulator::Options sim{};
  // --- future-work extensions (off by default = the paper's setting) ---
  bool vary_problem_size = false;  // sample per-stencil grid sizes
  bool vary_boundary = false;      // mix Dirichlet-zero and periodic kernels
};

/// A (stencil, OC, GPU) work unit withdrawn from the sweep: a permanent
/// fault, or a transient one that exhausted its retry budget. Its times are
/// the all-NaN crashed convention, so every downstream consumer (merger,
/// classifiers, regression) already tolerates it; the record preserves WHY
/// it is missing.
struct QuarantineRecord {
  std::size_t stencil = 0;
  std::size_t oc = 0;
  std::size_t gpu = 0;
  std::string reason;

  friend bool operator==(const QuarantineRecord& a,
                         const QuarantineRecord& b) = default;
};

/// Deterministic partition of the (stencil, OC, GPU) work-unit space for
/// fleet-scale profiling: shard i of N owns exactly the units whose pure
/// partition hash lands on i (see shard_owner). Ownership consumes no RNG
/// state and reads nothing but the unit identity, so every owned unit's
/// noise stream, fault schedule and retry budget are identical to the
/// unsharded run — which is what makes `smartctl merge` bit-identical.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;  // 1 == the whole work-unit space (unsharded)

  bool sharded() const noexcept { return count > 1; }

  friend bool operator==(const ShardSpec& a, const ShardSpec& b) = default;
};

/// Which shard of `shard_count` owns the work unit (stencil, oc, gpu).
/// A pure splitmix64 finisher over the unit identity (the stencil's content
/// hash, not its corpus position), so the partition is stable across runs,
/// thread counts and process restarts, and near-balanced for any N.
std::size_t shard_owner(std::uint64_t stencil_hash, std::size_t oc,
                        std::size_t gpu, std::size_t shard_count) noexcept;

/// Fault-tolerance knobs for one profiling run. None of them alter what a
/// successful measurement returns — retries and the journal only decide
/// when work is re-attempted or skipped — so any combination that completes
/// the same units yields a bit-identical corpus.
struct ProfileRunOptions {
  /// Append-only checkpoint journal; empty disables checkpointing. Completed
  /// units are recorded as they finish, each line flushed, so a killed run
  /// loses at most the units in flight.
  std::string journal_path;
  /// Replay `journal_path` before sweeping: journaled units are not re-run
  /// and the final corpus is bit-identical to an uninterrupted run. A
  /// missing journal file starts a fresh run (so --resume is idempotent).
  bool resume = false;
  /// Transient-fault retry budget per work unit (total tries = 1 + retries,
  /// counted across resumes via journaled retry records).
  int retries = 2;
  /// Sweep only the work units owned by this shard of the partition
  /// (default: the whole space). Non-owned units are never analyzed or
  /// measured; their time slots stay empty in the shard corpus and are
  /// filled in by `merge_shard_corpora` (core/corpus_merge.hpp).
  ShardSpec shard;
};

struct ProfileDataset {
  ProfileConfig config;
  gpusim::ProblemSize problem;  // the base (paper-default) problem
  std::vector<gpusim::GpuSpec> gpus;
  std::vector<stencil::StencilPattern> stencils;
  /// Per-stencil problem (grid size + boundary); equals `problem` for every
  /// stencil unless the vary_* extensions are enabled.
  std::vector<gpusim::ProblemSize> problems;
  /// settings[stencil][oc][k] — sampled once per (stencil, OC), shared by
  /// every GPU. oc indexed as in gpusim::valid_combinations().
  std::vector<std::vector<std::vector<gpusim::ParamSetting>>> settings;
  /// times[stencil][gpu][oc][k] in ms, aligned with `settings`;
  /// NaN marks a crashed variant.
  std::vector<std::vector<std::vector<std::vector<double>>>> times;
  /// Work units withdrawn by fault quarantine, sorted by (stencil, oc,
  /// gpu). Empty for a fault-free run.
  std::vector<QuarantineRecord> quarantined;
  /// Units recovered from the journal instead of re-measured (resume runs
  /// only; not serialized, not part of dataset_checksum).
  std::size_t resumed_units = 0;
  /// Partition identity of this corpus; count == 1 for a complete corpus.
  /// Sharded corpora serialize it (plus the pinned run knobs below) in a
  /// `shard` header section so `smartctl merge` can refuse to splice
  /// incompatible runs.
  ShardSpec shard;
  /// Run knobs pinned into a shard corpus header: the retry budget and the
  /// canonical fault spec ("" = no injection). Every shard of one fleet run
  /// must agree on them or the merged fault/retry schedule would not match
  /// any single-process run.
  int shard_retries = 2;
  std::string shard_fault_spec;
  /// Work units swept by this run (== the whole space unless sharded; not
  /// serialized, not part of dataset_checksum).
  std::size_t owned_units = 0;

  std::size_t num_gpus() const noexcept { return gpus.size(); }
  static std::size_t num_ocs();

  /// True if at least one sampled setting of (stencil, oc) ran on `gpu`.
  bool oc_ok(std::size_t stencil, std::size_t gpu, std::size_t oc) const;

  /// Best time over the sampled settings of one OC (+inf if all crashed).
  double oc_best_time(std::size_t stencil, std::size_t gpu,
                      std::size_t oc) const;

  /// Index of the best setting for (stencil, gpu, oc), or -1.
  int oc_best_setting(std::size_t stencil, std::size_t gpu,
                      std::size_t oc) const;

  /// Best OC index for a stencil on a GPU, or -1 when everything crashed.
  int best_oc(std::size_t stencil, std::size_t gpu) const;

  /// Best tuned time over all OCs (Figs. 1 and 4); +inf if all crashed.
  double best_time(std::size_t stencil, std::size_t gpu) const;

  /// Worst per-OC tuned time among OCs that ran (Fig. 1 denominator).
  double worst_time(std::size_t stencil, std::size_t gpu) const;

  /// Total number of (stencil, oc, setting) instances that ran successfully
  /// on at least one GPU.
  std::size_t num_instances() const;
};

/// Generates the stencils and profiles them (deterministic given config —
/// bit-identical for any SMART_THREADS value; see util/task_pool.hpp).
ProfileDataset build_profile_dataset(const ProfileConfig& config);

/// Fault-tolerant sweep: retries transient measurement faults within
/// opts.retries, quarantines permanent ones, checkpoints completed units to
/// opts.journal_path and resumes from it. The invariant (proven by
/// tests/core/profile_resume_test.cpp and scripts/check.sh): a run killed
/// at ANY point and resumed — at any SMART_THREADS — produces a corpus
/// bit-identical to an uninterrupted run, and surviving measurements under
/// transient fault injection are bit-identical to a fault-free run.
ProfileDataset build_profile_dataset(const ProfileConfig& config,
                                     const ProfileRunOptions& opts);

/// Per-shard owned-unit counts for the work-unit space of `config` under an
/// N-way partition — the fleet-planning view (`smartctl profile --shard i/N
/// --plan`): runs only the cheap stencil-generation stage, no measurements.
std::vector<std::size_t> shard_unit_counts(const ProfileConfig& config,
                                           std::size_t shard_count);

/// Order-sensitive 64-bit digest of stencils, sampled settings and measured
/// times (NaN canonicalized). scripts/check.sh diffs it between a
/// SMART_THREADS=1 run and an unrestricted run. Sharded corpora additionally
/// fold their shard identity and pinned run knobs, so two shards of one run
/// never collide with each other or with the complete corpus.
std::uint64_t dataset_checksum(const ProfileDataset& ds);

}  // namespace smart::core
