// Append-only checkpoint journal for the profiling sweep.
//
// Every completed (stencil, OC, GPU) work unit is appended as one flushed
// line, so a run killed at any point — including kill -9 mid-append — can
// be resumed: replay parses only up to the last newline (a partial tail
// line is by construction the only casualty of a mid-write kill), truncates
// the tail, and reopens for append. Failed attempts and quarantines are
// journaled too, so retry budgets count across process restarts.
//
// Format (plain text, diff-friendly like the corpus format):
//
//   stencilmart-journal-v1
//   config <dims> <max_order> <num_stencils> <samples_per_oc> <seed>
//          <noise_sigma> <sim_seed> <vary_size> <vary_boundary>
//          <retries> <fault_spec|-> <shard_i/N>          (one line)
//   unit  <s> <oc> <g> <n> <t0..tn-1>     completed unit (hexfloat|crash)
//   retry <s> <oc> <g> <attempt> <kind>   failed attempt (transient|worker)
//   quar  <s> <oc> <g> <reason...>        unit withdrawn from the sweep
//
// The config line pins a resume to the exact run that wrote the journal:
// a different config, retry budget, fault spec or shard assignment would
// splice two incompatible schedules and is rejected.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/profile_dataset.hpp"

namespace smart::core {

/// State recovered from an interrupted run's journal.
struct JournalReplay {
  /// Completed unit times, keyed by ProfileJournal::unit_key.
  std::unordered_map<std::uint64_t, std::vector<double>> units;
  /// Failed attempts per unit (the next attempt index to try).
  std::unordered_map<std::uint64_t, int> attempts;
  std::vector<QuarantineRecord> quarantined;
  std::size_t replayed_lines = 0;
};

class ProfileJournal {
 public:
  /// Flat work-unit key (row-major in (stencil, oc, gpu)).
  static std::uint64_t unit_key(std::size_t s, std::size_t oc, std::size_t g,
                                std::size_t num_ocs,
                                std::size_t num_gpus) noexcept {
    return (static_cast<std::uint64_t>(s) * num_ocs + oc) * num_gpus + g;
  }

  ProfileJournal() = default;
  ~ProfileJournal() { close(); }
  ProfileJournal(const ProfileJournal&) = delete;
  ProfileJournal& operator=(const ProfileJournal&) = delete;

  /// Opens `path` fresh (truncating any previous journal) and writes the
  /// header. Throws std::runtime_error when the file cannot be created.
  void start(const std::string& path, const ProfileConfig& config,
             const ProfileRunOptions& opts, const std::string& fault_spec);

  /// Replays an existing journal at `path` (tolerating a truncated final
  /// line), validates its config line against this run's, drops the partial
  /// tail and reopens for append. A missing file degrades to start().
  /// Throws std::runtime_error on config mismatch or mid-file corruption.
  JournalReplay resume(const std::string& path, const ProfileConfig& config,
                       const ProfileRunOptions& opts,
                       const std::string& fault_spec, std::size_t num_ocs,
                       std::size_t num_gpus);

  bool active() const noexcept { return out_.is_open(); }

  // Thread-safe appends; each record is flushed before returning, so a
  // kill after the call cannot lose it.
  void record_unit(std::size_t s, std::size_t oc, std::size_t g,
                   const std::vector<double>& times);
  void record_retry(std::size_t s, std::size_t oc, std::size_t g, int attempt,
                    const char* kind);
  void record_quarantine(const QuarantineRecord& record);

  /// Flushes and records the "profile.journal" append counters (wall time +
  /// lines appended). Idempotent; the destructor calls it.
  void close();

 private:
  void append(const std::string& line);

  std::ofstream out_;
  std::mutex mu_;
  double append_ms_ = 0.0;
  std::uint64_t appended_ = 0;
};

}  // namespace smart::core
