#include "core/advisor.hpp"

#include <cmath>
#include <limits>

namespace smart::core {

AdvisorResult GpuAdvisor::pure_performance(std::size_t max_instances) const {
  return run(false, max_instances);
}

AdvisorResult GpuAdvisor::cost_efficiency(std::size_t max_instances) const {
  return run(true, max_instances);
}

AdvisorResult GpuAdvisor::run(bool cost_weighted,
                              std::size_t max_instances) const {
  const ProfileDataset& ds = task_->dataset();
  std::vector<std::size_t> gpu_pool;
  for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
    if (!cost_weighted || ds.gpus[g].rental_usd_hr > 0.0) gpu_pool.push_back(g);
  }

  AdvisorResult result;
  std::vector<std::size_t> truth_counts(ds.num_gpus(), 0);
  std::vector<std::size_t> hit_counts(ds.num_gpus(), 0);
  std::size_t overall_hits = 0;

  // Walk distinct (stencil, oc, setting) triples: instances_ contains one
  // entry per GPU the triple ran on, ordered by GPU within a triple, so a
  // triple's first occurrence marks it.
  std::size_t examined = 0;
  const auto& instances = task_->instances();
  for (std::size_t idx = 0; idx < instances.size(); ++idx) {
    const RegressionInstance& ins = instances[idx];
    if (idx > 0) {
      const RegressionInstance& prev = instances[idx - 1];
      if (prev.stencil == ins.stencil && prev.oc == ins.oc &&
          prev.setting == ins.setting) {
        continue;  // same triple, later GPU
      }
    }
    if (max_instances > 0 && examined >= max_instances) break;

    // Ground truth and prediction over the GPUs where the variant ran
    // (a crash on one architecture, e.g. P100's 48 KB smem/block limit,
    // makes the others the only viable rentals — exactly the decision the
    // case study informs). Requires at least two viable GPUs.
    std::size_t truth_best = 0;
    std::size_t pred_best = 0;
    double truth_score = std::numeric_limits<double>::infinity();
    double pred_score = std::numeric_limits<double>::infinity();
    int viable = 0;
    for (std::size_t g : gpu_pool) {
      const double measured = task_->measured(idx, g);
      if (std::isnan(measured)) continue;
      ++viable;
      const double weight = cost_weighted ? ds.gpus[g].rental_usd_hr : 1.0;
      const double t_score = measured * weight;
      const double p_score = task_->predict(idx, g) * weight;
      if (t_score < truth_score) {
        truth_score = t_score;
        truth_best = g;
      }
      if (p_score < pred_score) {
        pred_score = p_score;
        pred_best = g;
      }
    }
    if (viable < 2) continue;
    ++examined;
    ++truth_counts[truth_best];
    if (pred_best == truth_best) {
      ++hit_counts[truth_best];
      ++overall_hits;
    }
  }

  result.instances = examined;
  result.overall_accuracy =
      examined == 0 ? 0.0
                    : static_cast<double>(overall_hits) /
                          static_cast<double>(examined);
  for (std::size_t g : gpu_pool) {
    AdvisorShare share;
    share.gpu = g;
    share.truth_count = truth_counts[g];
    share.truth_share = examined == 0 ? 0.0
                                      : static_cast<double>(truth_counts[g]) /
                                            static_cast<double>(examined);
    share.accuracy = truth_counts[g] == 0
                         ? 0.0
                         : static_cast<double>(hit_counts[g]) /
                               static_cast<double>(truth_counts[g]);
    result.shares.push_back(share);
  }
  return result;
}

}  // namespace smart::core
