#include "core/advisor.hpp"

#include <cmath>
#include <limits>

#include "util/timing.hpp"

namespace smart::core {

AdvisorResult GpuAdvisor::pure_performance(std::size_t max_instances) const {
  return run(false, max_instances);
}

AdvisorResult GpuAdvisor::cost_efficiency(std::size_t max_instances) const {
  return run(true, max_instances);
}

AdvisorResult GpuAdvisor::run(bool cost_weighted,
                              std::size_t max_instances) const {
  const ProfileDataset& ds = task_->dataset();
  std::vector<std::size_t> gpu_pool;
  for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
    if (!cost_weighted || ds.gpus[g].rental_usd_hr > 0.0) gpu_pool.push_back(g);
  }

  AdvisorResult result;
  std::vector<std::size_t> truth_counts(ds.num_gpus(), 0);
  std::vector<std::size_t> hit_counts(ds.num_gpus(), 0);
  std::size_t overall_hits = 0;

  // Pass 1: select the examined triples. triple_starts() gives each
  // distinct (stencil, oc, setting)'s first instance (the grouping is
  // validated at RegressionTask construction); a triple participates when
  // its variant ran on at least two pooled GPUs — a crash on one
  // architecture, e.g. P100's 48 KB smem/block limit, makes the others the
  // only viable rentals, exactly the decision the case study informs.
  std::vector<std::size_t> selected;
  for (std::size_t idx : task_->triple_starts()) {
    if (max_instances > 0 && selected.size() >= max_instances) break;
    int viable = 0;
    for (std::size_t g : gpu_pool) {
      if (!std::isnan(task_->measured(idx, g))) ++viable;
    }
    if (viable >= 2) selected.push_back(idx);
  }

  // Pass 2: one batched prediction sweep over selected triples x pooled
  // GPUs (each cell bit-identical to a per-row predict() call, so the
  // argmin decisions below match the old per-call loop exactly).
  const util::PhaseTimer timer("advisor.run",
                               selected.size() * gpu_pool.size());
  const PredictionTable table = task_->predict_table(selected, gpu_pool);

  // Pass 3: serial argmin scoring per triple.
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::size_t idx = selected[i];
    std::size_t truth_best = 0;
    std::size_t pred_best = 0;
    double truth_score = std::numeric_limits<double>::infinity();
    double pred_score = std::numeric_limits<double>::infinity();
    for (std::size_t gi = 0; gi < gpu_pool.size(); ++gi) {
      const std::size_t g = gpu_pool[gi];
      const double measured = task_->measured(idx, g);
      if (std::isnan(measured)) continue;
      const double weight = cost_weighted ? ds.gpus[g].rental_usd_hr : 1.0;
      const double t_score = measured * weight;
      const double p_score = table.at(i, gi) * weight;
      if (t_score < truth_score) {
        truth_score = t_score;
        truth_best = g;
      }
      if (p_score < pred_score) {
        pred_score = p_score;
        pred_best = g;
      }
    }
    ++truth_counts[truth_best];
    if (pred_best == truth_best) {
      ++hit_counts[truth_best];
      ++overall_hits;
    }
  }
  const std::size_t examined = selected.size();

  result.instances = examined;
  result.overall_accuracy =
      examined == 0 ? 0.0
                    : static_cast<double>(overall_hits) /
                          static_cast<double>(examined);
  for (std::size_t g : gpu_pool) {
    AdvisorShare share;
    share.gpu = g;
    share.truth_count = truth_counts[g];
    share.truth_share = examined == 0 ? 0.0
                                      : static_cast<double>(truth_counts[g]) /
                                            static_cast<double>(examined);
    share.accuracy = truth_counts[g] == 0
                         ? 0.0
                         : static_cast<double>(hit_counts[g]) /
                               static_cast<double>(truth_counts[g]);
    result.shares.push_back(share);
  }
  return result;
}

}  // namespace smart::core
