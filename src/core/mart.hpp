// StencilMart: the end-user facade of the framework (paper Fig. 5, used the
// way the paper's scenarios describe).
//
//   smart::core::StencilMart mart(config);
//   mart.train();                               // profile + fit all models
//   auto advice = mart.advise(my_pattern, "V100");
//   // -> which merged OC group to tune, its representative OC, a concrete
//   //    parameter setting, and the predicted execution time
//   auto rental = mart.recommend_gpu(my_pattern);
//   // -> best-performance GPU and most cost-efficient rental
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/classification.hpp"
#include "core/oc_merger.hpp"
#include "core/profile_dataset.hpp"
#include "core/regression.hpp"
#include "ml/gbdt.hpp"

namespace smart::core {

struct MartConfig {
  ProfileConfig profile{};
  RegressionConfig regression{};
  RegressorKind regressor = RegressorKind::kGbr;  // fastest to train
  int tuning_samples = 24;  // random-search budget used by advise()
};

struct OcAdvice {
  int group = -1;
  std::string group_name;
  gpusim::OptCombination oc;             // the group's representative
  gpusim::ParamSetting setting;          // tuned under the simulator
  double expected_time_ms = 0.0;         // simulated time of that setting
  double predicted_time_ms = 0.0;        // the regression model's estimate
};

struct GpuRecommendation {
  std::string fastest_gpu;
  double fastest_time_ms = 0.0;
  std::string cheapest_gpu;              // time x rental $/hr minimizer
  double cheapest_cost_score = 0.0;
};

/// One query of an advise_batch() call: a stencil on a named GPU, with or
/// without the cross-GPU rental recommendation.
struct AdviseBatchItem {
  stencil::StencilPattern pattern{2, {}};
  std::string gpu = "V100";
  bool recommend = true;
};

/// Per-item outcome of advise_batch(). An invalid item (unknown GPU, wrong
/// dimensionality, no runnable variant) carries the diagnostic in `error`
/// instead of failing the whole batch — exactly the message the equivalent
/// single advise()/recommend_gpu() call would have thrown.
struct AdviseBatchResult {
  OcAdvice advice{};
  GpuRecommendation rec{};  // filled only when the item asked for it
  std::string error;
  bool ok() const noexcept { return error.empty(); }
};

class StencilMart {
 public:
  explicit StencilMart(MartConfig config);

  /// Profiles the training corpus and fits the OC merger, one per-GPU
  /// GBDT classifier, and the cross-architecture regressor.
  void train();
  /// Trains from an already-profiled corpus (e.g. load_dataset output):
  /// skips profiling entirely and fits all models on the corpus's measured
  /// times. The corpus's ProfileConfig replaces config.profile so advice
  /// uses the geometry and simulator settings the corpus was built with.
  void train(const ProfileDataset& dataset);
  bool trained() const noexcept { return trained_; }

  /// Best-OC advice for a (possibly unseen) stencil on a named GPU.
  OcAdvice advise(const stencil::StencilPattern& pattern,
                  const std::string& gpu_name) const;

  /// Cross-architecture rental recommendation for a stencil: per GPU, the
  /// model predicts the time of the advised variant; cost efficiency
  /// weighs it by rental price (GPUs without a price are skipped there).
  GpuRecommendation recommend_gpu(const stencil::StencilPattern& pattern) const;

  /// Batched advise + recommend: classification and tuning run once per
  /// distinct (stencil, GPU) variant across the whole batch (parallel on
  /// the task pool), and every regression estimate of the batch is funnelled
  /// through ONE predict_variants call. Each result is bit-identical to the
  /// per-item advise()/recommend_gpu() pair — batching and within-batch
  /// deduplication change cost, never values — which is the determinism
  /// contract the serve daemon's admission batcher is built on. Item
  /// patterns must stay alive for the duration of the call.
  std::vector<AdviseBatchResult> advise_batch(
      std::span<const AdviseBatchItem> items) const;

  const ProfileDataset& dataset() const { return *dataset_; }
  const OcMerger& merger() const { return merger_; }
  const MartConfig& config() const noexcept { return config_; }

 private:
  std::size_t gpu_index(const std::string& name) const;

  /// Fits merger, per-GPU classifiers and the regressor on *dataset_.
  void fit_models();

  // Model artifact (de)serialization (core/serialize) assembles/injects the
  // trained state directly.
  friend void save_model(const StencilMart& mart, std::ostream& out);
  friend StencilMart load_model(std::istream& in, const std::string& source);

  /// Classification + tuning for one GPU, without the regression estimate
  /// (predicted_time_ms stays 0). advise() adds a single prediction;
  /// recommend_gpu() batches the predictions of all GPUs into one call.
  OcAdvice advise_variant(const stencil::StencilPattern& pattern,
                          std::size_t g) const;

  MartConfig config_;
  bool trained_ = false;
  std::unique_ptr<ProfileDataset> dataset_;
  OcMerger merger_;
  std::vector<ml::GbdtClassifier> classifiers_;  // one per GPU
  std::unique_ptr<RegressionTask> regression_;
};

}  // namespace smart::core
