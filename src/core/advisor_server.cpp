#include "core/advisor_server.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <stdexcept>

#include "util/table.hpp"
#include "util/timing.hpp"

namespace smart::core {

namespace {

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

// Shed replies are fixed strings: the determinism contract demands reply
// bytes carry no timing- or load-dependent data.
constexpr const char* kBusyError = "busy (admission queue full)";
constexpr const char* kDeadlineError = "deadline exceeded before execution";

}  // namespace

std::string advise_report(const stencil::StencilPattern& pattern,
                          const std::string& gpu, const OcAdvice& advice,
                          const GpuRecommendation& rec) {
  std::string out;
  out += "stencil " + pattern.name() + " on " + gpu + ":\n";
  out += "  group        " + advice.group_name + '\n';
  out += "  OC           " + advice.oc.name() + '\n';
  out += "  setting      " + advice.setting.to_string() + '\n';
  out += "  tuned time   " + util::format_double(advice.expected_time_ms, 3) +
         " ms (simulated)\n";
  out += "  model est.   " + util::format_double(advice.predicted_time_ms, 3) +
         " ms\n";
  out += "  fastest GPU  " + rec.fastest_gpu + '\n';
  out += "  best rental  " + rec.cheapest_gpu + '\n';
  return out;
}

AdvisorServer::AdvisorServer(const StencilMart& mart, ServeConfig config)
    : AdvisorServer(
          ModelSnapshot{std::shared_ptr<const StencilMart>(
                            &mart, [](const StencilMart*) {}),
                        "in-process", "-"},
          std::move(config), nullptr) {}

AdvisorServer::AdvisorServer(ModelSnapshot initial, ServeConfig config,
                             ModelProvider provider)
    : config_(std::move(config)),
      model_(std::move(initial)),
      provider_(std::move(provider)) {
  if (model_.mart == nullptr || !model_.mart->trained()) {
    throw std::logic_error("AdvisorServer: the model must be trained");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("AdvisorServer: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0) {
    throw std::invalid_argument("AdvisorServer: max_wait_us must be >= 0");
  }
  if (config_.max_queue < 1) {
    throw std::invalid_argument("AdvisorServer: max_queue must be >= 1");
  }
  if (config_.deadline_us < 0) {
    throw std::invalid_argument("AdvisorServer: deadline_us must be >= 0");
  }
  if (config_.memo_capacity == 0) config_.memo_capacity = 1;
  if (config_.simd >= 0) simd_override_.emplace(config_.simd != 0);
  if (!config_.precision.empty()) {
    precision_override_.emplace(
        ml::precision_from_string(config_.precision.c_str()));
  }
  batcher_ = std::thread([this] { batcher_loop(); });
}

AdvisorServer::~AdvisorServer() {
  drain();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  batcher_.join();
}

std::string AdvisorServer::healthz_payload() const {
  std::string version, checksum;
  {
    const std::lock_guard<std::mutex> lk(model_mu_);
    version = model_.version;
    checksum = model_.checksum;
  }
  return "epoch=" + std::to_string(epoch()) + " version=" + version +
         " checksum=" + checksum;
}

ModelSnapshot AdvisorServer::model_snapshot() const {
  const std::lock_guard<std::mutex> lk(model_mu_);
  return model_;
}

std::uint64_t AdvisorServer::reload() {
  // One reload at a time: the provider call (artifact read + strict
  // validation) runs outside the model lock so serving never stalls on it.
  const std::lock_guard<std::mutex> rlk(reload_mu_);
  if (!provider_) {
    throw std::runtime_error(
        "reload unavailable (not serving from a model artifact)");
  }
  ModelSnapshot fresh = provider_();
  if (fresh.mart == nullptr || !fresh.mart->trained()) {
    throw std::runtime_error("reload: provider returned an untrained model");
  }
  std::uint64_t next = 0;
  {
    const std::lock_guard<std::mutex> lk(model_mu_);
    model_ = std::move(fresh);
    next = epoch_.load(std::memory_order_relaxed) + 1;
    epoch_.store(next, std::memory_order_release);
  }
  {
    // The memo must never mix epochs: clear it and re-tag. A batch still
    // running on the old model sees memo_epoch_ != its epoch and skips its
    // inserts.
    const std::lock_guard<std::mutex> lk(memo_mu_);
    memo_.clear();
    memo_epoch_ = next;
  }
  return next;
}

bool AdvisorServer::submit(std::string_view line, const Sink& sink) {
  bool blank = true;
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') {
      blank = false;
      break;
    }
  }
  if (blank) return !shutdown_.load(std::memory_order_acquire);

  auto parsed = serve::parse_request(line);
  if (shutdown_.load(std::memory_order_acquire)) {
    sink(serve::err_reply(parsed.id, "server is shutting down"));
    {
      const std::lock_guard<std::mutex> lk(stats_mu_);
      ++errors_;
    }
    return false;
  }
  if (!parsed.ok) {
    sink(serve::err_reply(parsed.id, parsed.error));
    {
      const std::lock_guard<std::mutex> lk(stats_mu_);
      ++errors_;
    }
    return true;
  }

  serve::Request& request = parsed.request;
  switch (request.verb) {
    case serve::Verb::kPing:
      sink(serve::ok_reply(request.id, "pong v1"));
      return true;
    case serve::Verb::kHealthz:
      sink(serve::ok_reply(request.id, "healthz " + healthz_payload()));
      return true;
    case serve::Verb::kReload: {
      try {
        reload();
        sink(serve::ok_reply(request.id, "reloaded " + healthz_payload()));
      } catch (const std::exception& e) {
        sink(serve::err_reply(request.id,
                              std::string("reload failed: ") + e.what()));
        const std::lock_guard<std::mutex> lk(stats_mu_);
        ++errors_;
      }
      return true;
    }
    case serve::Verb::kStats: {
      ServeCounters counters;
      {
        const std::lock_guard<std::mutex> lk(stats_mu_);
        counters = snapshot_locked();
        // Reset-on-stats: each stats reply reports the window since the
        // previous one, so a long-lived daemon's percentiles stay current.
        latency_.reset();
        served_ = errors_ = memo_hits_ = batches_ = max_batch_seen_ = 0;
        shed_busy_ = shed_deadline_ = 0;
        window_start_ = Clock::now();
      }
      char qps[32];
      std::snprintf(qps, sizeof qps, "%.1f", counters.qps);
      std::string payload = "served=" + std::to_string(counters.served);
      payload += " errors=" + std::to_string(counters.errors);
      payload += " memo_hits=" + std::to_string(counters.memo_hits);
      payload += " batches=" + std::to_string(counters.batches);
      payload += " max_batch=" + std::to_string(counters.max_batch_seen);
      payload += " shed_busy=" + std::to_string(counters.shed_busy);
      payload += " shed_deadline=" + std::to_string(counters.shed_deadline);
      payload += " p50_us=" + std::to_string(counters.p50_us);
      payload += " p99_us=" + std::to_string(counters.p99_us);
      payload += " qps=";
      payload += qps;
      payload += " epoch=" + std::to_string(counters.epoch);
      sink(serve::ok_reply(request.id, payload));
      return true;
    }
    case serve::Verb::kShutdown: {
      shutdown_.store(true, std::memory_order_release);
      drain();  // every request submitted before the shutdown answers first
      sink(serve::ok_reply(request.id, "bye"));
      return false;
    }
    case serve::Verb::kAdvise:
    case serve::Verb::kPredict:
      break;
  }

  Pending pending;
  pending.request = std::move(request);
  pending.sink = sink;
  pending.enqueued = Clock::now();

  {
    const std::lock_guard<std::mutex> lk(memo_mu_);
    const auto it = memo_.find(pending.request.memo_key);
    if (it != memo_.end()) {
      const MemoEntry entry = it->second;
      {
        const std::lock_guard<std::mutex> slk(stats_mu_);
        ++memo_hits_;
      }
      respond(pending, entry.ok, entry.payload);
      return true;
    }
  }

  {
    const std::lock_guard<std::mutex> lk(mu_);
    // Bounded admission: shed instead of buffering without limit. The
    // size check and the push share one critical section, so concurrent
    // producers can never overshoot the bound.
    if (queue_.size() < config_.max_queue) {
      queue_.push_back(std::move(pending));
      cv_.notify_all();
      return true;
    }
  }
  shed(pending, /*deadline=*/false);
  return true;
}

void AdvisorServer::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  cv_.notify_all();
  idle_cv_.wait(lk, [&] { return queue_.empty() && !busy_; });
  draining_ = false;
}

void AdvisorServer::batcher_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      idle_cv_.notify_all();
      continue;
    }
    // Admission batching: flush on max_batch, on the max_wait_us age of the
    // oldest pending request, or immediately when draining.
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(config_.max_wait_us);
    while (queue_.size() < static_cast<std::size_t>(config_.max_batch) &&
           !draining_ && !stopping_ && Clock::now() < deadline) {
      cv_.wait_until(lk, deadline);
    }
    const std::size_t take =
        std::min(queue_.size(), static_cast<std::size_t>(config_.max_batch));
    std::vector<Pending> batch(
        std::make_move_iterator(queue_.begin()),
        std::make_move_iterator(queue_.begin() +
                                static_cast<std::ptrdiff_t>(take)));
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(take));
    busy_ = true;
    lk.unlock();
    execute_batch(std::move(batch));
    lk.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void AdvisorServer::execute_batch(std::vector<Pending> batch) {
  // Expired requests are shed before any model work: their reply is the
  // fixed deadline error, not a stale computation.
  if (config_.deadline_us > 0) {
    const auto now = Clock::now();
    std::vector<Pending> kept;
    kept.reserve(batch.size());
    for (auto& pending : batch) {
      if (elapsed_us(pending.enqueued, now) >
          static_cast<std::uint64_t>(config_.deadline_us)) {
        shed(pending, /*deadline=*/true);
      } else {
        kept.push_back(std::move(pending));
      }
    }
    batch = std::move(kept);
    if (batch.empty()) return;
  }

  {
    const std::lock_guard<std::mutex> lk(stats_mu_);
    ++batches_;
    max_batch_seen_ = std::max<std::uint64_t>(max_batch_seen_, batch.size());
  }

  // Snapshot the epoch-tagged model slot: the whole batch computes on one
  // model, and a concurrent reload can neither free it (shared_ptr) nor
  // change this batch's reply bytes.
  std::shared_ptr<const StencilMart> mart;
  std::uint64_t batch_epoch = 0;
  {
    const std::lock_guard<std::mutex> lk(model_mu_);
    mart = model_.mart;
    batch_epoch = epoch_.load(std::memory_order_relaxed);
  }

  // Within-batch dedup + a second memo check (another batch may have
  // computed a key between submit() and now).
  std::unordered_map<std::string, std::size_t> unique_index;
  std::vector<AdviseBatchItem> unique_items;
  std::vector<const serve::Request*> unique_requests;
  std::vector<std::size_t> pending_unique(batch.size());
  std::vector<char> pending_done(batch.size(), 0);
  {
    const std::lock_guard<std::mutex> lk(memo_mu_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const serve::Request& request = batch[i].request;
      const auto hit =
          memo_epoch_ == batch_epoch ? memo_.find(request.memo_key) : memo_.end();
      if (hit != memo_.end()) {
        const MemoEntry entry = hit->second;
        {
          const std::lock_guard<std::mutex> slk(stats_mu_);
          ++memo_hits_;
        }
        respond(batch[i], entry.ok, entry.payload);
        pending_done[i] = 1;
        continue;
      }
      const auto [it, inserted] =
          unique_index.try_emplace(request.memo_key, unique_items.size());
      if (inserted) {
        AdviseBatchItem item;
        item.pattern = request.pattern;
        item.gpu = request.gpu;
        item.recommend = request.verb == serve::Verb::kAdvise;
        unique_items.push_back(std::move(item));
        unique_requests.push_back(&request);
      }
      pending_unique[i] = it->second;
    }
  }
  if (unique_items.empty()) return;

  std::vector<MemoEntry> replies(unique_items.size());
  try {
    const util::PhaseTimer timer("serve.batch", batch.size());
    const auto results = mart->advise_batch(unique_items);
    for (std::size_t u = 0; u < results.size(); ++u) {
      if (!results[u].ok()) {
        replies[u] = {false, results[u].error};
        continue;
      }
      if (unique_requests[u]->verb == serve::Verb::kAdvise) {
        replies[u] = {true, serve::escape_text(advise_report(
                                unique_items[u].pattern, unique_items[u].gpu,
                                results[u].advice, results[u].rec))};
      } else {
        replies[u] = {true,
                      "predicted_ms=" +
                          hexfloat(results[u].advice.predicted_time_ms) +
                          " ms=" +
                          util::format_double(
                              results[u].advice.predicted_time_ms, 3)};
      }
    }
  } catch (const std::exception& e) {
    // advise_batch reports per-item problems in-band; reaching here means a
    // systemic failure (e.g. allocation) — answer the batch, keep serving.
    for (auto& reply : replies) reply = {false, e.what()};
  }

  {
    const std::lock_guard<std::mutex> lk(memo_mu_);
    // Inserts are valid only while the memo still belongs to this batch's
    // epoch; after a reload they would poison the fresh model's cache.
    if (memo_epoch_ == batch_epoch) {
      if (memo_.size() + replies.size() > config_.memo_capacity) memo_.clear();
      for (std::size_t u = 0; u < replies.size(); ++u) {
        memo_.emplace(unique_requests[u]->memo_key, replies[u]);
      }
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (pending_done[i]) continue;
    const MemoEntry& reply = replies[pending_unique[i]];
    respond(batch[i], reply.ok, reply.payload);
  }
}

void AdvisorServer::respond(const Pending& pending, bool ok,
                            const std::string& payload) {
  const std::uint64_t us = elapsed_us(pending.enqueued, Clock::now());
  {
    const std::lock_guard<std::mutex> lk(stats_mu_);
    latency_.record(us);
    if (ok) ++served_;
    else ++errors_;
  }
  pending.sink(ok ? serve::ok_reply(pending.request.id, payload)
                  : serve::err_reply(pending.request.id, payload));
}

void AdvisorServer::shed(const Pending& pending, bool deadline) {
  {
    const std::lock_guard<std::mutex> lk(stats_mu_);
    ++errors_;
    if (deadline) ++shed_deadline_;
    else ++shed_busy_;
  }
  pending.sink(serve::err_reply(pending.request.id,
                                deadline ? kDeadlineError : kBusyError));
}

ServeCounters AdvisorServer::snapshot_locked() const {
  ServeCounters counters;
  counters.served = served_;
  counters.errors = errors_;
  counters.memo_hits = memo_hits_;
  counters.batches = batches_;
  counters.max_batch_seen = max_batch_seen_;
  counters.shed_busy = shed_busy_;
  counters.shed_deadline = shed_deadline_;
  counters.p50_us = latency_.percentile(50.0);
  counters.p99_us = latency_.percentile(99.0);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - window_start_).count();
  counters.qps = seconds > 0.0 ? static_cast<double>(served_) / seconds : 0.0;
  counters.epoch = epoch();
  return counters;
}

ServeCounters AdvisorServer::counters_snapshot() const {
  const std::lock_guard<std::mutex> lk(stats_mu_);
  return snapshot_locked();
}

}  // namespace smart::core
