#include "core/advisor_server.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <stdexcept>

#include "util/table.hpp"
#include "util/timing.hpp"

namespace smart::core {

namespace {

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

std::string advise_report(const stencil::StencilPattern& pattern,
                          const std::string& gpu, const OcAdvice& advice,
                          const GpuRecommendation& rec) {
  std::string out;
  out += "stencil " + pattern.name() + " on " + gpu + ":\n";
  out += "  group        " + advice.group_name + '\n';
  out += "  OC           " + advice.oc.name() + '\n';
  out += "  setting      " + advice.setting.to_string() + '\n';
  out += "  tuned time   " + util::format_double(advice.expected_time_ms, 3) +
         " ms (simulated)\n";
  out += "  model est.   " + util::format_double(advice.predicted_time_ms, 3) +
         " ms\n";
  out += "  fastest GPU  " + rec.fastest_gpu + '\n';
  out += "  best rental  " + rec.cheapest_gpu + '\n';
  return out;
}

AdvisorServer::AdvisorServer(const StencilMart& mart, ServeConfig config)
    : mart_(mart), config_(config) {
  if (!mart.trained()) {
    throw std::logic_error("AdvisorServer: the model must be trained");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("AdvisorServer: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0) {
    throw std::invalid_argument("AdvisorServer: max_wait_us must be >= 0");
  }
  if (config_.memo_capacity == 0) config_.memo_capacity = 1;
  if (config_.simd >= 0) simd_override_.emplace(config_.simd != 0);
  if (!config_.precision.empty()) {
    precision_override_.emplace(
        ml::precision_from_string(config_.precision.c_str()));
  }
  batcher_ = std::thread([this] { batcher_loop(); });
}

AdvisorServer::~AdvisorServer() {
  drain();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  batcher_.join();
}

bool AdvisorServer::submit(std::string_view line, const Sink& sink) {
  bool blank = true;
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') {
      blank = false;
      break;
    }
  }
  if (blank) return !shutdown_;

  auto parsed = serve::parse_request(line);
  if (shutdown_) {
    sink(serve::err_reply(parsed.id, "server is shutting down"));
    {
      const std::lock_guard<std::mutex> lk(stats_mu_);
      ++errors_;
    }
    return false;
  }
  if (!parsed.ok) {
    sink(serve::err_reply(parsed.id, parsed.error));
    {
      const std::lock_guard<std::mutex> lk(stats_mu_);
      ++errors_;
    }
    return true;
  }

  serve::Request& request = parsed.request;
  switch (request.verb) {
    case serve::Verb::kPing:
      sink(serve::ok_reply(request.id, "pong v1"));
      return true;
    case serve::Verb::kStats: {
      ServeCounters counters;
      {
        const std::lock_guard<std::mutex> lk(stats_mu_);
        counters = snapshot_locked();
        // Reset-on-stats: each stats reply reports the window since the
        // previous one, so a long-lived daemon's percentiles stay current.
        latency_.reset();
        served_ = errors_ = memo_hits_ = batches_ = max_batch_seen_ = 0;
        window_start_ = Clock::now();
      }
      char qps[32];
      std::snprintf(qps, sizeof qps, "%.1f", counters.qps);
      std::string payload = "served=" + std::to_string(counters.served);
      payload += " errors=" + std::to_string(counters.errors);
      payload += " memo_hits=" + std::to_string(counters.memo_hits);
      payload += " batches=" + std::to_string(counters.batches);
      payload += " max_batch=" + std::to_string(counters.max_batch_seen);
      payload += " p50_us=" + std::to_string(counters.p50_us);
      payload += " p99_us=" + std::to_string(counters.p99_us);
      payload += " qps=";
      payload += qps;
      sink(serve::ok_reply(request.id, payload));
      return true;
    }
    case serve::Verb::kShutdown: {
      {
        const std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
      }
      drain();  // every request submitted before the shutdown answers first
      sink(serve::ok_reply(request.id, "bye"));
      return false;
    }
    case serve::Verb::kAdvise:
    case serve::Verb::kPredict:
      break;
  }

  Pending pending;
  pending.request = std::move(request);
  pending.sink = sink;
  pending.enqueued = Clock::now();

  {
    const std::lock_guard<std::mutex> lk(memo_mu_);
    const auto it = memo_.find(pending.request.memo_key);
    if (it != memo_.end()) {
      const MemoEntry entry = it->second;
      {
        const std::lock_guard<std::mutex> slk(stats_mu_);
        ++memo_hits_;
      }
      respond(pending, entry.ok, entry.payload);
      return true;
    }
  }

  {
    const std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return true;
}

void AdvisorServer::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  cv_.notify_all();
  idle_cv_.wait(lk, [&] { return queue_.empty() && !busy_; });
  draining_ = false;
}

void AdvisorServer::batcher_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      idle_cv_.notify_all();
      continue;
    }
    // Admission batching: flush on max_batch, on the max_wait_us age of the
    // oldest pending request, or immediately when draining.
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(config_.max_wait_us);
    while (queue_.size() < static_cast<std::size_t>(config_.max_batch) &&
           !draining_ && !stopping_ && Clock::now() < deadline) {
      cv_.wait_until(lk, deadline);
    }
    const std::size_t take =
        std::min(queue_.size(), static_cast<std::size_t>(config_.max_batch));
    std::vector<Pending> batch(
        std::make_move_iterator(queue_.begin()),
        std::make_move_iterator(queue_.begin() +
                                static_cast<std::ptrdiff_t>(take)));
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(take));
    busy_ = true;
    lk.unlock();
    execute_batch(std::move(batch));
    lk.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void AdvisorServer::execute_batch(std::vector<Pending> batch) {
  {
    const std::lock_guard<std::mutex> lk(stats_mu_);
    ++batches_;
    max_batch_seen_ = std::max<std::uint64_t>(max_batch_seen_, batch.size());
  }

  // Within-batch dedup + a second memo check (another batch may have
  // computed a key between submit() and now).
  std::unordered_map<std::string, std::size_t> unique_index;
  std::vector<AdviseBatchItem> unique_items;
  std::vector<const serve::Request*> unique_requests;
  std::vector<std::size_t> pending_unique(batch.size());
  std::vector<char> pending_done(batch.size(), 0);
  {
    const std::lock_guard<std::mutex> lk(memo_mu_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const serve::Request& request = batch[i].request;
      const auto hit = memo_.find(request.memo_key);
      if (hit != memo_.end()) {
        const MemoEntry entry = hit->second;
        {
          const std::lock_guard<std::mutex> slk(stats_mu_);
          ++memo_hits_;
        }
        respond(batch[i], entry.ok, entry.payload);
        pending_done[i] = 1;
        continue;
      }
      const auto [it, inserted] =
          unique_index.try_emplace(request.memo_key, unique_items.size());
      if (inserted) {
        AdviseBatchItem item;
        item.pattern = request.pattern;
        item.gpu = request.gpu;
        item.recommend = request.verb == serve::Verb::kAdvise;
        unique_items.push_back(std::move(item));
        unique_requests.push_back(&request);
      }
      pending_unique[i] = it->second;
    }
  }
  if (unique_items.empty()) return;

  std::vector<MemoEntry> replies(unique_items.size());
  try {
    const util::PhaseTimer timer("serve.batch", batch.size());
    const auto results = mart_.advise_batch(unique_items);
    for (std::size_t u = 0; u < results.size(); ++u) {
      if (!results[u].ok()) {
        replies[u] = {false, results[u].error};
        continue;
      }
      if (unique_requests[u]->verb == serve::Verb::kAdvise) {
        replies[u] = {true, serve::escape_text(advise_report(
                                unique_items[u].pattern, unique_items[u].gpu,
                                results[u].advice, results[u].rec))};
      } else {
        replies[u] = {true,
                      "predicted_ms=" +
                          hexfloat(results[u].advice.predicted_time_ms) +
                          " ms=" +
                          util::format_double(
                              results[u].advice.predicted_time_ms, 3)};
      }
    }
  } catch (const std::exception& e) {
    // advise_batch reports per-item problems in-band; reaching here means a
    // systemic failure (e.g. allocation) — answer the batch, keep serving.
    for (auto& reply : replies) reply = {false, e.what()};
  }

  {
    const std::lock_guard<std::mutex> lk(memo_mu_);
    if (memo_.size() + replies.size() > config_.memo_capacity) memo_.clear();
    for (std::size_t u = 0; u < replies.size(); ++u) {
      memo_.emplace(unique_requests[u]->memo_key, replies[u]);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (pending_done[i]) continue;
    const MemoEntry& reply = replies[pending_unique[i]];
    respond(batch[i], reply.ok, reply.payload);
  }
}

void AdvisorServer::respond(const Pending& pending, bool ok,
                            const std::string& payload) {
  const std::uint64_t us = elapsed_us(pending.enqueued, Clock::now());
  {
    const std::lock_guard<std::mutex> lk(stats_mu_);
    latency_.record(us);
    if (ok) ++served_;
    else ++errors_;
  }
  pending.sink(ok ? serve::ok_reply(pending.request.id, payload)
                  : serve::err_reply(pending.request.id, payload));
}

ServeCounters AdvisorServer::snapshot_locked() const {
  ServeCounters counters;
  counters.served = served_;
  counters.errors = errors_;
  counters.memo_hits = memo_hits_;
  counters.batches = batches_;
  counters.max_batch_seen = max_batch_seen_;
  counters.p50_us = latency_.percentile(50.0);
  counters.p99_us = latency_.percentile(99.0);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - window_start_).count();
  counters.qps = seconds > 0.0 ? static_cast<double>(served_) / seconds : 0.0;
  return counters;
}

ServeCounters AdvisorServer::counters_snapshot() const {
  const std::lock_guard<std::mutex> lk(stats_mu_);
  return snapshot_locked();
}

}  // namespace smart::core
