// Baseline OC-selection policies (paper Sec. V-B2, Figs. 10-11).
//
// The comparison in the paper holds the random-parameter-search budget
// constant and varies only *which OC(s)* each framework tunes:
//  * AN5D [Matsumura et al., CGO'20] generates streaming + high-degree
//    temporal-blocking code: policy = tune ST_TB, falling back to plain ST
//    when the TB variant cannot run.
//  * Artemis [Rawat et al., IPDPS'19] tunes high-impact optimizations
//    first and then retains a few high-performance candidates: policy =
//    stage 1 tunes the streaming family (ST, ST_RT, ST_PR, ST_RT_PR), then
//    stage 2 refines the stage-1 winner with the merging variants.
//  * StencilMART tunes only the OC group its classifier predicts.
#pragma once

#include "core/oc_merger.hpp"
#include "core/profile_dataset.hpp"

namespace smart::core {

/// Time achieved by AN5D's policy for one profiled stencil (uses the
/// dataset's stored measurements; +inf when nothing runs).
double an5d_time(const ProfileDataset& dataset, std::size_t stencil,
                 std::size_t gpu);

/// Time achieved by Artemis' policy (same measurement budget).
double artemis_time(const ProfileDataset& dataset, std::size_t stencil,
                    std::size_t gpu);

/// Time achieved by tuning the representative OC of `group` — what
/// StencilMART obtains after its classifier picks a group. Falls back to
/// the group's best-running member when the representative crashed.
double group_time(const ProfileDataset& dataset, const OcMerger& merger,
                  std::size_t stencil, std::size_t gpu, int group);

}  // namespace smart::core
