// GPU-selection case study (paper Sec. V-D, Figs. 14-15): given a stencil
// instance, which GPU runs it fastest (pure performance), and which rental
// GPU minimizes cost (time x $/hr)? Ground truth comes from the measured
// instance times; predictions come from a fitted cross-architecture
// regression model.
#pragma once

#include <vector>

#include "core/regression.hpp"

namespace smart::core {

struct AdvisorShare {
  std::size_t gpu = 0;       // index into dataset.gpus
  double truth_share = 0.0;  // fraction of instances where this GPU is best
  double accuracy = 0.0;     // of those, fraction predicted correctly
  std::size_t truth_count = 0;
};

struct AdvisorResult {
  std::vector<AdvisorShare> shares;  // one per participating GPU
  double overall_accuracy = 0.0;     // predicted-best == true-best
  std::size_t instances = 0;
};

class GpuAdvisor {
 public:
  /// `task` must have fit_full() already.
  explicit GpuAdvisor(const RegressionTask& task) : task_(&task) {}

  /// Pure performance: all GPUs participate (Fig. 14).
  AdvisorResult pure_performance(std::size_t max_instances = 0) const;

  /// Cost efficiency: only GPUs with a rental price participate; the
  /// objective is time_ms x $/hr (Fig. 15).
  AdvisorResult cost_efficiency(std::size_t max_instances = 0) const;

 private:
  /// Three passes: serial triple selection, one batched
  /// RegressionTask::predict_table sweep over triples x pooled GPUs, serial
  /// argmin scoring. Decisions are bit-identical to per-instance predict()
  /// calls (the batched predictions are), just much cheaper.
  AdvisorResult run(bool cost_weighted, std::size_t max_instances) const;

  const RegressionTask* task_;
};

}  // namespace smart::core
