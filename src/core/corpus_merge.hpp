// Deterministic merge of sharded profiling corpora (DESIGN.md §14).
//
// `smartctl profile --shard i/N` sweeps only the work units a pure
// partition hash assigns to shard i and writes a partial corpus whose
// header pins (config identity, fault spec, retries, shard i/N). This
// module folds the N partial corpora back into one complete corpus that is
// bit-identical — dataset_checksum AND serialized bytes — to an
// uninterrupted single-process run, because:
//
//   * ownership is a pure function of the unit identity (no RNG consumed),
//     so every owned unit's noise stream and fault schedule match the
//     unsharded run;
//   * the merge validates the shards form EXACTLY the partition 0..N-1
//     (no duplicates, no gaps, no overlap in measured units) over one
//     coherent run identity (config, retries, fault spec);
//   * measured times are folded from each unit's owner and quarantine
//     records are re-sorted into the canonical single-run (stencil, oc,
//     gpu) order — the same order PR 5's sweep emits.
#pragma once

#include <string>
#include <vector>

#include "core/profile_dataset.hpp"

namespace smart::core {

/// Merges the shard corpora into one complete corpus. `sources` names each
/// shard in diagnostics (pass the file paths; when shorter than `shards`,
/// missing entries fall back to "shard corpus #k"). The trivial N=1
/// partition — one complete corpus — is accepted and passes through
/// unchanged. Throws std::runtime_error (the smartctl rc-1 contract) with
/// source context on any validation failure: mixed shard counts, duplicate
/// or missing partition members, mismatched config identity / retry budget
/// / fault spec, divergent stencils or settings, a measured or quarantined
/// unit the writing shard does not own, or an owned unit left unmeasured.
ProfileDataset merge_shard_corpora(std::vector<ProfileDataset> shards,
                                   const std::vector<std::string>& sources);

}  // namespace smart::core
