#include "core/profile_dataset.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <unordered_set>

#include "core/profile_journal.hpp"
#include "gpusim/opt.hpp"
#include "stencil/generator.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/serialize_io.hpp"
#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The corpus stencil set (orders mixed over 1..max_order). Inherently
/// sequential (one shared stream + dedup against all previous patterns),
/// but cheap next to the measurement sweep — cheap enough that every shard
/// of a fleet run regenerates it rather than shipping it around.
/// Also returns each pattern's content hash (already computed for the dedup
/// check): the caller reseeds three per-stencil streams and the shard filter
/// from it, and hash() rewalks the whole offset list on every call.
std::vector<stencil::StencilPattern> generate_stencils(
    const ProfileConfig& config, std::vector<std::uint64_t>& hashes) {
  const util::PhaseTimer timer("profile.generate",
                               static_cast<std::uint64_t>(config.num_stencils));
  util::Rng rng(config.seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<stencil::StencilPattern> stencils;
  stencils.reserve(static_cast<std::size_t>(config.num_stencils));
  hashes.clear();
  hashes.reserve(static_cast<std::size_t>(config.num_stencils));
  while (static_cast<int>(stencils.size()) < config.num_stencils) {
    stencil::GeneratorConfig gc;
    gc.dims = config.dims;
    gc.order = 1 + static_cast<int>(rng.uniform_int(0, config.max_order - 1));
    const stencil::RandomStencilGenerator gen(gc);
    stencil::StencilPattern p = gen.generate(rng);
    const std::uint64_t h = p.hash();
    if (seen.insert(h).second) {
      stencils.push_back(std::move(p));
      hashes.push_back(h);
    }
  }
  return stencils;
}
}

std::size_t shard_owner(std::uint64_t stencil_hash, std::size_t oc,
                        std::size_t gpu, std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  // hash_combine alone is too linear to balance a modulus; the splitmix64
  // finisher avalanches the unit identity first (same reasoning as the
  // fault-injection coin in util/fault.cpp).
  std::uint64_t key = util::hash_combine(
      stencil_hash, (static_cast<std::uint64_t>(oc) << 32) |
                        static_cast<std::uint64_t>(gpu));
  return static_cast<std::size_t>(util::splitmix64(key) % shard_count);
}

std::size_t ProfileDataset::num_ocs() {
  return gpusim::valid_combinations().size();
}

bool ProfileDataset::oc_ok(std::size_t stencil, std::size_t gpu,
                           std::size_t oc) const {
  for (double t : times[stencil][gpu][oc]) {
    if (!std::isnan(t)) return true;
  }
  return false;
}

double ProfileDataset::oc_best_time(std::size_t stencil, std::size_t gpu,
                                    std::size_t oc) const {
  double best = kInf;
  for (double t : times[stencil][gpu][oc]) {
    if (!std::isnan(t)) best = std::min(best, t);
  }
  return best;
}

int ProfileDataset::oc_best_setting(std::size_t stencil, std::size_t gpu,
                                    std::size_t oc) const {
  int best = -1;
  double best_time_ms = kInf;
  const auto& ts = times[stencil][gpu][oc];
  for (std::size_t k = 0; k < ts.size(); ++k) {
    if (!std::isnan(ts[k]) && ts[k] < best_time_ms) {
      best_time_ms = ts[k];
      best = static_cast<int>(k);
    }
  }
  return best;
}

int ProfileDataset::best_oc(std::size_t stencil, std::size_t gpu) const {
  int best = -1;
  double best_time_ms = kInf;
  for (std::size_t oc = 0; oc < num_ocs(); ++oc) {
    const double t = oc_best_time(stencil, gpu, oc);
    if (t < best_time_ms) {
      best_time_ms = t;
      best = static_cast<int>(oc);
    }
  }
  return best;
}

double ProfileDataset::best_time(std::size_t stencil, std::size_t gpu) const {
  double best = kInf;
  for (std::size_t oc = 0; oc < num_ocs(); ++oc) {
    best = std::min(best, oc_best_time(stencil, gpu, oc));
  }
  return best;
}

double ProfileDataset::worst_time(std::size_t stencil, std::size_t gpu) const {
  double worst = 0.0;
  for (std::size_t oc = 0; oc < num_ocs(); ++oc) {
    const double t = oc_best_time(stencil, gpu, oc);
    if (t < kInf) worst = std::max(worst, t);
  }
  return worst;
}

std::size_t ProfileDataset::num_instances() const {
  std::size_t count = 0;
  for (std::size_t s = 0; s < stencils.size(); ++s) {
    for (std::size_t oc = 0; oc < num_ocs(); ++oc) {
      for (std::size_t k = 0; k < settings[s][oc].size(); ++k) {
        for (std::size_t g = 0; g < gpus.size(); ++g) {
          // A shard corpus leaves non-owned units empty; only measured
          // slots can count as instances.
          const auto& ts = times[s][g][oc];
          if (k < ts.size() && !std::isnan(ts[k])) {
            ++count;
            break;
          }
        }
      }
    }
  }
  return count;
}

ProfileDataset build_profile_dataset(const ProfileConfig& config) {
  return build_profile_dataset(config, ProfileRunOptions{});
}

ProfileDataset build_profile_dataset(const ProfileConfig& config,
                                     const ProfileRunOptions& opts) {
  if (opts.shard.count == 0 || opts.shard.index >= opts.shard.count) {
    throw std::invalid_argument(
        "build_profile_dataset: shard index must satisfy 0 <= i < N");
  }

  ProfileDataset ds;
  ds.config = config;
  ds.problem = gpusim::ProblemSize::paper_default(config.dims);
  ds.gpus = gpusim::evaluation_gpus();

  std::vector<std::uint64_t> stencil_hashes;
  ds.stencils = generate_stencils(config, stencil_hashes);
  const std::size_t n = ds.stencils.size();

  // Per-stencil problem: paper default, optionally varied in size and
  // boundary condition (the future-work extensions). Each stencil seeds its
  // own stream from (seed, pattern hash), so the loop parallelizes without
  // changing a single draw.
  const auto candidates = gpusim::ProblemSize::size_candidates(config.dims);
  ds.problems.assign(n, ds.problem);
  util::parallel_for(n, [&](std::size_t s) {
    util::Rng prng(util::hash_combine(config.seed * 31, stencil_hashes[s]));
    gpusim::ProblemSize prob = ds.problem;
    if (config.vary_problem_size) prob = prng.pick(candidates);
    if (config.vary_boundary && prng.bernoulli(0.5)) {
      prob.boundary = stencil::Boundary::kPeriodic;
    }
    ds.problems[s] = prob;
  });

  // --- Parameter settings: sampled once per (stencil, OC) ---------------
  const auto& ocs = gpusim::valid_combinations();
  {
    const util::PhaseTimer timer("profile.settings", n * ocs.size());
    // A ParamSpace depends only on (OC, dims), so the 30 spaces are shared
    // by every stencil; random_setting() is const, so concurrent draws from
    // per-stencil rngs are safe.
    std::vector<gpusim::ParamSpace> spaces;
    spaces.reserve(ocs.size());
    for (const auto& oc : ocs) spaces.emplace_back(oc, config.dims);
    ds.settings.assign(n, {});
    util::parallel_for(n, [&](std::size_t s) {
      util::Rng srng(util::hash_combine(config.seed, stencil_hashes[s]));
      ds.settings[s].resize(ocs.size());
      // Duplicate draws are dropped by a linear scan over the few hashes
      // sampled so far — same dedup decisions as a hash set, none of its
      // per-(stencil, OC) allocations.
      std::vector<std::uint64_t> setting_seen;
      setting_seen.reserve(static_cast<std::size_t>(config.samples_per_oc));
      for (std::size_t o = 0; o < ocs.size(); ++o) {
        const gpusim::ParamSpace& space = spaces[o];
        setting_seen.clear();
        auto& list = ds.settings[s][o];
        list.reserve(static_cast<std::size_t>(config.samples_per_oc));
        for (int k = 0; k < config.samples_per_oc; ++k) {
          const gpusim::ParamSetting setting = space.random_setting(srng);
          const std::uint64_t h = setting.hash();
          if (std::find(setting_seen.begin(), setting_seen.end(), h) ==
              setting_seen.end()) {
            setting_seen.push_back(h);
            list.push_back(setting);
          }
        }
      }
    });
  }

  // --- Fault-tolerance plumbing -----------------------------------------
  // The journal checkpoints completed (stencil, OC, GPU) units as they
  // finish; a resumed run replays them instead of re-measuring. Because a
  // measurement is a pure function of the variant identity (noise is
  // identity-seeded, fault checks are pure hashes), replayed + freshly
  // measured units assemble into a corpus bit-identical to an
  // uninterrupted run at any SMART_THREADS.
  const util::FaultInjector& injector = util::FaultInjector::global();
  const std::string fault_spec =
      injector.enabled() ? injector.spec().to_string() : std::string{};
  // Pin the shard identity and run knobs into the dataset: a sharded corpus
  // serializes them so `smartctl merge` can validate the fleet ran one
  // coherent schedule.
  ds.shard = opts.shard;
  ds.shard_retries = opts.retries;
  ds.shard_fault_spec = fault_spec;
  ProfileJournal journal;
  JournalReplay replay;
  if (!opts.journal_path.empty()) {
    if (opts.resume) {
      replay = journal.resume(opts.journal_path, config, opts, fault_spec,
                              ocs.size(), ds.gpus.size());
    } else {
      journal.start(opts.journal_path, config, opts, fault_spec);
    }
  } else if (opts.resume) {
    throw std::invalid_argument(
        "build_profile_dataset: resume requires a journal path");
  }

  // --- Measurements: every setting on every GPU -------------------------
  // Two-phase, flattened sweep. Work units are (stencil, OC, GPU) — not
  // (stencil, OC) — so the task pool sees many small, uniform tasks
  // instead of a few whose cost varies with the GPU count and sample list.
  // Phase 1 computes one setting-independent KernelAnalysis per unit;
  // phase 2 replays the unit's settings through the cheap per-setting
  // evaluation. Each unit owns analyses[idx] and times[s][gi][o]
  // exclusively, and the simulator seeds noise from the variant identity,
  // so the sweep is bit-identical for any thread count.
  const gpusim::Simulator sim(config.sim);
  const std::size_t g = ds.gpus.size();
  ds.times.assign(n, std::vector<std::vector<std::vector<double>>>(
                         g, std::vector<std::vector<double>>(ocs.size())));

  // Units recovered from the journal are committed up front; quarantined
  // ones keep the all-NaN crashed convention.
  for (const auto& [key, times] : replay.units) {
    const std::size_t s = key / (ocs.size() * g);
    const std::size_t o = (key / g) % ocs.size();
    const std::size_t gi = key % g;
    if (times.size() != ds.settings[s][o].size()) {
      throw std::runtime_error(
          "profile journal " + opts.journal_path +
          ": unit time count does not match the sampled settings");
    }
    ds.times[s][gi][o] = times;
  }
  ds.resumed_units = replay.units.size();
  ds.quarantined = replay.quarantined;
  for (const QuarantineRecord& q : ds.quarantined) {
    ds.times[q.stencil][q.gpu][q.oc].assign(
        ds.settings[q.stencil][q.oc].size(), kNaN);
  }
  std::unordered_set<std::uint64_t> recovered_keys;
  recovered_keys.reserve(replay.units.size() + replay.quarantined.size());
  for (const auto& [key, times] : replay.units) recovered_keys.insert(key);
  for (const QuarantineRecord& q : replay.quarantined) {
    recovered_keys.insert(
        ProfileJournal::unit_key(q.stencil, q.oc, q.gpu, ocs.size(), g));
  }
  const auto recovered = [&](std::size_t s, std::size_t o, std::size_t gi) {
    return recovered_keys.contains(
        ProfileJournal::unit_key(s, o, gi, ocs.size(), g));
  };

  // Shard filter: a pure function of the unit identity, so skipping
  // non-owned units cannot perturb any owned measurement (they share no
  // mutable state, and noise/faults are identity-seeded). hash() walks the
  // whole offset list, so the filter reuses the hashes generate_stencils
  // already computed, never recomputing per unit.
  const auto owned = [&](std::size_t s, std::size_t o, std::size_t gi) {
    return !opts.shard.sharded() ||
           shard_owner(stencil_hashes[s], o, gi, opts.shard.count) ==
               opts.shard.index;
  };
  if (opts.shard.sharded()) {
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t o = 0; o < ocs.size(); ++o) {
        for (std::size_t gi = 0; gi < g; ++gi) {
          if (owned(s, o, gi)) ++ds.owned_units;
        }
      }
    }
  } else {
    ds.owned_units = n * ocs.size() * g;
  }

  std::mutex quarantine_mu;
  std::atomic<std::uint64_t> retry_attempts{0};
  {
    const std::size_t per_stencil = ocs.size() * g;
    const std::size_t units = n * per_stencil;
    // The analyses buffer covers a block of stencils, not the whole corpus:
    // a few thousand cached analyses stay resident between the analyze and
    // evaluate passes, where one corpus-sized buffer would be re-fetched
    // from DRAM. The chunk loop is sequential and every unit still owns its
    // analyses/times slots exclusively, so the output is unchanged.
    const std::size_t chunk_stencils =
        std::max<std::size_t>(1, 4096 / per_stencil);
    const util::PhaseTimer timer("profile.measure", units);
    std::vector<gpusim::KernelAnalysis> analyses(
        std::min(n, chunk_stencils) * per_stencil);
    std::vector<std::size_t> pending;
    pending.reserve(analyses.size());
    for (std::size_t s0 = 0; s0 < n; s0 += chunk_stencils) {
      const std::size_t s1 = std::min(n, s0 + chunk_stencils);
      const auto unpack = [&](std::size_t idx) {
        const std::size_t s = s0 + idx / per_stencil;
        const std::size_t rem = idx % per_stencil;
        return std::array<std::size_t, 3>{s, rem / g, rem % g};
      };
      // Units already recovered from the journal drop out of the chunk;
      // skipping them cannot perturb the rest (measurements share no
      // mutable state).
      pending.clear();
      for (std::size_t idx = 0; idx < (s1 - s0) * per_stencil; ++idx) {
        const auto [s, o, gi] = unpack(idx);
        if (!recovered(s, o, gi) && owned(s, o, gi)) pending.push_back(idx);
      }
      {
        const util::PhaseTimer atimer("profile.analyze", pending.size());
        util::parallel_for(pending.size(), [&](std::size_t pi) {
          const auto [s, o, gi] = unpack(pending[pi]);
          analyses[pi] =
              sim.analyze(ds.stencils[s], ds.problems[s], ocs[o], ds.gpus[gi]);
        });
      }
      {
        const util::PhaseTimer etimer("profile.evaluate", pending.size());
        util::parallel_for(pending.size(), [&](std::size_t pi) {
          const auto [s, o, gi] = unpack(pending[pi]);
          const gpusim::KernelAnalysis& analysis = analyses[pi];
          const auto& unit_settings = ds.settings[s][o];
          auto& slot = ds.times[s][gi][o];
          // The unit's fault identity: stable across thread counts AND
          // process restarts, so retry budgets survive a resume.
          const std::uint64_t unit_id = util::hash_combine(
              analysis.noise_seed_prefix, analysis.gpu_hash);
          int attempt = 0;
          if (const auto it = replay.attempts.find(
                  ProfileJournal::unit_key(s, o, gi, ocs.size(), g));
              it != replay.attempts.end()) {
            attempt = it->second;
          }
          std::vector<double> measured;
          for (;;) {
            try {
              // The worker fault site models an exception the sweep does
              // NOT know how to handle — it escapes this loop, aborts the
              // run through the task pool, and is recovered by --resume.
              if (injector.enabled()) {
                injector.inject(util::FaultSite::kWorker, unit_id, attempt);
              }
              measured.clear();
              measured.reserve(unit_settings.size());
              for (const gpusim::ParamSetting& setting : unit_settings) {
                const gpusim::KernelProfile prof =
                    sim.measure(analysis, setting, attempt);
                measured.push_back(prof.ok ? prof.time_ms : kNaN);
              }
              slot = std::move(measured);
              if (journal.active()) journal.record_unit(s, o, gi, slot);
              break;
            } catch (const util::FaultError& fault) {
              if (fault.transient() && attempt < opts.retries) {
                // Transient: burn one attempt and re-measure. Fault checks
                // are pure hashes, so the retried measurement is
                // bit-identical to a fault-free one.
                if (journal.active()) {
                  journal.record_retry(s, o, gi, attempt, "transient");
                }
                retry_attempts.fetch_add(1, std::memory_order_relaxed);
                ++attempt;
                continue;
              }
              // Permanent fault or exhausted budget: withdraw the unit.
              QuarantineRecord record{s, o, gi,
                                      fault.transient()
                                          ? "transient fault budget exhausted: " +
                                                std::string(fault.what())
                                          : std::string(fault.what())};
              slot.assign(unit_settings.size(), kNaN);
              if (journal.active()) journal.record_quarantine(record);
              {
                const std::lock_guard<std::mutex> lock(quarantine_mu);
                ds.quarantined.push_back(std::move(record));
              }
              break;
            } catch (const util::WorkerCrashError&) {
              // Journal the failed attempt so the resumed process continues
              // the attempt count instead of crashing forever, then let the
              // crash abort the run.
              if (journal.active()) {
                journal.record_retry(s, o, gi, attempt, "worker");
              }
              throw;
            }
          }
        });
      }
    }
  }
  if (const std::uint64_t retries = retry_attempts.load(); retries > 0) {
    util::timing_record("profile.retry", 0.0, retries);
  }
  // Quarantine order must not depend on which thread finished first.
  std::sort(ds.quarantined.begin(), ds.quarantined.end(),
            [](const QuarantineRecord& a, const QuarantineRecord& b) {
              return std::tie(a.stencil, a.oc, a.gpu) <
                     std::tie(b.stencil, b.oc, b.gpu);
            });
  journal.close();
  return ds;
}

std::vector<std::size_t> shard_unit_counts(const ProfileConfig& config,
                                           std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("shard_unit_counts: shard count must be >= 1");
  }
  std::vector<std::uint64_t> hashes;
  generate_stencils(config, hashes);
  const std::size_t num_ocs = ProfileDataset::num_ocs();
  const std::size_t num_gpus = gpusim::evaluation_gpus().size();
  std::vector<std::size_t> counts(shard_count, 0);
  for (const std::uint64_t hash : hashes) {
    for (std::size_t oc = 0; oc < num_ocs; ++oc) {
      for (std::size_t gpu = 0; gpu < num_gpus; ++gpu) {
        ++counts[shard_owner(hash, oc, gpu, shard_count)];
      }
    }
  }
  return counts;
}

std::uint64_t dataset_checksum(const ProfileDataset& ds) {
  // Order-sensitive FNV-1a over the dataset's identity-bearing content.
  // NaN (crashed variant) is folded as one canonical bit pattern so the
  // checksum is stable across compilers and thread counts.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& pattern : ds.stencils) mix(pattern.hash());
  for (const auto& per_stencil : ds.settings) {
    for (const auto& per_oc : per_stencil) {
      for (const auto& setting : per_oc) mix(setting.hash());
    }
  }
  for (const auto& per_stencil : ds.times) {
    for (const auto& per_gpu : per_stencil) {
      for (const auto& per_oc : per_gpu) {
        for (const double t : per_oc) {
          mix(std::isnan(t) ? 0x7ff8000000000000ULL
                            : std::bit_cast<std::uint64_t>(t));
        }
      }
    }
  }
  // Quarantine metadata is identity-bearing too (two corpora with the same
  // times but different withdrawal reasons must not collide); a fault-free
  // run has no records, so pre-quarantine golden checksums are preserved.
  for (const QuarantineRecord& q : ds.quarantined) {
    mix(q.stencil);
    mix(q.oc);
    mix(q.gpu);
    mix(util::fnv1a64(q.reason));
  }
  // Shard identity + pinned run knobs are identity-bearing for partial
  // corpora only; complete corpora (count == 1, including merged output)
  // keep their pre-shard golden checksums.
  if (ds.shard.sharded()) {
    mix(ds.shard.index);
    mix(ds.shard.count);
    mix(static_cast<std::uint64_t>(ds.shard_retries));
    mix(util::fnv1a64(ds.shard_fault_spec));
  }
  return h;
}

}  // namespace smart::core
