// OC-selection classification (paper Sec. IV-D, evaluated in Figs. 9-11):
// given a stencil's representation, predict which merged OC group contains
// the best optimization combination on a target GPU. Three mechanisms:
// ConvNet (binary tensor input), FcNet (tensor + features), GBDT (features).
#pragma once

#include <string>
#include <vector>

#include "core/oc_merger.hpp"
#include "core/profile_dataset.hpp"
#include "ml/matrix.hpp"

namespace smart::core {

enum class ClassifierKind { kConvNet, kFcNet, kGbdt };

std::string to_string(ClassifierKind kind);

struct ClassificationConfig {
  int folds = 5;           // paper: 5-fold cross validation
  int epochs = 50;         // NN epochs per fold
  int batch_size = 50;     // paper: 50 for ConvNet/FcNet
  double learning_rate = 1e-3;
  int fcnet_layers = 3;
  std::size_t fcnet_width = 128;
  std::uint64_t seed = 99;
};

struct ClassificationResult {
  double accuracy = 0.0;
  /// Predicted group per stencil (each stencil is predicted exactly once,
  /// by the fold whose test set contains it). -1 for skipped stencils.
  std::vector<int> predicted_group;
  /// Ground-truth group per stencil (-1 when every OC crashed).
  std::vector<int> true_group;
};

/// Trains and evaluates one classifier on one GPU of a profiled dataset
/// with k-fold cross-validation.
ClassificationResult run_classification(const ProfileDataset& dataset,
                                        const OcMerger& merger,
                                        std::size_t gpu, ClassifierKind kind,
                                        const ClassificationConfig& config);

/// Feature matrix (Table II vectors) for every stencil in the dataset.
ml::Matrix stencil_feature_matrix(const ProfileDataset& dataset);

/// Flattened binary tensors for every stencil in the dataset.
ml::Matrix stencil_tensor_matrix(const ProfileDataset& dataset);

/// Ground-truth merged-group label per stencil on `gpu` (-1 = no label).
std::vector<int> true_groups(const ProfileDataset& dataset,
                             const OcMerger& merger, std::size_t gpu);

}  // namespace smart::core
