// StencilMART public facade: one include for the whole pipeline
// (paper Fig. 5): random stencil generation -> representation -> profiling
// (simulated GPUs) -> OC merging -> classification (best-OC selection) and
// regression (cross-architecture performance prediction) -> GPU advisor.
//
// Typical use (see examples/):
//
//   smart::core::ProfileConfig cfg;            // dims, #stencils, seed...
//   auto dataset = smart::core::build_profile_dataset(cfg);
//   smart::core::OcMerger merger;
//   merger.fit(dataset);                       // 30 OCs -> 5 groups
//   auto clf = smart::core::run_classification(
//       dataset, merger, /*gpu=*/1, smart::core::ClassifierKind::kGbdt, {});
//   smart::core::RegressionTask reg(dataset, {});
//   reg.fit_full(smart::core::RegressorKind::kMlp);
//   smart::core::GpuAdvisor advisor(reg);
//   auto fig14 = advisor.pure_performance();
#pragma once

#include "core/advisor.hpp"          // IWYU pragma: export
#include "core/baselines.hpp"       // IWYU pragma: export
#include "core/classification.hpp"  // IWYU pragma: export
#include "core/mart.hpp"            // IWYU pragma: export
#include "core/oc_merger.hpp"       // IWYU pragma: export
#include "core/profile_dataset.hpp" // IWYU pragma: export
#include "core/regression.hpp"      // IWYU pragma: export
#include "gpusim/simulator.hpp"     // IWYU pragma: export
#include "gpusim/tuner.hpp"         // IWYU pragma: export
#include "stencil/generator.hpp"    // IWYU pragma: export
#include "stencil/reference.hpp"    // IWYU pragma: export
