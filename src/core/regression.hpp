// Cross-architecture performance prediction (paper Sec. IV-E, Figs. 12-15).
//
// Each regression instance is one (stencil, OC, parameter setting) pair on
// one GPU; the input features concatenate the stencil's Table II feature
// vector (or its binary tensor for ConvMLP), the OC flags, the log2-scaled
// parameter setting, and the GPU hardware characteristics (memory,
// bandwidth, SMs, TFLOPS). The target is log2(time_ms), turned back into
// milliseconds for MAPE so errors are relative, like the paper's metric.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/profile_dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/matrix.hpp"
#include "ml/models.hpp"

namespace smart::core {

enum class RegressorKind { kMlp, kConvMlp, kGbr };

std::string to_string(RegressorKind kind);

struct RegressionConfig {
  int folds = 5;
  int epochs = 30;
  int batch_size = 128;        // paper: 256; smaller batches converge faster
                               // at our reduced dataset scale
  double learning_rate = 1e-3; // paper: 0.0005 at 100 epochs
  int mlp_hidden_layers = 5;
  std::size_t mlp_width = 128;
  /// Hard cap on instances used for training/evaluation (subsampled
  /// deterministically) so the NN benches stay fast at small scale.
  std::size_t instance_cap = 20000;
  std::uint64_t seed = 4242;
};

/// One measured (stencil, OC, setting, GPU) sample.
struct RegressionInstance {
  std::size_t stencil = 0;
  std::size_t oc = 0;
  std::size_t setting = 0;
  std::size_t gpu = 0;
  double time_ms = 0.0;
};

struct RegressionCvResult {
  double mape_overall = 0.0;
  std::vector<double> mape_per_gpu;  // aligned with dataset.gpus
};

class RegressionTask {
 public:
  RegressionTask(const ProfileDataset& dataset, RegressionConfig config);

  /// k-fold cross-validated test MAPE (Fig. 12).
  RegressionCvResult cross_validate(RegressorKind kind);

  /// Trains on every instance (for the GPU advisor / case study).
  void fit_full(RegressorKind kind);

  /// Predicted time (ms) of instance `idx`'s (stencil, OC, setting) on an
  /// arbitrary GPU of the dataset. Requires fit_full() first.
  double predict(std::size_t idx, std::size_t gpu) const;

  const std::vector<RegressionInstance>& instances() const noexcept {
    return instances_;
  }
  const ProfileDataset& dataset() const noexcept { return *dataset_; }

  /// Measured time of instance idx's triple on `gpu` (NaN if crashed).
  double measured(std::size_t idx, std::size_t gpu) const;

  /// Predicted time (ms) for an arbitrary variant that need not be in the
  /// dataset — the entry point the StencilMart facade uses for unseen
  /// stencils. Requires fit_full().
  double predict_variant(const stencil::StencilPattern& pattern,
                         const gpusim::ProblemSize& problem, std::size_t oc,
                         const gpusim::ParamSetting& setting,
                         std::size_t gpu) const;

 private:
  std::vector<float> feature_row(const stencil::StencilPattern& pattern,
                                 const gpusim::ProblemSize& problem,
                                 std::size_t oc,
                                 const gpusim::ParamSetting& setting,
                                 std::size_t gpu,
                                 bool include_stencil_features) const;
  ml::Matrix build_aux_features(const std::vector<RegressionInstance>& rows,
                                bool include_stencil_features) const;
  ml::Matrix build_tensor_features(
      const std::vector<RegressionInstance>& rows) const;
  std::vector<float> build_targets(
      const std::vector<RegressionInstance>& rows) const;

  const ProfileDataset* dataset_;
  RegressionConfig config_;
  std::vector<RegressionInstance> instances_;

  // Fitted state (fit_full).
  RegressorKind fitted_kind_ = RegressorKind::kMlp;
  bool fitted_ = false;
  std::unique_ptr<ml::GbdtRegressor> gbr_;
  std::unique_ptr<ml::NnRegressor> mlp_;
  std::unique_ptr<ml::ConvMlpRegressor> convmlp_;
  ml::MaxAbsScaler aux_scaler_;
};

}  // namespace smart::core
