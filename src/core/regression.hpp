// Cross-architecture performance prediction (paper Sec. IV-E, Figs. 12-15).
//
// Each regression instance is one (stencil, OC, parameter setting) pair on
// one GPU; the input features concatenate the stencil's Table II feature
// vector (or its binary tensor for ConvMLP), the OC flags, the log2-scaled
// parameter setting, and the GPU hardware characteristics (memory,
// bandwidth, SMs, TFLOPS). The target is log2(time_ms), turned back into
// milliseconds for MAPE so errors are relative, like the paper's metric.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/encoding_cache.hpp"
#include "core/profile_dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/matrix.hpp"
#include "ml/models.hpp"

namespace smart::core {

enum class RegressorKind { kMlp, kConvMlp, kGbr };

std::string to_string(RegressorKind kind);
/// Inverse of to_string; throws std::runtime_error on an unknown name.
RegressorKind regressor_kind_from_string(const std::string& name);

struct RegressionConfig {
  int folds = 5;
  int epochs = 30;
  int batch_size = 128;        // paper: 256; smaller batches converge faster
                               // at our reduced dataset scale
  double learning_rate = 1e-3; // paper: 0.0005 at 100 epochs
  int mlp_hidden_layers = 5;
  std::size_t mlp_width = 128;
  /// Hard cap on instances used for training/evaluation (subsampled
  /// deterministically) so the NN benches stay fast at small scale.
  std::size_t instance_cap = 20000;
  std::uint64_t seed = 4242;
};

/// One measured (stencil, OC, setting, GPU) sample.
struct RegressionInstance {
  std::size_t stencil = 0;
  std::size_t oc = 0;
  std::size_t setting = 0;
  std::size_t gpu = 0;
  double time_ms = 0.0;
};

struct RegressionCvResult {
  double mape_overall = 0.0;
  std::vector<double> mape_per_gpu;  // aligned with dataset.gpus
};

/// Dense instances x GPUs prediction matrix produced by
/// RegressionTask::predict_table (double precision so every cell is
/// bit-identical to the corresponding per-row predict() call).
struct PredictionTable {
  std::vector<std::size_t> instance_indices;  // row order
  std::vector<std::size_t> gpu_indices;       // column order
  std::vector<double> time_ms;                // row-major, rows x cols

  std::size_t rows() const noexcept { return instance_indices.size(); }
  std::size_t cols() const noexcept { return gpu_indices.size(); }
  double at(std::size_t row, std::size_t col) const {
    return time_ms[row * gpu_indices.size() + col];
  }
};

/// One out-of-dataset prediction request for predict_variants(): an
/// arbitrary (pattern, problem, OC, setting, GPU) variant. `pattern` must
/// outlive the call; repeated pattern pointers are encoded once.
struct VariantQuery {
  const stencil::StencilPattern* pattern = nullptr;
  gpusim::ProblemSize problem{};
  std::size_t oc = 0;
  gpusim::ParamSetting setting{};
  std::size_t gpu = 0;
};

class RegressionTask {
 public:
  RegressionTask(const ProfileDataset& dataset, RegressionConfig config);

  /// k-fold cross-validated test MAPE (Fig. 12).
  RegressionCvResult cross_validate(RegressorKind kind);

  /// Trains on every instance (for the GPU advisor / case study).
  void fit_full(RegressorKind kind);

  /// Predicted time (ms) of instance `idx`'s (stencil, OC, setting) on an
  /// arbitrary GPU of the dataset. Requires fit_full() first. Delegates to
  /// the batched path, so it is bit-identical to predict_batch/predict_table.
  double predict(std::size_t idx, std::size_t gpu) const;

  /// Batched form of predict(): one model invocation per feature block
  /// instead of one per instance. out[i] corresponds to (idxs[i], gpu) and
  /// is bit-identical to predict(idxs[i], gpu). Requires fit_full().
  std::vector<double> predict_batch(std::span<const std::size_t> idxs,
                                    std::size_t gpu) const;

  /// Fills an instances x GPUs prediction matrix in one batched pass (the
  /// GPU advisor's sweep). Every cell is bit-identical to the per-row
  /// predict() call. Requires fit_full().
  PredictionTable predict_table(std::span<const std::size_t> idxs,
                                std::span<const std::size_t> gpus) const;
  /// All instances x all dataset GPUs.
  PredictionTable predict_table() const;

  const std::vector<RegressionInstance>& instances() const noexcept {
    return instances_;
  }
  const ProfileDataset& dataset() const noexcept { return *dataset_; }
  const EncodingCache& encoding_cache() const noexcept { return cache_; }

  /// First instance index of each distinct (stencil, OC, setting) triple,
  /// in instance order (the grouping is validated at construction).
  std::vector<std::size_t> triple_starts() const;

  /// Measured time of instance idx's triple on `gpu` (NaN if crashed).
  double measured(std::size_t idx, std::size_t gpu) const;

  /// Predicted time (ms) for an arbitrary variant that need not be in the
  /// dataset — the entry point the StencilMart facade uses for unseen
  /// stencils. Requires fit_full(). Delegates to predict_variants().
  double predict_variant(const stencil::StencilPattern& pattern,
                         const gpusim::ProblemSize& problem, std::size_t oc,
                         const gpusim::ParamSetting& setting,
                         std::size_t gpu) const;

  /// Batched form of predict_variant(): out[i] is bit-identical to the
  /// per-query call. Distinct patterns are encoded once per call, so a
  /// one-pattern x many-GPU sweep (recommend_gpu) encodes the stencil once.
  std::vector<double> predict_variants(
      std::span<const VariantQuery> queries) const;

  /// Persists the fitted state (regressor kind, aux scaler, model weights).
  /// Requires fit_full(); the loaded task predicts bit-identically.
  void save_fitted(std::ostream& out) const;
  /// Injects fitted state written by save_fitted() into this task. The task
  /// may be built over any dataset sharing the training corpus's dims,
  /// max_order and GPU table — including a zero-stencil serving dataset —
  /// since variant prediction only reads OC flags, GPU features and the
  /// config geometry. Throws std::runtime_error when the model's feature
  /// width disagrees with this dataset's encoding (dims/max_order mismatch).
  void load_fitted(std::istream& in);

 private:
  ml::Matrix build_aux_features(const std::vector<RegressionInstance>& rows,
                                bool include_stencil_features) const;
  ml::Matrix build_tensor_features(
      const std::vector<RegressionInstance>& rows) const;
  std::vector<float> build_targets(
      const std::vector<RegressionInstance>& rows) const;

  /// Throws std::logic_error unless instances_ is triple-major: (stencil,
  /// OC, setting) lexicographically non-decreasing, GPU strictly increasing
  /// within a triple. GpuAdvisor and triple_starts() rely on this.
  void validate_instance_grouping() const;

  /// Runs the fitted model over one pre-assembled feature block and returns
  /// log2(time_ms) per row. ConvMLP reads `unique_tensors` (each distinct
  /// pattern tensor once) indexed per aux row by `tensor_row`; the other
  /// kinds ignore both.
  std::vector<double> predict_block_log(
      const ml::Matrix& aux, const ml::Matrix* unique_tensors,
      std::span<const std::size_t> tensor_row) const;
  /// Shared batched core: pairs[i] = (instance index, GPU index);
  /// out_ms[i] = predicted milliseconds.
  void predict_pairs(std::span<const std::pair<std::size_t, std::size_t>> pairs,
                     std::span<double> out_ms) const;

  const ProfileDataset* dataset_;
  RegressionConfig config_;
  std::vector<RegressionInstance> instances_;
  EncodingCache cache_;

  // Fitted state (fit_full).
  RegressorKind fitted_kind_ = RegressorKind::kMlp;
  bool fitted_ = false;
  std::unique_ptr<ml::GbdtRegressor> gbr_;
  std::unique_ptr<ml::NnRegressor> mlp_;
  std::unique_ptr<ml::ConvMlpRegressor> convmlp_;
  ml::MaxAbsScaler aux_scaler_;
  /// Scaled NN input of the block predict_block_log is running (mutable
  /// scratch under logically-const predict paths). Safe because the batched
  /// entry points iterate blocks serially, and concurrent predict calls on
  /// one task were never supported — the NN predict itself mutates per-net
  /// scratch buffers.
  mutable ml::Matrix scaled_scratch_;
};

}  // namespace smart::core
