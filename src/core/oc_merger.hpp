// OC merging via Pearson correlation (paper Sec. III-C and IV-D).
//
// OCs whose per-stencil best times are strongly correlated behave alike, so
// predicting between them is noise. Per GPU we rank OC pairs by PCC (over
// log best-times, pairwise-complete for crashes), keep each GPU's top-K
// pairs, intersect across GPUs (the paper reports a 28% intersection), and
// greedily union-merge the intersected pairs (strongest first) until the
// requested number of groups remains; remaining merges fall back to the
// globally strongest pairs. Each group's representative OC is the member
// that is best for the most (stencil, GPU) cases (paper Fig. 2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/profile_dataset.hpp"

namespace smart::core {

struct OcPairCorr {
  int oc_a = 0;
  int oc_b = 0;
  double pcc = 0.0;  // aggregated (minimum across GPUs of |PCC|)
};

class OcMerger {
 public:
  struct Options {
    int target_groups = 5;  // paper reduces the predicted OCs to 5
    int top_pairs = 100;    // paper uses the top-100 PCC pairs per GPU
  };

  OcMerger() = default;

  /// Fits the grouping from a profiled dataset.
  void fit(const ProfileDataset& dataset, Options options);
  void fit(const ProfileDataset& dataset) { fit(dataset, Options{}); }

  int num_groups() const noexcept { return num_groups_; }
  int group_of(int oc_index) const { return group_[static_cast<std::size_t>(oc_index)]; }
  const std::vector<int>& groups() const noexcept { return group_; }

  /// Representative OC index (into valid_combinations()) for a group.
  int representative(int group) const {
    return representatives_[static_cast<std::size_t>(group)];
  }

  /// OC indices belonging to `group`.
  std::vector<int> members(int group) const;

  std::string group_name(int group) const;

  /// Per-GPU top-K |PCC| values (for Fig. 3) computed by the last fit().
  const std::vector<std::vector<double>>& top_pccs_per_gpu() const noexcept {
    return top_pccs_per_gpu_;
  }
  /// Fraction of pairs common to every GPU's top-K list (paper: ~28%).
  double intersection_fraction() const noexcept { return intersection_fraction_; }

  /// Persists the fitted grouping (group map + representatives). The PCC
  /// diagnostics (top_pccs_per_gpu, intersection_fraction) are fit-time
  /// analysis, not needed to classify, and are not persisted. Throws
  /// std::runtime_error on malformed or inconsistent input.
  void save(std::ostream& out) const;
  static OcMerger load(std::istream& in);

 private:
  int num_groups_ = 0;
  std::vector<int> group_;            // oc index -> group id (compact 0..G-1)
  std::vector<int> representatives_;  // group id -> oc index
  std::vector<std::vector<double>> top_pccs_per_gpu_;
  double intersection_fraction_ = 0.0;
};

/// All pairwise |PCC| values between OC columns on one GPU (upper triangle).
std::vector<OcPairCorr> pairwise_pcc(const ProfileDataset& dataset,
                                     std::size_t gpu);

}  // namespace smart::core
