#include "core/serve_protocol.hpp"

#include <stdexcept>
#include <vector>

#include "util/serialize_io.hpp"

namespace smart::core::serve {

namespace {

bool valid_id_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' || c == '-';
}

bool valid_gpu_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

ParseResult fail(std::string id, std::string error) {
  ParseResult r;
  r.ok = false;
  r.id = std::move(id);
  r.error = std::move(error);
  return r;
}

/// Parses "x,y" / "x,y,z" tuples separated by ';' into Points. All tuples
/// must share one arity (the dimensionality); coordinates are bounded by
/// the paper's maximum stencil order so a Point's int8 storage cannot wrap.
bool parse_offsets(const std::string& value, int& dims,
                   std::vector<stencil::Point>& points, std::string& error) {
  constexpr int kMaxCoord = 4;  // paper: maximum stencil order 4
  constexpr std::size_t kMaxPoints = 1024;
  dims = 0;
  std::size_t i = 0;
  while (i <= value.size()) {
    const std::size_t end = std::min(value.find(';', i), value.size());
    const std::string tuple = value.substr(i, end - i);
    if (tuple.empty()) {
      error = "offsets: empty tuple";
      return false;
    }
    std::vector<int> coords;
    std::size_t j = 0;
    while (j <= tuple.size()) {
      const std::size_t comma = std::min(tuple.find(',', j), tuple.size());
      long long coord = 0;
      if (!util::parse_i64_strict(tuple.substr(j, comma - j), coord) ||
          coord < -kMaxCoord || coord > kMaxCoord) {
        error = "offsets: bad coordinate '" + tuple.substr(j, comma - j) +
                "' (integer in [-4, 4])";
        return false;
      }
      coords.push_back(static_cast<int>(coord));
      j = comma + 1;
      if (comma == tuple.size()) break;
    }
    if (coords.size() != 2 && coords.size() != 3) {
      error = "offsets: tuples must have 2 or 3 coordinates";
      return false;
    }
    if (dims == 0) {
      dims = static_cast<int>(coords.size());
    } else if (dims != static_cast<int>(coords.size())) {
      error = "offsets: mixed tuple arities";
      return false;
    }
    points.push_back(dims == 2 ? stencil::Point(coords[0], coords[1])
                               : stencil::Point(coords[0], coords[1], coords[2]));
    if (points.size() > kMaxPoints) {
      error = "offsets: too many points (max 1024)";
      return false;
    }
    i = end + 1;
    if (end == value.size()) break;
  }
  if (points.empty()) {
    error = "offsets: empty list";
    return false;
  }
  return true;
}

}  // namespace

std::string to_string(Verb verb) {
  switch (verb) {
    case Verb::kAdvise: return "advise";
    case Verb::kPredict: return "predict";
    case Verb::kStats: return "stats";
    case Verb::kPing: return "ping";
    case Verb::kHealthz: return "healthz";
    case Verb::kReload: return "reload";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

ParseResult parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    return fail("-", "oversize request line (max " +
                         std::to_string(kMaxRequestBytes) + " bytes)");
  }
  for (const char c : line) {
    if (c < 0x20 || c > 0x7e) {
      return fail("-", "request contains non-printable bytes");
    }
  }
  const auto tokens = split_tokens(line);
  if (tokens.empty()) return fail("-", "empty request");

  Verb verb;
  if (tokens[0] == "advise") verb = Verb::kAdvise;
  else if (tokens[0] == "predict") verb = Verb::kPredict;
  else if (tokens[0] == "stats") verb = Verb::kStats;
  else if (tokens[0] == "ping") verb = Verb::kPing;
  else if (tokens[0] == "healthz") verb = Verb::kHealthz;
  else if (tokens[0] == "reload") verb = Verb::kReload;
  else if (tokens[0] == "shutdown") verb = Verb::kShutdown;
  else return fail("-", "unknown verb '" + tokens[0] +
                        "' (advise|predict|stats|ping|healthz|reload|shutdown)");

  if (tokens.size() < 2) return fail("-", "missing request id");
  const std::string& id = tokens[1];
  if (id.size() > kMaxIdBytes) return fail("-", "request id too long (max 64)");
  for (const char c : id) {
    if (!valid_id_char(c)) {
      return fail("-", "request id has invalid characters ([A-Za-z0-9_.:-])");
    }
  }

  const bool takes_keys = verb == Verb::kAdvise || verb == Verb::kPredict;
  if (!takes_keys && tokens.size() > 2) {
    return fail(id, to_string(verb) + " takes no arguments");
  }

  // key=value options (advise/predict only).
  std::string shape, gpu = "V100", offsets;
  long long dims = 2, order = 2;
  bool saw_shape = false, saw_dims = false, saw_order = false,
       saw_gpu = false, saw_offsets = false;
  for (std::size_t t = 2; t < tokens.size(); ++t) {
    const std::string& tok = tokens[t];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail(id, "expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (value.empty()) return fail(id, "option '" + key + "' has no value");
    bool* seen = nullptr;
    if (key == "shape") { seen = &saw_shape; shape = value; }
    else if (key == "dims") {
      seen = &saw_dims;
      if (!util::parse_i64_strict(value, dims) || (dims != 2 && dims != 3)) {
        return fail(id, "dims must be 2 or 3");
      }
    } else if (key == "order") {
      seen = &saw_order;
      if (!util::parse_i64_strict(value, order) || order < 1 || order > 4) {
        return fail(id, "order must be an integer in [1, 4]");
      }
    } else if (key == "gpu") {
      seen = &saw_gpu;
      gpu = value;
      if (gpu.size() > 32) return fail(id, "gpu name too long (max 32)");
      for (const char c : gpu) {
        if (!valid_gpu_char(c)) {
          return fail(id, "gpu name has invalid characters ([A-Za-z0-9_-])");
        }
      }
    } else if (key == "offsets") {
      seen = &saw_offsets;
      offsets = value;
    } else {
      return fail(id, "unknown option '" + key +
                      "' (shape|dims|order|gpu|offsets)");
    }
    if (*seen) return fail(id, "duplicate option '" + key + "'");
    *seen = true;
  }
  if (saw_offsets && (saw_shape || saw_dims || saw_order)) {
    return fail(id, "offsets= excludes shape=/dims=/order=");
  }

  ParseResult result;
  result.id = id;
  result.request.verb = verb;
  result.request.id = id;
  if (takes_keys) {
    result.request.gpu = gpu;
    try {
      if (saw_offsets) {
        int odims = 0;
        std::vector<stencil::Point> points;
        std::string error;
        if (!parse_offsets(offsets, odims, points, error)) {
          return fail(id, error);
        }
        result.request.pattern = stencil::StencilPattern(odims, std::move(points));
      } else {
        if (shape.empty()) shape = "star";
        const int d = static_cast<int>(dims);
        const int r = static_cast<int>(order);
        if (shape == "star") result.request.pattern = stencil::make_star(d, r);
        else if (shape == "box") result.request.pattern = stencil::make_box(d, r);
        else if (shape == "cross") result.request.pattern = stencil::make_cross(d, r);
        else return fail(id, "unknown shape '" + shape + "' (star|box|cross)");
      }
    } catch (const std::exception& e) {
      return fail(id, std::string("invalid stencil: ") + e.what());
    }
    // Canonical identity: the constructed pattern sorts and dedups its
    // offsets, so equivalent spellings produce equal keys.
    std::string key = to_string(verb);
    key += '|';
    key += gpu;
    key += '|';
    key += std::to_string(result.request.pattern.dims());
    for (const auto& p : result.request.pattern.offsets()) {
      key += '|';
      for (int a = 0; a < result.request.pattern.dims(); ++a) {
        key += std::to_string(p[a]);
        key += ',';
      }
    }
    result.request.memo_key = std::move(key);
  }
  result.ok = true;
  return result;
}

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string unescape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      if (text[i + 1] == 'n') { out += '\n'; ++i; continue; }
      if (text[i + 1] == '\\') { out += '\\'; ++i; continue; }
    }
    out += text[i];
  }
  return out;
}

std::string ok_reply(const std::string& id, const std::string& payload) {
  return "ok " + id + ' ' + payload;
}

std::string err_reply(const std::string& id, const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c < 0x20 || c > 0x7e) c = ' ';
  }
  return "err " + (id.empty() ? "-" : id) + ' ' + flat;
}

}  // namespace smart::core::serve
