#include "core/corpus_merge.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>
#include <stdexcept>
#include <tuple>

#include "util/timing.hpp"

namespace smart::core {

namespace {

std::string name_of(const std::vector<std::string>& sources, std::size_t k) {
  if (k < sources.size() && !sources[k].empty()) return sources[k];
  return "shard corpus #" + std::to_string(k);
}

[[noreturn]] void fail(const std::string& source, const std::string& what) {
  throw std::runtime_error("merge: " + source + ": " + what);
}

bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Every field that makes two corpora "the same run": the profiling config
/// identity plus the pinned fault/retry schedule. Any mismatch means the
/// fleet did not execute one coherent single-process schedule, so the merge
/// result could not be bit-identical to anything.
void check_same_run(const ProfileDataset& a, const std::string& a_name,
                    const ProfileDataset& b, const std::string& b_name) {
  const auto differ = [&](const char* field) {
    fail(b_name, std::string(field) + " differs from " + a_name +
                     " (shards of one run must share the exact profiling "
                     "config, retry budget and fault spec)");
  };
  const ProfileConfig& ca = a.config;
  const ProfileConfig& cb = b.config;
  if (ca.dims != cb.dims) differ("dims");
  if (ca.max_order != cb.max_order) differ("max_order");
  if (ca.num_stencils != cb.num_stencils) differ("num_stencils");
  if (ca.samples_per_oc != cb.samples_per_oc) differ("samples_per_oc");
  if (ca.seed != cb.seed) differ("seed");
  if (!same_bits(ca.sim.noise_sigma, cb.sim.noise_sigma)) {
    differ("noise_sigma");
  }
  if (ca.sim.seed != cb.sim.seed) differ("sim seed");
  if (ca.vary_problem_size != cb.vary_problem_size) {
    differ("vary_problem_size");
  }
  if (ca.vary_boundary != cb.vary_boundary) differ("vary_boundary");
  if (a.shard_retries != b.shard_retries) differ("retry budget");
  if (a.shard_fault_spec != b.shard_fault_spec) differ("fault spec");

  if (a.stencils.size() != b.stencils.size()) differ("stencil count");
  for (std::size_t s = 0; s < a.stencils.size(); ++s) {
    if (a.stencils[s].hash() != b.stencils[s].hash()) differ("stencil set");
    const auto& pa = a.problems[s];
    const auto& pb = b.problems[s];
    if (std::tie(pa.nx, pa.ny, pa.nz, pa.boundary) !=
        std::tie(pb.nx, pb.ny, pb.nz, pb.boundary)) {
      differ("per-stencil problem sizes");
    }
  }
  for (std::size_t s = 0; s < a.settings.size(); ++s) {
    for (std::size_t oc = 0; oc < a.settings[s].size(); ++oc) {
      const auto& sa = a.settings[s][oc];
      const auto& sb = b.settings[s][oc];
      if (sa.size() != sb.size()) differ("sampled settings");
      for (std::size_t k = 0; k < sa.size(); ++k) {
        if (sa[k].hash() != sb[k].hash()) differ("sampled settings");
      }
    }
  }
}

}  // namespace

ProfileDataset merge_shard_corpora(std::vector<ProfileDataset> shards,
                                   const std::vector<std::string>& sources) {
  const util::PhaseTimer timer("merge.fold", shards.size());
  if (shards.empty()) {
    throw std::invalid_argument(
        "merge_shard_corpora: at least one shard corpus is required");
  }

  // --- Partition shape: every member agrees on N, indices are exactly
  // --- the permutation 0..N-1 (no duplicates, no gaps).
  const std::size_t count = shards[0].shard.count;
  for (std::size_t k = 1; k < shards.size(); ++k) {
    if (shards[k].shard.count != count) {
      fail(name_of(sources, k),
           "shard count " + std::to_string(shards[k].shard.count) +
               " does not match " + name_of(sources, 0) + " (" +
               std::to_string(count) + ")");
    }
  }
  std::vector<std::size_t> pos_of_index(count, shards.size());
  for (std::size_t k = 0; k < shards.size(); ++k) {
    const std::size_t i = shards[k].shard.index;
    if (i >= count) {
      fail(name_of(sources, k), "shard index " + std::to_string(i) +
                                    " out of range for an " +
                                    std::to_string(count) + "-way partition");
    }
    if (pos_of_index[i] != shards.size()) {
      fail(name_of(sources, k),
           "duplicate shard " + std::to_string(i) + "/" +
               std::to_string(count) + " (already provided by " +
               name_of(sources, pos_of_index[i]) + ")");
    }
    pos_of_index[i] = k;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (pos_of_index[i] == shards.size()) {
      fail("partition", "missing shard " + std::to_string(i) + "/" +
                            std::to_string(count) +
                            " (a merge needs the complete partition 0..N-1)");
    }
  }

  // --- One coherent run identity across all members.
  for (std::size_t k = 1; k < shards.size(); ++k) {
    check_same_run(shards[0], name_of(sources, 0), shards[k],
                   name_of(sources, k));
  }

  // --- Ownership audit: a measured (or quarantined) unit must come from
  // --- the shard the partition hash assigns it to, and every owned unit
  // --- must have been measured (quarantined units carry the all-NaN
  // --- crashed convention, so they are "measured" here too). This is what
  // --- rejects overlapping or incomplete hand-edited shards.
  const std::size_t n = shards[0].stencils.size();
  const std::size_t num_gpus = shards[0].gpus.size();
  const std::size_t num_ocs = ProfileDataset::num_ocs();
  std::vector<std::uint64_t> hashes(n);
  for (std::size_t s = 0; s < n; ++s) hashes[s] = shards[0].stencils[s].hash();

  for (std::size_t k = 0; k < shards.size(); ++k) {
    const ProfileDataset& shard = shards[k];
    const auto unit_name = [&](std::size_t s, std::size_t oc, std::size_t g) {
      return "unit (stencil " + std::to_string(s) + ", oc " +
             std::to_string(oc) + ", gpu " + std::to_string(g) + ")";
    };
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t g = 0; g < num_gpus; ++g) {
        for (std::size_t oc = 0; oc < num_ocs; ++oc) {
          const std::size_t owner = shard_owner(hashes[s], oc, g, count);
          const auto& times = shard.times[s][g][oc];
          if (owner == shard.shard.index) {
            if (times.size() != shards[0].settings[s][oc].size()) {
              fail(name_of(sources, k),
                   unit_name(s, oc, g) + (times.empty()
                       ? " is owned by this shard but was never measured"
                       : " has a time count that does not match the sampled "
                         "settings"));
            }
          } else if (!times.empty()) {
            fail(name_of(sources, k),
                 unit_name(s, oc, g) + " is owned by shard " +
                     std::to_string(owner) +
                     " but carries measurements here (overlapping shards)");
          }
        }
      }
    }
    for (const QuarantineRecord& q : shard.quarantined) {
      const std::size_t owner = shard_owner(hashes[q.stencil], q.oc, q.gpu, count);
      if (owner != shard.shard.index) {
        fail(name_of(sources, k),
             "quarantine record for " + unit_name(q.stencil, q.oc, q.gpu) +
                 " belongs to shard " + std::to_string(owner));
      }
    }
  }

  // --- Fold. Metadata moves from shard 0 (all members proved identical);
  // --- each unit's times move from its owner; quarantine records are
  // --- re-sorted into the canonical single-run order.
  ProfileDataset merged;
  merged.config = shards[0].config;
  merged.problem = shards[0].problem;
  merged.gpus = std::move(shards[0].gpus);
  merged.stencils = std::move(shards[0].stencils);
  merged.problems = std::move(shards[0].problems);
  merged.settings = std::move(shards[0].settings);
  merged.shard_retries = shards[0].shard_retries;
  merged.shard_fault_spec = shards[0].shard_fault_spec;
  merged.owned_units = n * num_gpus * num_ocs;

  merged.times.assign(n, std::vector<std::vector<std::vector<double>>>(
                             num_gpus,
                             std::vector<std::vector<double>>(num_ocs)));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t g = 0; g < num_gpus; ++g) {
      for (std::size_t oc = 0; oc < num_ocs; ++oc) {
        const std::size_t k =
            pos_of_index[shard_owner(hashes[s], oc, g, count)];
        merged.times[s][g][oc] = std::move(shards[k].times[s][g][oc]);
      }
    }
  }
  for (ProfileDataset& shard : shards) {
    merged.quarantined.insert(merged.quarantined.end(),
                              std::make_move_iterator(shard.quarantined.begin()),
                              std::make_move_iterator(shard.quarantined.end()));
  }
  // Reason is a tiebreak only for adversarial inputs (a real run journals at
  // most one quarantine per unit); the unit key alone reproduces the
  // single-run order.
  std::sort(merged.quarantined.begin(), merged.quarantined.end(),
            [](const QuarantineRecord& a, const QuarantineRecord& b) {
              return std::tie(a.stencil, a.oc, a.gpu, a.reason) <
                     std::tie(b.stencil, b.oc, b.gpu, b.reason);
            });
  return merged;
}

}  // namespace smart::core
