#include "core/classification.hpp"

#include <stdexcept>

#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/models.hpp"
#include "stencil/features.hpp"
#include "stencil/tensor_repr.hpp"
#include "util/stats.hpp"

namespace smart::core {

std::string to_string(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kConvNet: return "ConvNet";
    case ClassifierKind::kFcNet: return "FcNet";
    case ClassifierKind::kGbdt: return "GBDT";
  }
  return "?";
}

ml::Matrix stencil_feature_matrix(const ProfileDataset& dataset) {
  std::vector<std::vector<float>> rows;
  rows.reserve(dataset.stencils.size());
  for (const auto& pattern : dataset.stencils) {
    const auto f =
        stencil::extract_features(pattern, dataset.config.max_order).to_vector();
    rows.emplace_back(f.begin(), f.end());
  }
  return ml::Matrix::from_rows(rows);
}

ml::Matrix stencil_tensor_matrix(const ProfileDataset& dataset) {
  std::vector<std::vector<float>> rows;
  rows.reserve(dataset.stencils.size());
  for (const auto& pattern : dataset.stencils) {
    rows.push_back(
        stencil::PatternTensor(pattern, dataset.config.max_order).to_floats());
  }
  return ml::Matrix::from_rows(rows);
}

std::vector<int> true_groups(const ProfileDataset& dataset,
                             const OcMerger& merger, std::size_t gpu) {
  std::vector<int> labels(dataset.stencils.size(), -1);
  for (std::size_t s = 0; s < dataset.stencils.size(); ++s) {
    const int best = dataset.best_oc(s, gpu);
    if (best >= 0) labels[s] = merger.group_of(best);
  }
  return labels;
}

ClassificationResult run_classification(const ProfileDataset& dataset,
                                        const OcMerger& merger,
                                        std::size_t gpu, ClassifierKind kind,
                                        const ClassificationConfig& config) {
  ClassificationResult result;
  result.true_group = true_groups(dataset, merger, gpu);
  result.predicted_group.assign(dataset.stencils.size(), -1);

  // Only stencils with a label participate in CV.
  std::vector<std::size_t> usable;
  for (std::size_t s = 0; s < result.true_group.size(); ++s) {
    if (result.true_group[s] >= 0) usable.push_back(s);
  }
  if (usable.size() < static_cast<std::size_t>(config.folds)) {
    throw std::invalid_argument("run_classification: too few labelled stencils");
  }

  const ml::Matrix features = stencil_feature_matrix(dataset);
  const ml::Matrix tensors = stencil_tensor_matrix(dataset);
  const ml::Matrix& x_full =
      kind == ClassifierKind::kGbdt ? features : tensors;
  const int num_classes = merger.num_groups();

  util::Rng rng(config.seed + gpu * 17 + static_cast<std::uint64_t>(kind));
  const auto folds = ml::kfold_splits(usable.size(), config.folds, rng);

  for (const auto& fold : folds) {
    std::vector<std::size_t> train_rows;
    std::vector<int> train_labels;
    for (std::size_t i : fold.train_indices) {
      train_rows.push_back(usable[i]);
      train_labels.push_back(result.true_group[usable[i]]);
    }
    std::vector<std::size_t> test_rows;
    for (std::size_t i : fold.test_indices) test_rows.push_back(usable[i]);

    const ml::Matrix x_train = x_full.gather_rows(train_rows);
    const ml::Matrix x_test = x_full.gather_rows(test_rows);

    std::vector<int> predicted;
    if (kind == ClassifierKind::kGbdt) {
      ml::GbdtParams params;
      params.seed = config.seed;
      ml::GbdtClassifier clf(params);
      clf.fit(x_train, train_labels, num_classes);
      predicted = clf.predict(x_test);
    } else {
      util::Rng net_rng(config.seed * 31 + gpu);
      ml::Sequential net =
          kind == ClassifierKind::kConvNet
              ? ml::make_convnet(dataset.config.dims, dataset.config.max_order,
                                 num_classes, net_rng)
              : ml::make_fcnet(x_full.cols(), num_classes,
                               config.fcnet_layers, config.fcnet_width,
                               net_rng);
      ml::TrainConfig tc;
      tc.epochs = config.epochs;
      tc.batch_size = config.batch_size;
      tc.learning_rate = config.learning_rate;
      tc.seed = config.seed;
      ml::NnClassifier clf(std::move(net), tc);
      clf.fit(x_train, train_labels);
      predicted = clf.predict(x_test);
    }
    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      result.predicted_group[test_rows[i]] = predicted[i];
    }
  }

  std::vector<int> truth;
  std::vector<int> pred;
  for (std::size_t s : usable) {
    truth.push_back(result.true_group[s]);
    pred.push_back(result.predicted_group[s]);
  }
  result.accuracy = util::accuracy(truth, pred);
  return result;
}

}  // namespace smart::core
