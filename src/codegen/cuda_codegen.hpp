// CUDA kernel generator for stencil variants.
//
// The paper's toolchain materializes every (stencil, OC, parameter setting)
// as a CUDA kernel before measuring it; this module reproduces that
// code-generation step. The emitted source is structurally faithful:
//  * one thread block covers a (block_x x block_y) tile, coarsened by the
//    merging factor along the merge axis (BM contiguous / CM strided),
//  * ST variants stream 2-D planes along the stream axis, staging tiles in
//    shared memory (when use_smem) with a barrier + shift per plane,
//  * PR variants double-buffer the next plane's loads into registers,
//  * RT variants split the accumulation into per-plane partial sums that
//    are retired as the stream advances (the retiming reorder),
//  * TB variants fuse tb_depth time steps with an extended halo,
//  * coefficients live in __constant__ memory; boundary handling is either
//    a guard returning 0 (Dirichlet) or wrap-around (periodic).
//
// There is no CUDA toolchain in this environment, so the generated code is
// validated structurally (see tests/codegen/): balanced braces, the right
// barriers, the right shared-memory footprint, one tap per stencil offset.
#pragma once

#include <string>

#include "gpusim/opt.hpp"
#include "gpusim/params.hpp"
#include "gpusim/problem.hpp"
#include "stencil/pattern.hpp"

namespace smart::codegen {

struct GeneratedKernel {
  std::string name;       // C identifier of the __global__ function
  std::string source;     // self-contained .cu translation unit (kernel only)
  int smem_doubles = 0;   // statically declared shared-memory doubles
  bool has_barrier = false;
};

class CudaKernelGenerator {
 public:
  /// Generates the kernel for one variant. Throws std::invalid_argument on
  /// OC/setting/pattern mismatches (the same validity rules as ParamSpace).
  GeneratedKernel generate(const stencil::StencilPattern& pattern,
                           const gpusim::OptCombination& oc,
                           const gpusim::ParamSetting& setting,
                           const gpusim::ProblemSize& problem) const;

  /// A host-side harness around `kernel`: allocation, launch configuration
  /// mirroring the cost model's block decomposition, a golden CPU check.
  std::string generate_harness(const stencil::StencilPattern& pattern,
                               const gpusim::OptCombination& oc,
                               const gpusim::ParamSetting& setting,
                               const gpusim::ProblemSize& problem,
                               const GeneratedKernel& kernel) const;
};

/// Stable identifier for a variant, e.g. "star2d2r_st_rt_b32x8_u2".
std::string variant_name(const stencil::StencilPattern& pattern,
                         const gpusim::OptCombination& oc,
                         const gpusim::ParamSetting& setting);

}  // namespace smart::codegen
