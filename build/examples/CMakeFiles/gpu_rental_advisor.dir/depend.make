# Empty dependencies file for gpu_rental_advisor.
# This may be replaced when dependencies are built.
