file(REMOVE_RECURSE
  "CMakeFiles/gpu_rental_advisor.dir/gpu_rental_advisor.cpp.o"
  "CMakeFiles/gpu_rental_advisor.dir/gpu_rental_advisor.cpp.o.d"
  "gpu_rental_advisor"
  "gpu_rental_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_rental_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
