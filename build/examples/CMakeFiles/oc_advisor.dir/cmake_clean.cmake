file(REMOVE_RECURSE
  "CMakeFiles/oc_advisor.dir/oc_advisor.cpp.o"
  "CMakeFiles/oc_advisor.dir/oc_advisor.cpp.o.d"
  "oc_advisor"
  "oc_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
