# Empty compiler generated dependencies file for oc_advisor.
# This may be replaced when dependencies are built.
