file(REMOVE_RECURSE
  "CMakeFiles/autotune_compare.dir/autotune_compare.cpp.o"
  "CMakeFiles/autotune_compare.dir/autotune_compare.cpp.o.d"
  "autotune_compare"
  "autotune_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
