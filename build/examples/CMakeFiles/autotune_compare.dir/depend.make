# Empty dependencies file for autotune_compare.
# This may be replaced when dependencies are built.
