
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cli/cli_test.cpp" "tests/CMakeFiles/smart_tests.dir/cli/cli_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/cli/cli_test.cpp.o.d"
  "/root/repo/tests/codegen/cuda_codegen_test.cpp" "tests/CMakeFiles/smart_tests.dir/codegen/cuda_codegen_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/codegen/cuda_codegen_test.cpp.o.d"
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/classification_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/classification_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/classification_test.cpp.o.d"
  "/root/repo/tests/core/extensions_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/extensions_test.cpp.o.d"
  "/root/repo/tests/core/facade_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/facade_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/facade_test.cpp.o.d"
  "/root/repo/tests/core/integration_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/integration_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/integration_test.cpp.o.d"
  "/root/repo/tests/core/mart_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/mart_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/mart_test.cpp.o.d"
  "/root/repo/tests/core/oc_merger_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/oc_merger_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/oc_merger_test.cpp.o.d"
  "/root/repo/tests/core/profile_dataset_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/profile_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/profile_dataset_test.cpp.o.d"
  "/root/repo/tests/core/regression_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/regression_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/regression_test.cpp.o.d"
  "/root/repo/tests/core/serialize_test.cpp" "tests/CMakeFiles/smart_tests.dir/core/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/core/serialize_test.cpp.o.d"
  "/root/repo/tests/gpusim/cost_model_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/cost_model_test.cpp.o.d"
  "/root/repo/tests/gpusim/event_sim_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/event_sim_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/event_sim_test.cpp.o.d"
  "/root/repo/tests/gpusim/gpu_spec_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/gpu_spec_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/gpu_spec_test.cpp.o.d"
  "/root/repo/tests/gpusim/occupancy_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/occupancy_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/occupancy_test.cpp.o.d"
  "/root/repo/tests/gpusim/opt_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/opt_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/opt_test.cpp.o.d"
  "/root/repo/tests/gpusim/params_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/params_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/params_test.cpp.o.d"
  "/root/repo/tests/gpusim/problem_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/problem_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/problem_test.cpp.o.d"
  "/root/repo/tests/gpusim/simulator_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/simulator_test.cpp.o.d"
  "/root/repo/tests/gpusim/tuner_strategies_test.cpp" "tests/CMakeFiles/smart_tests.dir/gpusim/tuner_strategies_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/gpusim/tuner_strategies_test.cpp.o.d"
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/dropout_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/dropout_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/dropout_test.cpp.o.d"
  "/root/repo/tests/ml/gbdt_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/gbdt_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/gbdt_test.cpp.o.d"
  "/root/repo/tests/ml/matrix_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/matrix_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/models_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/models_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/models_test.cpp.o.d"
  "/root/repo/tests/ml/nn_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/nn_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/nn_test.cpp.o.d"
  "/root/repo/tests/ml/tree_test.cpp" "tests/CMakeFiles/smart_tests.dir/ml/tree_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/ml/tree_test.cpp.o.d"
  "/root/repo/tests/stencil/boundary_test.cpp" "tests/CMakeFiles/smart_tests.dir/stencil/boundary_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/stencil/boundary_test.cpp.o.d"
  "/root/repo/tests/stencil/features_test.cpp" "tests/CMakeFiles/smart_tests.dir/stencil/features_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/stencil/features_test.cpp.o.d"
  "/root/repo/tests/stencil/generator_test.cpp" "tests/CMakeFiles/smart_tests.dir/stencil/generator_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/stencil/generator_test.cpp.o.d"
  "/root/repo/tests/stencil/pattern_test.cpp" "tests/CMakeFiles/smart_tests.dir/stencil/pattern_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/stencil/pattern_test.cpp.o.d"
  "/root/repo/tests/stencil/point_test.cpp" "tests/CMakeFiles/smart_tests.dir/stencil/point_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/stencil/point_test.cpp.o.d"
  "/root/repo/tests/stencil/reference_test.cpp" "tests/CMakeFiles/smart_tests.dir/stencil/reference_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/stencil/reference_test.cpp.o.d"
  "/root/repo/tests/stencil/tensor_repr_test.cpp" "tests/CMakeFiles/smart_tests.dir/stencil/tensor_repr_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/stencil/tensor_repr_test.cpp.o.d"
  "/root/repo/tests/util/env_test.cpp" "tests/CMakeFiles/smart_tests.dir/util/env_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/util/env_test.cpp.o.d"
  "/root/repo/tests/util/parallel_test.cpp" "tests/CMakeFiles/smart_tests.dir/util/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/util/parallel_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/smart_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/smart_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/smart_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/smart_tests.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stencilmart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
