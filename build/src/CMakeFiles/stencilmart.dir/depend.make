# Empty dependencies file for stencilmart.
# This may be replaced when dependencies are built.
