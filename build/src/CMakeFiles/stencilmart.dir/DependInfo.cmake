
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli.cpp" "src/CMakeFiles/stencilmart.dir/cli/cli.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/cli/cli.cpp.o.d"
  "/root/repo/src/codegen/cuda_codegen.cpp" "src/CMakeFiles/stencilmart.dir/codegen/cuda_codegen.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/codegen/cuda_codegen.cpp.o.d"
  "/root/repo/src/core/advisor.cpp" "src/CMakeFiles/stencilmart.dir/core/advisor.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/advisor.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/stencilmart.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/classification.cpp" "src/CMakeFiles/stencilmart.dir/core/classification.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/classification.cpp.o.d"
  "/root/repo/src/core/mart.cpp" "src/CMakeFiles/stencilmart.dir/core/mart.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/mart.cpp.o.d"
  "/root/repo/src/core/oc_merger.cpp" "src/CMakeFiles/stencilmart.dir/core/oc_merger.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/oc_merger.cpp.o.d"
  "/root/repo/src/core/profile_dataset.cpp" "src/CMakeFiles/stencilmart.dir/core/profile_dataset.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/profile_dataset.cpp.o.d"
  "/root/repo/src/core/regression.cpp" "src/CMakeFiles/stencilmart.dir/core/regression.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/regression.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/stencilmart.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/core/serialize.cpp.o.d"
  "/root/repo/src/gpusim/cost_model.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/cost_model.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/cost_model.cpp.o.d"
  "/root/repo/src/gpusim/event_sim.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/event_sim.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/event_sim.cpp.o.d"
  "/root/repo/src/gpusim/gpu_spec.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/gpu_spec.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/gpu_spec.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/occupancy.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/opt.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/opt.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/opt.cpp.o.d"
  "/root/repo/src/gpusim/params.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/params.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/params.cpp.o.d"
  "/root/repo/src/gpusim/problem.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/problem.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/problem.cpp.o.d"
  "/root/repo/src/gpusim/simulator.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/simulator.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/simulator.cpp.o.d"
  "/root/repo/src/gpusim/tuner.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/tuner.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/tuner.cpp.o.d"
  "/root/repo/src/gpusim/tuner_strategies.cpp" "src/CMakeFiles/stencilmart.dir/gpusim/tuner_strategies.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/gpusim/tuner_strategies.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/stencilmart.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/CMakeFiles/stencilmart.dir/ml/gbdt.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/ml/gbdt.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/CMakeFiles/stencilmart.dir/ml/matrix.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/ml/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/stencilmart.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/models.cpp" "src/CMakeFiles/stencilmart.dir/ml/models.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/ml/models.cpp.o.d"
  "/root/repo/src/ml/nn.cpp" "src/CMakeFiles/stencilmart.dir/ml/nn.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/ml/nn.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/CMakeFiles/stencilmart.dir/ml/tree.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/ml/tree.cpp.o.d"
  "/root/repo/src/stencil/features.cpp" "src/CMakeFiles/stencilmart.dir/stencil/features.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/stencil/features.cpp.o.d"
  "/root/repo/src/stencil/generator.cpp" "src/CMakeFiles/stencilmart.dir/stencil/generator.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/stencil/generator.cpp.o.d"
  "/root/repo/src/stencil/grid.cpp" "src/CMakeFiles/stencilmart.dir/stencil/grid.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/stencil/grid.cpp.o.d"
  "/root/repo/src/stencil/pattern.cpp" "src/CMakeFiles/stencilmart.dir/stencil/pattern.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/stencil/pattern.cpp.o.d"
  "/root/repo/src/stencil/point.cpp" "src/CMakeFiles/stencilmart.dir/stencil/point.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/stencil/point.cpp.o.d"
  "/root/repo/src/stencil/reference.cpp" "src/CMakeFiles/stencilmart.dir/stencil/reference.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/stencil/reference.cpp.o.d"
  "/root/repo/src/stencil/tensor_repr.cpp" "src/CMakeFiles/stencilmart.dir/stencil/tensor_repr.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/stencil/tensor_repr.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/stencilmart.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/util/env.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/stencilmart.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/stencilmart.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/stencilmart.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/stencilmart.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
