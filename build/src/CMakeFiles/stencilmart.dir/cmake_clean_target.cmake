file(REMOVE_RECURSE
  "libstencilmart.a"
)
