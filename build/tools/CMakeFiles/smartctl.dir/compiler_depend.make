# Empty compiler generated dependencies file for smartctl.
# This may be replaced when dependencies are built.
