file(REMOVE_RECURSE
  "CMakeFiles/smartctl.dir/smartctl.cpp.o"
  "CMakeFiles/smartctl.dir/smartctl.cpp.o.d"
  "smartctl"
  "smartctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
