# Empty dependencies file for bench_fig10_vs_artemis.
# This may be replaced when dependencies are built.
