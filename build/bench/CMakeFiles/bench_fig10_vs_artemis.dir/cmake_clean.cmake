file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vs_artemis.dir/bench_fig10_vs_artemis.cpp.o"
  "CMakeFiles/bench_fig10_vs_artemis.dir/bench_fig10_vs_artemis.cpp.o.d"
  "bench_fig10_vs_artemis"
  "bench_fig10_vs_artemis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vs_artemis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
