# Empty dependencies file for bench_fig01_perf_gap.
# This may be replaced when dependencies are built.
