# Empty dependencies file for bench_fig14_pure_perf.
# This may be replaced when dependencies are built.
