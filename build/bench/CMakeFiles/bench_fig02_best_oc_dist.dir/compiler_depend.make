# Empty compiler generated dependencies file for bench_fig02_best_oc_dist.
# This may be replaced when dependencies are built.
