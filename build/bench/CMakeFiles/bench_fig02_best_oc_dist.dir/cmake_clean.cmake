file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_best_oc_dist.dir/bench_fig02_best_oc_dist.cpp.o"
  "CMakeFiles/bench_fig02_best_oc_dist.dir/bench_fig02_best_oc_dist.cpp.o.d"
  "bench_fig02_best_oc_dist"
  "bench_fig02_best_oc_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_best_oc_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
