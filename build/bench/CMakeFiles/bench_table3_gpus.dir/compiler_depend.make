# Empty compiler generated dependencies file for bench_table3_gpus.
# This may be replaced when dependencies are built.
