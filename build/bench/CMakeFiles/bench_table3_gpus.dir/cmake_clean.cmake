file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gpus.dir/bench_table3_gpus.cpp.o"
  "CMakeFiles/bench_table3_gpus.dir/bench_table3_gpus.cpp.o.d"
  "bench_table3_gpus"
  "bench_table3_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
