# Empty dependencies file for bench_ablation_log2.
# This may be replaced when dependencies are built.
