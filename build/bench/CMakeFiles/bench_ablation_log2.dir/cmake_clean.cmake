file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_log2.dir/bench_ablation_log2.cpp.o"
  "CMakeFiles/bench_ablation_log2.dir/bench_ablation_log2.cpp.o.d"
  "bench_ablation_log2"
  "bench_ablation_log2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_log2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
