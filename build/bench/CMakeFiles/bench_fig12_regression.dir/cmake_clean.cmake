file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_regression.dir/bench_fig12_regression.cpp.o"
  "CMakeFiles/bench_fig12_regression.dir/bench_fig12_regression.cpp.o.d"
  "bench_fig12_regression"
  "bench_fig12_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
