# Empty dependencies file for bench_fig12_regression.
# This may be replaced when dependencies are built.
