# Empty compiler generated dependencies file for bench_ext_boundary.
# This may be replaced when dependencies are built.
