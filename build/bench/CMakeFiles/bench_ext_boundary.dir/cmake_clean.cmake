file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_boundary.dir/bench_ext_boundary.cpp.o"
  "CMakeFiles/bench_ext_boundary.dir/bench_ext_boundary.cpp.o.d"
  "bench_ext_boundary"
  "bench_ext_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
