file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ocs.dir/bench_table1_ocs.cpp.o"
  "CMakeFiles/bench_table1_ocs.dir/bench_table1_ocs.cpp.o.d"
  "bench_table1_ocs"
  "bench_table1_ocs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
