# Empty dependencies file for bench_table1_ocs.
# This may be replaced when dependencies are built.
