file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gridsize.dir/bench_ext_gridsize.cpp.o"
  "CMakeFiles/bench_ext_gridsize.dir/bench_ext_gridsize.cpp.o.d"
  "bench_ext_gridsize"
  "bench_ext_gridsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gridsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
