# Empty dependencies file for bench_ext_gridsize.
# This may be replaced when dependencies are built.
