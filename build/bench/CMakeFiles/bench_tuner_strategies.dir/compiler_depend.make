# Empty compiler generated dependencies file for bench_tuner_strategies.
# This may be replaced when dependencies are built.
