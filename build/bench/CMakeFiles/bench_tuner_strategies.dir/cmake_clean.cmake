file(REMOVE_RECURSE
  "CMakeFiles/bench_tuner_strategies.dir/bench_tuner_strategies.cpp.o"
  "CMakeFiles/bench_tuner_strategies.dir/bench_tuner_strategies.cpp.o.d"
  "bench_tuner_strategies"
  "bench_tuner_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuner_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
