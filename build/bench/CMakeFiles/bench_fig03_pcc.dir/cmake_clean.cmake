file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_pcc.dir/bench_fig03_pcc.cpp.o"
  "CMakeFiles/bench_fig03_pcc.dir/bench_fig03_pcc.cpp.o.d"
  "bench_fig03_pcc"
  "bench_fig03_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
