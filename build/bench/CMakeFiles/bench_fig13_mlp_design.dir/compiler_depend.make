# Empty compiler generated dependencies file for bench_fig13_mlp_design.
# This may be replaced when dependencies are built.
