file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mlp_design.dir/bench_fig13_mlp_design.cpp.o"
  "CMakeFiles/bench_fig13_mlp_design.dir/bench_fig13_mlp_design.cpp.o.d"
  "bench_fig13_mlp_design"
  "bench_fig13_mlp_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mlp_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
