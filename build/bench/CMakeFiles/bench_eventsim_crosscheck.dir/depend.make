# Empty dependencies file for bench_eventsim_crosscheck.
# This may be replaced when dependencies are built.
