file(REMOVE_RECURSE
  "CMakeFiles/bench_eventsim_crosscheck.dir/bench_eventsim_crosscheck.cpp.o"
  "CMakeFiles/bench_eventsim_crosscheck.dir/bench_eventsim_crosscheck.cpp.o.d"
  "bench_eventsim_crosscheck"
  "bench_eventsim_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eventsim_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
