# Empty compiler generated dependencies file for bench_ablation_repr.
# This may be replaced when dependencies are built.
