file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vs_an5d.dir/bench_fig11_vs_an5d.cpp.o"
  "CMakeFiles/bench_fig11_vs_an5d.dir/bench_fig11_vs_an5d.cpp.o.d"
  "bench_fig11_vs_an5d"
  "bench_fig11_vs_an5d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vs_an5d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
