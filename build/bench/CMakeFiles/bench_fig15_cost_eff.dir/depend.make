# Empty dependencies file for bench_fig15_cost_eff.
# This may be replaced when dependencies are built.
