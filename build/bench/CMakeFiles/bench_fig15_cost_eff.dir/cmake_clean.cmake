file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cost_eff.dir/bench_fig15_cost_eff.cpp.o"
  "CMakeFiles/bench_fig15_cost_eff.dir/bench_fig15_cost_eff.cpp.o.d"
  "bench_fig15_cost_eff"
  "bench_fig15_cost_eff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cost_eff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
