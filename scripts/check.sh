#!/usr/bin/env bash
# Tier-1 verification plus the parallelism determinism gate.
#
# Builds the tree, runs the full test suite twice — once pinned to a single
# thread (SMART_THREADS=1) and once unrestricted — and then diffs the
# profiling-corpus checksum (smartctl profile --checksum 1) between the two
# thread modes. Any divergence means a parallel loop broke the determinism
# contract documented in src/util/task_pool.hpp.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest (SMART_THREADS=1) =="
(cd "$BUILD_DIR" && SMART_THREADS=1 ctest --output-on-failure -j"$(nproc)")

echo "== ctest (unrestricted threads) =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")

echo "== determinism digest (SMART_THREADS=1 vs default) =="
SMARTCTL="$BUILD_DIR/tools/smartctl"
PROFILE_ARGS=(profile --dims 3 --stencils 24 --samples 3 --seed 20220530 --checksum 1)
one=$(SMART_THREADS=1 "$SMARTCTL" "${PROFILE_ARGS[@]}" | grep '^checksum')
many=$("$SMARTCTL" "${PROFILE_ARGS[@]}" | grep '^checksum')
echo "  SMART_THREADS=1 -> $one"
echo "  default         -> $many"
if [[ "$one" != "$many" ]]; then
  echo "FAIL: dataset checksum differs between thread modes" >&2
  exit 1
fi
echo "OK: checksums identical across thread counts"

echo "== golden corpus checksum (500 stencils, pre-two-phase reference) =="
# The two-phase profiler (PR 4) must reproduce the pre-change profiler's
# dataset bit-for-bit: this golden value was recorded from the monolithic
# implementation on the paper-sized 2-D corpus, and must hold serially and
# under the task pool alike.
GOLDEN_ARGS=(profile --dims 2 --stencils 500 --samples 4 --seed 20220530 --checksum 1)
GOLDEN_WANT="checksum 2e5c80a812ebd0f9"
for threads in 1 4; do
  got=$(SMART_THREADS=$threads "$SMARTCTL" "${GOLDEN_ARGS[@]}" | grep '^checksum')
  echo "  SMART_THREADS=$threads -> $got"
  if [[ "$got" != "$GOLDEN_WANT" ]]; then
    echo "FAIL: corpus checksum drifted from the pre-two-phase profiler" >&2
    echo "      want: $GOLDEN_WANT" >&2
    exit 1
  fi
done
echo "OK: 500-stencil corpus matches the golden checksum in both thread modes"

echo "== train-once/serve-many round trip =="
# A model artifact served with `advise --model` must print advice identical
# to training in-process from the same corpus, and the serve side must not
# profile or train (no profile.* / *.fit timing phases).
ARTDIR=$(mktemp -d)
trap 'rm -rf "$ARTDIR"' EXIT
"$SMARTCTL" profile --dims 2 --stencils 8 --samples 2 --out "$ARTDIR/corpus.txt" >/dev/null
"$SMARTCTL" train --corpus "$ARTDIR/corpus.txt" --out "$ARTDIR/model.smart" >/dev/null
ADVISE_ARGS=(advise --shape star --dims 2 --order 2 --gpu V100)
"$SMARTCTL" "${ADVISE_ARGS[@]}" --corpus "$ARTDIR/corpus.txt" > "$ARTDIR/from_corpus.txt"
"$SMARTCTL" "${ADVISE_ARGS[@]}" --model "$ARTDIR/model.smart" --timing 1 > "$ARTDIR/from_model.txt"
if ! diff <(head -n "$(wc -l < "$ARTDIR/from_corpus.txt")" "$ARTDIR/from_model.txt") \
          "$ARTDIR/from_corpus.txt"; then
  echo "FAIL: advise --model output differs from advise --corpus" >&2
  exit 1
fi
if grep -qE 'profile\.|\.fit' "$ARTDIR/from_model.txt"; then
  echo "FAIL: serving a model artifact ran profiling or training phases" >&2
  exit 1
fi
echo "OK: served advice matches corpus training; serve side is inference-only"

echo "== corrupt-artifact rejection =="
# Truncation and a flipped payload byte must both be refused.
head -c "$(( $(wc -c < "$ARTDIR/model.smart") / 2 ))" "$ARTDIR/model.smart" > "$ARTDIR/truncated.smart"
if "$SMARTCTL" "${ADVISE_ARGS[@]}" --model "$ARTDIR/truncated.smart" >/dev/null 2>&1; then
  echo "FAIL: truncated artifact was accepted" >&2
  exit 1
fi
mid=$(( $(wc -c < "$ARTDIR/model.smart") / 2 ))
{ head -c "$mid" "$ARTDIR/model.smart"; printf '#'; tail -c "+$(( mid + 2 ))" "$ARTDIR/model.smart"; } \
  > "$ARTDIR/flipped.smart"
if "$SMARTCTL" "${ADVISE_ARGS[@]}" --model "$ARTDIR/flipped.smart" >/dev/null 2>&1; then
  echo "FAIL: checksum-corrupted artifact was accepted" >&2
  exit 1
fi
echo "OK: truncated and corrupted artifacts are rejected"

echo "== bench smoke: batched advisor inference =="
# Small corpus (SMART_SCALE) keeps this a smoke test; the bench itself
# fails (exit 1) if any batched prediction is not bit-identical to the
# per-variant call, and appends a trajectory point to BENCH_advisor.json.
SMART_SCALE=${SMART_BENCH_SCALE:-0.05} \
  SMART_BENCH_JSON="$PWD/BENCH_advisor.json" \
  "$BUILD_DIR/bench/bench_advisor_batch"

echo "== bench smoke: two-phase profiling substrate =="
# Exit 1 inside the bench if the monolithic sweep and the cached-analysis
# sweep ever diverge bitwise; appends a trajectory point to
# BENCH_profile.json. The >= 2x end-to-end gate applies at SMART_SCALE=1
# (the scale-1 3-D corpus); the smoke scale only checks equivalence.
SMART_SCALE=${SMART_BENCH_SCALE:-0.05} \
  SMART_BENCH_JSON="$PWD/BENCH_profile.json" \
  SMART_BENCH_REPEATS=1 \
  "$BUILD_DIR/bench/bench_profile"
