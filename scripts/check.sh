#!/usr/bin/env bash
# Tier-1 verification plus the parallelism determinism gate.
#
# Builds the tree, runs the full test suite twice — once pinned to a single
# thread (SMART_THREADS=1) and once unrestricted — and then diffs the
# profiling-corpus checksum (smartctl profile --checksum 1) between the two
# thread modes. Any divergence means a parallel loop broke the determinism
# contract documented in src/util/task_pool.hpp.
#
# The serve gates then drive the resident daemon black-box: determinism
# matrices, protocol fuzz, a multi-client chaos gate (16 connections,
# client aborts, kill -9, SIGHUP hot reload mid-traffic), an overload
# shedding gate against a tiny admission queue, and sanitizer legs
# (ASan+UBSan over the unit suite + fuzz, TSan over the concurrent path).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest (SMART_THREADS=1) =="
(cd "$BUILD_DIR" && SMART_THREADS=1 ctest --output-on-failure -j"$(nproc)")

echo "== ctest (unrestricted threads) =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")

echo "== SIMD/precision equivalence gates (SMART_SIMD {0,1} x SMART_THREADS {1,4}) =="
# The vectorized inference layer (DESIGN.md §13) must hold its contracts with
# the fused/flattened kernels both off and on, serially and under the task
# pool: strict/f64 bit-identical to the scalar walk, relaxed/f32 inside the
# tolerance gate, batch-size and thread-count invariant.
EQUIV_FILTER='SimdKernels.*:FlatForest.*:FeatureBinner.*'
EQUIV_FILTER="$EQUIV_FILTER:PrecisionEquivalence.*:ParallelPrecisionEquivalence.*"
for simd in 0 1; do
  for threads in 1 4; do
    echo "  SMART_SIMD=$simd SMART_THREADS=$threads"
    SMART_SIMD=$simd SMART_THREADS=$threads "$BUILD_DIR/tests/smart_tests" \
      --gtest_brief=1 --gtest_filter="$EQUIV_FILTER" | sed 's/^/    /'
  done
done
echo "OK: equivalence suites pass with SMART_SIMD=0/1 at 1 and 4 threads"

echo "== determinism digest (SMART_THREADS=1 vs default) =="
SMARTCTL="$BUILD_DIR/tools/smartctl"
PROFILE_ARGS=(profile --dims 3 --stencils 24 --samples 3 --seed 20220530 --checksum 1)
one=$(SMART_THREADS=1 "$SMARTCTL" "${PROFILE_ARGS[@]}" | grep '^checksum')
many=$("$SMARTCTL" "${PROFILE_ARGS[@]}" | grep '^checksum')
echo "  SMART_THREADS=1 -> $one"
echo "  default         -> $many"
if [[ "$one" != "$many" ]]; then
  echo "FAIL: dataset checksum differs between thread modes" >&2
  exit 1
fi
echo "OK: checksums identical across thread counts"

echo "== golden corpus checksum (500 stencils, pre-two-phase reference) =="
# The two-phase profiler (PR 4) must reproduce the pre-change profiler's
# dataset bit-for-bit: this golden value was recorded from the monolithic
# implementation on the paper-sized 2-D corpus, and must hold serially and
# under the task pool alike.
GOLDEN_ARGS=(profile --dims 2 --stencils 500 --samples 4 --seed 20220530 --checksum 1)
GOLDEN_WANT="checksum 2e5c80a812ebd0f9"
for threads in 1 4; do
  got=$(SMART_THREADS=$threads "$SMARTCTL" "${GOLDEN_ARGS[@]}" | grep '^checksum')
  echo "  SMART_THREADS=$threads -> $got"
  if [[ "$got" != "$GOLDEN_WANT" ]]; then
    echo "FAIL: corpus checksum drifted from the pre-two-phase profiler" >&2
    echo "      want: $GOLDEN_WANT" >&2
    exit 1
  fi
done
echo "OK: 500-stencil corpus matches the golden checksum in both thread modes"

echo "== train-once/serve-many round trip =="
# A model artifact served with `advise --model` must print advice identical
# to training in-process from the same corpus, and the serve side must not
# profile or train (no profile.* / *.fit timing phases).
ARTDIR=$(mktemp -d)
serve_pid=""
trap '[[ -n "${serve_pid:-}" ]] && kill "$serve_pid" 2>/dev/null; rm -rf "$ARTDIR"' EXIT
"$SMARTCTL" profile --dims 2 --stencils 8 --samples 2 --out "$ARTDIR/corpus.txt" >/dev/null
"$SMARTCTL" train --corpus "$ARTDIR/corpus.txt" --out "$ARTDIR/model.smart" >/dev/null
ADVISE_ARGS=(advise --shape star --dims 2 --order 2 --gpu V100)
"$SMARTCTL" "${ADVISE_ARGS[@]}" --corpus "$ARTDIR/corpus.txt" > "$ARTDIR/from_corpus.txt"
"$SMARTCTL" "${ADVISE_ARGS[@]}" --model "$ARTDIR/model.smart" --timing 1 > "$ARTDIR/from_model.txt"
if ! diff <(head -n "$(wc -l < "$ARTDIR/from_corpus.txt")" "$ARTDIR/from_model.txt") \
          "$ARTDIR/from_corpus.txt"; then
  echo "FAIL: advise --model output differs from advise --corpus" >&2
  exit 1
fi
if grep -qE 'profile\.|\.fit' "$ARTDIR/from_model.txt"; then
  echo "FAIL: serving a model artifact ran profiling or training phases" >&2
  exit 1
fi
echo "OK: served advice matches corpus training; serve side is inference-only"

echo "== corrupt-artifact rejection =="
# Truncation and a flipped payload byte must both be refused.
head -c "$(( $(wc -c < "$ARTDIR/model.smart") / 2 ))" "$ARTDIR/model.smart" > "$ARTDIR/truncated.smart"
if "$SMARTCTL" "${ADVISE_ARGS[@]}" --model "$ARTDIR/truncated.smart" >/dev/null 2>&1; then
  echo "FAIL: truncated artifact was accepted" >&2
  exit 1
fi
mid=$(( $(wc -c < "$ARTDIR/model.smart") / 2 ))
{ head -c "$mid" "$ARTDIR/model.smart"; printf '#'; tail -c "+$(( mid + 2 ))" "$ARTDIR/model.smart"; } \
  > "$ARTDIR/flipped.smart"
if "$SMARTCTL" "${ADVISE_ARGS[@]}" --model "$ARTDIR/flipped.smart" >/dev/null 2>&1; then
  echo "FAIL: checksum-corrupted artifact was accepted" >&2
  exit 1
fi
echo "OK: truncated and corrupted artifacts are rejected"

echo "== smartctl exit-code contract =="
# Usage errors (bad flags, malformed values) exit 2 with the usage text;
# runtime failures (I/O, corrupt artifacts, injected faults) exit 1 with a
# one-line "smartctl: error: ..." diagnostic.
set +e
"$SMARTCTL" profile --faults "bogus:p=0.5" >/dev/null 2>"$ARTDIR/usage_err.txt"
rc_usage=$?
"$SMARTCTL" "${ADVISE_ARGS[@]}" --model "$ARTDIR/nonexistent.smart" \
  >/dev/null 2>"$ARTDIR/runtime_err.txt"
rc_runtime=$?
set -e
if [[ $rc_usage -ne 2 ]] || ! grep -q 'usage\|smartctl —' "$ARTDIR/usage_err.txt"; then
  echo "FAIL: usage error should exit 2 with usage text (got rc=$rc_usage)" >&2
  exit 1
fi
if [[ $rc_runtime -ne 1 ]] || ! grep -q '^smartctl: error:' "$ARTDIR/runtime_err.txt"; then
  echo "FAIL: runtime error should exit 1 with a one-line diagnostic (got rc=$rc_runtime)" >&2
  exit 1
fi
echo "OK: usage errors exit 2, runtime errors exit 1"

echo "== fault injection: transient faults do not perturb the corpus =="
# Retried measurements must be bit-identical to a fault-free run: fault
# decisions are pure hashes and consume no RNG state.
FAULT_ARGS=(profile --dims 2 --stencils 20 --samples 2 --seed 7 --checksum)
clean=$("$SMARTCTL" "${FAULT_ARGS[@]}" | grep '^checksum')
faulty=$("$SMARTCTL" "${FAULT_ARGS[@]}" --faults "seed=13;measure:transient:p=0.05" | grep '^checksum')
echo "  fault-free -> $clean"
echo "  transient  -> $faulty"
if [[ "$clean" != "$faulty" ]]; then
  echo "FAIL: transient fault injection changed surviving measurements" >&2
  exit 1
fi
echo "OK: transient-fault corpus is bit-identical to the fault-free corpus"

echo "== fault injection: worker crashes recovered by --resume =="
# Injected worker crashes abort the run (exit 1); each resume replays the
# journal, gets past the journaled failed attempt, and makes progress until
# the corpus completes — bit-identical to the fault-free run.
rm -f "$ARTDIR/worker_journal.txt"
attempts=0
while true; do
  set +e
  SMART_THREADS=4 "$SMARTCTL" "${FAULT_ARGS[@]}" \
    --journal "$ARTDIR/worker_journal.txt" --resume \
    --faults "seed=6;worker:p=0.005" > "$ARTDIR/worker_out.txt" 2>&1
  rc=$?
  set -e
  [[ $rc -eq 0 ]] && break
  if [[ $rc -ne 1 ]]; then
    echo "FAIL: worker crash should exit 1 (got rc=$rc)" >&2
    exit 1
  fi
  attempts=$((attempts + 1))
  if [[ $attempts -ge 60 ]]; then
    echo "FAIL: resume loop did not converge after $attempts crashes" >&2
    exit 1
  fi
done
recovered=$(grep '^checksum' "$ARTDIR/worker_out.txt")
echo "  crashes survived: $attempts, final -> $recovered"
if [[ $attempts -lt 1 ]]; then
  echo "FAIL: fault spec injected no worker crash (gate is vacuous)" >&2
  exit 1
fi
if [[ "$recovered" != "$clean" ]]; then
  echo "FAIL: resumed corpus differs from the fault-free corpus" >&2
  exit 1
fi
echo "OK: worker crashes drained by --resume; corpus bit-identical"

echo "== kill -9 mid-profile, then --resume (golden corpus) =="
# The tentpole invariant end-to-end: SIGKILL the paper-sized profiling run
# mid-sweep (no shutdown handler can run), resume from the journal, and the
# corpus must still match the golden checksum — at 1 thread and 4 threads.
KILL_TOTAL_LINES=60000  # 500 stencils x 30 OCs x 4 GPUs unit records
for threads in 1 4; do
  interrupted=0
  for try in 1 2 3 4 5; do
    rm -f "$ARTDIR/kill_journal.txt"
    SMART_THREADS=$threads "$SMARTCTL" "${GOLDEN_ARGS[@]}" \
      --journal "$ARTDIR/kill_journal.txt" >/dev/null 2>&1 &
    victim=$!
    while kill -0 "$victim" 2>/dev/null; do
      lines=$(wc -l < "$ARTDIR/kill_journal.txt" 2>/dev/null || echo 0)
      if (( lines >= 5000 )); then
        kill -9 "$victim" 2>/dev/null || true
        break
      fi
    done
    set +e
    wait "$victim"
    rc=$?
    set -e
    if [[ $rc -ne 0 ]]; then
      interrupted=1
      break
    fi
  done
  if [[ $interrupted -ne 1 ]]; then
    echo "FAIL: could not interrupt the profiling run (machine too fast?)" >&2
    exit 1
  fi
  lines=$(wc -l < "$ARTDIR/kill_journal.txt")
  got=$(SMART_THREADS=$threads "$SMARTCTL" "${GOLDEN_ARGS[@]}" \
          --journal "$ARTDIR/kill_journal.txt" --resume | grep '^checksum')
  echo "  SMART_THREADS=$threads: killed at ~$lines/$KILL_TOTAL_LINES journal lines -> $got"
  if [[ "$got" != "$GOLDEN_WANT" ]]; then
    echo "FAIL: resumed corpus drifted from the golden checksum" >&2
    echo "      want: $GOLDEN_WANT" >&2
    exit 1
  fi
done
echo "OK: kill -9 + --resume reproduces the golden corpus at 1 and 4 threads"

echo "== sharded profiling + deterministic merge (N in {1,3,4} x SMART_THREADS {1,4}) =="
# DESIGN.md §14: N shard sweeps over the golden 500-stencil corpus, merged,
# must be BYTE-identical to the uninterrupted single-process corpus — the
# checksum must equal the golden value and the serialized file must survive
# cmp(1) — at both thread counts.
"$SMARTCTL" "${GOLDEN_ARGS[@]}" --out "$ARTDIR/single.txt" >/dev/null
for threads in 1 4; do
  for n in 1 3 4; do
    shard_files=()
    for ((i = 0; i < n; ++i)); do
      f="$ARTDIR/shard_t${threads}_n${n}_${i}.txt"
      SMART_THREADS=$threads "$SMARTCTL" "${GOLDEN_ARGS[@]}" \
        --shard "$i/$n" --out "$f" >/dev/null
      shard_files+=("$f")
    done
    got=$(SMART_THREADS=$threads "$SMARTCTL" merge --out "$ARTDIR/merged.txt" \
            "${shard_files[@]}" --checksum | grep '^checksum')
    echo "  SMART_THREADS=$threads N=$n -> $got"
    if [[ "$got" != "$GOLDEN_WANT" ]]; then
      echo "FAIL: merged corpus checksum drifted from the golden value" >&2
      exit 1
    fi
    if ! cmp -s "$ARTDIR/merged.txt" "$ARTDIR/single.txt"; then
      echo "FAIL: merged corpus bytes differ from the single-process corpus" >&2
      exit 1
    fi
  done
done
echo "OK: every shard partition merges byte-identical to the single-process corpus"

echo "== sharded profiling: kill -9 one shard, --resume it, merge =="
# SIGKILL shard 1 of 3 mid-sweep, resume it from its journal, and the merge
# must still reproduce the single-process bytes.
interrupted=0
for try in 1 2 3 4 5; do
  rm -f "$ARTDIR/shard_kill_journal.txt"
  SMART_THREADS=4 "$SMARTCTL" "${GOLDEN_ARGS[@]}" --shard 1/3 \
    --journal "$ARTDIR/shard_kill_journal.txt" \
    --out "$ARTDIR/shard_killed.txt" >/dev/null 2>&1 &
  victim=$!
  while kill -0 "$victim" 2>/dev/null; do
    lines=$(wc -l < "$ARTDIR/shard_kill_journal.txt" 2>/dev/null || echo 0)
    if (( lines >= 3000 )); then
      kill -9 "$victim" 2>/dev/null || true
      break
    fi
  done
  set +e
  wait "$victim"
  rc=$?
  set -e
  if [[ $rc -ne 0 ]]; then
    interrupted=1
    break
  fi
done
if [[ $interrupted -ne 1 ]]; then
  echo "FAIL: could not interrupt the shard sweep (machine too fast?)" >&2
  exit 1
fi
SMART_THREADS=4 "$SMARTCTL" "${GOLDEN_ARGS[@]}" --shard 1/3 \
  --journal "$ARTDIR/shard_kill_journal.txt" --resume \
  --out "$ARTDIR/shard_killed.txt" | sed 's/^/  /'
"$SMARTCTL" merge --out "$ARTDIR/merged.txt" \
  "$ARTDIR/shard_t4_n3_0.txt" "$ARTDIR/shard_killed.txt" \
  "$ARTDIR/shard_t4_n3_2.txt" >/dev/null
if ! cmp -s "$ARTDIR/merged.txt" "$ARTDIR/single.txt"; then
  echo "FAIL: merge after kill -9 + --resume differs from the single-process corpus" >&2
  exit 1
fi
echo "OK: a killed-and-resumed shard merges byte-identical to the single-process corpus"

echo "== sharded profiling: fault-injected shards merge byte-identical =="
# The same fault spec (transient retries + permanent quarantines) applied to
# the single run and to every shard: quarantine records must fold back into
# the canonical single-run order and the bytes must match.
SHARD_FAULTS="seed=13;measure:transient:p=0.05;measure:permanent:p=0.01"
SHARD_FAULT_ARGS=(profile --dims 2 --stencils 20 --samples 2 --seed 7)
"$SMARTCTL" "${SHARD_FAULT_ARGS[@]}" --faults "$SHARD_FAULTS" \
  --out "$ARTDIR/fault_single.txt" | sed 's/^/  single: /'
if ! grep -q 'quarantined' <("$SMARTCTL" "${SHARD_FAULT_ARGS[@]}" --faults "$SHARD_FAULTS"); then
  echo "FAIL: fault spec quarantined nothing (gate is vacuous)" >&2
  exit 1
fi
fault_files=()
for i in 0 1 2; do
  f="$ARTDIR/fault_shard_$i.txt"
  SMART_THREADS=4 "$SMARTCTL" "${SHARD_FAULT_ARGS[@]}" --faults "$SHARD_FAULTS" \
    --shard "$i/3" --out "$f" >/dev/null
  fault_files+=("$f")
done
"$SMARTCTL" merge --out "$ARTDIR/fault_merged.txt" "${fault_files[@]}" >/dev/null
if ! cmp -s "$ARTDIR/fault_merged.txt" "$ARTDIR/fault_single.txt"; then
  echo "FAIL: fault-injected merge differs from the single-process corpus" >&2
  exit 1
fi
echo "OK: fault-injected shards merge byte-identical, quarantines in canonical order"

echo "== sharded profiling: merge validation rejects bad partitions =="
set +e
"$SMARTCTL" merge --out "$ARTDIR/merged.txt" \
  "$ARTDIR/fault_shard_0.txt" "$ARTDIR/fault_shard_1.txt" \
  >/dev/null 2>"$ARTDIR/merge_err.txt"
rc_missing=$?
"$SMARTCTL" merge --out "$ARTDIR/merged.txt" \
  "$ARTDIR/fault_shard_0.txt" "$ARTDIR/fault_shard_0.txt" \
  "$ARTDIR/fault_shard_2.txt" >/dev/null 2>"$ARTDIR/merge_err2.txt"
rc_dup=$?
"$SMARTCTL" profile --shard 3/3 >/dev/null 2>"$ARTDIR/shard_usage_err.txt"
rc_shard_usage=$?
set -e
if [[ $rc_missing -ne 1 ]] || ! grep -q '^smartctl: error: merge:.*missing shard' "$ARTDIR/merge_err.txt"; then
  echo "FAIL: incomplete partition should exit 1 with a missing-shard diagnostic" >&2
  exit 1
fi
if [[ $rc_dup -ne 1 ]] || ! grep -q '^smartctl: error: merge:.*duplicate shard' "$ARTDIR/merge_err2.txt"; then
  echo "FAIL: duplicate shard should exit 1 with a duplicate-shard diagnostic" >&2
  exit 1
fi
if [[ $rc_shard_usage -ne 2 ]]; then
  echo "FAIL: --shard 3/3 should be a usage error (rc 2, got $rc_shard_usage)" >&2
  exit 1
fi
echo "OK: incomplete/duplicate partitions exit 1 with context; bad --shard grammar exits 2"

echo "== serve daemon: response-set determinism matrix =="
# The resident daemon's reply bytes must depend only on (verb, stencil, GPU)
# and the model — never on batch composition, thread count, or arrival
# order. Run one request mix (distinct stencils, duplicates, two malformed
# lines) through every combination of --max-batch {1,8,64} x SMART_THREADS
# {1,4} with a different shuffled arrival order each time, and byte-compare
# the sorted reply sets.
SOCK="$ARTDIR/serve.sock"
HARNESS="$BUILD_DIR/tools/serve_harness"
cat > "$ARTDIR/serve_requests.txt" <<'REQS'
advise r01 shape=star dims=2 order=1 gpu=V100
advise r02 shape=star dims=2 order=2 gpu=A100
advise r03 shape=box dims=2 order=1 gpu=P100
advise r04 shape=cross dims=2 order=3 gpu=2080Ti
advise r05 offsets=0,0;0,1;1,0;0,-1;-1,0 gpu=V100
predict r06 shape=star dims=2 order=2 gpu=V100
predict r07 shape=box dims=2 order=2 gpu=A100
advise r08 shape=star dims=2 order=1 gpu=V100
predict r09 shape=cross dims=2 order=1 gpu=P100
advise r10 gpu=bad!gpu
bogus r11
advise r12 shape=star dims=2 order=2 gpu=A100
REQS

start_serve() {  # usage: start_serve THREADS [extra serve flags...]
  # Serves $SERVE_MODEL when set (the hot-reload gates point it at a live
  # copy they overwrite mid-traffic), else the reference artifact.
  local threads=$1
  shift
  rm -f "$SOCK"
  SMART_THREADS=$threads "$SMARTCTL" serve \
    --model "${SERVE_MODEL:-$ARTDIR/model.smart}" \
    --socket "$SOCK" "$@" >/dev/null 2>"$ARTDIR/serve_stderr.txt" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
  done
}

golden=""
for mb in 1 8 64; do
  for t in 1 4; do
    start_serve "$t" --max-batch "$mb" --max-wait-us 200
    "$HARNESS" --socket "$SOCK" --requests "$ARTDIR/serve_requests.txt" \
      --shuffle $((mb * 10 + t)) --print sorted --shutdown-after \
      > "$ARTDIR/serve_sorted.txt"
    if ! wait "$serve_pid"; then
      echo "FAIL: daemon exited non-zero after shutdown verb" >&2
      exit 1
    fi
    serve_pid=""
    if [[ -z "$golden" ]]; then
      golden="$ARTDIR/serve_golden.txt"
      cp "$ARTDIR/serve_sorted.txt" "$golden"
      echo "  reference reply set: $(wc -l < "$golden") replies (max-batch=$mb, SMART_THREADS=$t)"
    elif ! cmp -s "$ARTDIR/serve_sorted.txt" "$golden"; then
      echo "FAIL: reply set diverged at max-batch=$mb SMART_THREADS=$t" >&2
      diff "$golden" "$ARTDIR/serve_sorted.txt" >&2 || true
      exit 1
    fi
  done
done
echo "OK: reply sets byte-identical across max-batch {1,8,64} x threads {1,4} x shuffled arrival"

# SMART_SIMD=0 must not change one reply byte: the fused/flattened strict
# kernels carry the same bit-exact contract as the scalar walk they replace.
start_serve 4 --max-batch 8 --max-wait-us 200 --simd 0
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/serve_requests.txt" \
  --shuffle 7 --print sorted --shutdown-after > "$ARTDIR/serve_sorted.txt"
if ! wait "$serve_pid"; then
  echo "FAIL: daemon exited non-zero after shutdown verb (--simd 0 leg)" >&2
  exit 1
fi
serve_pid=""
if ! cmp -s "$ARTDIR/serve_sorted.txt" "$golden"; then
  echo "FAIL: --simd 0 reply set diverged from the SIMD reply set" >&2
  diff "$golden" "$ARTDIR/serve_sorted.txt" >&2 || true
  exit 1
fi
echo "OK: --simd 0 daemon replies byte-identical to the vectorized daemon"

echo "== serve daemon: --precision f32 determinism matrix =="
# The relaxed kernels are batch-size- and thread-count-invariant per element
# (DESIGN.md §13), so an f32 daemon's reply set must also be byte-identical
# across batching and threading — against its own f32 reference, which may
# legitimately differ from the f64 reply bytes.
f32_golden=""
for mb in 1 64; do
  for t in 1 4; do
    start_serve "$t" --max-batch "$mb" --max-wait-us 200 --precision f32
    "$HARNESS" --socket "$SOCK" --requests "$ARTDIR/serve_requests.txt" \
      --shuffle $((mb * 10 + t + 5)) --print sorted --shutdown-after \
      > "$ARTDIR/serve_sorted.txt"
    if ! wait "$serve_pid"; then
      echo "FAIL: f32 daemon exited non-zero after shutdown verb" >&2
      exit 1
    fi
    serve_pid=""
    if [[ -z "$f32_golden" ]]; then
      f32_golden="$ARTDIR/serve_golden_f32.txt"
      cp "$ARTDIR/serve_sorted.txt" "$f32_golden"
      echo "  f32 reference reply set: $(wc -l < "$f32_golden") replies (max-batch=$mb, SMART_THREADS=$t)"
    elif ! cmp -s "$ARTDIR/serve_sorted.txt" "$f32_golden"; then
      echo "FAIL: f32 reply set diverged at max-batch=$mb SMART_THREADS=$t" >&2
      diff "$f32_golden" "$ARTDIR/serve_sorted.txt" >&2 || true
      exit 1
    fi
  done
done
echo "OK: --precision f32 reply sets byte-identical across max-batch {1,64} x threads {1,4}"

echo "== serve daemon: golden equivalence vs one-shot advise --model =="
# serve answers through advise_batch plus the wire codec; the CLI answers
# through per-call advise(). Unescaped serve replies in id order must be
# byte-identical to the concatenated one-shot CLI outputs.
T_SHAPES=(star star box cross)
T_ORDERS=(1 2 1 3)
T_GPUS=(V100 A100 P100 2080Ti)
: > "$ARTDIR/text_requests.txt"
: > "$ARTDIR/cli_golden.txt"
for i in 0 1 2 3; do
  printf 'advise t%d shape=%s dims=2 order=%d gpu=%s\n' \
    "$((i + 1))" "${T_SHAPES[$i]}" "${T_ORDERS[$i]}" "${T_GPUS[$i]}" \
    >> "$ARTDIR/text_requests.txt"
  "$SMARTCTL" advise --shape "${T_SHAPES[$i]}" --dims 2 \
    --order "${T_ORDERS[$i]}" --gpu "${T_GPUS[$i]}" \
    --model "$ARTDIR/model.smart" >> "$ARTDIR/cli_golden.txt"
done
start_serve 4 --max-batch 8 --max-wait-us 200
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/text_requests.txt" \
  --shuffle 99 --print text --shutdown-after > "$ARTDIR/serve_text.txt"
if ! wait "$serve_pid"; then
  echo "FAIL: daemon exited non-zero after shutdown verb" >&2
  exit 1
fi
serve_pid=""
if ! diff "$ARTDIR/serve_text.txt" "$ARTDIR/cli_golden.txt"; then
  echo "FAIL: serve replies differ from one-shot advise --model output" >&2
  exit 1
fi
echo "OK: shuffled serve replies unescape to the exact one-shot CLI bytes"

echo "== serve daemon: protocol fuzz (curated malformed corpus + mutants) =="
# Every curated malformed line must earn a one-line err reply carrying its
# request id; seeded mutants must each earn exactly one ok/err reply. The
# daemon must neither crash nor hang nor desynchronize, at 1 and 4 threads.
for t in 1 4; do
  start_serve "$t" --max-batch 8 --max-wait-us 200
  "$HARNESS" --socket "$SOCK" --fuzz 300 --seed $((t * 31)) --shutdown-after \
    | sed "s/^/  SMART_THREADS=$t: /"
  if ! wait "$serve_pid"; then
    echo "FAIL: daemon exited non-zero after fuzz + shutdown" >&2
    exit 1
  fi
  serve_pid=""
done
echo "OK: malformed input earns structured err replies; daemon survives fuzz"

echo "== serve daemon: shutdown semantics (stdio EOF, SIGTERM, client abort) =="
printf 'ping s1\nshutdown s2\n' \
  | "$SMARTCTL" serve --model "$ARTDIR/model.smart" --stdio \
  > "$ARTDIR/stdio_out.txt"
grep -qx 'ok s1 pong v1' "$ARTDIR/stdio_out.txt"
grep -qx 'ok s2 bye' "$ARTDIR/stdio_out.txt"
echo "  stdio session: ping answered, shutdown verb drains, rc 0"

start_serve 1 --max-batch 8
for _ in $(seq 1 100); do
  [[ -S "$SOCK" ]] && break
  sleep 0.05
done
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
  echo "FAIL: SIGTERM should drain in-flight work and exit 0" >&2
  exit 1
fi
serve_pid=""
echo "  SIGTERM: drained and exited rc 0"

# Client slams the connection shut (RST) without reading replies: since the
# multi-client rework this is a SESSION-LOCAL event — the daemon logs it,
# reaps the session, and MUST keep serving. A fresh client afterwards must
# get the exact golden reply set, and the final SIGTERM drains to rc 0.
start_serve 1 --max-batch 64 --max-wait-us 100000
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/serve_requests.txt" \
  --abort >/dev/null
sleep 0.2
if ! kill -0 "$serve_pid" 2>/dev/null; then
  set +e; wait "$serve_pid"; rc_abort=$?; set -e
  echo "FAIL: daemon died on client abort (rc=$rc_abort); aborts must be session-local" >&2
  cat "$ARTDIR/serve_stderr.txt" >&2
  exit 1
fi
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/serve_requests.txt" \
  --shuffle 17 --print sorted > "$ARTDIR/after_abort.txt"
if ! cmp -s "$ARTDIR/after_abort.txt" "$golden"; then
  echo "FAIL: replies to a fresh client after an abort diverged from golden" >&2
  diff "$golden" "$ARTDIR/after_abort.txt" >&2 || true
  exit 1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
  echo "FAIL: SIGTERM after a client abort should still exit 0" >&2
  exit 1
fi
serve_pid=""
echo "  client abort: session reaped, fresh client served golden bytes, rc 0"
echo "OK: shutdown verb, SIGTERM, and client abort all follow the exit contract"

echo "== serve daemon: healthz + banner report the artifact envelope =="
# The startup banner and the healthz verb must both carry the artifact's
# format version and FNV-1a payload checksum — exactly the bytes recorded
# in the artifact's own trailer — plus the model epoch.
want_ck=$(grep -ao 'checksum [0-9a-f]\{16\}' "$ARTDIR/model.smart" | tail -1 | cut -d' ' -f2)
printf 'healthz h1\nshutdown h2\n' \
  | "$SMARTCTL" serve --model "$ARTDIR/model.smart" --stdio \
  > "$ARTDIR/healthz_out.txt" 2>"$ARTDIR/healthz_err.txt"
if ! grep -qx "ok h1 healthz epoch=1 version=stencilmart-model-v1 checksum=$want_ck" \
    "$ARTDIR/healthz_out.txt"; then
  echo "FAIL: healthz payload does not match the artifact envelope" >&2
  cat "$ARTDIR/healthz_out.txt" >&2
  exit 1
fi
if ! grep -q "serve: model .* version=stencilmart-model-v1 checksum=$want_ck epoch=1" \
    "$ARTDIR/healthz_err.txt"; then
  echo "FAIL: startup banner does not report the artifact envelope" >&2
  cat "$ARTDIR/healthz_err.txt" >&2
  exit 1
fi
echo "OK: banner and healthz report version + checksum + epoch from the artifact"

echo "== serve daemon: multi-client chaos gate (16 clients, aborts, kill -9, mid-traffic reload) =="
# Second model trained on a different corpus seed: the hot-reload target.
# Reply bytes are a pure function of (verb, stencil, GPU, model epoch), so
# every reply a chaos client receives must be a member of the union of the
# two serial golden reply sets — and a post-reload client must receive the
# epoch-B golden set exactly.
"$SMARTCTL" profile --dims 2 --stencils 8 --samples 2 --seed 99 \
  --out "$ARTDIR/corpusB.txt" >/dev/null
"$SMARTCTL" train --corpus "$ARTDIR/corpusB.txt" --out "$ARTDIR/modelB.smart" >/dev/null

# Chaos request mix: 96 requests cycling 6 stencil specs (plus one
# malformed spec) under unique ids, so jittered multi-connection runs take
# long enough for the mid-traffic reload to land inside them.
C_SPECS=(
  'advise %s shape=star dims=2 order=1 gpu=V100'
  'advise %s shape=star dims=2 order=2 gpu=A100'
  'advise %s shape=box dims=2 order=1 gpu=P100'
  'predict %s shape=cross dims=2 order=3 gpu=2080Ti'
  'predict %s shape=box dims=2 order=2 gpu=V100'
  'advise %s gpu=bad!gpu'
)
: > "$ARTDIR/chaos_requests.txt"
for i in $(seq 0 95); do
  # shellcheck disable=SC2059
  printf "${C_SPECS[$((i % 6))]}\n" "$(printf 'c%03d' "$i")" \
    >> "$ARTDIR/chaos_requests.txt"
done

# Golden reply sets per epoch (serial, single connection, default threads).
SERVE_MODEL="$ARTDIR/model.smart"
start_serve 1 --max-batch 8 --max-wait-us 200
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/chaos_requests.txt" \
  --print sorted --shutdown-after > "$ARTDIR/chaos_goldenA.txt"
wait "$serve_pid"; serve_pid=""
SERVE_MODEL="$ARTDIR/modelB.smart"
start_serve 1 --max-batch 8 --max-wait-us 200
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/chaos_requests.txt" \
  --print sorted --shutdown-after > "$ARTDIR/chaos_goldenB.txt"
wait "$serve_pid"; serve_pid=""
if cmp -s "$ARTDIR/chaos_goldenA.txt" "$ARTDIR/chaos_goldenB.txt"; then
  echo "FAIL: models A and B produce identical replies (reload gate is vacuous)" >&2
  exit 1
fi
sort -u "$ARTDIR/chaos_goldenA.txt" "$ARTDIR/chaos_goldenB.txt" \
  > "$ARTDIR/chaos_union.txt"

for t in 1 4; do
  cp "$ARTDIR/model.smart" "$ARTDIR/model_live.smart"
  SERVE_MODEL="$ARTDIR/model_live.smart"
  start_serve "$t" --max-batch 8 --max-wait-us 500 --max-conns 64
  # 16 concurrent well-behaved connections (2 harness procs x 8), shuffled
  # arrival with per-line jitter so the run spans the reload...
  chaos_pids=()
  for c in 1 2; do
    "$HARNESS" --socket "$SOCK" --requests "$ARTDIR/chaos_requests.txt" \
      --shuffle $((t * 100 + c)) --connections 8 --jitter-us 8000 \
      --print sorted > "$ARTDIR/chaos_out_$c.txt" &
    chaos_pids+=($!)
  done
  # ...plus a client that RSTs mid-batch without reading replies...
  "$HARNESS" --socket "$SOCK" --requests "$ARTDIR/chaos_requests.txt" \
    --abort-after 7 >/dev/null &
  abort_pid=$!
  # ...plus a slow client that gets kill -9'd mid-conversation.
  "$HARNESS" --socket "$SOCK" --requests "$ARTDIR/chaos_requests.txt" \
    --jitter-us 20000 --print raw > /dev/null 2>&1 &
  victim_pid=$!
  sleep 0.05
  # Hot swap the artifact under the live daemon, mid-traffic. The swap is
  # an atomic rename: a plain cp over the live path races the reload
  # poller, which would (correctly) reject the half-written artifact and
  # keep serving epoch A.
  cp "$ARTDIR/modelB.smart" "$ARTDIR/model_live.smart.tmp"
  mv -f "$ARTDIR/model_live.smart.tmp" "$ARTDIR/model_live.smart"
  kill -HUP "$serve_pid"
  sleep 0.15
  kill -9 "$victim_pid" 2>/dev/null || true
  for p in "${chaos_pids[@]}"; do
    if ! wait "$p"; then
      echo "FAIL: a well-behaved chaos client failed (SMART_THREADS=$t)" >&2
      exit 1
    fi
  done
  set +e
  wait "$abort_pid" 2>/dev/null
  wait "$victim_pid" 2>/dev/null
  set -e
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "FAIL: daemon died during chaos (SMART_THREADS=$t)" >&2
    cat "$ARTDIR/serve_stderr.txt" >&2
    exit 1
  fi
  # Every surviving reply must be byte-identical to a serial golden reply
  # for ONE of the two epochs — shedding is off, so nothing else is legal.
  cat "$ARTDIR/chaos_out_1.txt" "$ARTDIR/chaos_out_2.txt" \
    > "$ARTDIR/chaos_all.txt"
  stray=$(grep -Fxv -f "$ARTDIR/chaos_union.txt" "$ARTDIR/chaos_all.txt" || true)
  if [[ -n "$stray" ]]; then
    echo "FAIL: chaos replies outside union(goldenA, goldenB) at SMART_THREADS=$t:" >&2
    echo "$stray" | head -5 >&2
    exit 1
  fi
  # The reload must take effect: wait for healthz to report epoch=2 (HUP
  # delivery is async to the clients draining; the swap itself is what is
  # under test, not its latency), then a fresh client must get the epoch-B
  # golden set exactly.
  printf 'healthz hz\n' > "$ARTDIR/hz_request.txt"
  reload_landed=""
  for _ in $(seq 1 100); do
    "$HARNESS" --socket "$SOCK" --requests "$ARTDIR/hz_request.txt" \
      --print raw > "$ARTDIR/hz_reply.txt"
    if grep -q '^ok hz healthz epoch=2 ' "$ARTDIR/hz_reply.txt"; then
      reload_landed=1
      break
    fi
    sleep 0.05
  done
  if [[ -z "$reload_landed" ]]; then
    echo "FAIL: healthz does not report epoch=2 after SIGHUP reload" >&2
    cat "$ARTDIR/hz_reply.txt" >&2
    exit 1
  fi
  "$HARNESS" --socket "$SOCK" --requests "$ARTDIR/chaos_requests.txt" \
    --shuffle $((t + 7)) --print sorted --shutdown-after \
    > "$ARTDIR/chaos_post.txt"
  if ! wait "$serve_pid"; then
    echo "FAIL: daemon exited non-zero after chaos drain (SMART_THREADS=$t)" >&2
    cat "$ARTDIR/serve_stderr.txt" >&2
    exit 1
  fi
  serve_pid=""
  if ! cmp -s "$ARTDIR/chaos_post.txt" "$ARTDIR/chaos_goldenB.txt"; then
    echo "FAIL: post-reload replies differ from the epoch-B golden set" >&2
    diff "$ARTDIR/chaos_goldenB.txt" "$ARTDIR/chaos_post.txt" >&2 || true
    exit 1
  fi
  echo "  SMART_THREADS=$t: 16 conns + abort + kill -9 + SIGHUP reload -> replies in union, post-reload == goldenB, rc 0"
done
unset SERVE_MODEL
echo "OK: chaos survivors byte-identical per answering epoch; daemon drains to rc 0"

echo "== serve daemon: overload shedding gate (tiny --max-queue) =="
# 600 requests flood a queue bounded at 2: most must be shed with the fixed
# structured busy reply, every served reply must still be a golden epoch-A
# byte pattern (ids normalized), stats must count the sheds, and the
# daemon's RSS must stay bounded (no hidden buffering).
: > "$ARTDIR/overload_requests.txt"
for i in $(seq 0 599); do
  # shellcheck disable=SC2059
  printf "${C_SPECS[$((i % 6))]}\n" "$(printf 'o%03d' "$i")" \
    >> "$ARTDIR/overload_requests.txt"
done
start_serve 1 --max-batch 1 --max-wait-us 0 --max-queue 2
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/overload_requests.txt" \
  --print sorted > "$ARTDIR/overload_replies.txt"
if ! kill -0 "$serve_pid" 2>/dev/null; then
  echo "FAIL: daemon died under overload" >&2
  cat "$ARTDIR/serve_stderr.txt" >&2
  exit 1
fi
rss_kb=$(awk '/^VmRSS:/ { print $2 }' "/proc/$serve_pid/status")
if (( rss_kb > 524288 )); then
  echo "FAIL: daemon RSS ${rss_kb}kB under overload (unbounded buffering?)" >&2
  exit 1
fi
busy_count=$(grep -c 'busy (admission queue full)$' "$ARTDIR/overload_replies.txt" || true)
ok_count=$(grep -c '^ok ' "$ARTDIR/overload_replies.txt" || true)
total_replies=$(wc -l < "$ARTDIR/overload_replies.txt")
echo "  replies: $total_replies total, $ok_count served, $busy_count shed busy, RSS ${rss_kb}kB"
if [[ "$total_replies" -ne 600 ]]; then
  echo "FAIL: expected exactly one reply per request (got $total_replies/600)" >&2
  exit 1
fi
if (( busy_count < 1 )) || (( ok_count < 1 )); then
  echo "FAIL: overload gate needs both served and shed replies to be non-vacuous" >&2
  exit 1
fi
# Normalize ids to '-' on both sides (sed keeps the payload bytes intact):
# every non-shed reply must be a golden epoch-A byte pattern; every shed
# reply must be the fixed busy string.
sed -E 's/^(ok|err) [^ ]+ /\1 - /' "$ARTDIR/chaos_goldenA.txt" | sort -u \
  > "$ARTDIR/overload_allowed.txt"
echo "err - busy (admission queue full)" >> "$ARTDIR/overload_allowed.txt"
sort -u -o "$ARTDIR/overload_allowed.txt" "$ARTDIR/overload_allowed.txt"
stray=$(sed -E 's/^(ok|err) [^ ]+ /\1 - /' "$ARTDIR/overload_replies.txt" \
  | grep -Fxv -f "$ARTDIR/overload_allowed.txt" || true)
if [[ -n "$stray" ]]; then
  echo "FAIL: overload replies outside the golden + busy set:" >&2
  echo "$stray" | head -5 >&2
  exit 1
fi
# stats must account for the sheds.
printf 'stats sx\n' > "$ARTDIR/stats_request.txt"
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/stats_request.txt" \
  --print raw > "$ARTDIR/stats_reply.txt"
if ! grep -Eq 'shed_busy=[1-9][0-9]*' "$ARTDIR/stats_reply.txt"; then
  echo "FAIL: stats does not report the busy sheds" >&2
  cat "$ARTDIR/stats_reply.txt" >&2
  exit 1
fi
"$HARNESS" --socket "$SOCK" --requests "$ARTDIR/hz_request.txt" \
  --print raw --shutdown-after >/dev/null
if ! wait "$serve_pid"; then
  echo "FAIL: daemon exited non-zero after the overload drain" >&2
  exit 1
fi
serve_pid=""
echo "OK: overload shed with structured busy errors; served bytes golden; RSS bounded"

echo "== sanitizer build (ASan+UBSan) over the unit suite =="
ASAN_DIR=${ASAN_BUILD_DIR:-build-asan}
cmake -B "$ASAN_DIR" -S . -DSMART_SANITIZE=ON >/dev/null
cmake --build "$ASAN_DIR" -j"$(nproc)" --target smart_tests smartctl serve_harness
(cd "$ASAN_DIR" && UBSAN_OPTIONS=halt_on_error=1 ctest --output-on-failure -j"$(nproc)" -L unit)
# The unit label already covers the SIMD kernel + precision suites; add the
# parallel-pool precision suite so the vectorized kernels also run sanitized
# under the task pool, with the fused/flattened paths on and off.
for simd in 0 1; do
  echo "  sanitized equivalence pass: SMART_SIMD=$simd"
  SMART_SIMD=$simd UBSAN_OPTIONS=halt_on_error=1 "$ASAN_DIR/tests/smart_tests" \
    --gtest_brief=1 \
    --gtest_filter='ParallelPrecisionEquivalence.*:SimdKernels.*' | sed 's/^/    /'
done
echo "OK: unit suite clean under AddressSanitizer + UBSan"

echo "== sanitized serve daemon vs the fuzz corpus =="
# The same black-box fuzz, but the daemon itself runs under ASan+UBSan:
# any parser over-read or lifetime bug in the batching path aborts the run.
rm -f "$SOCK"
UBSAN_OPTIONS=halt_on_error=1 "$ASAN_DIR/tools/smartctl" serve \
  --model "$ARTDIR/model.smart" --socket "$SOCK" \
  >/dev/null 2>"$ARTDIR/serve_stderr.txt" &
serve_pid=$!
"$ASAN_DIR/tools/serve_harness" --socket "$SOCK" --fuzz 200 --seed 9 \
  --connections 4 --shutdown-after | sed 's/^/  /'
if ! wait "$serve_pid"; then
  echo "FAIL: sanitized daemon exited non-zero (see $ARTDIR/serve_stderr.txt)" >&2
  cat "$ARTDIR/serve_stderr.txt" >&2
  exit 1
fi
serve_pid=""
echo "OK: sanitized daemon survived the malformed corpus and mutants over 4 connections"

echo "== ThreadSanitizer build over the concurrent serve path =="
# A TSan-instrumented daemon runs a compressed chaos leg: 8 concurrent
# jittered connections with a SIGHUP hot reload mid-traffic, then a full
# drain. Any data race in the session/batcher/reload interplay aborts the
# run (halt_on_error=1); replies must still land inside the two-epoch
# union, and the post-reload set must equal the epoch-B golden set.
TSAN_DIR=${TSAN_BUILD_DIR:-build-tsan}
cmake -B "$TSAN_DIR" -S . -DSMART_SANITIZE=thread >/dev/null
cmake --build "$TSAN_DIR" -j"$(nproc)" --target smartctl serve_harness
rm -f "$SOCK"
cp "$ARTDIR/model.smart" "$ARTDIR/model_live.smart"
TSAN_OPTIONS=halt_on_error=1 "$TSAN_DIR/tools/smartctl" serve \
  --model "$ARTDIR/model_live.smart" --socket "$SOCK" \
  --max-batch 8 --max-wait-us 500 --max-conns 32 \
  >/dev/null 2>"$ARTDIR/serve_stderr.txt" &
serve_pid=$!
for _ in $(seq 1 100); do
  [[ -S "$SOCK" ]] && break
  sleep 0.05
done
"$TSAN_DIR/tools/serve_harness" --socket "$SOCK" \
  --requests "$ARTDIR/chaos_requests.txt" --shuffle 3 --connections 8 \
  --jitter-us 8000 --print sorted > "$ARTDIR/tsan_out.txt" &
tsan_client=$!
sleep 0.05
cp "$ARTDIR/modelB.smart" "$ARTDIR/model_live.smart.tmp"
mv -f "$ARTDIR/model_live.smart.tmp" "$ARTDIR/model_live.smart"  # atomic swap
kill -HUP "$serve_pid"
if ! wait "$tsan_client"; then
  echo "FAIL: chaos client against the TSan daemon failed" >&2
  cat "$ARTDIR/serve_stderr.txt" >&2
  exit 1
fi
stray=$(grep -Fxv -f "$ARTDIR/chaos_union.txt" "$ARTDIR/tsan_out.txt" || true)
if [[ -n "$stray" ]]; then
  echo "FAIL: TSan daemon replies outside union(goldenA, goldenB):" >&2
  echo "$stray" | head -5 >&2
  exit 1
fi
# Wait for the reload to land (TSan stretches HUP-to-swap latency) before
# demanding the epoch-B golden set.
printf 'healthz hz\n' > "$ARTDIR/hz_request.txt"
reload_landed=""
for _ in $(seq 1 100); do
  "$TSAN_DIR/tools/serve_harness" --socket "$SOCK" \
    --requests "$ARTDIR/hz_request.txt" --print raw > "$ARTDIR/hz_reply.txt"
  if grep -q '^ok hz healthz epoch=2 ' "$ARTDIR/hz_reply.txt"; then
    reload_landed=1
    break
  fi
  sleep 0.05
done
if [[ -z "$reload_landed" ]]; then
  echo "FAIL: TSan daemon never reached epoch=2 after SIGHUP" >&2
  cat "$ARTDIR/hz_reply.txt" "$ARTDIR/serve_stderr.txt" >&2
  exit 1
fi
"$TSAN_DIR/tools/serve_harness" --socket "$SOCK" \
  --requests "$ARTDIR/chaos_requests.txt" --shuffle 11 --print sorted \
  --shutdown-after > "$ARTDIR/tsan_post.txt"
if ! wait "$serve_pid"; then
  echo "FAIL: TSan daemon exited non-zero (data race or drain failure)" >&2
  cat "$ARTDIR/serve_stderr.txt" >&2
  exit 1
fi
serve_pid=""
if ! cmp -s "$ARTDIR/tsan_post.txt" "$ARTDIR/chaos_goldenB.txt"; then
  echo "FAIL: TSan daemon post-reload replies differ from the epoch-B golden set" >&2
  diff "$ARTDIR/chaos_goldenB.txt" "$ARTDIR/tsan_post.txt" >&2 || true
  exit 1
fi
echo "OK: TSan daemon raced 8 jittered connections through a hot reload cleanly"

echo "== bench smoke: batched advisor inference =="
# Small corpus (SMART_SCALE) keeps this a smoke test; the bench itself
# fails (exit 1) if any f64 batched prediction is not bit-identical to the
# per-variant call or any f32 prediction is outside the tolerance gate, and
# appends a trajectory point to BENCH_advisor.json. The >= 4x MLP f32
# speedup acceptance gate applies at SMART_SCALE=1.
SMART_SCALE=${SMART_BENCH_SCALE:-0.05} \
  SMART_BENCH_JSON="$PWD/BENCH_advisor.json" \
  SMART_BENCH_REPEATS=1 \
  "$BUILD_DIR/bench/bench_advisor_batch"

echo "== bench smoke: two-phase profiling substrate =="
# Exit 1 inside the bench if the monolithic sweep and the cached-analysis
# sweep ever diverge bitwise; appends a trajectory point to
# BENCH_profile.json. The >= 2x end-to-end gate applies at SMART_SCALE=1
# (the scale-1 3-D corpus); the smoke scale only checks equivalence.
SMART_SCALE=${SMART_BENCH_SCALE:-0.05} \
  SMART_BENCH_JSON="$PWD/BENCH_profile.json" \
  SMART_BENCH_REPEATS=1 \
  "$BUILD_DIR/bench/bench_profile"

echo "== bench smoke: serve-mode resident daemon =="
# The bench fails (exit 1) if any serve reply is not byte-identical to the
# per-item advise()/recommend_gpu() report, and appends a trajectory point
# to BENCH_serve.json. The >= 10x resident-vs-cold speedup acceptance gate
# applies at SMART_SCALE=1 (the paper's 500-stencil corpus); the smoke
# scale only checks equivalence and liveness.
SMART_SCALE=${SMART_BENCH_SCALE:-0.05} \
  SMART_BENCH_JSON="$PWD/BENCH_serve.json" \
  "$BUILD_DIR/bench/bench_serve"
