#!/usr/bin/env bash
# Tier-1 verification plus the parallelism determinism gate.
#
# Builds the tree, runs the full test suite twice — once pinned to a single
# thread (SMART_THREADS=1) and once unrestricted — and then diffs the
# profiling-corpus checksum (smartctl profile --checksum 1) between the two
# thread modes. Any divergence means a parallel loop broke the determinism
# contract documented in src/util/task_pool.hpp.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest (SMART_THREADS=1) =="
(cd "$BUILD_DIR" && SMART_THREADS=1 ctest --output-on-failure -j"$(nproc)")

echo "== ctest (unrestricted threads) =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")

echo "== determinism digest (SMART_THREADS=1 vs default) =="
SMARTCTL="$BUILD_DIR/tools/smartctl"
PROFILE_ARGS=(profile --dims 3 --stencils 24 --samples 3 --seed 20220530 --checksum 1)
one=$(SMART_THREADS=1 "$SMARTCTL" "${PROFILE_ARGS[@]}" | grep '^checksum')
many=$("$SMARTCTL" "${PROFILE_ARGS[@]}" | grep '^checksum')
echo "  SMART_THREADS=1 -> $one"
echo "  default         -> $many"
if [[ "$one" != "$many" ]]; then
  echo "FAIL: dataset checksum differs between thread modes" >&2
  exit 1
fi
echo "OK: checksums identical across thread counts"

echo "== bench smoke: batched advisor inference =="
# Small corpus (SMART_SCALE) keeps this a smoke test; the bench itself
# fails (exit 1) if any batched prediction is not bit-identical to the
# per-variant call, and appends a trajectory point to BENCH_advisor.json.
SMART_SCALE=${SMART_BENCH_SCALE:-0.05} \
  SMART_BENCH_JSON="$PWD/BENCH_advisor.json" \
  "$BUILD_DIR/bench/bench_advisor_batch"
