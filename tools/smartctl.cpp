// Thin main() around the testable CLI library (src/cli).
#include <iostream>
#include <vector>

#include "cli/cli.hpp"
#include "util/env.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const int rc = smart::cli::run_command(smart::cli::parse_command_line(args),
                                           std::cout);
    // SMART_TIMING=1 dumps the per-phase counters every command accumulated
    // (wall time + task counts for profiling, tuning and training phases).
    if (smart::util::env_int("SMART_TIMING", 0) != 0) {
      const std::string report = smart::util::timing_report();
      if (!report.empty()) std::cout << '\n' << report;
    }
    return rc;
  } catch (const std::invalid_argument& e) {
    // Usage error (bad flag, malformed value): the user needs the help text.
    std::cerr << "smartctl: " << e.what() << "\n\n" << smart::cli::usage();
    return 2;
  } catch (const std::exception& e) {
    // Runtime failure (I/O, corrupt artifact, injected fault): the usage
    // text would bury the actual diagnostic, so print one line only.
    std::cerr << "smartctl: error: " << e.what() << '\n';
    return 1;
  }
}
