// Thin main() around the testable CLI library (src/cli).
#include <iostream>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return smart::cli::run_command(smart::cli::parse_command_line(args),
                                   std::cout);
  } catch (const std::exception& e) {
    std::cerr << "smartctl: " << e.what() << "\n\n" << smart::cli::usage();
    return 1;
  }
}
