// Black-box test client for `smartctl serve`: speaks the line protocol over
// an AF_UNIX socket and enforces its contracts from the OUTSIDE of the
// process boundary. scripts/check.sh and the determinism gate drive it in
// these modes:
//
//   serve_harness --socket PATH --requests FILE [--shuffle SEED]
//                 [--print raw|sorted|text] [--shutdown-after]
//                 [--connections C] [--jitter-us MAX]
//     Sends every non-blank line of FILE (optionally shuffled), expects
//     exactly one reply per line, prints the replies. `sorted` prints the
//     reply SET in lexicographic order — byte-identical output across
//     arrival orders, batch sizes, thread counts and connection counts is
//     the determinism gate. `text` additionally unescapes ok-payloads so
//     the output diffs directly against concatenated one-shot `smartctl
//     advise` runs. `--connections C` spreads the requests round-robin
//     over C concurrent sockets (the multi-client chaos gate);
//     `--jitter-us MAX` sleeps a seeded random delay before each send,
//     emulating slow/irregular peers.
//
//   serve_harness --socket PATH --fuzz N --seed S [--connections C]
//     Sends a curated corpus of malformed request lines (each MUST earn a
//     one-line `err` reply carrying the request id) plus N seeded random
//     mutations of a valid request (each must earn exactly one ok/err
//     reply). The daemon must neither crash nor hang nor desynchronize.
//
//   serve_harness --socket PATH --requests FILE --abort [--abort-after K]
//     Sends everything (or only the first K requests), then slams the
//     connection shut with SO_LINGER{1,0} (RST) without reading replies —
//     the daemon must survive the mid-batch disconnect and keep serving
//     other clients.
//
// All requests are pipelined from a sender thread while a reader collects
// replies, so socket buffers can never deadlock the harness; a watchdog
// alarm turns a hung daemon into a test failure instead of a wedged CI job.
#include <atomic>
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/serve_protocol.hpp"
#include "util/transport.hpp"

namespace {

// Self-contained xorshift so harness behaviour never couples to library RNG
// changes (the harness must stay a fixed external yardstick).
struct XorShift {
  std::uint64_t s;
  explicit XorShift(std::uint64_t seed) : s(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

int fail(const std::string& message) {
  std::cerr << "serve_harness: " << message << '\n';
  return 1;
}

int connect_with_retry(const std::string& path, int attempts) {
  for (int i = 0; i < attempts; ++i) {
    try {
      return smart::util::connect_unix(path);
    } catch (const std::exception&) {
      ::usleep(50 * 1000);
    }
  }
  return smart::util::connect_unix(path);  // final attempt: let it throw
}

std::vector<std::string> load_requests(const std::string& file) {
  std::vector<std::string> lines;
  std::istream* in = &std::cin;
  std::ifstream f;
  if (file != "-") {
    f.open(file);
    if (!f) throw std::runtime_error("cannot open " + file);
    in = &f;
  }
  std::string line;
  while (std::getline(*in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Curated malformed lines: every one must earn an `err` reply (second
/// column = the request id when it was parseable, `-` otherwise).
std::vector<std::string> malformed_corpus() {
  std::vector<std::string> corpus = {
      "bogus f01",                                   // unknown verb
      "advise",                                      // missing id
      "advise bad*id shape=star",                    // invalid id charset
      "advise f04 shape=star extra",                 // token without '='
      "advise f05 shape=",                           // empty value
      "advise f06 shape=hex",                        // unknown shape
      "advise f07 dims=4",                           // dims out of range
      "advise f08 dims=2x",                          // trailing junk
      "advise f09 order=9",                          // order out of range
      "advise f10 order=-1",                         // negative order
      "advise f11 order=2abc",                       // non-integer order
      "advise f12 gpu=bad!name",                     // gpu charset
      "advise f13 gpu=" + std::string(40, 'G'),      // gpu too long
      "advise f14 foo=bar",                          // unknown option
      "advise f15 shape=star shape=box",             // duplicate option
      "advise f16 offsets=0,0 shape=star",           // exclusive options
      "advise f17 offsets=1",                        // tuple arity 1
      "advise f18 offsets=9,9",                      // coordinate out of range
      "advise f19 offsets=1,2,3,4",                  // tuple arity 4
      "advise f20 offsets=0,0;;1,1",                 // empty tuple
      "advise f21 offsets=0,0;1,1,1",                // mixed arities
      "ping f22 extra",                              // ping takes no args
      "stats f23 k=v",                               // stats takes no args
      "predict",                                     // missing id again
      "advise " + std::string(70, 'i'),              // id too long
      std::string("advise f26 shape=star\x01"),      // non-printable byte
      "advise f27 " + std::string(70 * 1024, 'x'),   // oversize line
  };
  return corpus;
}

/// 1-3 seeded point mutations of a valid request line. Mutants whose first
/// token becomes `shutdown` (would kill the daemon the rest of the corpus
/// still needs) or `reload` (would bump the model epoch mid-fuzz) are
/// re-rolled.
std::string mutate(const std::string& base, XorShift& rng) {
  for (;;) {
    std::string line = base;
    const int edits = 1 + static_cast<int>(rng.below(3));
    for (int e = 0; e < edits && !line.empty(); ++e) {
      const std::size_t pos = rng.below(line.size());
      const char c = static_cast<char>(0x21 + rng.below(0x7e - 0x21));
      switch (rng.below(3)) {
        case 0: line[pos] = c; break;
        case 1: line.insert(pos, 1, c); break;
        default: line.erase(pos, 1); break;
      }
    }
    const std::string head = line.substr(0, line.find(' '));
    if (line.empty() || head == "shutdown" || head == "reload") continue;
    return line;
  }
}

struct Reply {
  std::string line;
  bool is_err = false;
  std::string id;
};

Reply parse_reply(const std::string& line) {
  Reply reply;
  reply.line = line;
  const std::size_t sp1 = line.find(' ');
  const std::string status = line.substr(0, sp1);
  reply.is_err = status == "err";
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    reply.id = line.substr(sp1 + 1, sp2 == std::string::npos
                                        ? std::string::npos
                                        : sp2 - sp1 - 1);
  }
  return reply;
}

/// One client connection: pipelines `lines` from a sender thread (with
/// optional per-send jitter) and collects exactly one reply per line.
struct ConnResult {
  std::vector<Reply> replies;
  std::string error;  // empty = success
};

void run_connection(const std::string& socket_path,
                    const std::vector<std::string>& lines, long jitter_us,
                    std::uint64_t jitter_seed, ConnResult& result) {
  try {
    const int fd = connect_with_retry(socket_path, 100);
    smart::util::LineChannel channel(fd);
    std::atomic<bool> send_failed{false};
    std::thread sender([&] {
      try {
        smart::util::LineChannel writer(fd);
        if (jitter_us > 0) {
          XorShift rng(jitter_seed);
          for (const auto& line : lines) {
            ::usleep(static_cast<useconds_t>(
                rng.below(static_cast<std::size_t>(jitter_us) + 1)));
            writer.write_all(line + '\n');
          }
        } else {
          std::string blob;
          for (const auto& line : lines) {
            blob += line;
            blob += '\n';
          }
          writer.write_all(blob);
        }
      } catch (const std::exception&) {
        send_failed.store(true);
      }
    });
    result.replies.reserve(lines.size());
    std::string line;
    while (result.replies.size() < lines.size()) {
      const auto r = channel.read_line(line);
      if (r != smart::util::LineChannel::ReadResult::kLine) {
        result.error = "connection closed after " +
                       std::to_string(result.replies.size()) + "/" +
                       std::to_string(lines.size()) + " replies";
        break;
      }
      if (line.empty()) continue;
      const Reply reply = parse_reply(line);
      if (!reply.is_err && reply.line.rfind("ok ", 0) != 0) {
        result.error = "malformed reply line: " + line;
        break;
      }
      result.replies.push_back(reply);
    }
    sender.join();
    ::close(fd);
    if (result.error.empty() && send_failed.load()) {
      result.error = "request send failed";
    }
  } catch (const std::exception& e) {
    result.error = e.what();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, requests_file, print_mode = "sorted";
  long fuzz = 0, jitter_us = 0, abort_after = 0, connections = 1;
  std::uint64_t seed = 1;
  bool shuffle = false, shutdown_after = false, abort_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "serve_harness: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") socket_path = value();
    else if (arg == "--requests") requests_file = value();
    else if (arg == "--print") print_mode = value();
    else if (arg == "--shuffle") {
      shuffle = true;
      seed = std::strtoull(value().c_str(), nullptr, 10);
    }
    else if (arg == "--seed") seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--fuzz") fuzz = std::strtol(value().c_str(), nullptr, 10);
    else if (arg == "--connections") {
      connections = std::strtol(value().c_str(), nullptr, 10);
    }
    else if (arg == "--jitter-us") {
      jitter_us = std::strtol(value().c_str(), nullptr, 10);
    }
    else if (arg == "--abort-after") {
      abort_mode = true;
      abort_after = std::strtol(value().c_str(), nullptr, 10);
    }
    else if (arg == "--shutdown-after") shutdown_after = true;
    else if (arg == "--abort") abort_mode = true;
    else {
      std::cerr << "serve_harness: unknown option " << arg << '\n';
      return 2;
    }
  }
  if (socket_path.empty()) return fail("--socket PATH is required");
  if (connections < 1 || connections > 64) {
    return fail("--connections must be in [1, 64]");
  }
  if (abort_mode && connections != 1) {
    return fail("--abort/--abort-after require --connections 1");
  }
  if (abort_after < 0) return fail("--abort-after must be >= 0");
  const bool fuzz_mode = fuzz > 0 || requests_file.empty();

  // Watchdog: a wedged daemon (or a protocol desync that makes us wait for
  // a reply that never comes) fails loudly instead of hanging the gate.
  ::alarm(180);

  try {
    std::vector<std::string> lines;
    std::size_t curated = 0;
    if (fuzz_mode) {
      lines = malformed_corpus();
      curated = lines.size();
      XorShift rng(seed);
      const std::string base = "advise m000 shape=star order=2 gpu=V100";
      for (long i = 0; i < fuzz; ++i) lines.push_back(mutate(base, rng));
    } else {
      lines = load_requests(requests_file);
      if (shuffle) {
        XorShift rng(seed);
        for (std::size_t i = lines.size(); i > 1; --i) {
          std::swap(lines[i - 1], lines[rng.below(i)]);
        }
      }
    }
    if (lines.empty()) return fail("no requests to send");

    if (abort_mode) {
      // Mid-batch disconnect: send the first K requests (all by default),
      // then RST the socket without reading a single reply. The daemon
      // must shrug this client off and keep serving everyone else.
      if (abort_after > 0 && static_cast<std::size_t>(abort_after) < lines.size()) {
        lines.resize(static_cast<std::size_t>(abort_after));
      }
      const int fd = connect_with_retry(socket_path, 100);
      std::string blob;
      for (const auto& line : lines) {
        blob += line;
        blob += '\n';
      }
      smart::util::LineChannel writer(fd);
      writer.write_all(blob);
      struct linger hard {};
      hard.l_onoff = 1;
      hard.l_linger = 0;
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
      ::close(fd);
      std::cout << "aborted after " << lines.size() << " requests\n";
      return 0;
    }

    // Round-robin the request list over C concurrent connections; each
    // runs its own sender + reader. C=1 degenerates to the classic
    // single-socket pipelined client.
    std::vector<std::vector<std::string>> split(
        static_cast<std::size_t>(connections));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      split[i % static_cast<std::size_t>(connections)].push_back(lines[i]);
    }
    std::vector<ConnResult> results(static_cast<std::size_t>(connections));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(connections));
    for (std::size_t c = 0; c < static_cast<std::size_t>(connections); ++c) {
      workers.emplace_back([&, c] {
        run_connection(socket_path, split[c], jitter_us,
                       seed * 1000003ull + c + 1, results[c]);
      });
    }
    for (auto& worker : workers) worker.join();
    std::vector<Reply> replies;
    replies.reserve(lines.size());
    for (const auto& result : results) {
      if (!result.error.empty()) return fail(result.error);
      replies.insert(replies.end(), result.replies.begin(),
                     result.replies.end());
    }

    if (shutdown_after) {
      const int fd = connect_with_retry(socket_path, 100);
      smart::util::LineChannel channel(fd);
      smart::util::LineChannel writer(fd);
      writer.write_all("shutdown h_end\n");
      std::string line;
      const auto r = channel.read_line(line);
      ::close(fd);
      if (r != smart::util::LineChannel::ReadResult::kLine ||
          line != "ok h_end bye") {
        return fail("bad shutdown reply: " + line);
      }
    }

    if (fuzz_mode) {
      std::size_t err_count = 0;
      for (std::size_t i = 0; i < replies.size(); ++i) {
        if (replies[i].is_err) ++err_count;
      }
      // Replies may arrive out of submission order (batching), so curated
      // lines are checked by id: every parseable curated id must have an
      // err reply; unparseable ones reply with id '-'.
      std::map<std::string, const Reply*> by_id;
      for (const auto& reply : replies) by_id.emplace(reply.id, &reply);
      for (std::size_t i = 0; i < curated; ++i) {
        const auto parsed = smart::core::serve::parse_request(lines[i]);
        const std::string want_id = parsed.id;
        if (want_id == "-") continue;  // id unparseable: reply is `err -`
        const auto it = by_id.find(want_id);
        if (it == by_id.end() || !it->second->is_err) {
          return fail("curated malformed line " + std::to_string(i) +
                      " (id " + want_id + ") did not earn an err reply");
        }
      }
      if (err_count < curated) {
        return fail("expected at least " + std::to_string(curated) +
                    " err replies, got " + std::to_string(err_count));
      }
      std::cout << "fuzz ok: sent=" << lines.size()
                << " replies=" << replies.size() << " err=" << err_count
                << " ok=" << (replies.size() - err_count)
                << " curated=" << curated << '\n';
      return 0;
    }

    if (print_mode == "raw") {
      for (const auto& reply : replies) std::cout << reply.line << '\n';
    } else if (print_mode == "sorted") {
      std::vector<std::string> sorted;
      sorted.reserve(replies.size());
      for (const auto& reply : replies) sorted.push_back(reply.line);
      std::sort(sorted.begin(), sorted.end());
      for (const auto& s : sorted) std::cout << s << '\n';
    } else if (print_mode == "text") {
      // Unescaped ok-payloads in id order: diffs directly against the
      // concatenation of one-shot `smartctl advise` outputs.
      std::vector<const Reply*> sorted;
      sorted.reserve(replies.size());
      for (const auto& reply : replies) sorted.push_back(&reply);
      std::sort(sorted.begin(), sorted.end(),
                [](const Reply* a, const Reply* b) { return a->id < b->id; });
      for (const Reply* reply : sorted) {
        if (reply->is_err) {
          std::cout << reply->line << '\n';
        } else {
          const std::size_t payload = reply->line.find(' ', 3);
          std::cout << smart::core::serve::unescape_text(
              payload == std::string::npos ? ""
                                           : reply->line.substr(payload + 1));
        }
      }
    } else {
      return fail("unknown --print mode '" + print_mode + "'");
    }
    return 0;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
