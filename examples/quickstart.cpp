// Quickstart: the whole StencilMART pipeline on one stencil.
//
//   1. Generate a random stencil (Algorithm 1) and show its two
//      representations: the binary tensor and the Table II feature set.
//   2. Enumerate the valid optimization combinations (Table I) and tune
//      each on a simulated V100 with random parameter search.
//   3. Report the best OC, its parameter setting, and the gap to the worst.
//   4. Verify the functional semantics on the CPU: a temporally blocked
//      execution must match the naive executor bitwise.
//
// Build & run:  ./build/examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/stencilmart.hpp"
#include "stencil/features.hpp"
#include "stencil/tensor_repr.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace smart;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // --- 1. A random 2-D stencil and its representations ------------------
  stencil::GeneratorConfig gen_config;
  gen_config.dims = 2;
  gen_config.order = 3;
  const stencil::RandomStencilGenerator generator(gen_config);
  util::Rng rng(seed);
  const stencil::StencilPattern pattern = generator.generate(rng);

  std::cout << "generated stencil: " << pattern.name() << " ("
            << pattern.size() << " points, order " << pattern.order() << ")\n\n";

  const stencil::PatternTensor tensor(pattern, gen_config.order);
  std::cout << "binary tensor (" << tensor.extent() << "x" << tensor.extent()
            << "):\n";
  for (int y = gen_config.order; y >= -gen_config.order; --y) {
    std::cout << "  ";
    for (int x = -gen_config.order; x <= gen_config.order; ++x) {
      std::cout << (tensor.at(x, y) ? '#' : '.');
    }
    std::cout << '\n';
  }

  const auto features = stencil::extract_features(pattern, gen_config.order);
  std::cout << "\nTable II features: order=" << features.order
            << " nnz=" << features.nnz << " sparsity=" << features.sparsity
            << "\n  per-order counts:";
  for (int c : features.nnz_per_order) std::cout << ' ' << c;
  std::cout << "\n\n";

  // --- 2/3. Tune every OC on a simulated V100 ---------------------------
  const gpusim::Simulator sim;
  const gpusim::RandomSearchTuner tuner(sim, 24);
  const auto& v100 = gpusim::gpu_by_name("V100");
  const auto problem = gpusim::ProblemSize::paper_default(2);
  const auto results = tuner.tune_all(pattern, problem, v100, rng);

  util::Table table({"OC", "best time(ms)", "best setting", "crashed"});
  double worst = 0.0;
  for (const auto& r : results) {
    table.row().add(r.oc.name());
    if (r.ok()) {
      table.add(r.best_time_ms, 3).add(r.best_setting->to_string());
      worst = std::max(worst, r.best_time_ms);
    } else {
      table.add("-").add("-");
    }
    table.add(static_cast<long long>(r.samples_crashed));
  }
  table.print(std::cout);

  const int best = gpusim::RandomSearchTuner::best_oc_index(results);
  const auto& winner = results[static_cast<std::size_t>(best)];
  std::cout << "\nbest OC on V100: " << winner.oc.name() << " at "
            << winner.best_time_ms << " ms  ("
            << worst / winner.best_time_ms << "x over the worst OC)\n";

  // --- 4. Functional check on the CPU -----------------------------------
  const auto weights = stencil::uniform_weights(pattern);
  stencil::Grid grid(48, 48, 1, pattern.order());
  util::Rng fill_rng(seed + 1);
  grid.fill([&fill_rng](int, int, int) { return fill_rng.uniform(-1.0, 1.0); });
  const auto naive = stencil::run_naive({pattern, weights}, grid, 4);
  const auto blocked =
      stencil::run_temporal_blocked({pattern, weights}, grid, 4, 16, 16, 1, 2);
  std::cout << "temporal-blocking correctness: max |diff| = "
            << stencil::Grid::max_abs_diff(naive, blocked)
            << " (must be exactly 0)\n";
  return 0;
}
