// GPU rental advisor: the paper's case study (Sec. V-D, "To Rent or Not To
// Rent a Cloud GPU"). A user owns a local GPU and wants to know, for their
// stencil workload, which cloud GPU gives the best performance and which
// gives the best performance per dollar — without renting anything first.
//
// The cross-architecture regression model is trained on profiled instances
// (stencil ⊕ OC parameters ⊕ GPU hardware features -> time) and then asked
// to extrapolate each workload to every rentable GPU.
//
// Build & run:  ./build/examples/gpu_rental_advisor [dims]
#include <cstdlib>
#include <iostream>

#include "core/stencilmart.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace smart;
  const int dims = argc > 1 ? std::atoi(argv[1]) : 3;

  std::cout << "building the training corpus (simulated measurements)...\n";
  core::ProfileConfig cfg;
  cfg.dims = dims;
  cfg.num_stencils = 60;
  cfg.samples_per_oc = 4;
  cfg.seed = 314;
  const auto dataset = core::build_profile_dataset(cfg);

  core::RegressionConfig rc;
  rc.instance_cap = 6000;
  core::RegressionTask task(dataset, rc);
  std::cout << "training the MLP time predictor on "
            << task.instances().size() << " instances...\n\n";
  task.fit_full(core::RegressorKind::kMlp);

  // Pick a handful of user workloads: the first few profiled instances of
  // distinct stencils, treated as "the kernel the user wants to run".
  util::Table table({"workload", "OC", "P100 pred(ms)", "V100 pred(ms)",
                     "A100 pred(ms)", "best perf", "best $-eff",
                     "truth perf", "truth $-eff"});
  std::size_t shown = 0;
  std::size_t last_stencil = static_cast<std::size_t>(-1);
  const auto& gpus = dataset.gpus;
  for (std::size_t i = 0; i < task.instances().size() && shown < 10; ++i) {
    const auto& ins = task.instances()[i];
    if (ins.stencil == last_stencil || ins.gpu != 0) continue;
    last_stencil = ins.stencil;
    ++shown;

    double best_perf = 1e300;
    double best_cost = 1e300;
    std::string perf_pick;
    std::string cost_pick;
    std::vector<double> preds;
    for (std::size_t g = 0; g < gpus.size(); ++g) {
      if (gpus[g].rental_usd_hr <= 0.0) continue;  // 2080Ti is not rentable
      const double t = task.predict(i, g);
      preds.push_back(t);
      if (t < best_perf) {
        best_perf = t;
        perf_pick = gpus[g].name;
      }
      const double dollars = t * gpus[g].rental_usd_hr;
      if (dollars < best_cost) {
        best_cost = dollars;
        cost_pick = gpus[g].name;
      }
    }
    // Ground truth from the simulator's measurements.
    double truth_perf = 1e300;
    double truth_cost = 1e300;
    std::string truth_perf_pick;
    std::string truth_cost_pick;
    for (std::size_t g = 0; g < gpus.size(); ++g) {
      if (gpus[g].rental_usd_hr <= 0.0) continue;
      const double t = task.measured(i, g);
      if (std::isnan(t)) continue;
      if (t < truth_perf) {
        truth_perf = t;
        truth_perf_pick = gpus[g].name;
      }
      if (t * gpus[g].rental_usd_hr < truth_cost) {
        truth_cost = t * gpus[g].rental_usd_hr;
        truth_cost_pick = gpus[g].name;
      }
    }

    const auto& oc = gpusim::valid_combinations()[ins.oc];
    table.row()
        .add(dataset.stencils[ins.stencil].name())
        .add(oc.name())
        .add(preds[0], 3)
        .add(preds[1], 3)
        .add(preds[2], 3)
        .add(perf_pick)
        .add(cost_pick)
        .add(truth_perf_pick)
        .add(truth_cost_pick);
  }
  table.print(std::cout);
  std::cout << "\nrental prices (Table III): P100 $1.46/hr, V100 $2.48/hr, "
               "A100 $2.93/hr\n";
  return 0;
}
