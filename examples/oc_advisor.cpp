// OC advisor: train an OC-selection model on a profiled corpus of random
// stencils, then advise the best optimization combination for *unseen*
// stencils (the representative gallery), comparing against exhaustive
// tuning and the Artemis / AN5D baselines.
//
// This is the paper's primary use case (Sec. IV-D): a user hands
// StencilMART a stencil pattern; StencilMART predicts which merged OC group
// to tune, saving the cost of searching every combination.
//
// Build & run:  ./build/examples/oc_advisor [num_training_stencils]
#include <cstdlib>
#include <iostream>

#include "core/stencilmart.hpp"
#include "ml/gbdt.hpp"
#include "util/stats.hpp"
#include "stencil/features.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace smart;
  const int num_stencils = argc > 1 ? std::atoi(argv[1]) : 120;

  std::cout << "profiling " << num_stencils
            << " random 2-D stencils on the simulated V100...\n";
  core::ProfileConfig cfg;
  cfg.dims = 2;
  cfg.num_stencils = num_stencils;
  cfg.samples_per_oc = 4;
  cfg.seed = 99;
  const auto dataset = core::build_profile_dataset(cfg);

  core::OcMerger merger;
  merger.fit(dataset);
  std::cout << "merged " << core::ProfileDataset::num_ocs() << " OCs into "
            << merger.num_groups() << " prediction groups:";
  for (int g = 0; g < merger.num_groups(); ++g) {
    std::cout << ' ' << merger.group_name(g);
  }
  std::cout << "\n\n";

  // Train GBDT on the full corpus (features -> best group on V100).
  constexpr std::size_t kGpu = 1;  // V100
  const auto labels = core::true_groups(dataset, merger, kGpu);
  const auto x = core::stencil_feature_matrix(dataset);
  std::vector<std::size_t> rows;
  std::vector<int> y;
  for (std::size_t s = 0; s < labels.size(); ++s) {
    if (labels[s] >= 0) {
      rows.push_back(s);
      y.push_back(labels[s]);
    }
  }
  ml::GbdtClassifier classifier;
  classifier.fit(x.gather_rows(rows), y, merger.num_groups());

  // Advise the gallery stencils (never seen during training).
  const gpusim::Simulator sim;
  const gpusim::RandomSearchTuner tuner(sim, 24);
  const auto& v100 = gpusim::gpu_by_name("V100");
  util::Rng rng(5);

  util::Table table({"stencil", "advised group", "advised OC", "advised(ms)",
                     "exhaustive(ms)", "Artemis-policy(ms)", "AN5D-policy(ms)",
                     "vs exhaustive"});
  std::vector<double> ratios;
  for (const auto& pattern : stencil::representative_gallery()) {
    if (pattern.dims() != 2) continue;
    const auto problem = gpusim::ProblemSize::paper_default(2);
    const auto feats = stencil::extract_features(pattern, cfg.max_order)
                           .to_vector();
    const std::vector<float> fv(feats.begin(), feats.end());
    const int group = classifier.predict_row(fv);
    const int rep = merger.representative(group);
    const auto& rep_oc = gpusim::valid_combinations()[static_cast<std::size_t>(rep)];

    // Tune only the advised OC vs tuning everything.
    const auto advised = tuner.tune(pattern, problem, rep_oc, v100, rng);
    const auto all = tuner.tune_all(pattern, problem, v100, rng);
    const int best = gpusim::RandomSearchTuner::best_oc_index(all);
    const double exhaustive = all[static_cast<std::size_t>(best)].best_time_ms;

    // Baseline policies, reconstructed from the same measurement budget.
    gpusim::OptCombination st_tb;
    st_tb.st = true;
    st_tb.tb = true;
    const auto an5d = tuner.tune(pattern, problem, st_tb, v100, rng);
    gpusim::OptCombination st;
    st.st = true;
    const auto artemis = tuner.tune(pattern, problem, st, v100, rng);

    const double advised_ms = advised.ok() ? advised.best_time_ms : -1.0;
    table.row()
        .add(pattern.name())
        .add(merger.group_name(group))
        .add(rep_oc.name())
        .add(advised_ms, 3)
        .add(exhaustive, 3)
        .add(artemis.ok() ? artemis.best_time_ms : -1.0, 3)
        .add(an5d.ok() ? an5d.best_time_ms : -1.0, 3)
        .add(advised_ms > 0 ? advised_ms / exhaustive : -1.0, 2);
    if (advised_ms > 0) ratios.push_back(advised_ms / exhaustive);
  }
  table.print(std::cout);
  std::cout << "\nadvised-vs-exhaustive geomean ratio: "
            << util::geomean(ratios)
            << "  (1.00 = as good as searching all "
            << core::ProfileDataset::num_ocs() << " OCs, with 1/"
            << core::ProfileDataset::num_ocs() << " of the tuning cost)\n";
  return 0;
}
