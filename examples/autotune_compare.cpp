// Autotuner shoot-out on one stencil: exhaustive per-OC random search vs
// the Artemis policy (streaming family first, then merging) vs the AN5D
// policy (streaming + temporal blocking) across all four GPUs. Also dumps
// the cost-model diagnostics (registers, shared memory, occupancy, traffic)
// for the winning variant — the "explain" view of the simulator.
//
// Build & run:  ./build/examples/autotune_compare [shape] [dims] [order]
//   shape in {star, box, cross}
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/stencilmart.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace smart;
  const std::string shape = argc > 1 ? argv[1] : "box";
  const int dims = argc > 2 ? std::atoi(argv[2]) : 3;
  const int order = argc > 3 ? std::atoi(argv[3]) : 3;

  const stencil::StencilPattern pattern =
      shape == "star"  ? stencil::make_star(dims, order)
      : shape == "cross" ? stencil::make_cross(dims, order)
                         : stencil::make_box(dims, order);
  std::cout << "stencil: " << pattern.name() << " (" << pattern.size()
            << " points)\n\n";

  const gpusim::Simulator sim;
  const gpusim::RandomSearchTuner tuner(sim, 32);
  const auto problem = gpusim::ProblemSize::paper_default(dims);
  util::Rng rng(2718);

  util::Table table({"GPU", "exhaustive(ms)", "best OC", "Artemis(ms)",
                     "AN5D(ms)", "Artemis gap", "AN5D gap"});
  std::vector<gpusim::TunedResult> v100_results;
  for (const auto& gpu : gpusim::evaluation_gpus()) {
    const auto all = tuner.tune_all(pattern, problem, gpu, rng);
    if (gpu.name == "V100") v100_results = all;
    const int best = gpusim::RandomSearchTuner::best_oc_index(all);
    const double exhaustive = all[static_cast<std::size_t>(best)].best_time_ms;

    // Artemis: streaming family first, refine winner with merging.
    double artemis = std::numeric_limits<double>::infinity();
    gpusim::OptCombination artemis_winner;
    for (bool rt : {false, true}) {
      for (bool pr : {false, true}) {
        gpusim::OptCombination oc;
        oc.st = true;
        oc.rt = rt;
        oc.pr = pr;
        const auto r = all[static_cast<std::size_t>(gpusim::oc_index(oc))];
        if (r.ok() && r.best_time_ms < artemis) {
          artemis = r.best_time_ms;
          artemis_winner = oc;
        }
      }
    }
    for (int merge = 0; merge < 2; ++merge) {
      gpusim::OptCombination oc = artemis_winner;
      oc.bm = merge == 0;
      oc.cm = merge == 1;
      const auto r = all[static_cast<std::size_t>(gpusim::oc_index(oc))];
      if (r.ok()) artemis = std::min(artemis, r.best_time_ms);
    }

    // AN5D: ST+TB, falling back to plain ST.
    gpusim::OptCombination st_tb;
    st_tb.st = true;
    st_tb.tb = true;
    auto an5d_result = all[static_cast<std::size_t>(gpusim::oc_index(st_tb))];
    if (!an5d_result.ok()) {
      gpusim::OptCombination st;
      st.st = true;
      an5d_result = all[static_cast<std::size_t>(gpusim::oc_index(st))];
    }
    const double an5d = an5d_result.ok()
                            ? an5d_result.best_time_ms
                            : std::numeric_limits<double>::infinity();

    table.row()
        .add(gpu.name)
        .add(exhaustive, 3)
        .add(all[static_cast<std::size_t>(best)].oc.name())
        .add(artemis, 3)
        .add(an5d, 3)
        .add(artemis / exhaustive, 2)
        .add(an5d / exhaustive, 2);
  }
  table.print(std::cout);

  // Explain the winning variant on V100 (reusing the table's results).
  const auto& v100 = gpusim::gpu_by_name("V100");
  const int best = gpusim::RandomSearchTuner::best_oc_index(v100_results);
  const auto& winner = v100_results[static_cast<std::size_t>(best)];
  const auto profile = sim.evaluate(pattern, problem, winner.oc,
                                    *winner.best_setting, v100);
  std::cout << "\nV100 winning variant: " << winner.oc.name() << "  ["
            << winner.best_setting->to_string() << "]\n"
            << "  regs/thread     " << profile.regs_per_thread << "\n"
            << "  smem/block      " << profile.smem_per_block_bytes / 1024.0
            << " KB\n"
            << "  occupancy       " << profile.occupancy << "\n"
            << "  blocks          " << profile.total_blocks << "\n"
            << "  DRAM traffic    " << profile.dram_traffic_bytes / 1e9
            << " GB\n"
            << "  t_mem/t_comp/t_sync  " << profile.t_mem_ms << " / "
            << profile.t_comp_ms << " / " << profile.t_sync_ms << " ms\n";
  return 0;
}
