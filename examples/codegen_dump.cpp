// Code generation demo: tune a stencil on a simulated GPU, then emit the
// CUDA source of the winning variant (kernel + host harness) — the
// artifact StencilMART's pipeline would hand to nvcc on a real system.
//
// Build & run:  ./build/examples/codegen_dump [shape] [dims] [order] [outdir]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "codegen/cuda_codegen.hpp"
#include "core/stencilmart.hpp"

int main(int argc, char** argv) {
  using namespace smart;
  const std::string shape = argc > 1 ? argv[1] : "star";
  const int dims = argc > 2 ? std::atoi(argv[2]) : 3;
  const int order = argc > 3 ? std::atoi(argv[3]) : 2;
  const std::string outdir = argc > 4 ? argv[4] : "";

  const stencil::StencilPattern pattern =
      shape == "box"     ? stencil::make_box(dims, order)
      : shape == "cross" ? stencil::make_cross(dims, order)
                         : stencil::make_star(dims, order);
  const auto problem = gpusim::ProblemSize::paper_default(dims);
  const auto& gpu = gpusim::gpu_by_name("V100");

  // Find the best variant with the exhaustive-per-OC random search.
  const gpusim::Simulator sim;
  const gpusim::RandomSearchTuner tuner(sim, 32);
  util::Rng rng(11);
  const auto results = tuner.tune_all(pattern, problem, gpu, rng);
  const int best = gpusim::RandomSearchTuner::best_oc_index(results);
  const auto& winner = results[static_cast<std::size_t>(best)];
  std::cout << "winning variant for " << pattern.name() << " on " << gpu.name
            << ": " << winner.oc.name() << " [" << winner.best_setting->to_string()
            << "] at " << winner.best_time_ms << " ms (simulated)\n\n";

  const codegen::CudaKernelGenerator generator;
  const auto kernel =
      generator.generate(pattern, winner.oc, *winner.best_setting, problem);
  const auto harness = generator.generate_harness(
      pattern, winner.oc, *winner.best_setting, problem, kernel);

  if (outdir.empty()) {
    std::cout << "---- " << kernel.name << ".cu ----\n" << kernel.source;
    std::cout << "\n---- harness ----\n" << harness;
  } else {
    const std::string kernel_path = outdir + "/" + kernel.name + ".cu";
    const std::string harness_path = outdir + "/" + kernel.name + "_main.cu";
    std::ofstream(kernel_path) << kernel.source;
    std::ofstream(harness_path) << harness;
    std::cout << "wrote " << kernel_path << " and " << harness_path << "\n";
  }
  std::cout << "\nshared memory: " << kernel.smem_doubles * 8 / 1024.0
            << " KB, block barrier: " << (kernel.has_barrier ? "yes" : "no")
            << "\n";
  return 0;
}
