// Figure 3: value distribution of the top-100 Pearson correlation
// coefficients achieved by pairwise OCs on each GPU, and the fraction of
// pairs common to every GPU's top-100 list. Paper: distributions are close
// across GPUs; the intersection accounts for ~28% of the total.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Figure 3 — top-100 pairwise-OC PCC distribution",
                      "Sec. III-C, Fig. 3 (paper intersection: 28%)");

  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);
    core::OcMerger merger;
    merger.fit(ds);

    util::Table table({"GPU", "min", "p25", "median", "p75", "max"});
    const auto& tops = merger.top_pccs_per_gpu();
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      std::vector<double> pccs = tops[g];
      table.row()
          .add(ds.gpus[g].name)
          .add(util::percentile(pccs, 0.0), 3)
          .add(util::percentile(pccs, 25.0), 3)
          .add(util::percentile(pccs, 50.0), 3)
          .add(util::percentile(pccs, 75.0), 3)
          .add(util::percentile(pccs, 100.0), 3);
    }
    std::cout << "--- " << dims << "-D stencils ---\n";
    bench::emit(table, "fig03_pcc_" + std::to_string(dims) + "d");
    std::cout << "cross-GPU intersection of top-100 pairs: "
              << util::format_double(100.0 * merger.intersection_fraction(), 1)
              << "%  (paper: 28%)\n";
    std::cout << "merged prediction groups:";
    for (int g = 0; g < merger.num_groups(); ++g) {
      std::cout << ' ' << merger.group_name(g) << "(" << merger.members(g).size()
                << ")";
    }
    std::cout << "\n\n";
  }
  return 0;
}
