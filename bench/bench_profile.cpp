// Two-phase profiling substrate bench: times the production profiler (one
// cached KernelAnalysis per (stencil, OC, GPU) work unit + cheap
// per-setting evaluation; DESIGN.md §10) against an equivalent monolithic
// sweep that re-derives the full analysis on every measurement — the cost
// profile of the pre-two-phase implementation. Both run single-threaded
// (util::SerialSection), so the speedup measures analysis caching alone,
// not thread fan-out. The legacy sweep's times are checked bit-identical
// to the production dataset before any timing is reported.
//
// Appends one trajectory point per dimensionality to BENCH_profile.json
// (override the path with SMART_BENCH_JSON; scripts/check.sh runs this as
// a bench-smoke step).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common.hpp"

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double wall_ms(F&& f) {
  const auto start = Clock::now();
  f();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  return buf;
}

struct BenchPoint {
  int dims = 0;
  std::size_t units = 0;       // (stencil, OC, GPU) work units
  double build_ms = 0.0;       // full build_profile_dataset wall
  double analyze_ms = 0.0;     // profile.analyze phase
  double evaluate_ms = 0.0;    // profile.evaluate phase
  double measure_ms = 0.0;     // profile.measure (analyze + evaluate)
  double legacy_ms = 0.0;      // monolithic per-measurement sweep
  double sweep_speedup = 0.0;  // legacy_ms / measure_ms
  double end_to_end = 0.0;     // old build / new build, shared stages kept
};

/// Appends the points to a JSON array file (created if missing). The file
/// is a flat array of objects so successive runs build a perf trajectory.
void append_json(const std::string& path, const std::vector<BenchPoint>& points,
                 double scale) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string body;
  const auto open = existing.find('[');
  const auto close = existing.rfind(']');
  if (open != std::string::npos && close != std::string::npos && close > open) {
    body = existing.substr(0, close);
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
  } else {
    body = "[";
  }
  std::ostringstream out;
  out << body;
  const std::string stamp = timestamp_utc();
  for (const BenchPoint& p : points) {
    out << (body.size() > 1 ? ",\n" : "\n");
    out << "  {\"bench\": \"profile\", \"date\": \"" << stamp
        << "\", \"scale\": " << scale << ", \"dims\": " << p.dims
        << ", \"units\": " << p.units
        << ", \"build_ms\": " << smart::util::format_double(p.build_ms, 2)
        << ", \"analyze_ms\": " << smart::util::format_double(p.analyze_ms, 2)
        << ", \"evaluate_ms\": " << smart::util::format_double(p.evaluate_ms, 2)
        << ", \"legacy_ms\": " << smart::util::format_double(p.legacy_ms, 2)
        << ", \"sweep_speedup\": "
        << smart::util::format_double(p.sweep_speedup, 2)
        << ", \"end_to_end_speedup\": "
        << smart::util::format_double(p.end_to_end, 2) << "}";
    body += "x";  // any non-"[" content switches to the comma separator
  }
  out << "\n]\n";
  std::ofstream f(path, std::ios::trunc);
  f << out.str();
}

}  // namespace

int main() {
  using namespace smart;
  bench::print_banner(
      "two-phase profiling substrate speedup",
      "cached per-(stencil, OC, GPU) analysis vs monolithic sweep (PR 4)");

  util::Table table({"dims", "units", "build(ms)", "analyze(ms)",
                     "evaluate(ms)", "legacy(ms)", "sweep(x)", "end-to-end(x)",
                     "identical"});
  std::vector<BenchPoint> points;
  bool all_identical = true;

  // Min over repeats: every build produces the identical dataset, so the
  // fastest run is the least-interference estimate of each stage's cost.
  const int repeats = [] {
    const char* env = std::getenv("SMART_BENCH_REPEATS");
    const int r = env ? std::atoi(env) : 3;
    return r > 0 ? r : 1;
  }();

  for (const int dims : {2, 3}) {
    const auto cfg = bench::scaled_profile_config(dims);

    // Force one thread: the speedup below must come from the cached
    // analysis alone.
    const util::SerialSection serial;

    core::ProfileDataset ds;
    BenchPoint p;
    p.dims = dims;
    p.build_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeats; ++rep) {
      util::timing_reset();
      core::ProfileDataset built;
      const double build_ms =
          wall_ms([&] { built = core::build_profile_dataset(cfg); });
      if (build_ms < p.build_ms) {
        p.build_ms = build_ms;
        for (const auto& [phase, stats] : util::timing_snapshot()) {
          if (phase == "profile.analyze") p.analyze_ms = stats.wall_ms;
          if (phase == "profile.evaluate") p.evaluate_ms = stats.wall_ms;
          if (phase == "profile.measure") p.measure_ms = stats.wall_ms;
        }
      }
      ds = std::move(built);
    }

    // The pre-two-phase sweep over the exact same corpus: one monolithic
    // measure() per (stencil, OC, GPU, setting), re-deriving the analysis
    // on every call.
    const gpusim::Simulator sim(cfg.sim);
    const auto& ocs = gpusim::valid_combinations();
    const std::size_t n = ds.stencils.size();
    const std::size_t g = ds.num_gpus();
    p.units = n * ocs.size() * g;
    // Outer shape pre-allocated (the production path does the same outside
    // its timed phase); the slot vectors themselves are built inside the
    // timed region with reserve + push_back, as the monolithic sweep did.
    decltype(ds.times) legacy;
    p.legacy_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeats; ++rep) {
      decltype(ds.times) out(
          n, std::vector<std::vector<std::vector<double>>>(
                 g, std::vector<std::vector<double>>(ocs.size())));
      p.legacy_ms = std::min(p.legacy_ms, wall_ms([&] {
        for (std::size_t s = 0; s < n; ++s) {
          for (std::size_t gi = 0; gi < g; ++gi) {
            for (std::size_t o = 0; o < ocs.size(); ++o) {
              auto& slot = out[s][gi][o];
              slot.reserve(ds.settings[s][o].size());
              for (const gpusim::ParamSetting& setting : ds.settings[s][o]) {
                const auto prof =
                    sim.measure(ds.stencils[s], ds.problems[s], ocs[o],
                                setting, ds.gpus[gi]);
                slot.push_back(prof.ok
                                   ? prof.time_ms
                                   : std::numeric_limits<double>::quiet_NaN());
              }
            }
          }
        }
      }));
      legacy = std::move(out);
    }

    bool identical = true;
    for (std::size_t s = 0; identical && s < n; ++s) {
      for (std::size_t gi = 0; identical && gi < g; ++gi) {
        for (std::size_t o = 0; identical && o < ocs.size(); ++o) {
          for (std::size_t k = 0; k < legacy[s][gi][o].size(); ++k) {
            if (std::bit_cast<std::uint64_t>(legacy[s][gi][o][k]) !=
                std::bit_cast<std::uint64_t>(ds.times[s][gi][o][k])) {
              identical = false;
              break;
            }
          }
        }
      }
    }
    all_identical = all_identical && identical;

    p.sweep_speedup = p.measure_ms > 0.0 ? p.legacy_ms / p.measure_ms : 0.0;
    // End-to-end: the old profiler ran the same generation + settings
    // stages, then the monolithic sweep instead of the two-phase one.
    const double old_build = p.build_ms - p.measure_ms + p.legacy_ms;
    p.end_to_end = p.build_ms > 0.0 ? old_build / p.build_ms : 0.0;
    points.push_back(p);

    table.row()
        .add(static_cast<long long>(p.dims))
        .add(static_cast<long long>(p.units))
        .add(p.build_ms, 1)
        .add(p.analyze_ms, 1)
        .add(p.evaluate_ms, 1)
        .add(p.legacy_ms, 1)
        .add(p.sweep_speedup, 2)
        .add(p.end_to_end, 2)
        .add(identical ? "yes" : "NO");
  }

  bench::emit(table, "profile");

  double log_sum = 0.0;
  for (const BenchPoint& p : points) log_sum += std::log(p.end_to_end);
  std::cout << "   geomean end-to-end speedup: "
            << util::format_double(
                   std::exp(log_sum / static_cast<double>(points.size())), 2)
            << "x across " << points.size() << " dimensionalities\n";
  for (const BenchPoint& p : points) {
    if (p.dims == 3) {
      // The 3-D corpus is where profiling cost lives: its analysis
      // (large Moore neighbourhoods, per-axis plane counts) dominates a
      // monolithic sweep, which is exactly what the two-phase split caches.
      std::cout << "   profiling-bound 3-D corpus end-to-end: "
                << util::format_double(p.end_to_end, 2)
                << "x (acceptance gate at scale 1: >= 2x)\n";
    }
  }

  if (!all_identical) {
    std::cout << "FAIL: two-phase sweep diverges from the monolithic sweep\n";
    return 1;
  }

  const char* env_path = std::getenv("SMART_BENCH_JSON");
  const std::string json_path = env_path ? env_path : "BENCH_profile.json";
  append_json(json_path, points, util::experiment_scale());
  std::cout << "   [json] " << json_path << "\n";
  return 0;
}
