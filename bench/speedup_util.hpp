// Shared implementation for Figures 10 and 11: geometric-mean speedup of
// the OC chosen by a trained classifier (tuning only the predicted group's
// representative) over a baseline framework's policy, under the same
// random-parameter-search budget.
#pragma once

#include <functional>

#include "common.hpp"

namespace smart::bench {

using BaselinePolicy = std::function<double(const core::ProfileDataset&,
                                            std::size_t, std::size_t)>;

struct SpeedupResult {
  std::vector<double> convnet_per_gpu;  // geomean speedups per GPU
  std::vector<double> gbdt_per_gpu;
};

inline SpeedupResult speedups_over_baseline(const core::ProfileDataset& ds,
                                            const core::OcMerger& merger,
                                            const BaselinePolicy& baseline) {
  const core::ClassificationConfig config;
  SpeedupResult out;
  for (const auto kind :
       {core::ClassifierKind::kConvNet, core::ClassifierKind::kGbdt}) {
    std::vector<double>& dest = kind == core::ClassifierKind::kConvNet
                                    ? out.convnet_per_gpu
                                    : out.gbdt_per_gpu;
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      const auto result = core::run_classification(ds, merger, g, kind, config);
      std::vector<double> ratios;
      for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
        const int group = result.predicted_group[s];
        if (group < 0) continue;
        const double model_time = core::group_time(ds, merger, s, g, group);
        const double base_time = baseline(ds, s, g);
        if (!std::isfinite(model_time) || !std::isfinite(base_time)) continue;
        ratios.push_back(base_time / model_time);
      }
      dest.push_back(ratios.empty() ? 1.0 : util::geomean(ratios));
    }
  }
  return out;
}

inline void print_speedup_figure(const std::string& figure,
                                 const std::string& baseline_name,
                                 const BaselinePolicy& baseline,
                                 const std::string& paper_note) {
  print_banner(figure + " — speedup over " + baseline_name, paper_note);
  for (int dims : {2, 3}) {
    auto cfg = scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);
    core::OcMerger merger;
    merger.fit(ds);
    const auto result = speedups_over_baseline(ds, merger, baseline);

    util::Table table({"GPU", "ConvNet(x)", "GBDT(x)"});
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      table.row()
          .add(ds.gpus[g].name)
          .add(result.convnet_per_gpu[g], 2)
          .add(result.gbdt_per_gpu[g], 2);
    }
    std::cout << "--- " << dims << "-D stencils ---\n";
    emit(table, figure + "_" + std::to_string(dims) + "d");
    std::cout << "average: ConvNet "
              << util::format_double(util::mean(result.convnet_per_gpu), 2)
              << "x  GBDT "
              << util::format_double(util::mean(result.gbdt_per_gpu), 2)
              << "x\n\n";
  }
}

}  // namespace smart::bench
