// Ablation: stencil representation — Table II feature vectors vs binary
// tensors. For classification this contrasts GBDT(features) with
// ConvNet(tensor) and FcNet(tensor); for regression, MLP(features) with
// ConvMLP(tensor). Mirrors the paper's discussion in Secs. IV-C and V-C1.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Ablation — feature-set vs tensor representation",
                      "DESIGN.md ablation #2; paper Secs. IV-C, V-C1");

  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);
    core::OcMerger merger;
    merger.fit(ds);

    util::Table cls({"task", "representation", "model", "score"});
    const auto gbdt = core::run_classification(ds, merger, 1,
                                               core::ClassifierKind::kGbdt, {});
    const auto conv = core::run_classification(
        ds, merger, 1, core::ClassifierKind::kConvNet, {});
    cls.row().add("OC selection").add("features").add("GBDT").add(
        util::format_double(100.0 * gbdt.accuracy, 1) + "%");
    cls.row().add("OC selection").add("tensor").add("ConvNet").add(
        util::format_double(100.0 * conv.accuracy, 1) + "%");

    core::RegressionConfig rc;
    rc.instance_cap = static_cast<std::size_t>(util::scaled(20000, 1200));
    core::RegressionTask task(ds, rc);
    core::RegressionConfig rc_conv = rc;
    rc_conv.instance_cap = std::min<std::size_t>(rc.instance_cap, 2000);
    rc_conv.epochs = 10;
    core::RegressionTask conv_task(ds, rc_conv);
    const auto mlp = task.cross_validate(core::RegressorKind::kMlp);
    const auto convmlp = conv_task.cross_validate(core::RegressorKind::kConvMlp);
    cls.row().add("time prediction").add("features").add("MLP").add(
        util::format_double(mlp.mape_overall, 1) + "% MAPE");
    cls.row().add("time prediction").add("tensor").add("ConvMLP").add(
        util::format_double(convmlp.mape_overall, 1) + "% MAPE");

    std::cout << "--- " << dims << "-D stencils (V100) ---\n";
    bench::emit(cls, "ablation_repr_" + std::to_string(dims) + "d");
  }
  return 0;
}
