// Figure 14: ground truth on stencil instances considering pure
// performance — the share of instances each GPU wins, with the
// cross-architecture predictor's accuracy per GPU. Paper 2-D shares:
// 2080Ti 20.2%, P100 17.8%, V100 40.2%, A100 21.8%; 3-D: 20.1%, 16.6%,
// 26.4%, 36.9%; average prediction accuracy 96.7% / 97.3%.
#include "advisor_util.hpp"

int main() {
  smart::bench::print_advisor_figure(
      "fig14", /*cost_weighted=*/false,
      "Sec. V-D1, Fig. 14 (paper: V100 wins most 2-D instances)");
  return 0;
}
