// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// CPU reference executors, the analytic cost model, random-search tuning,
// stencil representation, and model inference.
#include <benchmark/benchmark.h>

#include "core/stencilmart.hpp"
#include "ml/gbdt.hpp"
#include "ml/models.hpp"
#include "stencil/features.hpp"
#include "stencil/tensor_repr.hpp"

namespace {

using namespace smart;

void BM_ReferenceNaive2D(benchmark::State& state) {
  const auto p = stencil::make_star(2, static_cast<int>(state.range(0)));
  const auto w = stencil::uniform_weights(p);
  stencil::Grid g(96, 96, 1, p.order());
  util::Rng rng(1);
  g.fill([&rng](int, int, int) { return rng.uniform(-1.0, 1.0); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(stencil::run_naive({p, w}, g, 1));
  }
  state.SetItemsProcessed(state.iterations() * g.interior_size());
}
BENCHMARK(BM_ReferenceNaive2D)->Arg(1)->Arg(4);

void BM_ReferenceTemporalBlocked2D(benchmark::State& state) {
  const auto p = stencil::make_star(2, 1);
  const auto w = stencil::uniform_weights(p);
  stencil::Grid g(96, 96, 1, 1);
  util::Rng rng(1);
  g.fill([&rng](int, int, int) { return rng.uniform(-1.0, 1.0); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stencil::run_temporal_blocked({p, w}, g, 4, 32, 32, 1,
                                      static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ReferenceTemporalBlocked2D)->Arg(1)->Arg(2)->Arg(4);

void BM_CostModelEvaluate(benchmark::State& state) {
  const gpusim::KernelCostModel model;
  const auto p = stencil::make_box(3, 3);
  const auto problem = gpusim::ProblemSize::paper_default(3);
  gpusim::OptCombination oc;
  oc.st = true;
  oc.rt = true;
  gpusim::ParamSetting s;
  s.stream_dim = 2;
  s.stream_tile = 128;
  const auto& gpu = gpusim::gpu_by_name("V100");
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(p, problem, oc, s, gpu));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_TunerTuneAll(benchmark::State& state) {
  const gpusim::Simulator sim;
  const gpusim::RandomSearchTuner tuner(sim, static_cast<int>(state.range(0)));
  const auto p = stencil::make_star(2, 2);
  const auto problem = gpusim::ProblemSize::paper_default(2);
  const auto& gpu = gpusim::gpu_by_name("A100");
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.tune_all(p, problem, gpu, rng));
  }
}
BENCHMARK(BM_TunerTuneAll)->Arg(4)->Arg(16);

void BM_RandomStencilGeneration(benchmark::State& state) {
  stencil::GeneratorConfig config;
  config.dims = static_cast<int>(state.range(0));
  config.order = 4;
  const stencil::RandomStencilGenerator gen(config);
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(rng));
  }
}
BENCHMARK(BM_RandomStencilGeneration)->Arg(2)->Arg(3);

void BM_TensorAndFeatures(benchmark::State& state) {
  const auto p = stencil::make_box(3, 4);
  for (auto _ : state) {
    const stencil::PatternTensor t(p, 4);
    benchmark::DoNotOptimize(t.to_floats());
    benchmark::DoNotOptimize(stencil::extract_features(p, 4));
  }
}
BENCHMARK(BM_TensorAndFeatures);

void BM_GbdtInference(benchmark::State& state) {
  util::Rng rng(11);
  const std::size_t n = 400;
  ml::Matrix x(n, 11);
  std::vector<float> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 11; ++c) {
      x.at(i, c) = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    y[i] = x.at(i, 0) * 3.0f;
  }
  ml::GbdtParams params;
  params.rounds = 60;
  ml::GbdtRegressor model(params);
  model.fit(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_row(x.row(0)));
  }
}
BENCHMARK(BM_GbdtInference);

void BM_MlpInference(benchmark::State& state) {
  util::Rng rng(12);
  ml::TrainConfig tc;
  tc.epochs = 1;
  ml::NnRegressor model(ml::make_mlp(30, 4, 64, rng), tc);
  ml::Matrix x(64, 30, 0.5f);
  std::vector<float> y(64, 1.0f);
  model.fit(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MlpInference);

void BM_ConvNetForward(benchmark::State& state) {
  util::Rng rng(13);
  ml::Sequential net = ml::make_convnet(2, 4, 5, rng);
  ml::Matrix x(32, 81, 0.0f);
  for (std::size_t i = 0; i < 32; ++i) x.at(i, i * 2) = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ConvNetForward);

}  // namespace

BENCHMARK_MAIN();
