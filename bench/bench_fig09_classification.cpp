// Figure 9: 5-fold cross-validated prediction accuracy of the OC-selection
// classifiers (ConvNet, FcNet, GBDT) on each GPU, for 2-D and 3-D stencils.
// Paper: ConvNet averages 84.4% (2-D) / 83.0% (3-D); GBDT slightly worse
// at 81.7% / 80.8%; FcNet performs poorly.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Figure 9 — OC-selection accuracy",
                      "Sec. V-B1, Fig. 9 (paper: ConvNet 84.4%/83.0%)");

  const core::ClassificationConfig config;
  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);
    core::OcMerger merger;
    merger.fit(ds);

    util::Table table({"GPU", "ConvNet(%)", "FcNet(%)", "GBDT(%)"});
    std::vector<double> conv_accs;
    std::vector<double> gbdt_accs;
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      const auto conv = core::run_classification(
          ds, merger, g, core::ClassifierKind::kConvNet, config);
      const auto fc = core::run_classification(
          ds, merger, g, core::ClassifierKind::kFcNet, config);
      const auto gbdt = core::run_classification(
          ds, merger, g, core::ClassifierKind::kGbdt, config);
      conv_accs.push_back(conv.accuracy);
      gbdt_accs.push_back(gbdt.accuracy);
      table.row()
          .add(ds.gpus[g].name)
          .add(100.0 * conv.accuracy, 1)
          .add(100.0 * fc.accuracy, 1)
          .add(100.0 * gbdt.accuracy, 1);
    }
    std::cout << "--- " << dims << "-D stencils (" << ds.stencils.size()
              << " stencils, " << config.folds << "-fold CV) ---\n";
    bench::emit(table, "fig09_classification_" + std::to_string(dims) + "d");
    std::cout << "average: ConvNet "
              << util::format_double(100.0 * util::mean(conv_accs), 1)
              << "%  GBDT "
              << util::format_double(100.0 * util::mean(gbdt_accs), 1)
              << "%  (paper: " << (dims == 2 ? "84.4% / 81.7%" : "83.0% / 80.8%")
              << ")\n\n";
  }
  std::cout << "note: accuracy is training-data-limited at small SMART_SCALE\n"
               "(the paper trains on 500 stencils per dimensionality); raise\n"
               "SMART_SCALE toward 1.0 to close most of the gap. The 2080 Ti\n"
               "is intrinsically harder: its near-absent FP64 pipe flattens\n"
               "the OC landscape, so best-OC labels are noisier there.\n";
  return 0;
}
