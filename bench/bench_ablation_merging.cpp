// Ablation: does PCC-based OC merging (Sec. IV-D) actually help the
// classifier? Compares GBDT accuracy when predicting 5 merged groups vs
// all 30 raw OCs vs a coarser 3-group merge.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Ablation — OC merging (5 groups vs raw 30 OCs)",
                      "DESIGN.md ablation #1; paper Sec. IV-D");

  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);

    util::Table table({"GPU", "raw 30 classes(%)", "3 groups(%)",
                       "5 groups(%)"});
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      table.row().add(ds.gpus[g].name);
      for (int target : {30, 3, 5}) {
        core::OcMerger merger;
        core::OcMerger::Options options;
        options.target_groups = target;
        merger.fit(ds, options);
        const auto result = core::run_classification(
            ds, merger, g, core::ClassifierKind::kGbdt, {});
        table.add(100.0 * result.accuracy, 1);
      }
    }
    std::cout << "--- " << dims << "-D stencils ---\n";
    bench::emit(table, "ablation_merging_" + std::to_string(dims) + "d");
  }
  std::cout << "note: raw-OC accuracy is depressed by near-tie OCs within a\n"
               "group; merging removes those (paper's motivation).\n";
  return 0;
}
