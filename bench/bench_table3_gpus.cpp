// Table III: the evaluation GPUs — Table III columns plus the calibrated
// microarchitectural model constants the simulator uses.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Table III — evaluation GPUs", "Sec. V-A, Table III");

  util::Table table({"GPU", "Generation", "Mem(GB)", "BW(GB/s)", "SMs",
                     "FP64 TFLOPS", "Rental($/hr)"});
  for (const auto& gpu : gpusim::evaluation_gpus()) {
    table.row()
        .add(gpu.name)
        .add(gpu.generation)
        .add(gpu.mem_gb, 0)
        .add(gpu.mem_bw_gbs, 0)
        .add(gpu.sms)
        .add(gpu.fp64_tflops, 2)
        .add(gpu.rental_usd_hr > 0 ? util::format_double(gpu.rental_usd_hr, 2)
                                   : std::string("-"));
  }
  bench::emit(table, "table3_gpus");

  util::Table model({"GPU", "L2(MB)", "smem/SM(KB)", "smem/blk(KB)",
                     "thr/SM", "clk(GHz)", "ALU TOPS", "fp64 sust.",
                     "peak BW frac", "BW/thread(GB/s)"});
  for (const auto& gpu : gpusim::evaluation_gpus()) {
    model.row()
        .add(gpu.name)
        .add(gpu.l2_mb, 1)
        .add(gpu.smem_per_sm_kb, 0)
        .add(gpu.smem_per_block_kb, 0)
        .add(gpu.max_threads_per_sm)
        .add(gpu.clock_ghz, 3)
        .add(gpu.alu_tops, 1)
        .add(gpu.sustained_fp64_frac, 2)
        .add(gpu.peak_bw_frac, 2)
        .add(gpu.bw_per_thread_gbs, 4);
  }
  bench::emit(model, "table3_model_constants");
  return 0;
}
