// Extension bench (paper future work, Sec. VII): boundary conditions.
// Quantifies the modelled performance impact of periodic vs Dirichlet-zero
// boundaries across the gallery, then shows that the regression model with
// the boundary flag as input predicts mixed-boundary datasets accurately.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Extension — boundary conditions",
                      "paper Sec. VII (future work): parameterized boundaries");

  // Impact of periodic wrap on the best tuned time (V100).
  const gpusim::Simulator sim;
  const gpusim::RandomSearchTuner tuner(sim, util::scaled(60, 8));
  const auto& v100 = gpusim::gpu_by_name("V100");
  util::Rng rng(15);
  util::Table impact({"stencil", "dirichlet(ms)", "periodic(ms)", "slowdown"});
  std::vector<double> slowdowns;
  for (const auto& pattern : stencil::representative_gallery()) {
    if (pattern.order() != 2) continue;  // one representative order per shape
    auto dirichlet = gpusim::ProblemSize::paper_default(pattern.dims());
    auto periodic = dirichlet;
    periodic.boundary = stencil::Boundary::kPeriodic;
    const auto rd = tuner.tune_all(pattern, dirichlet, v100, rng);
    const auto rp = tuner.tune_all(pattern, periodic, v100, rng);
    const int bd = gpusim::RandomSearchTuner::best_oc_index(rd);
    const int bp = gpusim::RandomSearchTuner::best_oc_index(rp);
    const double td = rd[static_cast<std::size_t>(bd)].best_time_ms;
    const double tp = rp[static_cast<std::size_t>(bp)].best_time_ms;
    impact.row().add(pattern.name()).add(td, 3).add(tp, 3).add(tp / td, 3);
    slowdowns.push_back(tp / td);
  }
  bench::emit(impact, "ext_boundary_impact");
  std::cout << "geomean periodic slowdown: "
            << util::format_double(util::geomean(slowdowns), 3) << "x\n\n";

  // Mixed-boundary dataset: the boundary flag is a regression input.
  util::Table table({"dims", "mixed-boundary GBR MAPE (%)"});
  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    cfg.vary_boundary = true;
    const auto ds = core::build_profile_dataset(cfg);
    core::RegressionConfig rc;
    rc.folds = 3;
    rc.instance_cap = static_cast<std::size_t>(util::scaled(40000, 1500));
    core::RegressionTask task(ds, rc);
    const auto result = task.cross_validate(core::RegressorKind::kGbr);
    table.row().add(std::to_string(dims) + "-D").add(result.mape_overall, 1);
  }
  bench::emit(table, "ext_boundary_regression");
  return 0;
}
