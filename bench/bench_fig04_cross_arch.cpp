// Figure 4: best performance of the representative stencils under each GPU
// normalized to 2080 Ti. Paper observations: performance is not
// proportional to core count; box3d3r/box3d4r peak on V100 rather than
// A100; the most powerful GPU is not always best.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Figure 4 — cross-architecture best performance",
                      "Sec. III-D, Fig. 4 (normalized to 2080 Ti)");

  const gpusim::Simulator sim;
  const gpusim::RandomSearchTuner tuner(sim, util::scaled(80, 8));
  util::Rng rng(4);

  util::Table table({"stencil", "2080Ti(ms)", "P100(x)", "V100(x)", "A100(x)",
                     "best GPU"});
  int v100_beats_a100 = 0;
  for (const auto& pattern : stencil::representative_gallery()) {
    const auto problem = gpusim::ProblemSize::paper_default(pattern.dims());
    std::vector<double> best(4, std::numeric_limits<double>::infinity());
    for (std::size_t g = 0; g < 4; ++g) {
      const auto results =
          tuner.tune_all(pattern, problem, gpusim::evaluation_gpus()[g], rng);
      const int idx = gpusim::RandomSearchTuner::best_oc_index(results);
      if (idx >= 0) best[g] = results[static_cast<std::size_t>(idx)].best_time_ms;
    }
    const double turing = best[2];
    std::size_t winner = 0;
    for (std::size_t g = 1; g < 4; ++g) {
      if (best[g] < best[winner]) winner = g;
    }
    if (best[1] < best[3]) ++v100_beats_a100;
    table.row()
        .add(pattern.name())
        .add(turing, 3)
        .add(turing / best[0], 2)
        .add(turing / best[1], 2)
        .add(turing / best[3], 2)
        .add(gpusim::evaluation_gpus()[winner].name);
  }
  bench::emit(table, "fig04_cross_arch");
  std::cout << "stencils where V100 beats A100: " << v100_beats_a100
            << "/24  (paper: includes box3d3r, box3d4r)\n";
  return 0;
}
