// Cross-check of the analytic cost model against the block-level
// discrete-event simulator (round-robin TB scheduling over SM slots, DRAM
// processor sharing, wave tails). If the analytic aggregates are sound,
// the two must agree in ranking (Kendall tau) and within a modest factor
// in magnitude across variants.
#include "common.hpp"
#include "gpusim/event_sim.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Cross-check — analytic model vs event simulation",
                      "model-validation companion (paper Sec. II-A scheduler)");

  const gpusim::KernelCostModel model;
  const gpusim::BlockLevelSimulator event_sim;
  util::Rng rng(77);

  util::Table table({"stencil", "OC", "analytic(ms)", "event(ms)", "ratio",
                     "waves", "avg resident"});
  std::vector<double> analytic_all;
  std::vector<double> event_all;
  std::vector<double> ratios;
  for (const auto& pattern : stencil::representative_gallery()) {
    if (pattern.order() > 2) continue;  // keep the event loop cheap
    const auto problem = gpusim::ProblemSize::paper_default(pattern.dims());
    const auto& gpu = gpusim::gpu_by_name("V100");
    for (const std::uint8_t bits : {0, 1, 1 | 8, 32}) {  // BASE, ST, ST_RT, TB
      const auto oc = gpusim::OptCombination::from_bits(bits);
      if (!oc.is_valid()) continue;
      const gpusim::ParamSpace space(oc, pattern.dims());
      const auto s = space.random_setting(rng);
      const auto analytic = model.evaluate(pattern, problem, oc, s, gpu);
      const auto event = event_sim.run(pattern, problem, oc, s, gpu);
      if (!analytic.ok || !event.ok) continue;
      const double ratio = event.time_ms / analytic.time_ms;
      analytic_all.push_back(analytic.time_ms);
      event_all.push_back(event.time_ms);
      ratios.push_back(ratio);
      table.row()
          .add(pattern.name())
          .add(oc.name())
          .add(analytic.time_ms, 3)
          .add(event.time_ms, 3)
          .add(ratio, 3)
          .add(event.waves)
          .add(event.avg_resident, 0);
    }
  }
  bench::emit(table, "eventsim_crosscheck");
  std::cout << "variants compared: " << ratios.size()
            << "  geomean ratio: " << util::format_double(util::geomean(ratios), 3)
            << "  Kendall tau: "
            << util::format_double(util::kendall_tau(analytic_all, event_all), 3)
            << "\n";
  return 0;
}
