// Ablation: log2 scaling of numeric tuning parameters (paper Sec. IV-E:
// "the StencilMART performs log2 operation on the numerical parameters to
// ensure the stability of network training"). Trains the same MLP on
// linear-valued vs log2-valued parameter features.
#include <cmath>

#include "common.hpp"
#include "ml/models.hpp"
#include "stencil/features.hpp"

namespace {

using namespace smart;

/// Instance features with a switchable parameter encoding.
ml::Matrix build_features(const core::ProfileDataset& ds,
                          const std::vector<core::RegressionInstance>& rows,
                          bool log2_params) {
  const auto& ocs = gpusim::valid_combinations();
  std::vector<std::vector<float>> out;
  out.reserve(rows.size());
  for (const auto& ins : rows) {
    std::vector<float> f;
    const auto sf = stencil::extract_features(ds.stencils[ins.stencil],
                                              ds.config.max_order)
                        .to_vector();
    f.insert(f.end(), sf.begin(), sf.end());
    for (int b = 0; b < gpusim::kNumOpts; ++b) {
      f.push_back(ocs[ins.oc].has(static_cast<gpusim::Opt>(b)) ? 1.0f : 0.0f);
    }
    const auto& s = ds.settings[ins.stencil][ins.oc][ins.setting];
    if (log2_params) {
      for (double v : s.to_feature_vector()) f.push_back(static_cast<float>(v));
    } else {
      f.push_back(static_cast<float>(s.block_x));
      f.push_back(static_cast<float>(s.block_y));
      f.push_back(static_cast<float>(s.merge_factor));
      f.push_back(static_cast<float>(s.merge_dim + 1));
      f.push_back(static_cast<float>(s.unroll));
      f.push_back(static_cast<float>(s.stream_tile));
      f.push_back(static_cast<float>(s.stream_dim + 1));
      f.push_back(s.use_smem ? 1.0f : 0.0f);
      f.push_back(static_cast<float>(s.tb_depth));
    }
    for (double v : ds.gpus[ins.gpu].feature_vector()) {
      f.push_back(static_cast<float>(v));
    }
    out.push_back(std::move(f));
  }
  return ml::Matrix::from_rows(out);
}

double mlp_mape(const core::ProfileDataset& ds,
                const std::vector<core::RegressionInstance>& instances,
                bool log2_params) {
  util::Rng rng(77);
  const auto folds = ml::kfold_splits(instances.size(), 3, rng);
  std::vector<double> truth;
  std::vector<double> pred;
  for (const auto& fold : folds) {
    std::vector<core::RegressionInstance> train;
    std::vector<core::RegressionInstance> test;
    for (auto i : fold.train_indices) train.push_back(instances[i]);
    for (auto i : fold.test_indices) test.push_back(instances[i]);
    ml::MaxAbsScaler scaler;
    const ml::Matrix x_train =
        scaler.fit_transform(build_features(ds, train, log2_params));
    const ml::Matrix x_test =
        scaler.transform(build_features(ds, test, log2_params));
    std::vector<float> y_train;
    for (const auto& ins : train) {
      y_train.push_back(static_cast<float>(std::log2(ins.time_ms)));
    }
    util::Rng net_rng(5);
    ml::TrainConfig tc;
    tc.epochs = 20;
    tc.batch_size = 256;
    tc.learning_rate = 5e-4;
    ml::NnRegressor model(ml::make_mlp(x_train.cols(), 4, 64, net_rng), tc);
    model.fit(x_train, y_train);
    const auto preds = model.predict(x_test);
    for (std::size_t i = 0; i < test.size(); ++i) {
      truth.push_back(test[i].time_ms);
      pred.push_back(std::exp2(preds[i]));
    }
  }
  return util::mape(truth, pred);
}

}  // namespace

int main() {
  using namespace smart;
  bench::print_banner("Ablation — log2 parameter scaling for the MLP",
                      "DESIGN.md ablation #3; paper Sec. IV-E");

  util::Table table({"dims", "linear params MAPE(%)", "log2 params MAPE(%)"});
  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);
    core::RegressionConfig rc;
    rc.instance_cap = static_cast<std::size_t>(util::scaled(20000, 1200));
    const core::RegressionTask task(ds, rc);
    table.row()
        .add(std::to_string(dims) + "-D")
        .add(mlp_mape(ds, task.instances(), false), 1)
        .add(mlp_mape(ds, task.instances(), true), 1);
  }
  bench::emit(table, "ablation_log2");
  return 0;
}
