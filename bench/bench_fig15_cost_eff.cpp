// Figure 15: ground truth on stencil instances considering cost efficiency
// (time x rental $/hr; the 2080 Ti is not rentable and is excluded).
// Paper: the P100 is most cost-efficient for most instances (61.0% of 2-D,
// 56.7% of 3-D); average prediction accuracy 97.3% / 96.1%.
#include "advisor_util.hpp"

int main() {
  smart::bench::print_advisor_figure(
      "fig15", /*cost_weighted=*/true,
      "Sec. V-D2, Fig. 15 (paper: P100 most cost-efficient, 61.0%/56.7%)");
  return 0;
}
