// Ablation: robustness of OC-selection accuracy to measurement noise. The
// simulator's noise sigma bundles run-to-run variance with unmodeled
// microarchitectural idiosyncrasies; higher sigma makes best-OC labels
// flip between near-tie groups and caps the achievable accuracy.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Ablation — label noise vs classification accuracy",
                      "DESIGN.md ablation #4");

  util::Table table({"sigma", "2-D GBDT(%)", "3-D GBDT(%)"});
  for (double sigma : {0.0, 0.02, 0.04, 0.08, 0.16}) {
    table.row().add(sigma, 2);
    for (int dims : {2, 3}) {
      auto cfg = bench::scaled_profile_config(dims);
      cfg.sim.noise_sigma = sigma;
      const auto ds = core::build_profile_dataset(cfg);
      core::OcMerger merger;
      merger.fit(ds);
      const auto result = core::run_classification(
          ds, merger, 1, core::ClassifierKind::kGbdt, {});
      table.add(100.0 * result.accuracy, 1);
    }
  }
  bench::emit(table, "ablation_noise");
  return 0;
}
