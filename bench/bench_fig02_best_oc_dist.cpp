// Figure 2: for how many stencils each OC achieves the best performance,
// per GPU. Paper observations: streaming OCs win for most stencils; TB
// without ST (TB, TB_BM, TB_CM) is never best; the distribution is
// relatively even — no single OC fits all.
#include <map>

#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Figure 2 — distribution of best OCs per GPU",
                      "Sec. III-B, Fig. 2");

  const auto& ocs = gpusim::valid_combinations();
  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);

    util::Table table({"OC", "P100", "V100", "2080Ti", "A100"});
    std::vector<std::map<std::string, int>> counts(4);
    int st_best = 0;
    int total = 0;
    int unstreamed_tb_best = 0;
    for (std::size_t s = 0; s < ds.stencils.size(); ++s) {
      for (std::size_t g = 0; g < 4; ++g) {
        const int best = ds.best_oc(s, g);
        if (best < 0) continue;
        ++counts[g][ocs[static_cast<std::size_t>(best)].name()];
        ++total;
        const auto& oc = ocs[static_cast<std::size_t>(best)];
        if (oc.st) ++st_best;
        if (oc.tb && !oc.st) ++unstreamed_tb_best;
      }
    }
    for (const auto& oc : ocs) {
      const std::string name = oc.name();
      bool any = false;
      for (const auto& c : counts) {
        if (c.contains(name)) any = true;
      }
      if (!any) continue;  // missing bar, like the paper's figure
      table.row().add(name);
      for (auto& c : counts) {
        table.add(static_cast<long long>(c.contains(name) ? c.at(name) : 0));
      }
    }
    std::cout << "--- " << dims << "-D stencils (" << ds.stencils.size()
              << " random stencils) ---\n";
    bench::emit(table, "fig02_best_oc_dist_" + std::to_string(dims) + "d");
    std::cout << "best OCs with streaming: "
              << util::format_double(100.0 * st_best / total, 1)
              << "%  |  TB-without-ST best: " << unstreamed_tb_best
              << " cases (paper: 0)\n\n";
  }
  return 0;
}
