// Table II: the candidate feature set of a stencil, instantiated for the
// representative shape gallery.
#include "stencil/features.hpp"
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Table II — candidate stencil features",
                      "Sec. IV-C, Table II");

  constexpr int kMaxOrder = 4;
  const auto names = stencil::FeatureSet::names(kMaxOrder);
  std::vector<std::string> headers{"stencil"};
  headers.insert(headers.end(), names.begin(), names.end());
  util::Table table(std::move(headers));
  for (const auto& pattern : stencil::representative_gallery()) {
    const auto features = stencil::extract_features(pattern, kMaxOrder);
    table.row().add(pattern.name());
    for (double v : features.to_vector()) table.add(v, 4);
  }
  bench::emit(table, "table2_features");
  return 0;
}
