// Table I: the six stencil optimizations, their constraints, and the set of
// valid optimization combinations they induce.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Table I — optimizations and constraints",
                      "Sec. II-B, Table I");

  util::Table opts({"No.", "Optimization", "Abbrev", "Constraint"});
  opts.row().add(1).add("Streaming").add("ST").add("-");
  opts.row().add(2).add("Block Merging").add("BM").add("Not valid when CM enabled");
  opts.row().add(3).add("Cyclic Merging").add("CM").add("Not valid when BM enabled");
  opts.row().add(4).add("Retiming").add("RT").add("Only valid when ST enabled");
  opts.row().add(5).add("Prefetching").add("PR").add("Only valid when ST enabled");
  opts.row().add(6).add("Temporal Blocking").add("TB").add("-");
  bench::emit(opts, "table1_optimizations");

  const auto& all = gpusim::valid_combinations();
  util::Table combos({"idx", "combination", "ST", "BM", "CM", "RT", "PR", "TB"});
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& oc = all[i];
    combos.row()
        .add(static_cast<long long>(i))
        .add(oc.name())
        .add(oc.st ? "x" : "")
        .add(oc.bm ? "x" : "")
        .add(oc.cm ? "x" : "")
        .add(oc.rt ? "x" : "")
        .add(oc.pr ? "x" : "")
        .add(oc.tb ? "x" : "");
  }
  bench::emit(combos, "table1_valid_combinations");
  std::cout << "valid combinations under Table I constraints: " << all.size()
            << "\n";
  return 0;
}
