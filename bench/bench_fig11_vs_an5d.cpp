// Figure 11: speedup of the StencilMART-selected OC (ConvNet / GBDT
// classifiers) over the AN5D policy (streaming + high-degree temporal
// blocking), per GPU. Paper: ConvNet averages 1.33x (2-D) / 1.09x (3-D).
#include "speedup_util.hpp"

int main() {
  using namespace smart;
  bench::print_speedup_figure(
      "fig11", "AN5D",
      [](const core::ProfileDataset& ds, std::size_t s, std::size_t g) {
        return core::an5d_time(ds, s, g);
      },
      "Sec. V-B2, Fig. 11 (paper: ConvNet 1.33x/1.09x over AN5D)");
  return 0;
}
