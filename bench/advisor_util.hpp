// Shared implementation for Figures 14 and 15: ground-truth best-GPU shares
// over stencil instances plus the cross-architecture model's prediction
// accuracy per GPU.
#pragma once

#include "common.hpp"

namespace smart::bench {

inline void print_advisor_figure(const std::string& figure, bool cost_weighted,
                                 const std::string& paper_note) {
  print_banner(figure + (cost_weighted ? " — cost efficiency"
                                       : " — pure performance"),
               paper_note);
  for (int dims : {2, 3}) {
    auto cfg = scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);

    core::RegressionConfig rc;
    rc.instance_cap = static_cast<std::size_t>(util::scaled(80000, 1500));
    core::RegressionTask task(ds, rc);
    task.fit_full(core::RegressorKind::kMlp);
    const core::GpuAdvisor advisor(task);
    const std::size_t budget = static_cast<std::size_t>(util::scaled(8000, 300));
    const auto result = cost_weighted ? advisor.cost_efficiency(budget)
                                      : advisor.pure_performance(budget);

    util::Table table({"GPU", "truth share(%)", "pred accuracy(%)", "wins"});
    for (const auto& share : result.shares) {
      table.row()
          .add(ds.gpus[share.gpu].name)
          .add(100.0 * share.truth_share, 1)
          .add(100.0 * share.accuracy, 1)
          .add(static_cast<long long>(share.truth_count));
    }
    std::cout << "--- " << dims << "-D stencil instances (" << result.instances
              << " instances) ---\n";
    emit(table, figure + "_" + std::to_string(dims) + "d");
    std::cout << "overall best-GPU prediction accuracy: "
              << util::format_double(100.0 * result.overall_accuracy, 1)
              << "%\n\n";
  }
}

}  // namespace smart::bench
