// Figure 12: 5-fold cross-validated test error (MAPE) of the execution-time
// regressors (ConvMLP, MLP, GBRegressor) per GPU. Paper: MLP is best with
// 6.2% (2-D) / 5.3% (3-D); GBRegressor 9.5% / 6.3%; ConvMLP 13.4% / 11.6%.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Figure 12 — execution-time prediction error (MAPE)",
                      "Sec. V-C1, Fig. 12 (paper: MLP 6.2%/5.3%)");

  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);

    core::RegressionConfig rc;
    rc.instance_cap = static_cast<std::size_t>(util::scaled(120000, 1500));
    core::RegressionTask task(ds, rc);

    // ConvMLP trains 3-D convolutions per sample; keep its slice smaller.
    core::RegressionConfig rc_conv = rc;
    rc_conv.instance_cap = std::min<std::size_t>(rc.instance_cap, 2500);
    rc_conv.epochs = 10;
    core::RegressionTask conv_task(ds, rc_conv);

    util::Table table({"GPU", "ConvMLP(%)", "MLP(%)", "GBRegressor(%)"});
    const auto convmlp = conv_task.cross_validate(core::RegressorKind::kConvMlp);
    const auto mlp = task.cross_validate(core::RegressorKind::kMlp);
    const auto gbr = task.cross_validate(core::RegressorKind::kGbr);
    for (std::size_t g = 0; g < ds.num_gpus(); ++g) {
      table.row()
          .add(ds.gpus[g].name)
          .add(convmlp.mape_per_gpu[g], 1)
          .add(mlp.mape_per_gpu[g], 1)
          .add(gbr.mape_per_gpu[g], 1);
    }
    std::cout << "--- " << dims << "-D stencils (" << task.instances().size()
              << " instances) ---\n";
    bench::emit(table, "fig12_regression_" + std::to_string(dims) + "d");
    std::cout << "overall: ConvMLP " << util::format_double(convmlp.mape_overall, 1)
              << "%  MLP " << util::format_double(mlp.mape_overall, 1)
              << "%  GBRegressor " << util::format_double(gbr.mape_overall, 1)
              << "%\n\n";
  }
  return 0;
}
