// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the same rows/series the paper reports (plus our measured values)
// and, when SMART_CSV_DIR is set, also writes the series as CSV. Dataset
// sizes scale with SMART_SCALE (1.0 = paper scale, default 0.1; see
// util/env.hpp).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/stencilmart.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"
#include "util/timing.hpp"

namespace smart::bench {

/// Standard header every bench prints (figure id + scale note).
inline void print_banner(const std::string& experiment,
                         const std::string& paper_reference) {
  std::cout << "== StencilMART reproduction: " << experiment << " ==\n"
            << "   paper reference: " << paper_reference << "\n"
            << "   SMART_SCALE=" << util::experiment_scale()
            << " (1.0 reproduces paper-sized datasets), "
            << util::parallel_threads() << " threads\n\n";
}

/// Prints the accumulated per-phase timing counters when SMART_TIMING=1
/// (wall time + task counts for profiling, tuning and training phases).
inline void maybe_print_timing() {
  if (util::env_int("SMART_TIMING", 0) == 0) return;
  const std::string report = util::timing_report();
  if (!report.empty()) std::cout << report << '\n';
}

/// Emits the table to stdout and optionally to $SMART_CSV_DIR/<name>.csv.
inline void emit(const util::Table& table, const std::string& name) {
  table.print(std::cout);
  std::cout << '\n';
  if (const char* dir = std::getenv("SMART_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".csv";
    try {
      table.write_csv(path);
      std::cout << "   [csv] " << path << "\n\n";
    } catch (const std::exception& e) {
      std::cout << "   [csv] skipped: " << e.what() << "\n\n";
    }
  }
  maybe_print_timing();
}

/// Profiling configuration scaled from the paper's 500 stencils per
/// dimensionality and ~4 settings per OC per stencil.
inline core::ProfileConfig scaled_profile_config(int dims,
                                                 std::uint64_t seed = 20220530) {
  core::ProfileConfig cfg;
  cfg.dims = dims;
  cfg.num_stencils = util::scaled(500, 30);
  cfg.samples_per_oc = 4;
  cfg.seed = seed;
  return cfg;
}

inline std::string gpu_list_string() {
  std::string out;
  for (const auto& gpu : gpusim::evaluation_gpus()) {
    if (!out.empty()) out += ", ";
    out += gpu.name;
  }
  return out;
}

}  // namespace smart::bench
