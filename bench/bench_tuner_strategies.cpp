// Tuner-strategy comparison (paper Sec. II-C context: Garvey's exhaustive
// grouped search vs csTuner's GA vs plain random sampling). For each
// strategy: how close does it get to the exhaustive optimum, and at what
// measurement budget?
#include "common.hpp"
#include "gpusim/tuner_strategies.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Tuner strategies — search quality vs budget",
                      "context: Sec. II-C (Garvey, csTuner)");

  const gpusim::Simulator sim;
  const gpusim::ExhaustiveTuner exhaustive(sim);
  gpusim::GeneticConfig ga_config;
  ga_config.population = 10;
  ga_config.generations = 6;
  const gpusim::GeneticTuner ga(sim, ga_config);
  const int random_budget = ga_config.population * ga_config.generations;
  const gpusim::RandomSearchTuner random_small(sim, 8);
  const gpusim::RandomSearchTuner random_equal(sim, random_budget);

  gpusim::OptCombination oc;
  oc.st = true;  // the richest parameter space

  util::Table table({"stencil", "space size", "exhaustive(ms)",
                     "random-8 gap", "random-" + std::to_string(random_budget) + " gap",
                     "GA gap", "GA budget"});
  std::vector<double> gaps_r8;
  std::vector<double> gaps_req;
  std::vector<double> gaps_ga;
  for (const auto& pattern : stencil::representative_gallery()) {
    if (pattern.order() % 2 != 0) continue;  // every other gallery entry
    const auto problem = gpusim::ProblemSize::paper_default(pattern.dims());
    const auto& gpu = gpusim::gpu_by_name("V100");
    const auto opt = exhaustive.tune(pattern, problem, oc, gpu);
    util::Rng r1(1);
    util::Rng r2(1);
    util::Rng r3(1);
    const auto rand8 = random_small.tune(pattern, problem, oc, gpu, r1);
    const auto randeq = random_equal.tune(pattern, problem, oc, gpu, r2);
    const auto genetic = ga.tune(pattern, problem, oc, gpu, r3);
    const double g8 = rand8.best_time_ms / opt.best_time_ms;
    const double geq = randeq.best_time_ms / opt.best_time_ms;
    const double gga = genetic.best_time_ms / opt.best_time_ms;
    gaps_r8.push_back(g8);
    gaps_req.push_back(geq);
    gaps_ga.push_back(gga);
    table.row()
        .add(pattern.name())
        .add(opt.samples_tried)
        .add(opt.best_time_ms, 3)
        .add(g8, 3)
        .add(geq, 3)
        .add(gga, 3)
        .add(genetic.samples_tried);
  }
  bench::emit(table, "tuner_strategies");
  std::cout << "geomean gap to exhaustive: random-8 "
            << util::format_double(util::geomean(gaps_r8), 3) << "x, random-"
            << random_budget << " "
            << util::format_double(util::geomean(gaps_req), 3) << "x, GA "
            << util::format_double(util::geomean(gaps_ga), 3) << "x\n";
  return 0;
}
