// Figure 10: speedup of the StencilMART-selected OC (ConvNet / GBDT
// classifiers) over the Artemis tuning policy, per GPU. Paper: ConvNet
// averages 1.30x (2-D) and 1.32x (3-D) over Artemis.
#include "speedup_util.hpp"

int main() {
  using namespace smart;
  bench::print_speedup_figure(
      "fig10", "Artemis",
      [](const core::ProfileDataset& ds, std::size_t s, std::size_t g) {
        return core::artemis_time(ds, s, g);
      },
      "Sec. V-B2, Fig. 10 (paper: ConvNet 1.30x/1.32x over Artemis)");
  return 0;
}
