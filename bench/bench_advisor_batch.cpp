// Batched-inference speedup bench: times the GPU advisor's prediction sweep
// through the batched predict_table path against an equivalent per-variant
// prediction loop (one model invocation per (triple, GPU), re-encoding the
// stencil each call — the cost profile of the pre-batching implementation).
// The baseline is pinned to the legacy scalar kernels (SMART_SIMD off,
// strict precision); the batched path is timed twice, once in the default
// strict/f64 mode (checked BITWISE identical to the baseline) and once in
// relaxed/f32 mode (checked against a relative-error gate; bitwise for GBR,
// whose flattened traversal is exact). All runs are single-threaded
// (util::SerialSection), so the speedups measure encoding caching +
// vectorized kernels, not thread fan-out. Every timing is the min over
// SMART_BENCH_REPEATS runs (default 3) — the least-interference estimate.
//
// Appends one trajectory point per regressor kind to BENCH_advisor.json
// (override the path with SMART_BENCH_JSON; scripts/check.sh runs this as
// its bench-smoke step).
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <ctime>
#include <fstream>
#include <limits>
#include <sstream>

#include "common.hpp"
#include "ml/simd.hpp"

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double wall_ms(F&& f) {
  const auto start = Clock::now();
  f();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  return buf;
}

struct BenchPoint {
  std::string kind;
  std::size_t pairs = 0;
  double per_call_ms = 0.0;    // scalar strict baseline (SMART_SIMD off)
  double batched_ms = 0.0;     // batched, strict/f64 (bitwise contract)
  double batched_f32_ms = 0.0; // batched, relaxed/f32 (tolerance contract)
  double speedup = 0.0;        // per_call / batched_f32 (the headline)
  double speedup_f64 = 0.0;    // per_call / batched (bit-identical path)
};

/// Appends the points to a JSON array file (created if missing). The file
/// is a flat array of objects so successive runs build a perf trajectory.
void append_json(const std::string& path, const std::vector<BenchPoint>& points,
                 double scale) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  // Drop everything after the final ']' and the ']' itself; start a fresh
  // array when the file is empty or not an array.
  std::string body;
  const auto open = existing.find('[');
  const auto close = existing.rfind(']');
  if (open != std::string::npos && close != std::string::npos && close > open) {
    body = existing.substr(0, close);
    // Trim trailing whitespace so the separator lands cleanly.
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
  } else {
    body = "[";
  }
  std::ostringstream out;
  out << body;
  const std::string stamp = timestamp_utc();
  for (const BenchPoint& p : points) {
    out << (body.size() > 1 ? ",\n" : "\n");
    out << "  {\"bench\": \"advisor_batch\", \"date\": \"" << stamp
        << "\", \"scale\": " << scale << ", \"kind\": \"" << p.kind
        << "\", \"pairs\": " << p.pairs << ", \"per_call_ms\": "
        << smart::util::format_double(p.per_call_ms, 2)
        << ", \"batched_ms\": " << smart::util::format_double(p.batched_ms, 2)
        << ", \"batched_f32_ms\": "
        << smart::util::format_double(p.batched_f32_ms, 2)
        << ", \"speedup\": " << smart::util::format_double(p.speedup, 2)
        << ", \"speedup_f64\": "
        << smart::util::format_double(p.speedup_f64, 2) << ", \"isa\": \""
        << smart::ml::dispatch_isa() << "\"}";
    body += "x";  // any non-"[" content switches to the comma separator
  }
  out << "\n]\n";
  std::ofstream f(path, std::ios::trunc);
  f << out.str();
}

}  // namespace

int main() {
  using namespace smart;
  bench::print_banner(
      "advisor batch inference speedup",
      "batched predict_table vs per-variant prediction calls (PR 2)");

  const auto cfg = bench::scaled_profile_config(2);
  const auto ds = core::build_profile_dataset(cfg);
  core::RegressionConfig rc;
  rc.instance_cap = static_cast<std::size_t>(util::scaled(80000, 1500));

  util::Table table({"regressor", "pairs", "per-call(ms)", "f64(ms)",
                     "f32(ms)", "f64(x)", "f32(x)", "identical", "f32-ok"});
  std::vector<BenchPoint> points;
  bool all_identical = true;
  bool all_f32_ok = true;

  // Min over repeats: inference is deterministic per mode, so the fastest
  // run is the least-interference estimate (bench_profile's convention).
  const int repeats = [] {
    const char* env = std::getenv("SMART_BENCH_REPEATS");
    const int r = env ? std::atoi(env) : 3;
    return r > 0 ? r : 1;
  }();

  for (const auto kind :
       {core::RegressorKind::kGbr, core::RegressorKind::kMlp,
        core::RegressorKind::kConvMlp}) {
    core::RegressionConfig kind_rc = rc;
    if (kind == core::RegressorKind::kConvMlp) {
      // Inference timing is independent of fit quality; trim the epochs so
      // the (expensive) ConvMLP training doesn't dominate the bench.
      kind_rc.epochs = 4;
    }
    core::RegressionTask task(ds, kind_rc);
    task.fit_full(kind);

    // The advisor's sweep: every (stencil, OC, setting) triple crossed with
    // every GPU, capped like the Fig. 14/15 budget.
    const auto starts = task.triple_starts();
    const std::size_t budget =
        std::min(starts.size(),
                 static_cast<std::size_t>(util::scaled(8000, 300)));
    const std::vector<std::size_t> idxs(starts.begin(),
                                        starts.begin() +
                                            static_cast<std::ptrdiff_t>(budget));
    std::vector<std::size_t> gpus(ds.num_gpus());
    for (std::size_t g = 0; g < gpus.size(); ++g) gpus[g] = g;

    // Force one thread: the speedups below must come from the encoding
    // cache and the vectorized kernels alone.
    const util::SerialSection serial;

    // Baseline: the legacy scalar path — per-variant calls with the fused/
    // flattened kernels off and strict precision, i.e. the pre-SIMD cost
    // profile.
    std::vector<double> per_call(idxs.size() * gpus.size());
    double t_base = std::numeric_limits<double>::infinity();
    {
      const ml::SimdSection simd_off(false);
      const ml::PrecisionSection strict(ml::Precision::kStrict);
      for (int rep = 0; rep < repeats; ++rep) {
        t_base = std::min(t_base, wall_ms([&] {
          std::size_t i = 0;
          for (const std::size_t idx : idxs) {
            const auto& ins = task.instances()[idx];
            for (const std::size_t g : gpus) {
              per_call[i++] = task.predict_variant(
                  ds.stencils[ins.stencil], ds.problems[ins.stencil], ins.oc,
                  ds.settings[ins.stencil][ins.oc][ins.setting], g);
            }
          }
        }));
      }
    }

    // Batched, strict/f64: must be BITWISE identical to the baseline.
    core::PredictionTable pred_table;
    double t_batch = std::numeric_limits<double>::infinity();
    {
      const ml::SimdSection simd_on(true);
      const ml::PrecisionSection strict(ml::Precision::kStrict);
      for (int rep = 0; rep < repeats; ++rep) {
        t_batch = std::min(
            t_batch, wall_ms([&] { pred_table = task.predict_table(idxs, gpus); }));
      }
    }

    bool identical = pred_table.time_ms.size() == per_call.size();
    for (std::size_t i = 0; identical && i < per_call.size(); ++i) {
      identical = std::bit_cast<std::uint64_t>(per_call[i]) ==
                  std::bit_cast<std::uint64_t>(pred_table.time_ms[i]);
    }
    all_identical = all_identical && identical;

    // Batched, relaxed/f32: tolerance-gated (bitwise for GBR — flattened
    // traversal is exact in every precision mode).
    core::PredictionTable f32_table;
    double t_f32 = std::numeric_limits<double>::infinity();
    {
      const ml::SimdSection simd_on(true);
      const ml::PrecisionSection relaxed(ml::Precision::kRelaxed);
      for (int rep = 0; rep < repeats; ++rep) {
        t_f32 = std::min(
            t_f32, wall_ms([&] { f32_table = task.predict_table(idxs, gpus); }));
      }
    }

    bool f32_ok = f32_table.time_ms.size() == per_call.size();
    for (std::size_t i = 0; f32_ok && i < per_call.size(); ++i) {
      if (kind == core::RegressorKind::kGbr) {
        f32_ok = std::bit_cast<std::uint64_t>(per_call[i]) ==
                 std::bit_cast<std::uint64_t>(f32_table.time_ms[i]);
      } else {
        f32_ok = std::fabs(f32_table.time_ms[i] - per_call[i]) <=
                 1e-3 * std::fabs(per_call[i]);
      }
    }
    all_f32_ok = all_f32_ok && f32_ok;

    BenchPoint p;
    p.kind = core::to_string(kind);
    p.pairs = per_call.size();
    p.per_call_ms = t_base;
    p.batched_ms = t_batch;
    p.batched_f32_ms = t_f32;
    p.speedup = t_f32 > 0.0 ? t_base / t_f32 : 0.0;
    p.speedup_f64 = t_batch > 0.0 ? t_base / t_batch : 0.0;
    points.push_back(p);

    table.row()
        .add(p.kind)
        .add(static_cast<long long>(p.pairs))
        .add(p.per_call_ms, 1)
        .add(p.batched_ms, 1)
        .add(p.batched_f32_ms, 1)
        .add(p.speedup_f64, 2)
        .add(p.speedup, 2)
        .add(identical ? "yes" : "NO")
        .add(f32_ok ? "yes" : "NO");
  }

  bench::emit(table, "advisor_batch");

  double log_sum = 0.0;
  for (const BenchPoint& p : points) log_sum += std::log(p.speedup);
  std::cout << "   geomean f32 speedup: "
            << util::format_double(
                   std::exp(log_sum / static_cast<double>(points.size())), 2)
            << "x across " << points.size() << " regressor kinds ("
            << ml::dispatch_isa() << " kernel, min of " << repeats
            << " repeats)\n";

  if (!all_identical) {
    std::cout << "FAIL: f64 batched predictions diverge from per-variant "
                 "calls\n";
    return 1;
  }
  if (!all_f32_ok) {
    std::cout << "FAIL: f32 batched predictions outside the tolerance gate\n";
    return 1;
  }

  const char* env_path = std::getenv("SMART_BENCH_JSON");
  const std::string json_path = env_path ? env_path : "BENCH_advisor.json";
  append_json(json_path, points, util::experiment_scale());
  std::cout << "   [json] " << json_path << "\n";
  return 0;
}
