// Figure 13: sensitivity of the MLP's test error to the number of hidden
// layers and their size. Paper sweeps 4-10 layers x 2^4..2^10 units and
// finds diminishing returns beyond seven layers; we sweep a scaled grid
// (2-8 layers x 2^4..2^8) with the same protocol.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Figure 13 — MLP design sensitivity",
                      "Sec. V-C2, Fig. 13");

  const std::vector<int> layer_counts{2, 4, 6, 8};
  const std::vector<std::size_t> widths{16, 32, 64, 128, 256};

  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);

    std::vector<std::string> headers{"layers\\width"};
    for (std::size_t w : widths) headers.push_back(std::to_string(w));
    util::Table table(std::move(headers));
    for (int layers : layer_counts) {
      table.row().add(std::to_string(layers));
      for (std::size_t width : widths) {
        core::RegressionConfig rc;
        rc.folds = 2;
        rc.epochs = 15;
        rc.instance_cap = std::min<std::size_t>(
            3000, static_cast<std::size_t>(util::scaled(20000, 1200)));
        rc.mlp_hidden_layers = layers;
        rc.mlp_width = width;
        core::RegressionTask task(ds, rc);
        const auto result = task.cross_validate(core::RegressorKind::kMlp);
        table.add(result.mape_overall, 1);
      }
    }
    std::cout << "--- " << dims << "-D stencils (test MAPE %, 2-fold CV, "
              << "15 epochs) ---\n";
    bench::emit(table, "fig13_mlp_design_" + std::to_string(dims) + "d");
  }
  return 0;
}
