// Serve-mode throughput bench: a resident AdvisorServer answering the full
// advise/predict request corpus versus the repeated-cold baseline (what
// `smartctl advise --model` costs per query: deserialize the artifact, run
// one advise + recommend, throw the process state away). The in-process
// cold loop is a CONSERVATIVE stand-in for the real thing — it skips
// process spawn and page-cache-cold reads — so the reported speedup is a
// floor on the end-user win.
//
// Before any timing is reported, a sampled equivalence gate unescapes serve
// replies and compares them byte-for-byte against per-item
// advise()/recommend_gpu() reports (exit 1 on divergence): throughput
// numbers for wrong answers are worthless.
//
// Appends one trajectory point to BENCH_serve.json (override with
// SMART_BENCH_JSON; scripts/check.sh runs this as a bench-smoke step).
// At SMART_SCALE=1 the corpus is the paper's 500 stencils; the >= 10x
// speedup acceptance gate applies at that scale.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/advisor_server.hpp"
#include "core/serialize.hpp"
#include "core/serve_protocol.hpp"

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double wall_ms(F&& f) {
  const auto start = Clock::now();
  f();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  return buf;
}

struct ServePoint {
  std::size_t requests = 0;
  std::size_t distinct = 0;
  double cold_ms_per_req = 0.0;
  double resident_ms_per_req = 0.0;
  double speedup = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  double qps = 0.0;
  std::uint64_t memo_hits = 0;
  // Concurrent-clients scaling: one pass over the distinct corpus with C
  // producer threads submitting round-robin (each a stand-in for one
  // connection's reader thread), equivalence-checked against C=1.
  double qps_c1 = 0.0;
  double qps_c4 = 0.0;
  double qps_c16 = 0.0;
};

void append_json(const std::string& path, const ServePoint& p, double scale) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string body;
  const auto open = existing.find('[');
  const auto close = existing.rfind(']');
  if (open != std::string::npos && close != std::string::npos && close > open) {
    body = existing.substr(0, close);
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
  } else {
    body = "[";
  }
  std::ostringstream out;
  out << body << (body.size() > 1 ? ",\n" : "\n");
  out << "  {\"bench\": \"serve\", \"date\": \"" << timestamp_utc()
      << "\", \"scale\": " << scale << ", \"requests\": " << p.requests
      << ", \"distinct\": " << p.distinct << ", \"cold_ms_per_req\": "
      << smart::util::format_double(p.cold_ms_per_req, 3)
      << ", \"resident_ms_per_req\": "
      << smart::util::format_double(p.resident_ms_per_req, 3)
      << ", \"speedup\": " << smart::util::format_double(p.speedup, 1)
      << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
      << ", \"qps\": " << smart::util::format_double(p.qps, 1)
      << ", \"memo_hits\": " << p.memo_hits
      << ", \"qps_c1\": " << smart::util::format_double(p.qps_c1, 1)
      << ", \"qps_c4\": " << smart::util::format_double(p.qps_c4, 1)
      << ", \"qps_c16\": " << smart::util::format_double(p.qps_c16, 1) << "}";
  out << "\n]\n";
  std::ofstream f(path, std::ios::trunc);
  f << out.str();
}

}  // namespace

int main() {
  using namespace smart;
  bench::print_banner(
      "serve-mode resident daemon throughput",
      "resident batched advisory vs repeated cold advise --model");

  // Train once on the scaled corpus and persist the artifact the cold loop
  // will deserialize per request (exactly `smartctl advise --model`'s cost
  // profile minus process spawn).
  core::MartConfig mart_config;
  mart_config.profile = bench::scaled_profile_config(2);
  core::StencilMart mart(mart_config);
  mart.train();
  const std::string model_path = "/tmp/bench_serve_model.smart";
  core::save_model(mart, model_path);

  // Request corpus: the paper-scale stencil set (500 at SMART_SCALE=1),
  // every stencil spelled as explicit offsets so each is a distinct
  // protocol-level request; 3 passes model clients re-querying a resident
  // daemon (the memo answers repeats).
  const int distinct = util::scaled(500, 30);
  stencil::GeneratorConfig gen_config;
  gen_config.dims = 2;
  const stencil::RandomStencilGenerator generator(gen_config);
  util::Rng rng(20260809);
  const char* gpus[] = {"V100", "A100", "P100", "2080Ti"};
  std::vector<stencil::StencilPattern> patterns;
  std::vector<std::string> pattern_gpu;
  std::vector<std::string> requests;
  for (int i = 0; i < distinct; ++i) {
    const auto pattern = generator.generate(rng);
    const std::string gpu = gpus[i % 4];
    std::string offsets;
    for (const auto& p : pattern.offsets()) {
      if (!offsets.empty()) offsets += ';';
      for (int a = 0; a < pattern.dims(); ++a) {
        if (a > 0) offsets += ',';
        offsets += std::to_string(p[a]);
      }
    }
    const bool predict_only = i % 4 == 3;
    requests.push_back(std::string(predict_only ? "predict" : "advise") +
                       " q" + std::to_string(i) + " offsets=" + offsets +
                       " gpu=" + gpu);
    patterns.push_back(pattern);
    pattern_gpu.push_back(gpu);
  }
  const int kPasses = 3;

  // --- cold baseline: load + advise + recommend per request, on a sample
  // (the whole corpus cold would take minutes at paper scale for no extra
  // information — the per-request cost is flat).
  const std::size_t cold_sample =
      std::min(patterns.size(), static_cast<std::size_t>(10));
  const double cold_total_ms = wall_ms([&] {
    for (std::size_t i = 0; i < cold_sample; ++i) {
      const core::StencilMart cold = core::load_model(model_path);
      const auto advice = cold.advise(patterns[i], pattern_gpu[i]);
      (void)advice;
      if (i % 4 != 3) {
        const auto rec = cold.recommend_gpu(patterns[i]);
        (void)rec;
      }
    }
  });
  const double cold_ms_per_req =
      cold_total_ms / static_cast<double>(cold_sample);

  // --- resident daemon: the full corpus, kPasses times, pipelined.
  core::ServeConfig serve_config;
  serve_config.max_batch = 64;
  serve_config.max_wait_us = 200;
  core::AdvisorServer server(mart, serve_config);
  std::vector<std::string> replies(requests.size());
  std::mutex replies_mu;
  const double resident_total_ms = wall_ms([&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const bool keep_first_pass = pass == 0;
        server.submit(requests[i], [&, i, keep_first_pass](
                                       const std::string& line) {
          if (keep_first_pass) {
            const std::lock_guard<std::mutex> lk(replies_mu);
            replies[i] = line;
          }
        });
      }
      server.drain();
    }
  });
  const std::size_t total_requests = requests.size() * kPasses;
  const double resident_ms_per_req =
      resident_total_ms / static_cast<double>(total_requests);
  const auto counters = server.counters_snapshot();

  // --- equivalence gate before reporting any number.
  bool identical = true;
  for (std::size_t i = 0; i < cold_sample && identical; ++i) {
    const std::string prefix = "ok q" + std::to_string(i) + ' ';
    if (replies[i].rfind(prefix, 0) != 0) {
      identical = false;
      break;
    }
    if (i % 4 == 3) continue;  // predict replies checked structurally above
    const std::string want = core::advise_report(
        patterns[i], pattern_gpu[i], mart.advise(patterns[i], pattern_gpu[i]),
        mart.recommend_gpu(patterns[i]));
    identical =
        core::serve::unescape_text(replies[i].substr(prefix.size())) == want;
  }

  // --- concurrent-clients scaling: C producer threads over one pass of the
  // distinct corpus, each on a fresh server (cold memo) so the C points are
  // comparable. The sorted reply SET for every C must equal C=1's — the
  // multi-client determinism contract, enforced before reporting.
  const auto run_concurrent = [&](int producers,
                                  std::vector<std::string>& sorted) {
    core::AdvisorServer concurrent_server(mart, serve_config);
    std::vector<std::string> all;
    std::mutex all_mu;
    const double ms = wall_ms([&] {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(producers));
      for (int c = 0; c < producers; ++c) {
        threads.emplace_back([&, c] {
          for (std::size_t i = static_cast<std::size_t>(c);
               i < requests.size(); i += static_cast<std::size_t>(producers)) {
            concurrent_server.submit(requests[i], [&](const std::string& line) {
              const std::lock_guard<std::mutex> lk(all_mu);
              all.push_back(line);
            });
          }
        });
      }
      for (auto& t : threads) t.join();
      concurrent_server.drain();
    });
    std::sort(all.begin(), all.end());
    sorted = std::move(all);
    return requests.empty() ? 0.0
                            : static_cast<double>(requests.size()) * 1000.0 / ms;
  };
  std::vector<std::string> sorted_c1, sorted_c4, sorted_c16;
  const double qps_c1 = run_concurrent(1, sorted_c1);
  const double qps_c4 = run_concurrent(4, sorted_c4);
  const double qps_c16 = run_concurrent(16, sorted_c16);
  const bool concurrent_identical =
      sorted_c4 == sorted_c1 && sorted_c16 == sorted_c1;

  ServePoint point;
  point.requests = total_requests;
  point.distinct = patterns.size();
  point.cold_ms_per_req = cold_ms_per_req;
  point.resident_ms_per_req = resident_ms_per_req;
  point.speedup = resident_ms_per_req > 0.0
                      ? cold_ms_per_req / resident_ms_per_req
                      : 0.0;
  point.p50_us = counters.p50_us;
  point.p99_us = counters.p99_us;
  point.qps = counters.qps;
  point.memo_hits = counters.memo_hits;
  point.qps_c1 = qps_c1;
  point.qps_c4 = qps_c4;
  point.qps_c16 = qps_c16;

  util::Table table({"mode", "requests", "ms/req", "p50(us)", "p99(us)",
                     "qps", "memo_hits"});
  table.row()
      .add("cold advise --model")
      .add(static_cast<long long>(cold_sample))
      .add(cold_ms_per_req, 2)
      .add("-")
      .add("-")
      .add("-")
      .add("-");
  table.row()
      .add("resident serve")
      .add(static_cast<long long>(total_requests))
      .add(resident_ms_per_req, 2)
      .add(std::to_string(point.p50_us))
      .add(std::to_string(point.p99_us))
      .add(util::format_double(point.qps, 0))
      .add(std::to_string(point.memo_hits));
  bench::emit(table, "serve");

  util::Table scaling({"clients", "requests", "qps", "vs 1 client"});
  const auto scaling_row = [&](const char* label, double qps_c) {
    scaling.row()
        .add(label)
        .add(static_cast<long long>(requests.size()))
        .add(util::format_double(qps_c, 0))
        .add(qps_c1 > 0.0 ? util::format_double(qps_c / qps_c1, 2) + "x" : "-");
  };
  scaling_row("1", qps_c1);
  scaling_row("4", qps_c4);
  scaling_row("16", qps_c16);
  bench::emit(scaling, "serve concurrent-clients scaling");
  std::cout << "   concurrent reply-set equivalence: "
            << (concurrent_identical ? "verified" : "FAILED") << '\n';

  std::cout << "   resident speedup: "
            << util::format_double(point.speedup, 1) << "x over cold ("
            << point.distinct << " distinct stencils x " << kPasses
            << " passes, equivalence "
            << (identical ? "verified" : "FAILED") << ")\n";

  if (!identical) {
    std::cout << "FAIL: serve replies diverge from advise()/recommend_gpu()\n";
    return 1;
  }
  if (!concurrent_identical) {
    std::cout << "FAIL: concurrent-client reply sets diverge from 1-client\n";
    return 1;
  }

  const char* env_path = std::getenv("SMART_BENCH_JSON");
  const std::string json_path = env_path ? env_path : "BENCH_serve.json";
  append_json(json_path, point, util::experiment_scale());
  std::cout << "   [json] " << json_path << "\n";
  std::remove(model_path.c_str());
  return 0;
}
