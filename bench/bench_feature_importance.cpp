// Analysis bench: which Table II features drive the GBDT's decisions?
// Gain-based importance for OC selection (classifier) and execution-time
// prediction (regressor, over the full instance feature vector including
// OC flags, parameters and hardware characteristics). Also reports the
// per-group confusion of the classifier.
#include "common.hpp"
#include "ml/gbdt.hpp"
#include "ml/metrics.hpp"
#include "stencil/features.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Analysis — GBDT feature importance & confusion",
                      "companion analysis to Figs. 9 and 12");

  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    const auto ds = core::build_profile_dataset(cfg);
    core::OcMerger merger;
    merger.fit(ds);

    // Classifier on V100 labels, trained on the full corpus for analysis.
    const auto labels = core::true_groups(ds, merger, 1);
    const auto x = core::stencil_feature_matrix(ds);
    std::vector<std::size_t> rows;
    std::vector<int> y;
    for (std::size_t s = 0; s < labels.size(); ++s) {
      if (labels[s] >= 0) {
        rows.push_back(s);
        y.push_back(labels[s]);
      }
    }
    ml::GbdtClassifier clf;
    clf.fit(x.gather_rows(rows), y, merger.num_groups());

    const auto names = stencil::FeatureSet::names(cfg.max_order);
    const auto importance = clf.feature_importance(names.size());
    util::Table table({"feature", "importance"});
    for (std::size_t f = 0; f < names.size(); ++f) {
      table.row().add(names[f]).add(importance[f], 4);
    }
    std::cout << "--- " << dims << "-D OC-selection features (V100) ---\n";
    bench::emit(table, "feature_importance_cls_" + std::to_string(dims) + "d");

    // Confusion of the in-sample predictions per merged group.
    const auto pred = clf.predict(x.gather_rows(rows));
    const auto confusion = ml::confusion_matrix(y, pred, merger.num_groups());
    std::vector<std::string> headers{"true\\pred"};
    for (int g = 0; g < merger.num_groups(); ++g) {
      headers.push_back(merger.group_name(g));
    }
    util::Table conf(std::move(headers));
    for (int g = 0; g < merger.num_groups(); ++g) {
      conf.row().add(merger.group_name(g));
      for (int h = 0; h < merger.num_groups(); ++h) {
        conf.add(static_cast<long long>(
            confusion[static_cast<std::size_t>(g)][static_cast<std::size_t>(h)]));
      }
    }
    bench::emit(conf, "confusion_" + std::to_string(dims) + "d");
    const auto report = ml::classification_report(confusion);
    std::cout << "macro-F1 (in-sample): "
              << util::format_double(ml::macro_f1(report), 3) << "\n\n";
  }
  return 0;
}
