// Sharded profiling bench: times each `--shard i/4` sweep against the
// single-process sweep over the same corpus (DESIGN.md §14). The point of
// sharding is fleet wall-clock: shard i pays the shared stages (stencil
// generation + settings sampling) plus only its ~1/N slice of the
// measure/analyze work, so the slowest shard must come in well under the
// full sweep. Before any timing is reported, the four shard corpora are
// merged and the result is asserted bit-identical — serialized bytes and
// dataset_checksum — to the single-process corpus; a mismatch exits 1.
//
// All builds run single-threaded (util::SerialSection) so the ratio
// measures work partitioning alone, not thread fan-out. Appends one
// trajectory point per dimensionality to BENCH_shard.json (override with
// SMART_BENCH_JSON). The acceptance gate — max per-shard wall <= 40% of
// the single-process sweep — applies to the profiling-bound 3-D corpus at
// SMART_SCALE=1.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "core/corpus_merge.hpp"
#include "core/serialize.hpp"

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double wall_ms(F&& f) {
  const auto start = Clock::now();
  f();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  return buf;
}

constexpr std::size_t kShards = 4;

struct BenchPoint {
  int dims = 0;
  std::size_t units = 0;         // (stencil, OC, GPU) work units
  double single_ms = 0.0;        // unsharded build_profile_dataset wall
  double max_shard_ms = 0.0;     // slowest of the 4 shard builds
  double mean_shard_ms = 0.0;
  double merge_ms = 0.0;         // merge_shard_corpora wall
  double ratio = 0.0;            // max_shard_ms / single_ms
  bool identical = false;        // merged == single, bitwise
};

/// Appends the points to a flat JSON array file (created if missing) so
/// successive runs build a perf trajectory.
void append_json(const std::string& path, const std::vector<BenchPoint>& points,
                 double scale) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string body;
  const auto open = existing.find('[');
  const auto close = existing.rfind(']');
  if (open != std::string::npos && close != std::string::npos && close > open) {
    body = existing.substr(0, close);
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
  } else {
    body = "[";
  }
  std::ostringstream out;
  out << body;
  const std::string stamp = timestamp_utc();
  for (const BenchPoint& p : points) {
    out << (body.size() > 1 ? ",\n" : "\n");
    out << "  {\"bench\": \"profile_shard\", \"date\": \"" << stamp
        << "\", \"scale\": " << scale << ", \"dims\": " << p.dims
        << ", \"shards\": " << kShards << ", \"units\": " << p.units
        << ", \"single_ms\": " << smart::util::format_double(p.single_ms, 2)
        << ", \"max_shard_ms\": "
        << smart::util::format_double(p.max_shard_ms, 2)
        << ", \"mean_shard_ms\": "
        << smart::util::format_double(p.mean_shard_ms, 2)
        << ", \"merge_ms\": " << smart::util::format_double(p.merge_ms, 2)
        << ", \"max_shard_ratio\": " << smart::util::format_double(p.ratio, 3)
        << ", \"identical\": " << (p.identical ? "true" : "false") << "}";
    body += "x";  // any non-"[" content switches to the comma separator
  }
  out << "\n]\n";
  std::ofstream f(path, std::ios::trunc);
  f << out.str();
}

std::string serialized(const smart::core::ProfileDataset& ds) {
  std::ostringstream out;
  smart::core::save_dataset(ds, out);
  return out.str();
}

}  // namespace

int main() {
  using namespace smart;
  bench::print_banner(
      "sharded profiling fleet wall-clock",
      "profile --shard i/4 vs the single-process sweep (DESIGN.md §14)");

  const int repeats = [] {
    const char* env = std::getenv("SMART_BENCH_REPEATS");
    const int r = env ? std::atoi(env) : 3;
    return r > 0 ? r : 1;
  }();

  util::Table table({"dims", "units", "single(ms)", "max-shard(ms)",
                     "mean-shard(ms)", "merge(ms)", "max/single", "identical"});
  std::vector<BenchPoint> points;
  bool all_identical = true;

  for (const int dims : {2, 3}) {
    const auto cfg = bench::scaled_profile_config(dims);

    // One thread: the ratio below must come from work partitioning alone.
    const util::SerialSection serial;

    BenchPoint p;
    p.dims = dims;

    // Min over INTERLEAVED repeats: every build produces the identical
    // dataset, so the fastest run is the least-interference estimate — and
    // each round times the single build and all four shard builds
    // back-to-back, so slow machine drift (thermal/frequency states lasting
    // seconds) hits every configuration alike instead of whichever block of
    // repeats happened to run during it.
    core::ProfileDataset single;
    std::vector<core::ProfileDataset> shards(kShards);
    p.single_ms = std::numeric_limits<double>::infinity();
    std::vector<double> shard_best(
        kShards, std::numeric_limits<double>::infinity());
    for (int rep = 0; rep < repeats; ++rep) {
      core::ProfileDataset built;
      p.single_ms = std::min(
          p.single_ms, wall_ms([&] { built = core::build_profile_dataset(cfg); }));
      single = std::move(built);
      for (std::size_t i = 0; i < kShards; ++i) {
        core::ProfileRunOptions opts;
        opts.shard = core::ShardSpec{i, kShards};
        core::ProfileDataset shard;
        shard_best[i] = std::min(shard_best[i], wall_ms([&] {
                                   shard = core::build_profile_dataset(cfg, opts);
                                 }));
        shards[i] = std::move(shard);
      }
    }
    p.units = single.stencils.size() * core::ProfileDataset::num_ocs() *
              single.num_gpus();

    std::vector<std::string> sources;
    double shard_sum = 0.0;
    for (std::size_t i = 0; i < kShards; ++i) {
      p.max_shard_ms = std::max(p.max_shard_ms, shard_best[i]);
      shard_sum += shard_best[i];
      sources.push_back("shard" + std::to_string(i));
    }
    p.mean_shard_ms = shard_sum / static_cast<double>(kShards);

    core::ProfileDataset merged;
    p.merge_ms = wall_ms(
        [&] { merged = core::merge_shard_corpora(std::move(shards), sources); });

    p.identical = serialized(merged) == serialized(single) &&
                  core::dataset_checksum(merged) ==
                      core::dataset_checksum(single);
    all_identical = all_identical && p.identical;
    p.ratio = p.single_ms > 0.0 ? p.max_shard_ms / p.single_ms : 0.0;
    points.push_back(p);

    table.row()
        .add(static_cast<long long>(p.dims))
        .add(static_cast<long long>(p.units))
        .add(p.single_ms, 1)
        .add(p.max_shard_ms, 1)
        .add(p.mean_shard_ms, 1)
        .add(p.merge_ms, 1)
        .add(p.ratio, 3)
        .add(p.identical ? "yes" : "NO");
  }

  bench::emit(table, "profile_shard");

  for (const BenchPoint& p : points) {
    if (p.dims == 3) {
      // The 3-D corpus is where profiling cost lives (PR 4): the shared
      // stages are a small fraction of the build, so a 4-way shard split
      // must cut the slowest shard's wall clock to <= 40%.
      std::cout << "   profiling-bound 3-D corpus: slowest shard at "
                << util::format_double(100.0 * p.ratio, 1)
                << "% of the single-process sweep"
                << " (acceptance gate at scale 1: <= 40%)\n";
    }
  }

  if (!all_identical) {
    std::cout << "FAIL: merged shard corpora diverge from the single-process "
                 "corpus\n";
    return 1;
  }

  const char* env_path = std::getenv("SMART_BENCH_JSON");
  const std::string json_path = env_path ? env_path : "BENCH_shard.json";
  append_json(json_path, points, util::experiment_scale());
  std::cout << "   [json] " << json_path << "\n";
  return 0;
}
