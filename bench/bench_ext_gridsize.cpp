// Extension bench (paper future work, Sec. V-A2): grid-size-aware
// performance prediction. The paper fixes 8192^2 / 512^3 and leaves grid
// size as a model input to future work; here the dataset mixes three grid
// sizes per dimensionality and we compare the regression error with and
// without the log2-extent model inputs.
#include "common.hpp"
#include "ml/models.hpp"
#include "stencil/features.hpp"

namespace {

using namespace smart;

/// GBR MAPE with the problem features optionally zeroed out.
double gbr_mape(const core::ProfileDataset& ds,
                const core::RegressionTask& task, bool with_size_features) {
  const auto& instances = task.instances();
  util::Rng rng(17);
  const auto folds = ml::kfold_splits(instances.size(), 3, rng);
  const auto& ocs = gpusim::valid_combinations();

  auto features = [&](const std::vector<core::RegressionInstance>& rows) {
    std::vector<std::vector<float>> out;
    for (const auto& ins : rows) {
      std::vector<float> f;
      const auto sf = stencil::extract_features(ds.stencils[ins.stencil],
                                                ds.config.max_order)
                          .to_vector();
      f.insert(f.end(), sf.begin(), sf.end());
      for (int b = 0; b < gpusim::kNumOpts; ++b) {
        f.push_back(ocs[ins.oc].has(static_cast<gpusim::Opt>(b)) ? 1.0f : 0.0f);
      }
      for (double v :
           ds.settings[ins.stencil][ins.oc][ins.setting].to_feature_vector()) {
        f.push_back(static_cast<float>(v));
      }
      for (double v : ds.gpus[ins.gpu].feature_vector()) {
        f.push_back(static_cast<float>(v));
      }
      if (with_size_features) {
        for (double v : ds.problems[ins.stencil].feature_vector()) {
          f.push_back(static_cast<float>(v));
        }
      }
      out.push_back(std::move(f));
    }
    return ml::Matrix::from_rows(out);
  };

  std::vector<double> truth;
  std::vector<double> pred;
  for (const auto& fold : folds) {
    std::vector<core::RegressionInstance> train;
    std::vector<core::RegressionInstance> test;
    for (auto i : fold.train_indices) train.push_back(instances[i]);
    for (auto i : fold.test_indices) test.push_back(instances[i]);
    std::vector<float> y;
    for (const auto& ins : train) {
      y.push_back(static_cast<float>(std::log2(ins.time_ms)));
    }
    ml::GbdtRegressor model;
    model.fit(features(train), y);
    const auto preds = model.predict(features(test));
    for (std::size_t i = 0; i < test.size(); ++i) {
      truth.push_back(test[i].time_ms);
      pred.push_back(std::exp2(preds[i]));
    }
  }
  return util::mape(truth, pred);
}

}  // namespace

int main() {
  using namespace smart;
  bench::print_banner("Extension — grid-size-aware prediction",
                      "paper Sec. V-A2 (future work): grid size as model input");

  util::Table table({"dims", "mixed grids, no size input (%)",
                     "mixed grids, with size input (%)"});
  for (int dims : {2, 3}) {
    auto cfg = bench::scaled_profile_config(dims);
    cfg.vary_problem_size = true;
    const auto ds = core::build_profile_dataset(cfg);
    core::RegressionConfig rc;
    rc.instance_cap = static_cast<std::size_t>(util::scaled(40000, 1500));
    const core::RegressionTask task(ds, rc);
    table.row()
        .add(std::to_string(dims) + "-D")
        .add(gbr_mape(ds, task, false), 1)
        .add(gbr_mape(ds, task, true), 1);
  }
  bench::emit(table, "ext_gridsize");
  std::cout << "the size-aware model recovers most of the error introduced\n"
               "by mixing 3 grid volumes per dimensionality.\n";
  return 0;
}
