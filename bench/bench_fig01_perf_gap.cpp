// Figure 1: best OC of each representative stencil normalized to its worst
// OC on V100. Paper result: average speedup 9.95x; higher dimension/order
// generally widens the gap; some OCs crash on complex stencils.
#include "common.hpp"

int main() {
  using namespace smart;
  bench::print_banner("Figure 1 — best vs worst OC on V100",
                      "Sec. III-A, Fig. 1 (paper avg: 9.95x)");

  const gpusim::Simulator sim;
  const int samples = util::scaled(80, 8);  // per-OC random search budget
  const gpusim::RandomSearchTuner tuner(sim, samples);
  const auto& v100 = gpusim::gpu_by_name("V100");
  util::Rng rng(1);

  util::Table table({"stencil", "best OC", "best(ms)", "worst OC", "worst(ms)",
                     "gap(x)", "crashed OCs"});
  std::vector<double> gaps;
  for (const auto& pattern : stencil::representative_gallery()) {
    const auto problem = gpusim::ProblemSize::paper_default(pattern.dims());
    const auto results = tuner.tune_all(pattern, problem, v100, rng);
    double best = std::numeric_limits<double>::infinity();
    double worst = 0.0;
    std::string best_name;
    std::string worst_name;
    int crashes = 0;
    for (const auto& r : results) {
      if (!r.ok()) {
        ++crashes;
        continue;
      }
      if (r.best_time_ms < best) {
        best = r.best_time_ms;
        best_name = r.oc.name();
      }
      if (r.best_time_ms > worst) {
        worst = r.best_time_ms;
        worst_name = r.oc.name();
      }
    }
    const double gap = worst / best;
    gaps.push_back(gap);
    table.row()
        .add(pattern.name())
        .add(best_name)
        .add(best, 3)
        .add(worst_name)
        .add(worst, 3)
        .add(gap, 2)
        .add(crashes);
  }
  bench::emit(table, "fig01_perf_gap");
  std::cout << "average best/worst gap: " << util::format_double(util::mean(gaps), 2)
            << "x  (paper: 9.95x)\n";
  return 0;
}
