// LineChannel over a socketpair: line splitting across arbitrary write
// chunks, CRLF handling, oversize truncation with stream resync, stop-flag
// interruption, and EPIPE surfacing as an exception (the serve daemon's
// broken-pipe contract depends on it).
#include "util/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

namespace smart::util {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, &a), 0); }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  int* operator&() { return &a; }  // socketpair wants int[2]
};

void write_raw(int fd, const std::string& data) {
  ASSERT_EQ(::write(fd, data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
}

TEST(Transport, SplitsLinesAndStripsTerminators) {
  SocketPair sp;
  LineChannel channel(sp.b);
  write_raw(sp.a, "alpha\nbeta\r\n\ngamma");
  ::close(sp.a);
  sp.a = -1;

  std::string line;
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "alpha");
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "beta");  // CRLF stripped
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "");  // empty line preserved as a line
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "gamma");  // unterminated final line
  EXPECT_EQ(channel.read_line(line), LineChannel::ReadResult::kEof);
}

TEST(Transport, ReassemblesLinesAcrossWriteChunks) {
  SocketPair sp;
  LineChannel channel(sp.b);
  write_raw(sp.a, "hel");
  write_raw(sp.a, "lo\nwo");
  write_raw(sp.a, "rld\n");
  std::string line;
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "hello");
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "world");
}

TEST(Transport, OversizeLineTruncatedAndStreamResyncs) {
  SocketPair sp;
  LineChannel channel(sp.b);
  // Writer thread: socket buffers cannot hold the whole oversize line.
  const std::string big(kMaxLineBytes + 4096, 'x');
  std::thread writer([&] {
    std::string data = big;
    data += "\nnext\n";
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(sp.a, data.data() + off, data.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  });

  std::string line;
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  // Truncated to kMaxLineBytes + 1 so the protocol layer must reject it...
  EXPECT_EQ(line.size(), kMaxLineBytes + 1);
  EXPECT_EQ(line[0], 'x');
  // ...and the stream stays synchronized at the next real line.
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "next");
  writer.join();
}

TEST(Transport, StopFlagInterruptsRead) {
  SocketPair sp;
  LineChannel channel(sp.b);
  std::atomic<bool> stop{true};  // raised before the read: returns promptly
  std::string line;
  EXPECT_EQ(channel.read_line(line, &stop), LineChannel::ReadResult::kInterrupted);
}

TEST(Transport, WriteToClosedPeerThrowsInsteadOfSigpipe) {
  const auto previous = ::signal(SIGPIPE, SIG_IGN);
  {
    SocketPair sp;
    LineChannel channel(sp.a);
    ::close(sp.b);
    sp.b = -1;
    // Big enough to defeat any kernel buffering of the first write.
    const std::string data(1 << 20, 'y');
    EXPECT_THROW(
        {
          channel.write_all(data);
          channel.write_all(data);
        },
        std::runtime_error);
  }
  ::signal(SIGPIPE, previous);
}

TEST(Transport, UnixSocketRoundTrip) {
  const std::string path = "/tmp/smart_transport_test.sock";
  const int listen_fd = listen_unix(path);
  ASSERT_GE(listen_fd, 0);
  const int client = connect_unix(path);
  const int conn = accept_unix(listen_fd);
  ASSERT_GE(conn, 0);

  LineChannel to_server(client);
  LineChannel from_client(conn);
  to_server.write_all("ping x\n");
  std::string line;
  ASSERT_EQ(from_client.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "ping x");

  ::close(client);
  ::close(conn);
  ::close(listen_fd);
  ::unlink(path.c_str());
}

TEST(Transport, ListenRejectsOverlongPath) {
  EXPECT_THROW(listen_unix(std::string(300, 'p')), std::runtime_error);
  EXPECT_THROW(listen_unix(""), std::runtime_error);
}

TEST(Transport, IdleTimeoutReturnsAndChannelStaysUsable) {
  SocketPair sp;
  LineChannel channel(sp.b);
  channel.set_idle_timeout_ms(60);
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(channel.read_line(line), LineChannel::ReadResult::kIdleTimeout);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_GE(waited, 50);   // honoured the budget...
  EXPECT_LT(waited, 5000); // ...without blocking forever
  // A timeout is not an error: bytes arriving later still read fine.
  write_raw(sp.a, "after\n");
  ASSERT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "after");
}

TEST(Transport, WriteTimeoutThrowsOnStalledPeer) {
  const auto previous = ::signal(SIGPIPE, SIG_IGN);
  {
    SocketPair sp;
    LineChannel channel(sp.a);
    channel.set_write_timeout_ms(100);
    // The peer never reads: the socket buffer fills, progress stops, and
    // the bounded write must throw instead of stalling the daemon thread.
    const std::string data(1 << 20, 'z');
    bool threw = false;
    try {
      for (int i = 0; i < 64; ++i) channel.write_all(data);
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("write timeout"),
                std::string::npos)
          << e.what();
    }
    EXPECT_TRUE(threw);
  }
  ::signal(SIGPIPE, previous);
}

std::atomic<int> g_usr1_hits{0};

TEST(Transport, SignalWithoutSaRestartDoesNotBreakRead) {
  // A signal handler installed WITHOUT SA_RESTART makes blocking poll/read
  // return EINTR — exactly what the daemon's SIGHUP reload path produces.
  // The channel must retry and deliver the line, never surface a spurious
  // error or a phantom EOF.
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = [](int) { g_usr1_hits.fetch_add(1); };
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair sp;
  LineChannel channel(sp.b);
  const pthread_t reader = pthread_self();
  std::thread pinger([&] {
    for (int i = 0; i < 5; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      pthread_kill(reader, SIGUSR1);
    }
    write_raw(sp.a, "survived\n");
  });
  std::string line;
  EXPECT_EQ(channel.read_line(line), LineChannel::ReadResult::kLine);
  EXPECT_EQ(line, "survived");
  pinger.join();
  EXPECT_GE(g_usr1_hits.load(), 1);
  sigaction(SIGUSR1, &old, nullptr);
}

}  // namespace
}  // namespace smart::util
