#include "util/atomic_file.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/fault.hpp"

namespace smart::util {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string tmp_name(const fs::path& dest) {
  return dest.string() + ".tmp." +
         std::to_string(static_cast<long long>(::getpid()));
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("smart_atomic_" +
            std::to_string(static_cast<long long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(AtomicFileTest, WritesContentAndRemovesTempFile) {
  const fs::path dest = dir_ / "out.txt";
  atomic_write(dest.string(), [](std::ostream& out) { out << "hello\n"; });
  EXPECT_EQ(read_file(dest), "hello\n");
  EXPECT_FALSE(fs::exists(tmp_name(dest)));
}

TEST_F(AtomicFileTest, OverwritesExistingDestination) {
  const fs::path dest = dir_ / "out.txt";
  atomic_write(dest.string(), [](std::ostream& out) { out << "old"; });
  atomic_write(dest.string(), [](std::ostream& out) { out << "new"; });
  EXPECT_EQ(read_file(dest), "new");
}

TEST_F(AtomicFileTest, ThrowingWriterLeavesDestinationUntouched) {
  const fs::path dest = dir_ / "out.txt";
  atomic_write(dest.string(), [](std::ostream& out) { out << "original"; });
  EXPECT_THROW(atomic_write(dest.string(),
                            [](std::ostream& out) {
                              out << "partial garbage";
                              throw std::runtime_error("writer died");
                            }),
               std::runtime_error);
  EXPECT_EQ(read_file(dest), "original");
  EXPECT_FALSE(fs::exists(tmp_name(dest)));
}

TEST_F(AtomicFileTest, InjectedIoFaultRollsBack) {
  const fs::path dest = dir_ / "out.txt";
  atomic_write(dest.string(), [](std::ostream& out) { out << "original"; });
  const ScopedFaultInjection faults("seed=1;io:p=1");
  bool writer_ran = false;
  try {
    atomic_write(dest.string(), [&](std::ostream& out) {
      writer_ran = true;
      out << "must never land";
    });
    FAIL() << "expected an injected io fault";
  } catch (const FaultError& e) {
    EXPECT_FALSE(e.transient());
  }
  // The fault fires before the writer runs (models an unwritable stream).
  EXPECT_FALSE(writer_ran);
  EXPECT_EQ(read_file(dest), "original");
  EXPECT_FALSE(fs::exists(tmp_name(dest)));
}

TEST_F(AtomicFileTest, UnwritableDirectoryThrows) {
  const fs::path dest = dir_ / "no" / "such" / "dir" / "out.txt";
  EXPECT_THROW(
      atomic_write(dest.string(), [](std::ostream& out) { out << "x"; }),
      std::runtime_error);
  EXPECT_FALSE(fs::exists(dest));
}

}  // namespace
}  // namespace smart::util
