#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace smart::util {
namespace {

TEST(Env, DoubleFallback) {
  unsetenv("SMART_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("SMART_TEST_D", 1.5), 1.5);
}

TEST(Env, DoubleParses) {
  setenv("SMART_TEST_D", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("SMART_TEST_D", 1.5), 2.25);
  unsetenv("SMART_TEST_D");
}

TEST(Env, DoubleGarbageFallsBack) {
  setenv("SMART_TEST_D", "zzz", 1);
  EXPECT_DOUBLE_EQ(env_double("SMART_TEST_D", 1.5), 1.5);
  unsetenv("SMART_TEST_D");
}

TEST(Env, IntParses) {
  setenv("SMART_TEST_I", "42", 1);
  EXPECT_EQ(env_int("SMART_TEST_I", 7), 42);
  unsetenv("SMART_TEST_I");
}

TEST(Env, IntFallback) {
  unsetenv("SMART_TEST_I");
  EXPECT_EQ(env_int("SMART_TEST_I", 7), 7);
}

TEST(Env, ScaledHasMinimum) {
  EXPECT_GE(scaled(10, 3), 3);
  EXPECT_GE(scaled(1000, 1), 1);
}

TEST(Env, ExperimentScalePositive) { EXPECT_GT(experiment_scale(), 0.0); }

}  // namespace
}  // namespace smart::util
