#include "util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace smart::util {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ZeroIterationsIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, ThreadCountPositive) { EXPECT_GE(parallel_threads(), 1); }

TEST(Parallel, DisjointWritesProduceDeterministicResult) {
  std::vector<double> out(256);
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 1.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 1.5);
  }
}

}  // namespace
}  // namespace smart::util
