#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace smart::util {
namespace {

TEST(FaultSpec, EmptyStringParsesToDisabledSpec) {
  const FaultSpec spec = parse_fault_spec("");
  EXPECT_TRUE(spec.empty());
  EXPECT_FALSE(FaultInjector(spec).enabled());
}

TEST(FaultSpec, ParsesEveryElementKind) {
  const FaultSpec spec = parse_fault_spec(
      "seed=42;measure:transient:p=0.5:fails=3;measure:permanent:p=0.25;"
      "worker:p=0.125;io:p=1");
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.rules.size(), 4u);

  EXPECT_EQ(spec.rules[0].site, FaultSite::kMeasure);
  EXPECT_FALSE(spec.rules[0].permanent);
  EXPECT_DOUBLE_EQ(spec.rules[0].p, 0.5);
  EXPECT_EQ(spec.rules[0].fails, 3);

  EXPECT_EQ(spec.rules[1].site, FaultSite::kMeasure);
  EXPECT_TRUE(spec.rules[1].permanent);
  EXPECT_DOUBLE_EQ(spec.rules[1].p, 0.25);

  EXPECT_EQ(spec.rules[2].site, FaultSite::kWorker);
  EXPECT_FALSE(spec.rules[2].permanent);
  EXPECT_DOUBLE_EQ(spec.rules[2].p, 0.125);
  EXPECT_EQ(spec.rules[2].fails, 1);

  EXPECT_EQ(spec.rules[3].site, FaultSite::kIo);
  EXPECT_TRUE(spec.rules[3].permanent);
  EXPECT_DOUBLE_EQ(spec.rules[3].p, 1.0);
}

TEST(FaultSpec, ToStringRoundTrips) {
  const std::string text =
      "seed=7;measure:transient:p=0.05:fails=2;worker:p=0.001;io:p=0.3";
  const FaultSpec spec = parse_fault_spec(text);
  const FaultSpec again = parse_fault_spec(spec.to_string());
  EXPECT_EQ(again.seed, spec.seed);
  ASSERT_EQ(again.rules.size(), spec.rules.size());
  for (std::size_t r = 0; r < spec.rules.size(); ++r) {
    EXPECT_EQ(again.rules[r].site, spec.rules[r].site);
    EXPECT_EQ(again.rules[r].permanent, spec.rules[r].permanent);
    EXPECT_EQ(again.rules[r].p, spec.rules[r].p);  // bitwise
    EXPECT_EQ(again.rules[r].fails, spec.rules[r].fails);
  }
  EXPECT_EQ(again.to_string(), spec.to_string());
}

TEST(FaultSpec, ParsesServeSites) {
  // The serve daemon's sites use the short grammar: site:p=F[:fails=K].
  const FaultSpec spec =
      parse_fault_spec("seed=3;accept:p=0.5;read:p=0.25:fails=2;write:p=1");
  ASSERT_EQ(spec.rules.size(), 3u);
  EXPECT_EQ(spec.rules[0].site, FaultSite::kAccept);
  EXPECT_DOUBLE_EQ(spec.rules[0].p, 0.5);
  EXPECT_EQ(spec.rules[1].site, FaultSite::kRead);
  EXPECT_EQ(spec.rules[1].fails, 2);
  EXPECT_FALSE(spec.rules[1].permanent);
  EXPECT_EQ(spec.rules[2].site, FaultSite::kWrite);
  // to_string round trip covers the new sites too.
  const FaultSpec again = parse_fault_spec(spec.to_string());
  ASSERT_EQ(again.rules.size(), 3u);
  EXPECT_EQ(again.rules[0].site, FaultSite::kAccept);
  EXPECT_EQ(again.rules[1].site, FaultSite::kRead);
  EXPECT_EQ(again.rules[2].site, FaultSite::kWrite);
  EXPECT_EQ(again.to_string(), spec.to_string());
  // Serve sites are independent of each other and of the classic sites.
  const FaultInjector injector(parse_fault_spec("seed=3;read:p=1"));
  EXPECT_NE(injector.check(FaultSite::kRead, 1, 0), nullptr);
  EXPECT_EQ(injector.check(FaultSite::kAccept, 1, 0), nullptr);
  EXPECT_EQ(injector.check(FaultSite::kWrite, 1, 0), nullptr);
  EXPECT_EQ(injector.check(FaultSite::kIo, 1, 0), nullptr);
}

TEST(FaultSpec, RejectsMalformedServeElements) {
  EXPECT_THROW(parse_fault_spec("accept"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("read:p=2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("write:p=0.5:fails=0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("accept:p=0.5:bogus=1"),
               std::invalid_argument);
}

TEST(FaultSpec, RejectsMalformedElements) {
  EXPECT_THROW(parse_fault_spec("bogus:p=0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("measure:sometimes:p=0.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("measure:transient:p=1.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("measure:transient:p=-0.1"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("measure:transient:p=abc"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("measure:permanent:p=0.5:fails=2"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("worker:p=0.5:fails=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("seed=notanumber"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("io:p=0.5:fails=1"), std::invalid_argument);
}

TEST(FaultInjector, DecisionIsPureAndDeterministic) {
  const FaultInjector injector(
      parse_fault_spec("seed=9;measure:transient:p=0.5"));
  for (std::uint64_t id = 0; id < 64; ++id) {
    const bool first =
        injector.check(FaultSite::kMeasure, id, 0) != nullptr;
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(injector.check(FaultSite::kMeasure, id, 0) != nullptr, first)
          << "identity " << id;
    }
  }
}

TEST(FaultInjector, ProbabilityZeroNeverFiresProbabilityOneAlwaysFires) {
  const FaultInjector never(parse_fault_spec("seed=1;measure:transient:p=0"));
  const FaultInjector always(parse_fault_spec("seed=1;measure:transient:p=1"));
  for (std::uint64_t id = 1; id <= 200; ++id) {
    EXPECT_EQ(never.check(FaultSite::kMeasure, id, 0), nullptr);
    EXPECT_NE(always.check(FaultSite::kMeasure, id, 0), nullptr);
  }
}

TEST(FaultInjector, HitRateTracksProbability) {
  const FaultInjector injector(
      parse_fault_spec("seed=77;measure:transient:p=0.2"));
  int hits = 0;
  constexpr int kTrials = 20000;
  for (std::uint64_t id = 0; id < kTrials; ++id) {
    if (injector.check(FaultSite::kMeasure, id, 0) != nullptr) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(FaultInjector, TransientFaultStopsAfterFailsAttempts) {
  const FaultInjector injector(
      parse_fault_spec("seed=5;measure:transient:p=1:fails=2"));
  const std::uint64_t id = 0xabcdef;
  EXPECT_NE(injector.check(FaultSite::kMeasure, id, 0), nullptr);
  EXPECT_NE(injector.check(FaultSite::kMeasure, id, 1), nullptr);
  EXPECT_EQ(injector.check(FaultSite::kMeasure, id, 2), nullptr);
  EXPECT_EQ(injector.check(FaultSite::kMeasure, id, 3), nullptr);
}

TEST(FaultInjector, PermanentFaultFiresAtEveryAttempt) {
  const FaultInjector injector(
      parse_fault_spec("seed=5;measure:permanent:p=1"));
  const std::uint64_t id = 0xabcdef;
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_NE(injector.check(FaultSite::kMeasure, id, attempt), nullptr);
  }
}

TEST(FaultInjector, SitesAreIndependent) {
  const FaultInjector injector(parse_fault_spec("seed=5;worker:p=1"));
  EXPECT_EQ(injector.check(FaultSite::kMeasure, 1, 0), nullptr);
  EXPECT_EQ(injector.check(FaultSite::kIo, 1, 0), nullptr);
  EXPECT_NE(injector.check(FaultSite::kWorker, 1, 0), nullptr);
}

TEST(FaultInjector, InjectThrowsTheMatchingExceptionType) {
  const FaultInjector injector(parse_fault_spec(
      "seed=2;measure:transient:p=1;worker:p=1;io:p=1"));
  try {
    injector.inject(FaultSite::kMeasure, 3, 0);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_NE(std::string(e.what()).find("transient"), std::string::npos);
  }
  EXPECT_THROW(injector.inject(FaultSite::kWorker, 3, 0), WorkerCrashError);
  try {
    injector.inject(FaultSite::kIo, 3, 0);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_FALSE(e.transient());
  }
  // A permanent measure fault is a non-transient FaultError.
  const FaultInjector perm(parse_fault_spec("seed=2;measure:permanent:p=1"));
  try {
    perm.inject(FaultSite::kMeasure, 3, 99);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_FALSE(e.transient());
  }
}

TEST(FaultInjector, DisabledInjectorNeverThrows) {
  const FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (std::uint64_t id = 0; id < 16; ++id) {
    EXPECT_NO_THROW(injector.inject(FaultSite::kMeasure, id, 0));
    EXPECT_NO_THROW(injector.inject(FaultSite::kWorker, id, 0));
    EXPECT_NO_THROW(injector.inject(FaultSite::kIo, id, 0));
  }
}

TEST(ScopedFaultInjection, InstallsAndRestoresTheGlobalInjector) {
  const std::string outer_spec = FaultInjector::global().spec().to_string();
  {
    const ScopedFaultInjection scoped("seed=11;io:p=1");
    EXPECT_TRUE(FaultInjector::global().enabled());
    EXPECT_NE(FaultInjector::global().check(FaultSite::kIo, 1, 0), nullptr);
    {
      const ScopedFaultInjection nested("");
      EXPECT_FALSE(FaultInjector::global().enabled());
    }
    EXPECT_TRUE(FaultInjector::global().enabled());
  }
  EXPECT_EQ(FaultInjector::global().spec().to_string(), outer_spec);
}

}  // namespace
}  // namespace smart::util
