#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace smart::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 1);
  t.row().add("b").add(20.0, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("20.0"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, AddStartsRowImplicitly) {
  Table t({"x"});
  t.add("first");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, IntegerFormatting) {
  Table t({"n"});
  t.row().add(42);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.row().add("with,comma").add("with\"quote");
  const std::string path = testing::TempDir() + "table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::string line;
  std::getline(in, header);
  std::getline(in, line);
  EXPECT_EQ(header, "a,b");
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Table, CsvBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace smart::util
