#include "util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace smart::util {
namespace {

/// Restores (or removes) an env var when the test scope ends.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(TaskPool, ZeroIterationsIsNoop) {
  TaskPool pool(4);
  std::atomic<int> calls{0};
  pool.for_each(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(TaskPool, SingleIterationRunsInlineOnCaller) {
  TaskPool pool(4);
  std::thread::id ran_on;
  pool.for_each(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(TaskPool, CoversEveryIndexExactlyOnceWhenNFarExceedsThreads) {
  TaskPool pool(3);
  std::vector<int> hits(100000, 0);  // disjoint writes, read after the loop
  pool.for_each(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(TaskPool, ExceptionPropagatesToCaller) {
  TaskPool pool(4);
  EXPECT_THROW(pool.for_each(10000,
                             [&](std::size_t i) {
                               if (i == 1234) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  // The pool must stay usable after a throwing loop.
  std::atomic<int> calls{0};
  pool.for_each(1000, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1000);
}

TEST(TaskPool, ExceptionFromEveryIndexStillPropagatesExactlyOne) {
  TaskPool pool(4);
  try {
    pool.for_each(512, [&](std::size_t i) {
      throw std::runtime_error("idx " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_TRUE(std::string(e.what()).starts_with("idx "));
  }
}

TEST(TaskPool, SerialRunStopsAtTheFirstThrowingIndex) {
  // With no workers the loop runs inline, so "first exception wins" is
  // exact: indices after the throwing one never execute.
  TaskPool pool(1);
  std::atomic<int> executed{0};
  try {
    pool.for_each(1000, [&](std::size_t i) {
      ++executed;
      if (i >= 123) throw std::invalid_argument("idx " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    // The exception type AND message survive the pool boundary.
    EXPECT_STREQ(e.what(), "idx 123");
  }
  EXPECT_EQ(executed.load(), 124);
}

TEST(TaskPool, FailedLoopDrainsWithoutRunningEveryBody) {
  // Once a chunk fails, unclaimed chunks are skipped: with every body
  // throwing, the executed count is bounded by the chunk count (at most one
  // body per started chunk), far below n.
  TaskPool pool(4);
  constexpr std::size_t kN = 10000;
  const std::size_t max_chunks =
      8 * static_cast<std::size_t>(pool.num_threads());
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(pool.for_each(kN,
                             [&](std::size_t) {
                               ++executed;
                               throw std::runtime_error("every body fails");
                             }),
               std::runtime_error);
  EXPECT_GE(executed.load(), 1u);
  EXPECT_LE(executed.load(), max_chunks);
  EXPECT_LT(executed.load(), kN);
}

TEST(TaskPool, PoolStaysUsableAcrossRepeatedFailedLoops) {
  TaskPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.for_each(5000,
                               [&](std::size_t i) {
                                 if (i % 7 == 3) {
                                   throw std::runtime_error("boom");
                                 }
                               }),
                 std::runtime_error);
    // A clean loop right after the failed one must cover every index.
    std::vector<int> hits(2048, 0);
    pool.for_each(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(TaskPool, NestedParallelForCompletes) {
  TaskPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  pool.for_each(kOuter, [&](std::size_t o) {
    pool.for_each(kInner, [&](std::size_t i) { ++hits[o][i]; });
  });
  for (const auto& row : hits) {
    for (int h : row) EXPECT_EQ(h, 1);
  }
}

TEST(TaskPool, OneThreadAndEightThreadsBitIdentical) {
  const auto run = [](TaskPool& pool) {
    std::vector<double> out(4096);
    pool.for_each(out.size(), [&](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i)) * 1.0001 +
               std::sqrt(static_cast<double>(i) + 0.5);
    });
    return out;
  };
  TaskPool one(1);
  TaskPool eight(8);
  const auto a = run(one);
  const auto b = run(eight);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "index " << i;  // bitwise, not approx
  }
}

TEST(TaskPool, ReduceEmptyReturnsIdentity) {
  TaskPool pool(4);
  const double out = pool.reduce(
      0, -7.5, [](std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(out, -7.5);
}

TEST(TaskPool, ReduceSumMatchesClosedForm) {
  TaskPool pool(4);
  const long long n = 100000;
  const long long out = pool.reduce(
      static_cast<std::size_t>(n), 0LL,
      [](std::size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(out, n * (n - 1) / 2);
}

TEST(TaskPool, ReduceBitIdenticalAcrossThreadCounts) {
  // The block grid depends on n only, so even non-associative FP rounding
  // folds identically for every pool size.
  const auto run = [](TaskPool& pool) {
    return pool.reduce(
        10000, 0.0,
        [](std::size_t i) { return std::sin(static_cast<double>(i)) * 0.001; },
        [](double a, double b) { return a + b; });
  };
  TaskPool one(1);
  TaskPool five(5);
  TaskPool eight(8);
  const double a = run(one);
  EXPECT_EQ(a, run(five));
  EXPECT_EQ(a, run(eight));
}

TEST(TaskPool, ReduceBlocksDependOnNOnly) {
  EXPECT_EQ(TaskPool::reduce_blocks(0), 0u);
  EXPECT_EQ(TaskPool::reduce_blocks(1), 1u);
  EXPECT_EQ(TaskPool::reduce_blocks(63), 63u);
  EXPECT_EQ(TaskPool::reduce_blocks(64), 64u);
  EXPECT_EQ(TaskPool::reduce_blocks(1 << 20), 64u);
}

TEST(TaskPool, SerialSectionForcesInlineExecution) {
  TaskPool pool(8);
  EXPECT_FALSE(SerialSection::active());
  {
    SerialSection serial;
    EXPECT_TRUE(SerialSection::active());
    const std::thread::id caller = std::this_thread::get_id();
    pool.for_each(1000, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
  }
  EXPECT_FALSE(SerialSection::active());
}

TEST(TaskPool, DecideThreadsExplicitRequestWins) {
  const ScopedEnv env("SMART_THREADS", "3");
  EXPECT_EQ(TaskPool::decide_threads(5), 5);
  EXPECT_EQ(TaskPool::decide_threads(1), 1);
}

TEST(TaskPool, DecideThreadsReadsSmartThreadsEnv) {
  const ScopedEnv env("SMART_THREADS", "3");
  EXPECT_EQ(TaskPool::decide_threads(0), 3);
}

TEST(TaskPool, DecideThreadsClampsToSaneRange) {
  {
    const ScopedEnv env("SMART_THREADS", "100000");
    EXPECT_EQ(TaskPool::decide_threads(0), 256);
  }
  {
    const ScopedEnv env("SMART_THREADS", nullptr);
    EXPECT_GE(TaskPool::decide_threads(0), 1);
    EXPECT_LE(TaskPool::decide_threads(0), 256);
  }
  EXPECT_EQ(TaskPool::decide_threads(-4), TaskPool::decide_threads(0));
}

TEST(TaskPool, SmartThreadsOneEquivalentToDefault) {
  // The satellite contract: results do not depend on the thread budget.
  const ScopedEnv env("SMART_THREADS", nullptr);
  const auto run = [](int threads) {
    TaskPool pool(threads);
    std::vector<double> out(2048);
    pool.for_each(out.size(), [&](std::size_t i) {
      out[i] = std::cos(static_cast<double>(i) * 0.01);
    });
    double digest = pool.reduce(
        out.size(), 0.0, [&](std::size_t i) { return out[i]; },
        [](double a, double b) { return a + b; });
    return std::pair(out, digest);
  };
  const auto one = run(1);
  const auto dflt = run(0);  // env unset -> hardware concurrency
  EXPECT_EQ(one.first, dflt.first);
  EXPECT_EQ(one.second, dflt.second);
}

TEST(Parallel, GlobalFrontendsDelegateToGlobalPool) {
  EXPECT_GE(parallel_threads(), 1);
  std::vector<int> hits(512, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  const long long sum = parallel_reduce(
      512, 0LL, [](std::size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(sum, 512LL * 511 / 2);
}

}  // namespace
}  // namespace smart::util
