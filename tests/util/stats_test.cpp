#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace smart::util {
namespace {

const std::vector<double> kSimple{1.0, 2.0, 3.0, 4.0};

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSimple), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, Variance) {
  EXPECT_DOUBLE_EQ(variance(kSimple), 1.25);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, Stddev) { EXPECT_NEAR(stddev(kSimple), std::sqrt(1.25), 1e-12); }

TEST(Stats, Geomean) {
  EXPECT_NEAR(geomean(std::vector<double>{1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW(geomean(std::vector<double>{1.0, -1.0}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Stats, MedianEven) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{0.0, 10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 15.0);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, PearsonPerfect) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonAnti) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonSizeMismatch) {
  const std::vector<double> xs{1.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Stats, Mape) {
  const std::vector<double> truth{100.0, 200.0};
  const std::vector<double> pred{110.0, 180.0};
  EXPECT_NEAR(mape(truth, pred), 10.0, 1e-12);
}

TEST(Stats, MapeSkipsZeroTruth) {
  const std::vector<double> truth{0.0, 100.0};
  const std::vector<double> pred{5.0, 150.0};
  EXPECT_NEAR(mape(truth, pred), 50.0, 1e-12);
}

TEST(Stats, Accuracy) {
  const std::vector<int> truth{0, 1, 2, 1};
  const std::vector<int> pred{0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy(truth, pred), 0.75);
}

TEST(Stats, KendallTau) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> concordant{10.0, 20.0, 30.0};
  const std::vector<double> discordant{30.0, 20.0, 10.0};
  EXPECT_NEAR(kendall_tau(xs, concordant), 1.0, 1e-12);
  EXPECT_NEAR(kendall_tau(xs, discordant), -1.0, 1e-12);
}

TEST(Stats, KendallTauTiesUseTauB) {
  // Hand computation: 6 pairs, one tied in x only, one tied in y only,
  // C = 4, D = 0 -> tau-b = 4 / sqrt(5 * 5) = 0.8. (Tau-a would give 4/6.)
  const std::vector<double> xs{1.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 2.0, 2.0, 3.0};
  EXPECT_NEAR(kendall_tau(xs, ys), 0.8, 1e-12);

  // A ranking that only merges equal values is still perfect under tau-b:
  // the both-tied pair drops out of both denominator factors -> 2/2 = 1.
  const std::vector<double> xs2{1.0, 1.0, 2.0};
  const std::vector<double> ys2{2.0, 2.0, 3.0};
  EXPECT_NEAR(kendall_tau(xs2, ys2), 1.0, 1e-12);

  // A constant input has no untied pair to rank.
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_NEAR(kendall_tau(flat, ys2), 0.0, 1e-12);
}

TEST(Stats, Accumulator) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  acc.add(3.0);
  acc.add(-1.0);
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

}  // namespace
}  // namespace smart::util
