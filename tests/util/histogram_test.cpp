// LatencyHistogram: exact percentiles on known sequences, log-linear bucket
// geometry, overflow handling and reset — the serve daemon's p50/p99
// counters are only as trustworthy as these invariants.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace smart::util {
namespace {

TEST(LatencyHistogram, ExactPercentilesOnKnownSequence) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  // Values below kLinearMax land in exact unit buckets, so nearest-rank
  // percentiles are exact: rank ceil(.5*10)=5 -> 5, ceil(.99*10)=10 -> 10.
  EXPECT_EQ(h.percentile(50.0), 5u);
  EXPECT_EQ(h.percentile(90.0), 9u);
  EXPECT_EQ(h.percentile(99.0), 10u);
  EXPECT_EQ(h.percentile(100.0), 10u);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.max_recorded(), 10u);
}

TEST(LatencyHistogram, MedianOfOddCountAndRepeats) {
  LatencyHistogram h;
  h.record(2);
  h.record(2);
  h.record(7);
  EXPECT_EQ(h.percentile(50.0), 2u);  // rank ceil(1.5)=2 -> second value
  EXPECT_EQ(h.percentile(99.0), 7u);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(0);
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.percentile(99.0), 0u);
}

TEST(LatencyHistogram, EmptyReportsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.percentile(99.0), 0u);
}

TEST(LatencyHistogram, BucketGeometry) {
  // Unit buckets below kLinearMax.
  for (std::uint64_t v = 0; v < LatencyHistogram::kLinearMax; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(v), v);
  }
  // Above it: every value maps to a bucket whose inclusive upper bound is
  // >= the value, with relative quantization error bounded by 1/2^kSubBits.
  const std::uint64_t samples[] = {32,   33,   63,        64,
                                   1000, 4096, 123456789,
                                   LatencyHistogram::kMaxTrackable - 1};
  for (const std::uint64_t v : samples) {
    const std::size_t b = LatencyHistogram::bucket_index(v);
    const std::uint64_t ub = LatencyHistogram::bucket_upper_bound(b);
    EXPECT_GE(ub, v);
    EXPECT_LE(ub - v, v >> LatencyHistogram::kSubBits)
        << "value " << v << " bucket " << b << " ub " << ub;
    // Upper bounds are the largest member of their bucket: the next value
    // up maps to a different bucket.
    EXPECT_NE(LatencyHistogram::bucket_index(ub + 1), b);
    EXPECT_EQ(LatencyHistogram::bucket_index(ub), b);
  }
}

TEST(LatencyHistogram, QuantizedPercentileUsesBucketUpperBound) {
  LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.percentile(50.0),
            LatencyHistogram::bucket_upper_bound(
                LatencyHistogram::bucket_index(1000)));
}

TEST(LatencyHistogram, OverflowBucket) {
  LatencyHistogram h;
  h.record(5);
  h.record(LatencyHistogram::kMaxTrackable);        // exactly at the edge
  h.record(LatencyHistogram::kMaxTrackable * 2);    // far beyond
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.max_recorded(), LatencyHistogram::kMaxTrackable * 2);
  // Ranks landing in the overflow bucket report the recorded maximum.
  EXPECT_EQ(h.percentile(99.0), LatencyHistogram::kMaxTrackable * 2);
  EXPECT_EQ(h.percentile(50.0), LatencyHistogram::kMaxTrackable * 2);
  EXPECT_EQ(h.percentile(1.0), 5u);
}

TEST(LatencyHistogram, ConcurrentHammerConservesCountsAcrossWindowResets) {
  // Models the serve daemon's stats window: recorder threads (batcher +
  // control plane) and a stats reader that snapshots-then-resets, all
  // serialized by one external mutex (the histogram itself is plain data
  // guarded by AdvisorServer::stats_mu_). No record may be lost or double
  // counted across resets: the windows must partition the recordings.
  LatencyHistogram h;
  std::mutex mu;
  constexpr int kRecorders = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> done{false};
  std::uint64_t windows_total = 0;
  std::uint64_t windows_seen = 0;

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      {
        const std::lock_guard<std::mutex> lk(mu);
        windows_total += h.count();  // snapshot...
        h.reset();                   // ...then reset, atomically under mu
        ++windows_seen;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::lock_guard<std::mutex> lk(mu);
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& r : recorders) r.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const std::lock_guard<std::mutex> lk(mu);
  EXPECT_EQ(windows_total + h.count(),
            static_cast<std::uint64_t>(kRecorders) * kPerThread);
  EXPECT_GE(windows_seen, 1u);
  // Still fully usable after the hammer.
  h.reset();
  h.record(9);
  EXPECT_EQ(h.percentile(99.0), 9u);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(3);
  h.record(LatencyHistogram::kMaxTrackable + 1);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.max_recorded(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0u);
  h.record(4);  // usable after reset
  EXPECT_EQ(h.percentile(99.0), 4u);
}

}  // namespace
}  // namespace smart::util
