#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace smart::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(9);
  const auto first = a();
  a.reseed(9);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntInvalid) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(23);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(23);
  const std::vector<int> items{4, 8, 15};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 4 || v == 8 || v == 15);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, PermutationValid) {
  Rng rng(31);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  const auto sample = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 30u);
  for (auto v : seen) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(37);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementInvalid) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, Deterministic) {
  EXPECT_EQ(hash_combine(42, 43), hash_combine(42, 43));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace smart::util
