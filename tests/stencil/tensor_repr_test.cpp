#include "stencil/tensor_repr.hpp"

#include <gtest/gtest.h>

#include "stencil/generator.hpp"

namespace smart::stencil {
namespace {

TEST(PatternTensor, BasicEmbedding2D) {
  const PatternTensor t(make_star(2, 1), 4);
  EXPECT_EQ(t.extent(), 9);
  EXPECT_EQ(t.volume(), 81);
  EXPECT_EQ(t.nnz(), 5);
  EXPECT_TRUE(t.at(0, 0));
  EXPECT_TRUE(t.at(1, 0));
  EXPECT_FALSE(t.at(1, 1));
}

TEST(PatternTensor, BasicEmbedding3D) {
  const PatternTensor t(make_star(3, 1), 4);
  EXPECT_EQ(t.volume(), 9 * 9 * 9);
  EXPECT_EQ(t.nnz(), 7);
  EXPECT_TRUE(t.at(0, 0, 1));
  EXPECT_FALSE(t.at(1, 1, 1));
}

TEST(PatternTensor, RejectsTooLargeOrder) {
  EXPECT_THROW(PatternTensor(make_star(2, 3), 2), std::invalid_argument);
  EXPECT_THROW(PatternTensor(make_star(2, 1), 0), std::invalid_argument);
}

TEST(PatternTensor, OutOfRangeAccess) {
  const PatternTensor t(make_star(2, 1), 2);
  EXPECT_THROW(t.at(3, 0), std::out_of_range);
}

TEST(PatternTensor, FloatsMatchNnz) {
  const PatternTensor t(make_box(2, 2), 4);
  const auto f = t.to_floats();
  EXPECT_EQ(f.size(), 81u);
  float sum = 0.0f;
  for (float v : f) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
    sum += v;
  }
  EXPECT_EQ(static_cast<int>(sum), t.nnz());
}

TEST(PatternTensor, RoundTripGallery) {
  for (const auto& p : representative_gallery()) {
    const PatternTensor t(p, 4);
    EXPECT_EQ(t.to_pattern(), p) << p.name();
  }
}

struct RoundTripCase {
  int dims;
  int order;
};

class TensorRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(TensorRoundTrip, RandomPatternsSurviveRoundTrip) {
  const auto param = GetParam();
  GeneratorConfig config;
  config.dims = param.dims;
  config.order = param.order;
  const RandomStencilGenerator gen(config);
  util::Rng rng(1000 + param.dims * 10 + param.order);
  for (int i = 0; i < 25; ++i) {
    const StencilPattern p = gen.generate(rng);
    const PatternTensor t(p, 4);
    EXPECT_EQ(t.to_pattern(), p);
    EXPECT_EQ(t.nnz(), p.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDimsOrders, TensorRoundTrip,
                         ::testing::Values(RoundTripCase{2, 1},
                                           RoundTripCase{2, 2},
                                           RoundTripCase{2, 4},
                                           RoundTripCase{3, 1},
                                           RoundTripCase{3, 3},
                                           RoundTripCase{3, 4}),
                         [](const auto& info) {
                           return std::to_string(info.param.dims) + "d" +
                                  std::to_string(info.param.order) + "r";
                         });

}  // namespace
}  // namespace smart::stencil
