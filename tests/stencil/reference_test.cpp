#include "stencil/reference.hpp"

#include <gtest/gtest.h>

#include "stencil/generator.hpp"

namespace smart::stencil {
namespace {

Grid random_grid(int nx, int ny, int nz, int halo, std::uint64_t seed) {
  Grid g(nx, ny, nz, halo);
  util::Rng rng(seed);
  g.fill([&rng](int, int, int) { return rng.uniform(-1.0, 1.0); });
  return g;
}

TEST(Grid, HaloReadsAreZero) {
  Grid g(4, 4, 1, 2);
  g.fill([](int, int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(g.at(-1, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.at(4, 3), 0.0);
  EXPECT_DOUBLE_EQ(g.at(0, -2), 0.0);
}

TEST(Grid, RejectsBadShape) {
  EXPECT_THROW(Grid(0, 1, 1, 0), std::invalid_argument);
  EXPECT_THROW(Grid(1, 1, 1, -1), std::invalid_argument);
}

TEST(Grid, MaxAbsDiffShapeMismatch) {
  Grid a(2, 2, 1, 0);
  Grid b(3, 2, 1, 0);
  EXPECT_THROW(Grid::max_abs_diff(a, b), std::invalid_argument);
}

TEST(Reference, UniformWeightsSumToOne) {
  const auto p = make_box(2, 2);
  const auto w = uniform_weights(p);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(static_cast<int>(w.size()), p.size());
}

TEST(Reference, ValidatesHalo) {
  const auto p = make_star(2, 3);
  const auto w = uniform_weights(p);
  Grid g(8, 8, 1, 1);  // halo 1 < order 3
  EXPECT_THROW(run_naive({p, w}, g, 1), std::invalid_argument);
}

TEST(Reference, ValidatesWeightSize) {
  const auto p = make_star(2, 1);
  const std::vector<double> w{1.0};
  Grid g(8, 8, 1, 1);
  EXPECT_THROW(run_naive({p, w}, g, 1), std::invalid_argument);
}

TEST(Reference, ValidatesDimsMatch) {
  const auto p = make_star(3, 1);
  const auto w = uniform_weights(p);
  Grid g = Grid::make_2d(8, 8, 1);
  EXPECT_THROW(run_naive({p, w}, g, 1), std::invalid_argument);
}

TEST(Reference, IdentityStencilPreservesGrid) {
  // A pattern of just the centre with weight 1 is the identity.
  const StencilPattern p(2, {});
  const std::vector<double> w{1.0};
  const Grid g = random_grid(6, 6, 1, 1, 42);
  const Grid out = run_naive({p, w}, g, 3);
  EXPECT_DOUBLE_EQ(Grid::max_abs_diff(g, out), 0.0);
}

TEST(Reference, SmoothingContracts) {
  const auto p = make_box(2, 1);
  const auto w = uniform_weights(p);
  Grid g = random_grid(16, 16, 1, 1, 7);
  const Grid out = run_naive({p, w}, g, 5);
  double max_in = 0.0;
  double max_out = 0.0;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      max_in = std::max(max_in, std::abs(g.at(i, j)));
      max_out = std::max(max_out, std::abs(out.at(i, j)));
    }
  }
  EXPECT_LT(max_out, max_in);
}

struct ExecCase {
  int dims;
  int order;
  int steps;
  int tile_x;
  int tile_y;
  int tile_z;
  int time_block;
};

class ExecutorEquivalence : public ::testing::TestWithParam<ExecCase> {};

TEST_P(ExecutorEquivalence, TiledMatchesNaiveBitwise) {
  const auto c = GetParam();
  GeneratorConfig config;
  config.dims = c.dims;
  config.order = c.order;
  const RandomStencilGenerator gen(config);
  util::Rng rng(c.dims * 1000 + c.order * 100 + c.steps);
  const StencilPattern p = gen.generate(rng);
  const auto w = uniform_weights(p);
  const int nz = c.dims == 3 ? 10 : 1;
  const Grid g = random_grid(17, 13, nz, p.order(), 99);
  const Grid naive = run_naive({p, w}, g, c.steps);
  const Grid tiled = run_tiled({p, w}, g, c.steps, c.tile_x, c.tile_y, c.tile_z);
  EXPECT_DOUBLE_EQ(Grid::max_abs_diff(naive, tiled), 0.0);
}

TEST_P(ExecutorEquivalence, TemporalBlockedMatchesNaiveBitwise) {
  const auto c = GetParam();
  GeneratorConfig config;
  config.dims = c.dims;
  config.order = c.order;
  const RandomStencilGenerator gen(config);
  util::Rng rng(c.dims * 2000 + c.order * 100 + c.steps);
  const StencilPattern p = gen.generate(rng);
  const auto w = uniform_weights(p);
  const int nz = c.dims == 3 ? 10 : 1;
  const Grid g = random_grid(17, 13, nz, p.order(), 123);
  const Grid naive = run_naive({p, w}, g, c.steps);
  const Grid tb = run_temporal_blocked({p, w}, g, c.steps, c.tile_x, c.tile_y,
                                       c.tile_z, c.time_block);
  EXPECT_DOUBLE_EQ(Grid::max_abs_diff(naive, tb), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorEquivalence,
    ::testing::Values(ExecCase{2, 1, 1, 4, 4, 1, 1},
                      ExecCase{2, 1, 4, 8, 3, 1, 2},
                      ExecCase{2, 2, 3, 5, 7, 1, 3},
                      ExecCase{2, 3, 2, 16, 16, 1, 2},
                      ExecCase{2, 4, 5, 6, 6, 1, 2},
                      ExecCase{3, 1, 2, 4, 4, 4, 2},
                      ExecCase{3, 2, 3, 8, 8, 8, 2},
                      ExecCase{3, 3, 2, 6, 5, 4, 2}),
    [](const auto& info) {
      const auto& c = info.param;
      return std::to_string(c.dims) + "d" + std::to_string(c.order) + "r_s" +
             std::to_string(c.steps) + "_t" + std::to_string(c.tile_x) + "x" +
             std::to_string(c.tile_y) + "x" + std::to_string(c.tile_z) + "_tb" +
             std::to_string(c.time_block);
    });

TEST(Reference, TemporalBlockLargerThanStepsIsClamped) {
  const auto p = make_star(2, 1);
  const auto w = uniform_weights(p);
  const Grid g = random_grid(9, 9, 1, 1, 5);
  const Grid naive = run_naive({p, w}, g, 2);
  const Grid tb = run_temporal_blocked({p, w}, g, 2, 4, 4, 1, 8);
  EXPECT_DOUBLE_EQ(Grid::max_abs_diff(naive, tb), 0.0);
}

TEST(Reference, RejectsBadTiles) {
  const auto p = make_star(2, 1);
  const auto w = uniform_weights(p);
  const Grid g = random_grid(8, 8, 1, 1, 5);
  EXPECT_THROW(run_tiled({p, w}, g, 1, 0, 4), std::invalid_argument);
  EXPECT_THROW(run_temporal_blocked({p, w}, g, 1, 4, 4, 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace smart::stencil
