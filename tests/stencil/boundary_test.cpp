// Tests for the boundary-condition extension (the paper's future work):
// periodic executors must agree with each other bitwise, conserve constant
// fields under smoothing stencils, and differ from Dirichlet at the edges.
#include <gtest/gtest.h>

#include "gpusim/cost_model.hpp"
#include "stencil/generator.hpp"
#include "stencil/reference.hpp"

namespace smart::stencil {
namespace {

Grid random_grid(int nx, int ny, int nz, int halo, std::uint64_t seed) {
  Grid g(nx, ny, nz, halo);
  util::Rng rng(seed);
  g.fill([&rng](int, int, int) { return rng.uniform(-1.0, 1.0); });
  return g;
}

TEST(Boundary, ToString) {
  EXPECT_EQ(to_string(Boundary::kDirichletZero), "dirichlet0");
  EXPECT_EQ(to_string(Boundary::kPeriodic), "periodic");
}

TEST(Boundary, PeriodicConservesConstantField) {
  // With weights summing to 1 and wrap-around reads, a constant field is a
  // fixed point; with Dirichlet-zero it decays at the borders.
  const auto p = make_box(2, 1);
  const auto w = uniform_weights(p);
  Grid g(12, 12, 1, 1);
  g.fill([](int, int, int) { return 3.5; });

  const Grid periodic = run_naive({p, w, Boundary::kPeriodic}, g, 5);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(periodic.at(i, j), 3.5);
    }
  }
  const Grid dirichlet = run_naive({p, w, Boundary::kDirichletZero}, g, 5);
  EXPECT_LT(dirichlet.at(0, 0), 3.5);
}

TEST(Boundary, PeriodicWrapsReads) {
  // One step of an east-shift stencil {(1,0)}: out(i,j) = in(i+1,j), so the
  // last column must read the first one under periodic wrap.
  const StencilPattern p(2, {Point(1, 0)});
  const std::vector<double> w{0.0, 1.0};  // centre weight 0, neighbour 1
  Grid g(5, 5, 1, 1);
  g.fill([](int i, int j, int) { return 10.0 * i + j; });
  const Grid out = run_naive({p, w, Boundary::kPeriodic}, g, 1);
  EXPECT_DOUBLE_EQ(out.at(4, 2), g.at(0, 2));  // wrapped
  EXPECT_DOUBLE_EQ(out.at(1, 2), g.at(2, 2));  // interior unchanged rule
}

struct PeriodicCase {
  int dims;
  int order;
  int steps;
  int time_block;
};

class PeriodicEquivalence : public ::testing::TestWithParam<PeriodicCase> {};

TEST_P(PeriodicEquivalence, TiledAndTemporalMatchNaive) {
  const auto c = GetParam();
  GeneratorConfig config;
  config.dims = c.dims;
  config.order = c.order;
  const RandomStencilGenerator gen(config);
  util::Rng rng(c.dims * 77 + c.order);
  const StencilPattern p = gen.generate(rng);
  const auto w = uniform_weights(p);
  const int nz = c.dims == 3 ? 9 : 1;
  const Grid g = random_grid(15, 11, nz, p.order(), 321);

  const StencilOp op{p, w, Boundary::kPeriodic};
  const Grid naive = run_naive(op, g, c.steps);
  const Grid tiled = run_tiled(op, g, c.steps, 6, 5, 3);
  EXPECT_DOUBLE_EQ(Grid::max_abs_diff(naive, tiled), 0.0);
  const Grid tb =
      run_temporal_blocked(op, g, c.steps, 6, 5, 3, c.time_block);
  EXPECT_DOUBLE_EQ(Grid::max_abs_diff(naive, tb), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeriodicEquivalence,
    ::testing::Values(PeriodicCase{2, 1, 3, 2}, PeriodicCase{2, 2, 2, 2},
                      PeriodicCase{2, 3, 4, 3}, PeriodicCase{3, 1, 2, 2},
                      PeriodicCase{3, 2, 3, 2}),
    [](const auto& info) {
      const auto& c = info.param;
      return std::to_string(c.dims) + "d" + std::to_string(c.order) + "r_s" +
             std::to_string(c.steps) + "_tb" + std::to_string(c.time_block);
    });

TEST(Boundary, PeriodicCostsMoreInTheModel) {
  const gpusim::KernelCostModel model;
  const auto p = make_star(2, 2);
  gpusim::ParamSetting s;
  auto dirichlet = gpusim::ProblemSize::paper_default(2);
  auto periodic = dirichlet;
  periodic.boundary = Boundary::kPeriodic;
  const auto& gpu = gpusim::gpu_by_name("V100");
  const auto a = model.evaluate(p, dirichlet, {}, s, gpu);
  const auto b = model.evaluate(p, periodic, {}, s, gpu);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_GT(b.time_ms, a.time_ms);
  EXPECT_GT(b.dram_traffic_bytes, a.dram_traffic_bytes);
}

TEST(Boundary, ProblemFeatureVector) {
  auto prob = gpusim::ProblemSize::paper_default(3);
  auto f = prob.feature_vector();
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], 9.0);  // log2(512)
  EXPECT_DOUBLE_EQ(f[3], 0.0);
  prob.boundary = Boundary::kPeriodic;
  EXPECT_DOUBLE_EQ(prob.feature_vector()[3], 1.0);
}

}  // namespace
}  // namespace smart::stencil
