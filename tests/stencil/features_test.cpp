#include "stencil/features.hpp"

#include <gtest/gtest.h>

#include "stencil/generator.hpp"

namespace smart::stencil {
namespace {

TEST(Features, TableIIValuesForStar2d1r) {
  const auto f = extract_features(make_star(2, 1), 4);
  EXPECT_EQ(f.dims, 2);
  EXPECT_EQ(f.order, 1);
  EXPECT_EQ(f.nnz, 5);
  EXPECT_NEAR(f.sparsity, 5.0 / 81.0, 1e-12);
  EXPECT_EQ(f.nnz_per_order[0], 4);
  EXPECT_EQ(f.nnz_per_order[1], 0);
  EXPECT_NEAR(f.ratio_per_order[0], 4.0 / 5.0, 1e-12);
}

TEST(Features, RejectsOrderOverflow) {
  EXPECT_THROW(extract_features(make_star(2, 3), 2), std::invalid_argument);
}

TEST(Features, VectorLayout) {
  const auto f = extract_features(make_box(2, 2), 4);
  const auto v = f.to_vector();
  // order, nnz, sparsity + 4 counts + 4 ratios
  EXPECT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 25.0);
  const auto with_dims = f.to_vector(true);
  EXPECT_EQ(with_dims.size(), 12u);
  EXPECT_DOUBLE_EQ(with_dims[0], 2.0);
}

TEST(Features, NamesAlignWithVector) {
  const auto names = FeatureSet::names(4);
  EXPECT_EQ(names.size(), 11u);
  EXPECT_EQ(names[0], "order");
  EXPECT_EQ(names[3], "nnz_order-1");
  EXPECT_EQ(names[7], "nnzRatio_order-1");
  const auto with_dims = FeatureSet::names(4, true);
  EXPECT_EQ(with_dims.front(), "dims");
  EXPECT_EQ(with_dims.size(), 12u);
}

class FeatureInvariants : public ::testing::TestWithParam<int> {};

TEST_P(FeatureInvariants, CountsAndRatiosConsistent) {
  const int dims = GetParam();
  GeneratorConfig config;
  config.dims = dims;
  config.order = 4;
  const RandomStencilGenerator gen(config);
  util::Rng rng(77 + dims);
  for (int i = 0; i < 30; ++i) {
    const StencilPattern p = gen.generate(rng);
    const auto f = extract_features(p, 4);
    int total = 1;  // centre
    double ratio_total = 0.0;
    for (int n = 1; n <= 4; ++n) {
      total += f.nnz_per_order[static_cast<std::size_t>(n - 1)];
      ratio_total += f.ratio_per_order[static_cast<std::size_t>(n - 1)];
    }
    EXPECT_EQ(total, f.nnz);
    EXPECT_NEAR(ratio_total, static_cast<double>(f.nnz - 1) / f.nnz, 1e-9);
    double volume = dims == 2 ? 81.0 : 729.0;
    EXPECT_NEAR(f.sparsity, f.nnz / volume, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, FeatureInvariants, ::testing::Values(2, 3));

TEST(Features, GalleryFeaturesSane) {
  for (const auto& p : representative_gallery()) {
    const auto f = extract_features(p, 4);
    EXPECT_GT(f.sparsity, 0.0);
    EXPECT_LE(f.sparsity, 1.0);
    EXPECT_EQ(f.order, p.order());
  }
}

}  // namespace
}  // namespace smart::stencil
