#include "stencil/point.hpp"

#include <gtest/gtest.h>

#include <set>

namespace smart::stencil {
namespace {

TEST(Point, OrderIsChebyshev) {
  EXPECT_EQ(Point(0, 0).order(), 0);
  EXPECT_EQ(Point(2, -1).order(), 2);
  EXPECT_EQ(Point(1, 1, -3).order(), 3);
}

TEST(Point, Manhattan) {
  EXPECT_EQ(Point(2, -1).manhattan(), 3);
  EXPECT_EQ(Point(1, 1, 1).manhattan(), 3);
}

TEST(Point, OnAxis) {
  EXPECT_TRUE(Point(0, 0).on_axis());
  EXPECT_TRUE(Point(3, 0).on_axis());
  EXPECT_TRUE(Point(0, 0, -2).on_axis());
  EXPECT_FALSE(Point(1, 1).on_axis());
}

TEST(Point, OnDiagonal2D) {
  EXPECT_TRUE(Point(2, -2).on_diagonal(2));
  EXPECT_FALSE(Point(2, -1).on_diagonal(2));
  EXPECT_FALSE(Point(2, 0).on_diagonal(2));
}

TEST(Point, OnDiagonal3D) {
  EXPECT_TRUE(Point(1, -1, 1).on_diagonal(3));
  EXPECT_FALSE(Point(1, -1, 0).on_diagonal(3));
  EXPECT_FALSE(Point(1, -1, 2).on_diagonal(3));
}

TEST(Point, IsCentre) {
  EXPECT_TRUE(Point().is_centre());
  EXPECT_FALSE(Point(0, 1).is_centre());
}

TEST(Point, Ordering) {
  EXPECT_LT(Point(-1, 0), Point(0, 0));
  EXPECT_EQ(Point(1, 2), Point(1, 2));
}

TEST(Point, ToString) {
  EXPECT_EQ(Point(1, -2).to_string(2), "(1,-2)");
  EXPECT_EQ(Point(1, -2, 3).to_string(3), "(1,-2,3)");
}

TEST(MooreNeighbours, Count2D) {
  EXPECT_EQ(moore_neighbours(Point(), 2).size(), 8u);
}

TEST(MooreNeighbours, Count3D) {
  EXPECT_EQ(moore_neighbours(Point(), 3).size(), 26u);
}

TEST(MooreNeighbours, AllAtChebyshevOne) {
  const Point centre(2, -1, 0);
  for (const Point& q : moore_neighbours(centre, 3)) {
    int max_delta = 0;
    for (int a = 0; a < 3; ++a) {
      max_delta = std::max(max_delta, std::abs(q[a] - centre[a]));
    }
    EXPECT_EQ(max_delta, 1);
  }
}

TEST(MooreNeighbours, Distinct) {
  const auto ns = moore_neighbours(Point(0, 0, 0), 3);
  std::set<Point> unique(ns.begin(), ns.end());
  EXPECT_EQ(unique.size(), ns.size());
}

TEST(MooreNeighbours, ZStaysZeroIn2D) {
  for (const Point& q : moore_neighbours(Point(5, 5), 2)) {
    EXPECT_EQ(q[2], 0);
  }
}

TEST(PointHash, DistinguishesPoints) {
  PointHash h;
  EXPECT_NE(h(Point(1, 0)), h(Point(0, 1)));
  EXPECT_EQ(h(Point(1, 2)), h(Point(1, 2)));
}

}  // namespace
}  // namespace smart::stencil
