#include "stencil/pattern.hpp"

#include <gtest/gtest.h>

namespace smart::stencil {
namespace {

TEST(StencilPattern, InsertsCentreAndDedups) {
  const StencilPattern p(2, {Point(1, 0), Point(1, 0), Point(-1, 0)});
  EXPECT_EQ(p.size(), 3);
  EXPECT_TRUE(p.contains(Point(0, 0)));
}

TEST(StencilPattern, RejectsBadDims) {
  EXPECT_THROW(StencilPattern(1, {}), std::invalid_argument);
  EXPECT_THROW(StencilPattern(4, {}), std::invalid_argument);
}

TEST(StencilPattern, RejectsOffsetBeyondDims) {
  EXPECT_THROW(StencilPattern(2, {Point(0, 0, 1)}), std::invalid_argument);
}

TEST(StencilPattern, OrderIsMaxChebyshev) {
  const StencilPattern p(2, {Point(3, 0), Point(0, -2)});
  EXPECT_EQ(p.order(), 3);
}

TEST(StencilPattern, CountsPerOrder) {
  const StencilPattern p = make_star(2, 2);
  EXPECT_EQ(p.count_of_order(0), 1);
  EXPECT_EQ(p.count_of_order(1), 4);
  EXPECT_EQ(p.count_of_order(2), 4);
  EXPECT_EQ(p.count_of_order(3), 0);
}

TEST(StencilPattern, PointsOfOrder) {
  const StencilPattern p = make_star(2, 1);
  EXPECT_EQ(p.points_of_order(1).size(), 4u);
  EXPECT_EQ(p.points_of_order(0).size(), 1u);
}

TEST(StencilPattern, StarClassification) {
  for (int dims : {2, 3}) {
    for (int r = 1; r <= 4; ++r) {
      const auto p = make_star(dims, r);
      EXPECT_EQ(p.classify(), Shape::kStar) << dims << "d r" << r;
      EXPECT_EQ(p.size(), 2 * dims * r + 1);
    }
  }
}

TEST(StencilPattern, BoxClassification) {
  for (int dims : {2, 3}) {
    for (int r = 1; r <= 3; ++r) {
      const auto p = make_box(dims, r);
      EXPECT_EQ(p.classify(), Shape::kBox) << dims << "d r" << r;
      int volume = 1;
      for (int a = 0; a < dims; ++a) volume *= 2 * r + 1;
      EXPECT_EQ(p.size(), volume);
    }
  }
}

TEST(StencilPattern, CrossClassification) {
  for (int dims : {2, 3}) {
    for (int r = 1; r <= 4; ++r) {
      const auto p = make_cross(dims, r);
      EXPECT_EQ(p.classify(), Shape::kCross) << dims << "d r" << r;
      EXPECT_EQ(p.size(), (dims == 2 ? 4 : 8) * r + 1);
    }
  }
}

TEST(StencilPattern, IrregularClassification) {
  const StencilPattern p(2, {Point(1, 0), Point(1, 1), Point(2, 1)});
  EXPECT_EQ(p.classify(), Shape::kIrregular);
}

TEST(StencilPattern, CentreOnlyIsIrregular) {
  const StencilPattern p(2, {});
  EXPECT_EQ(p.classify(), Shape::kIrregular);
  EXPECT_EQ(p.order(), 0);
}

TEST(StencilPattern, Name) {
  EXPECT_EQ(make_star(2, 3).name(), "star2d3r");
  EXPECT_EQ(make_box(3, 4).name(), "box3d4r");
  EXPECT_EQ(make_cross(2, 1).name(), "cross2d1r");
}

TEST(StencilPattern, PlanesAlong) {
  const auto star = make_star(2, 2);
  EXPECT_EQ(star.planes_along(0), 5);  // x in {-2,-1,0,1,2}
  EXPECT_EQ(star.planes_along(1), 5);
  const StencilPattern thin(2, {Point(1, 0), Point(2, 0)});
  EXPECT_EQ(thin.planes_along(1), 1);
  EXPECT_EQ(thin.planes_along(0), 3);
  EXPECT_THROW(thin.planes_along(2), std::invalid_argument);
}

TEST(StencilPattern, HashDistinguishes) {
  EXPECT_NE(make_star(2, 2).hash(), make_star(2, 3).hash());
  EXPECT_NE(make_star(2, 2).hash(), make_box(2, 2).hash());
  EXPECT_EQ(make_star(3, 2).hash(), make_star(3, 2).hash());
}

TEST(StencilPattern, EqualityIsCanonical) {
  const StencilPattern a(2, {Point(1, 0), Point(-1, 0)});
  const StencilPattern b(2, {Point(-1, 0), Point(1, 0), Point(0, 0)});
  EXPECT_EQ(a, b);
}

TEST(Gallery, CoversShapesOrdersDims) {
  const auto gallery = representative_gallery();
  EXPECT_EQ(gallery.size(), 24u);  // {star,box,cross} x orders 1-4 x {2D,3D}
  int stars = 0;
  int boxes = 0;
  int crosses = 0;
  for (const auto& p : gallery) {
    switch (p.classify()) {
      case Shape::kStar: ++stars; break;
      case Shape::kBox: ++boxes; break;
      case Shape::kCross: ++crosses; break;
      case Shape::kIrregular: ADD_FAILURE() << p.name(); break;
    }
  }
  EXPECT_EQ(stars, 8);
  EXPECT_EQ(boxes, 8);
  EXPECT_EQ(crosses, 8);
}

}  // namespace
}  // namespace smart::stencil
