#include "stencil/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace smart::stencil {
namespace {

/// The Algorithm 1 invariant: every order-k point (k >= 1) is a Moore
/// neighbour of a selected point of order k-1.
bool satisfies_neighbour_chain(const StencilPattern& p) {
  for (const Point& q : p.offsets()) {
    const int k = q.order();
    if (k == 0) continue;
    bool linked = false;
    for (const Point& n : moore_neighbours(q, p.dims())) {
      if (n.order() == k - 1 && p.contains(n)) {
        linked = true;
        break;
      }
    }
    if (!linked) return false;
  }
  return true;
}

struct GenCase {
  int dims;
  int order;
};

class GeneratorInvariants : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorInvariants, ChainCentreAndOrderHold) {
  const auto param = GetParam();
  GeneratorConfig config;
  config.dims = param.dims;
  config.order = param.order;
  const RandomStencilGenerator gen(config);
  util::Rng rng(500 + param.dims * 100 + param.order);
  for (int i = 0; i < 40; ++i) {
    const StencilPattern p = gen.generate(rng);
    EXPECT_TRUE(p.contains(Point{}));
    EXPECT_EQ(p.dims(), param.dims);
    EXPECT_LE(p.order(), param.order);
    EXPECT_EQ(p.order(), param.order)
        << "force_full_order should reach the target order";
    EXPECT_TRUE(satisfies_neighbour_chain(p));
  }
}

INSTANTIATE_TEST_SUITE_P(DimsOrders, GeneratorInvariants,
                         ::testing::Values(GenCase{2, 1}, GenCase{2, 2},
                                           GenCase{2, 3}, GenCase{2, 4},
                                           GenCase{3, 1}, GenCase{3, 2},
                                           GenCase{3, 3}, GenCase{3, 4}),
                         [](const auto& info) {
                           return std::to_string(info.param.dims) + "d" +
                                  std::to_string(info.param.order) + "r";
                         });

TEST(Generator, DeterministicGivenSeed) {
  GeneratorConfig config;
  config.dims = 2;
  config.order = 3;
  const RandomStencilGenerator gen(config);
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.generate(a), gen.generate(b));
  }
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig bad_dims;
  bad_dims.dims = 1;
  EXPECT_THROW(RandomStencilGenerator{bad_dims}, std::invalid_argument);
  GeneratorConfig bad_order;
  bad_order.order = 0;
  EXPECT_THROW(RandomStencilGenerator{bad_order}, std::invalid_argument);
  GeneratorConfig bad_prob;
  bad_prob.keep_prob = 0.0;
  EXPECT_THROW(RandomStencilGenerator{bad_prob}, std::invalid_argument);
}

TEST(Generator, BatchIsDeduplicated) {
  GeneratorConfig config;
  config.dims = 2;
  config.order = 4;
  const RandomStencilGenerator gen(config);
  util::Rng rng(9);
  const auto batch = gen.generate_batch(rng, 50);
  EXPECT_EQ(batch.size(), 50u);
  std::unordered_set<std::uint64_t> hashes;
  for (const auto& p : batch) hashes.insert(p.hash());
  EXPECT_EQ(hashes.size(), 50u);
}

TEST(Generator, ProducesDiverseShapes) {
  GeneratorConfig config;
  config.dims = 2;
  config.order = 2;
  const RandomStencilGenerator gen(config);
  util::Rng rng(33);
  std::set<int> sizes;
  for (int i = 0; i < 60; ++i) sizes.insert(gen.generate(rng).size());
  EXPECT_GT(sizes.size(), 5u);
}

TEST(Generator, WithoutForceFullOrderMayStopEarly) {
  GeneratorConfig config;
  config.dims = 2;
  config.order = 4;
  config.keep_prob = 0.05;
  config.force_full_order = false;
  config.max_attempts = 1;
  const RandomStencilGenerator gen(config);
  util::Rng rng(11);
  bool saw_partial = false;
  for (int i = 0; i < 60 && !saw_partial; ++i) {
    saw_partial = gen.generate(rng).order() < 4;
  }
  EXPECT_TRUE(saw_partial);
}

}  // namespace
}  // namespace smart::stencil
