// Persistence round trips for every ml-layer building block used by the
// model artifact (core/serialize): Matrix, MaxAbsScaler, GBDT ensembles and
// the neural wrappers. Each loaded model must predict bit-identically to
// the one that was saved; malformed streams must throw instead of loading a
// silently-wrong model.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/models.hpp"
#include "util/rng.hpp"

namespace smart::ml {
namespace {

void expect_bitwise(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

void expect_bitwise(float a, float b) {
  EXPECT_EQ(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b));
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  }
  return m;
}

Matrix random_tensors(std::size_t n, std::size_t cols, std::uint64_t seed) {
  Matrix m(n, cols);
  util::Rng rng(seed);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = rng.bernoulli(0.3) ? 1.0f : 0.0f;
    }
  }
  return m;
}

void make_labels(const Matrix& x, std::vector<int>& labels, int classes) {
  labels.resize(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double sum = 0.0;
    for (float v : x.row(r)) sum += v;
    labels[r] = static_cast<int>(std::abs(sum) * 10.0) % classes;
  }
}

TEST(ModelIo, MatrixRoundTripIsBitExact) {
  const Matrix original = random_matrix(7, 5, 11);
  std::stringstream buffer;
  original.save(buffer);
  const Matrix loaded = Matrix::load(buffer);
  ASSERT_EQ(loaded.rows(), original.rows());
  ASSERT_EQ(loaded.cols(), original.cols());
  for (std::size_t r = 0; r < original.rows(); ++r) {
    for (std::size_t c = 0; c < original.cols(); ++c) {
      expect_bitwise(loaded.at(r, c), original.at(r, c));
    }
  }
}

TEST(ModelIo, MatrixRejectsBadTag) {
  std::stringstream buffer("xirtam 2 2\n0 0 0 0\n");
  EXPECT_THROW(Matrix::load(buffer), std::runtime_error);
}

TEST(ModelIo, MatrixRejectsNanElement) {
  std::stringstream buffer("mat 1 1\nnan\n");
  EXPECT_THROW(Matrix::load(buffer), std::runtime_error);
}

TEST(ModelIo, MatrixRejectsTruncatedStream) {
  std::stringstream buffer("mat 2 2\n0x1p+0 0x1p+1\n");
  EXPECT_THROW(Matrix::load(buffer), std::runtime_error);
}

TEST(ModelIo, ScalerRoundTripIsBitExact) {
  MaxAbsScaler scaler;
  const Matrix x = random_matrix(20, 6, 13);
  scaler.fit(x);
  std::stringstream buffer;
  scaler.save(buffer);
  const MaxAbsScaler loaded = MaxAbsScaler::load(buffer);
  ASSERT_EQ(loaded.scales().size(), scaler.scales().size());
  for (std::size_t c = 0; c < scaler.scales().size(); ++c) {
    expect_bitwise(loaded.scales()[c], scaler.scales()[c]);
  }
  const Matrix a = scaler.transform(x);
  const Matrix b = loaded.transform(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      expect_bitwise(a.at(r, c), b.at(r, c));
    }
  }
}

TEST(ModelIo, GbdtRegressorRoundTripPredictsBitIdentically) {
  const Matrix x = random_matrix(150, 10, 17);
  std::vector<float> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y[r] = x.at(r, 0) * 2.0f - x.at(r, 3);
  }
  GbdtParams params;
  params.rounds = 10;
  GbdtRegressor original(params);
  original.fit(x, y);

  std::stringstream buffer;
  original.save(buffer);
  const GbdtRegressor loaded = GbdtRegressor::load(buffer);
  const auto a = original.predict(x);
  const auto b = loaded.predict(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    expect_bitwise(a[r], b[r]);
    expect_bitwise(b[r], loaded.predict_row(x.row(r)));
  }
}

TEST(ModelIo, GbdtClassifierRoundTripPredictsBitIdentically) {
  const Matrix x = random_matrix(150, 8, 19);
  std::vector<int> labels;
  const int classes = 4;
  make_labels(x, labels, classes);
  GbdtParams params;
  params.rounds = 8;
  GbdtClassifier original(params);
  original.fit(x, labels, classes);

  std::stringstream buffer;
  original.save(buffer);
  const GbdtClassifier loaded = GbdtClassifier::load(buffer);
  EXPECT_EQ(loaded.num_classes(), classes);
  const auto a = original.predict(x);
  const auto b = loaded.predict(x);
  ASSERT_EQ(a, b);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto pa = original.predict_proba_row(x.row(r));
    const auto pb = loaded.predict_proba_row(x.row(r));
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t c = 0; c < pa.size(); ++c) expect_bitwise(pa[c], pb[c]);
  }
}

TEST(ModelIo, FcNetClassifierRoundTripPredictsIdentically) {
  const Matrix x = random_matrix(80, 6, 23);
  std::vector<int> labels;
  make_labels(x, labels, 3);
  util::Rng rng(29);
  TrainConfig tc;
  tc.epochs = 3;
  NnClassifier original(make_fcnet(x.cols(), 3, 2, 16, rng), tc);
  original.fit(x, labels);

  std::stringstream buffer;
  original.save(buffer);
  NnClassifier loaded = NnClassifier::load(buffer);
  EXPECT_EQ(loaded.predict(x), original.predict(x));
}

TEST(ModelIo, ConvNetClassifierRoundTripPredictsIdentically) {
  const Matrix x = random_tensors(60, 81, 31);
  std::vector<int> labels;
  make_labels(x, labels, 2);
  util::Rng rng(37);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  NnClassifier original(make_convnet(2, 4, 2, rng), tc);
  original.fit(x, labels);

  std::stringstream buffer;
  original.save(buffer);
  NnClassifier loaded = NnClassifier::load(buffer);
  EXPECT_EQ(loaded.predict(x), original.predict(x));
}

TEST(ModelIo, MlpRegressorRoundTripPredictsBitIdentically) {
  const Matrix x = random_matrix(100, 5, 41);
  std::vector<float> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) y[r] = x.at(r, 1) + 0.5f;
  util::Rng rng(43);
  TrainConfig tc;
  tc.epochs = 3;
  NnRegressor original(make_mlp(x.cols(), 2, 16, rng), tc);
  original.fit(x, y);

  std::stringstream buffer;
  original.save(buffer);
  NnRegressor loaded = NnRegressor::load(buffer);
  const auto a = original.predict(x);
  const auto b = loaded.predict(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) expect_bitwise(a[r], b[r]);
}

TEST(ModelIo, ConvMlpRegressorRoundTripPredictsBitIdentically) {
  const std::size_t n = 60;
  const Matrix tensors = random_tensors(n, 81, 47);
  const Matrix aux = random_matrix(n, 4, 53);
  std::vector<float> y(n);
  for (std::size_t r = 0; r < n; ++r) y[r] = aux.at(r, 0) * 3.0f;
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  ConvMlpRegressor original(2, 4, aux.cols(), tc);
  original.fit(tensors, aux, y);

  std::stringstream buffer;
  original.save(buffer);
  ConvMlpRegressor loaded = ConvMlpRegressor::load(buffer);
  const auto a = original.predict(tensors, aux);
  const auto b = loaded.predict(tensors, aux);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) expect_bitwise(a[r], b[r]);

  // predict_gathered must agree too: every aux row maps to its own tensor.
  std::vector<std::size_t> tensor_row(n);
  for (std::size_t r = 0; r < n; ++r) tensor_row[r] = r;
  const auto g = loaded.predict_gathered(tensors, tensor_row, aux);
  ASSERT_EQ(g.size(), a.size());
  for (std::size_t r = 0; r < a.size(); ++r) expect_bitwise(a[r], g[r]);
}

TEST(ModelIo, SequentialRejectsUnknownLayerTag) {
  std::stringstream buffer("net 1\nblorp\n");
  EXPECT_THROW(Sequential::load(buffer), std::runtime_error);
}

TEST(ModelIo, TrainConfigRoundTrip) {
  TrainConfig original;
  original.epochs = 12;
  original.batch_size = 77;
  original.learning_rate = 0.015625;
  original.seed = 987654321;
  original.validation_fraction = 0.25;
  original.patience = 9;
  std::stringstream buffer;
  save_train_config(buffer, original);
  const TrainConfig loaded = load_train_config(buffer);
  EXPECT_EQ(loaded.epochs, original.epochs);
  EXPECT_EQ(loaded.batch_size, original.batch_size);
  expect_bitwise(loaded.learning_rate, original.learning_rate);
  EXPECT_EQ(loaded.seed, original.seed);
  expect_bitwise(loaded.validation_fraction, original.validation_fraction);
  EXPECT_EQ(loaded.patience, original.patience);
}

}  // namespace
}  // namespace smart::ml
