#include "ml/nn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace smart::ml {
namespace {

/// Numerical gradient check: perturb each input element and compare the
/// analytic input gradient of sum(output * probe) against finite
/// differences.
void check_input_gradient(Layer& layer, const Matrix& x, double tol) {
  Matrix out = layer.forward(x);
  Matrix probe(out.rows(), out.cols());
  util::Rng rng(99);
  for (std::size_t r = 0; r < probe.rows(); ++r) {
    for (std::size_t c = 0; c < probe.cols(); ++c) {
      probe.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  const Matrix grad_in = layer.backward(probe);

  auto objective = [&](const Matrix& input) {
    Matrix o = layer.forward(input);
    double acc = 0.0;
    for (std::size_t r = 0; r < o.rows(); ++r) {
      for (std::size_t c = 0; c < o.cols(); ++c) {
        acc += static_cast<double>(o.at(r, c)) * probe.at(r, c);
      }
    }
    return acc;
  };

  const float eps = 1e-2f;
  util::Rng pick(7);
  for (int trial = 0; trial < 12; ++trial) {
    const auto r = static_cast<std::size_t>(pick.uniform_int(0, static_cast<std::int64_t>(x.rows()) - 1));
    const auto c = static_cast<std::size_t>(pick.uniform_int(0, static_cast<std::int64_t>(x.cols()) - 1));
    Matrix plus = x;
    Matrix minus = x;
    plus.at(r, c) += eps;
    minus.at(r, c) -= eps;
    const double numeric = (objective(plus) - objective(minus)) / (2.0 * eps);
    EXPECT_NEAR(grad_in.at(r, c), numeric, tol)
        << "at (" << r << "," << c << ")";
  }
  layer.forward(x);  // restore caches
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return m;
}

TEST(Dense, GradientCheck) {
  util::Rng rng(1);
  Dense layer(6, 4, rng);
  check_input_gradient(layer, random_matrix(3, 6, 11), 2e-3);
}

TEST(Conv2D, GradientCheck) {
  util::Rng rng(2);
  Conv2D layer(2, 3, 5, 5, 3, rng);
  check_input_gradient(layer, random_matrix(2, 2 * 5 * 5, 12), 2e-3);
}

TEST(Conv3D, GradientCheck) {
  util::Rng rng(3);
  Conv3D layer(1, 2, 4, 4, 4, 3, rng);
  check_input_gradient(layer, random_matrix(2, 64, 13), 2e-3);
}

TEST(Conv2D, OutputShape) {
  util::Rng rng(4);
  Conv2D layer(1, 8, 9, 9, 3, rng);
  const Matrix out = layer.forward(random_matrix(5, 81, 14));
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 8u * 7u * 7u);
  EXPECT_EQ(layer.output_size(81), 8u * 49u);
}

TEST(Conv3D, OutputShape) {
  util::Rng rng(5);
  Conv3D layer(1, 4, 9, 9, 9, 3, rng);
  const Matrix out = layer.forward(random_matrix(2, 729, 15));
  EXPECT_EQ(out.cols(), 4u * 343u);
}

TEST(Conv2D, RejectsTooSmallInput) {
  util::Rng rng(6);
  EXPECT_THROW(Conv2D(1, 1, 2, 2, 3, rng), std::invalid_argument);
}

TEST(ReLU, ForwardBackward) {
  ReLU relu;
  const Matrix x = Matrix::from_rows({{-1.0f, 2.0f, 0.0f}});
  const Matrix y = relu.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
  const Matrix g = relu.backward(Matrix::from_rows({{5.0f, 5.0f, 5.0f}}));
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(g.at(0, 2), 0.0f);  // not strictly positive
}

TEST(SoftmaxCe, LossAndGradient) {
  const Matrix logits = Matrix::from_rows({{2.0f, 0.0f}, {0.0f, 3.0f}});
  const std::vector<int> labels{0, 1};
  Matrix grad;
  const double loss = softmax_ce_loss(logits, labels, grad);
  EXPECT_GT(loss, 0.0);
  // Per-row gradients sum to zero.
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(grad.at(r, 0) + grad.at(r, 1), 0.0, 1e-6);
  }
  // Correct-class gradient is negative.
  EXPECT_LT(grad.at(0, 0), 0.0f);
  EXPECT_LT(grad.at(1, 1), 0.0f);
}

TEST(SoftmaxCe, PerfectPredictionLowLoss) {
  const Matrix logits = Matrix::from_rows({{20.0f, 0.0f}});
  const std::vector<int> labels{0};
  Matrix grad;
  EXPECT_LT(softmax_ce_loss(logits, labels, grad), 1e-6);
}

TEST(MseLoss, ValueAndGradient) {
  const Matrix preds = Matrix::from_rows({{3.0f}, {1.0f}});
  const std::vector<float> targets{1.0f, 1.0f};
  Matrix grad;
  const double loss = mse_loss(preds, targets, grad);
  EXPECT_NEAR(loss, 2.0, 1e-6);  // ((3-1)^2 + 0)/2
  EXPECT_NEAR(grad.at(0, 0), 2.0, 1e-6);
  EXPECT_NEAR(grad.at(1, 0), 0.0, 1e-6);
}

TEST(ArgmaxRows, PicksLargest) {
  const Matrix logits = Matrix::from_rows({{0.1f, 0.9f}, {5.0f, -1.0f}});
  const auto picks = argmax_rows(logits);
  EXPECT_EQ(picks[0], 1);
  EXPECT_EQ(picks[1], 0);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize ||w||^2 by feeding grad = 2w.
  Matrix w(1, 4, 1.0f);
  Matrix g(1, 4);
  std::vector<ParamRef> params{{&w, &g}};
  Adam opt(0.1);
  for (int i = 0; i < 200; ++i) {
    for (std::size_t c = 0; c < 4; ++c) g.at(0, c) = 2.0f * w.at(0, c);
    opt.step(params);
  }
  for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(w.at(0, c), 0.0f, 1e-2);
}

TEST(Adam, ZeroesGradients) {
  Matrix w(1, 2, 1.0f);
  Matrix g(1, 2, 3.0f);
  std::vector<ParamRef> params{{&w, &g}};
  Adam opt(0.01);
  opt.step(params);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
}

TEST(Sequential, TrainsTwoMoonsLikeProblem) {
  // Two classes separated by sign(x0 * x1): needs a hidden layer.
  util::Rng rng(20);
  const std::size_t n = 400;
  Matrix x = random_matrix(n, 2, 21);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = x.at(i, 0) * x.at(i, 1) > 0.0f ? 1 : 0;
  }
  Sequential net;
  net.add(std::make_unique<Dense>(2, 16, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(16, 2, rng));
  auto params = net.params();
  Adam opt(0.02);
  for (int epoch = 0; epoch < 300; ++epoch) {
    const Matrix logits = net.forward(x);
    Matrix grad;
    softmax_ce_loss(logits, labels, grad);
    net.backward(grad);
    opt.step(params);
  }
  const auto pred = argmax_rows(net.forward(x));
  int hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  EXPECT_GT(hits, static_cast<int>(0.9 * n));
}

}  // namespace
}  // namespace smart::ml
