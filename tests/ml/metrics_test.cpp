#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "ml/gbdt.hpp"

namespace smart::ml {
namespace {

TEST(ConfusionMatrix, CountsCells) {
  const std::vector<int> truth{0, 0, 1, 1, 2};
  const std::vector<int> pred{0, 1, 1, 1, 0};
  const auto m = confusion_matrix(truth, pred, 3);
  EXPECT_EQ(m[0][0], 1u);
  EXPECT_EQ(m[0][1], 1u);
  EXPECT_EQ(m[1][1], 2u);
  EXPECT_EQ(m[2][0], 1u);
  EXPECT_EQ(m[2][2], 0u);
}

TEST(ConfusionMatrix, IgnoresOutOfRangeLabels) {
  const std::vector<int> truth{-1, 0, 5};
  const std::vector<int> pred{0, 0, 0};
  const auto m = confusion_matrix(truth, pred, 2);
  EXPECT_EQ(m[0][0], 1u);
}

TEST(ConfusionMatrix, Validates) {
  const std::vector<int> a{0};
  const std::vector<int> b{0, 1};
  EXPECT_THROW(confusion_matrix(a, b, 2), std::invalid_argument);
  EXPECT_THROW(confusion_matrix(a, a, 0), std::invalid_argument);
}

TEST(ClassificationReport, PerfectPrediction) {
  const std::vector<int> labels{0, 1, 2, 0, 1, 2};
  const auto report =
      classification_report(confusion_matrix(labels, labels, 3));
  for (const auto& r : report) {
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_DOUBLE_EQ(r.f1, 1.0);
    EXPECT_EQ(r.support, 2u);
  }
  EXPECT_DOUBLE_EQ(macro_f1(report), 1.0);
}

TEST(ClassificationReport, HandlesEmptyClass) {
  const std::vector<int> truth{0, 0, 1};
  const std::vector<int> pred{0, 0, 0};
  const auto report = classification_report(confusion_matrix(truth, pred, 3));
  EXPECT_EQ(report[2].support, 0u);
  EXPECT_DOUBLE_EQ(report[1].recall, 0.0);
  // Macro-F1 only averages classes with support (0 and 1).
  EXPECT_NEAR(macro_f1(report), (report[0].f1 + report[1].f1) / 2.0, 1e-12);
}

TEST(FeatureImportance, ConcentratesOnInformativeFeature) {
  // y depends only on feature 0; feature 1 is noise.
  util::Rng rng(5);
  const std::size_t n = 400;
  Matrix x(n, 2);
  std::vector<float> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(-1.0, 1.0));
    x.at(i, 1) = static_cast<float>(rng.uniform(-1.0, 1.0));
    y[i] = 3.0f * x.at(i, 0);
  }
  GbdtParams params;
  params.rounds = 20;
  GbdtRegressor model(params);
  model.fit(x, y);
  const auto importance = model.feature_importance(2);
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
  EXPECT_GT(importance[0], 0.9);
}

TEST(FeatureImportance, ClassifierVariant) {
  util::Rng rng(6);
  const std::size_t n = 300;
  Matrix x(n, 3);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      x.at(i, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    labels[i] = x.at(i, 2) > 0.0f ? 1 : 0;
  }
  GbdtParams params;
  params.rounds = 10;
  GbdtClassifier model(params);
  model.fit(x, labels, 2);
  const auto importance = model.feature_importance(3);
  EXPECT_GT(importance[2], importance[0]);
  EXPECT_GT(importance[2], importance[1]);
}

TEST(FeatureImportance, ZeroWhenNoSplits) {
  // A constant target never splits.
  Matrix x(20, 2, 0.5f);
  std::vector<float> y(20, 1.0f);
  GbdtParams params;
  params.rounds = 3;
  GbdtRegressor model(params);
  model.fit(x, y);
  const auto importance = model.feature_importance(2);
  EXPECT_DOUBLE_EQ(importance[0], 0.0);
  EXPECT_DOUBLE_EQ(importance[1], 0.0);
}

}  // namespace
}  // namespace smart::ml
