#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace smart::ml {
namespace {

TEST(MaxAbsScaler, ScalesToUnitInterval) {
  const Matrix x = Matrix::from_rows({{2.0f, -10.0f}, {4.0f, 5.0f}});
  MaxAbsScaler scaler;
  const Matrix y = scaler.fit_transform(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -1.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 0.5f);
}

TEST(MaxAbsScaler, ZeroColumnPassesThrough) {
  const Matrix x = Matrix::from_rows({{0.0f}, {0.0f}});
  MaxAbsScaler scaler;
  const Matrix y = scaler.fit_transform(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
}

TEST(MaxAbsScaler, TransformWidthMismatch) {
  MaxAbsScaler scaler;
  scaler.fit(Matrix(2, 3, 1.0f));
  EXPECT_THROW(scaler.transform(Matrix(2, 2, 1.0f)), std::invalid_argument);
}

TEST(Dataset, SubsetAlignsLabelsAndTargets) {
  Dataset d;
  d.x = Matrix::from_rows({{1.0f}, {2.0f}, {3.0f}});
  d.labels = {10, 20, 30};
  d.targets = {0.1f, 0.2f, 0.3f};
  const std::vector<std::size_t> idx{2, 0};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.labels[0], 30);
  EXPECT_FLOAT_EQ(s.targets[1], 0.1f);
  EXPECT_FLOAT_EQ(s.x.at(0, 0), 3.0f);
}

class KFoldProperty : public ::testing::TestWithParam<int> {};

TEST_P(KFoldProperty, FoldsPartitionExactly) {
  const int folds = GetParam();
  util::Rng rng(folds);
  const std::size_t n = 103;
  const auto splits = kfold_splits(n, folds, rng);
  ASSERT_EQ(splits.size(), static_cast<std::size_t>(folds));
  std::set<std::size_t> all_test;
  for (const auto& fold : splits) {
    EXPECT_EQ(fold.train_indices.size() + fold.test_indices.size(), n);
    std::set<std::size_t> train(fold.train_indices.begin(),
                                fold.train_indices.end());
    for (std::size_t t : fold.test_indices) {
      EXPECT_FALSE(train.contains(t));
      EXPECT_TRUE(all_test.insert(t).second)
          << "index in more than one test fold";
    }
  }
  EXPECT_EQ(all_test.size(), n);
}

INSTANTIATE_TEST_SUITE_P(FoldCounts, KFoldProperty, ::testing::Values(2, 3, 5, 10));

TEST(KFold, RejectsBadArguments) {
  util::Rng rng(1);
  EXPECT_THROW(kfold_splits(10, 1, rng), std::invalid_argument);
  EXPECT_THROW(kfold_splits(3, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace smart::ml
