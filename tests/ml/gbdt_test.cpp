#include "ml/gbdt.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smart::ml {
namespace {

TEST(GbdtRegressor, LearnsNonlinearFunction) {
  util::Rng rng(1);
  const std::size_t n = 600;
  Matrix x(n, 3);
  std::vector<float> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      x.at(i, c) = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    y[i] = static_cast<float>(x.at(i, 0) * x.at(i, 1) +
                              std::sin(x.at(i, 2)) * 2.0);
  }
  GbdtParams params;
  params.rounds = 80;
  GbdtRegressor model(params);
  model.fit(x, y);
  EXPECT_EQ(model.num_trees(), 80u);
  double sse = 0.0;
  double variance = 0.0;
  double mean = 0.0;
  for (float v : y) mean += v;
  mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = model.predict_row(x.row(i));
    sse += (pred - y[i]) * (pred - y[i]);
    variance += (y[i] - mean) * (y[i] - mean);
  }
  EXPECT_LT(sse, 0.25 * variance);  // R^2 > 0.75 in-sample
}

TEST(GbdtRegressor, PredictBatchMatchesRow) {
  util::Rng rng(2);
  Matrix x(50, 2);
  std::vector<float> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(0.0, 1.0));
    x.at(i, 1) = static_cast<float>(rng.uniform(0.0, 1.0));
    y[i] = x.at(i, 0);
  }
  GbdtParams params;
  params.rounds = 10;
  GbdtRegressor model(params);
  model.fit(x, y);
  const auto batch = model.predict(x);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.predict_row(x.row(i)));
  }
}

TEST(GbdtRegressor, RejectsBadShapes) {
  GbdtRegressor model;
  const std::vector<float> y{1.0f};
  EXPECT_THROW(model.fit(Matrix(2, 1, 0.0f), y), std::invalid_argument);
  EXPECT_THROW(model.fit(Matrix(), {}), std::invalid_argument);
}

TEST(GbdtClassifier, LearnsSeparableClasses) {
  util::Rng rng(3);
  const std::size_t n = 450;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(i % 3);
    x.at(i, 0) = static_cast<float>(k + rng.uniform(-0.3, 0.3));
    x.at(i, 1) = static_cast<float>(-k + rng.uniform(-0.3, 0.3));
    labels[i] = k;
  }
  GbdtParams params;
  params.rounds = 30;
  GbdtClassifier model(params);
  model.fit(x, labels, 3);
  EXPECT_EQ(model.num_classes(), 3);
  EXPECT_EQ(model.num_rounds(), 30u);
  const auto pred = model.predict(x);
  int hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  EXPECT_GT(hits, static_cast<int>(0.95 * n));
}

TEST(GbdtClassifier, ProbabilitiesSumToOne) {
  util::Rng rng(4);
  Matrix x(60, 2);
  std::vector<int> labels(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(-1.0, 1.0));
    x.at(i, 1) = static_cast<float>(rng.uniform(-1.0, 1.0));
    labels[i] = static_cast<int>(i % 2);
  }
  GbdtParams params;
  params.rounds = 5;
  GbdtClassifier model(params);
  model.fit(x, labels, 2);
  const auto p = model.predict_proba_row(x.row(0));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GE(p[0], 0.0);
  EXPECT_GE(p[1], 0.0);
}

TEST(GbdtClassifier, RejectsBadLabels) {
  GbdtClassifier model;
  Matrix x(4, 1, 0.0f);
  EXPECT_THROW(model.fit(x, std::vector<int>{0, 1, 2, 3}, 3),
               std::invalid_argument);
  EXPECT_THROW(model.fit(x, std::vector<int>{0, -1, 0, 1}, 2),
               std::invalid_argument);
  EXPECT_THROW(model.fit(x, std::vector<int>{0, 1}, 2), std::invalid_argument);
}

TEST(GbdtClassifier, ImbalancedPriorsRespected) {
  // 90% class 0: with no informative features the classifier should
  // predict the majority class.
  util::Rng rng(5);
  Matrix x(200, 1);
  std::vector<int> labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(0.0, 1.0));
    labels[i] = i < 180 ? 0 : 1;
  }
  GbdtParams params;
  params.rounds = 3;
  params.tree.max_depth = 1;
  GbdtClassifier model(params);
  model.fit(x, labels, 2);
  int zeros = 0;
  for (int p : model.predict(x)) {
    if (p == 0) ++zeros;
  }
  EXPECT_GT(zeros, 150);
}

}  // namespace
}  // namespace smart::ml
