#include "ml/models.hpp"

#include <gtest/gtest.h>

namespace smart::ml {
namespace {

Matrix random_tensors(std::size_t n, std::size_t cols, std::uint64_t seed) {
  Matrix m(n, cols);
  util::Rng rng(seed);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = rng.bernoulli(0.3) ? 1.0f : 0.0f;
    }
  }
  return m;
}

TEST(Models, ConvNetClassifiesTensorDensity) {
  // Synthetic task: label = 1 if the 9x9 binary tensor has > 24 set cells.
  const std::size_t n = 240;
  Matrix x = random_tensors(n, 81, 31);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    float sum = 0.0f;
    for (float v : x.row(i)) sum += v;
    labels[i] = sum > 24.0f ? 1 : 0;
  }
  util::Rng rng(32);
  TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 32;
  NnClassifier clf(make_convnet(2, 4, 2, rng), tc);
  clf.fit(x, labels);
  const auto pred = clf.predict(x);
  int hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  EXPECT_GT(hits, static_cast<int>(0.85 * n));
}

TEST(Models, FcNetTrains) {
  const std::size_t n = 200;
  Matrix x = random_tensors(n, 20, 33);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = x.at(i, 0) > 0.5f ? 1 : 0;
  }
  util::Rng rng(34);
  TrainConfig tc;
  tc.epochs = 25;
  NnClassifier clf(make_fcnet(20, 2, 2, 32, rng), tc);
  const double loss = clf.fit(x, labels);
  EXPECT_LT(loss, 0.3);
}

TEST(Models, MlpRegressesLinearTarget) {
  const std::size_t n = 300;
  util::Rng data_rng(35);
  Matrix x(n, 4);
  std::vector<float> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      x.at(i, c) = static_cast<float>(data_rng.uniform(0.0, 1.0));
    }
    y[i] = 2.0f * x.at(i, 0) - x.at(i, 2);
  }
  util::Rng rng(36);
  TrainConfig tc;
  tc.epochs = 60;
  tc.batch_size = 32;
  tc.learning_rate = 3e-3;
  NnRegressor model(make_mlp(4, 2, 32, rng), tc);
  model.fit(x, y);
  const auto preds = model.predict(x);
  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sse += (preds[i] - y[i]) * (preds[i] - y[i]);
  }
  EXPECT_LT(sse / static_cast<double>(n), 0.02);
}

TEST(Models, ConvMlpUsesBothBranches) {
  // Target depends on tensor density AND an auxiliary feature; the joint
  // model must beat a constant predictor by a wide margin.
  const std::size_t n = 200;
  Matrix tensors = random_tensors(n, 81, 37);
  util::Rng data_rng(38);
  Matrix aux(n, 3);
  std::vector<float> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    float density = 0.0f;
    for (float v : tensors.row(i)) density += v;
    density /= 81.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      aux.at(i, c) = static_cast<float>(data_rng.uniform(0.0, 1.0));
    }
    y[i] = density + aux.at(i, 1);
  }
  TrainConfig tc;
  tc.epochs = 40;
  tc.batch_size = 32;
  tc.learning_rate = 2e-3;
  ConvMlpRegressor model(2, 4, 3, tc);
  model.fit(tensors, aux, y);
  const auto preds = model.predict(tensors, aux);
  double sse = 0.0;
  double mean = 0.0;
  for (float v : y) mean += v;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sse += (preds[i] - y[i]) * (preds[i] - y[i]);
    variance += (y[i] - mean) * (y[i] - mean);
  }
  EXPECT_LT(sse, 0.4 * variance);
}

TEST(Models, BuildersValidateArguments) {
  util::Rng rng(39);
  EXPECT_THROW(make_fcnet(10, 2, 0, 8, rng), std::invalid_argument);
  EXPECT_THROW(make_mlp(10, 0, 8, rng), std::invalid_argument);
  EXPECT_THROW(make_conv_trunk(4, 4, 2, 2, rng), std::invalid_argument);
}

TEST(Models, FitValidatesShapes) {
  util::Rng rng(40);
  TrainConfig tc;
  NnClassifier clf(make_fcnet(4, 2, 1, 8, rng), tc);
  const Matrix x(3, 4, 0.0f);
  EXPECT_THROW(clf.fit(x, std::vector<int>{0, 1}), std::invalid_argument);
  NnRegressor reg(make_mlp(4, 1, 8, rng), tc);
  EXPECT_THROW(reg.fit(x, std::vector<float>{0.0f}), std::invalid_argument);
}

TEST(Models, Conv3dTrunkShapes) {
  util::Rng rng(41);
  Sequential trunk = make_conv_trunk(3, 4, 2, 3, rng);
  const Matrix x = random_tensors(2, 729, 42);
  const Matrix out = trunk.forward(x);
  EXPECT_EQ(out.cols(), 3u * 125u);  // 5^3 x channels2
}

}  // namespace
}  // namespace smart::ml
