#include <gtest/gtest.h>

#include <chrono>

#include <memory>

#include "ml/models.hpp"
#include "ml/nn.hpp"

namespace smart::ml {
namespace {

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0, 1), std::invalid_argument);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout layer(0.5, 2);
  layer.set_training(false);
  const Matrix x = Matrix::from_rows({{1.0f, -2.0f, 3.0f}});
  const Matrix y = layer.forward(x);
  EXPECT_EQ(y, x);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  Dropout layer(0.5, 3);
  Matrix x(4, 64, 1.0f);
  const Matrix y = layer.forward(x);
  int zeros = 0;
  int scaled = 0;
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t c = 0; c < y.cols(); ++c) {
      if (y.at(r, c) == 0.0f) {
        ++zeros;
      } else {
        EXPECT_FLOAT_EQ(y.at(r, c), 2.0f);  // 1 / (1 - 0.5)
        ++scaled;
      }
    }
  }
  EXPECT_GT(zeros, 50);
  EXPECT_GT(scaled, 50);
}

TEST(Dropout, ExpectationPreserved) {
  Dropout layer(0.3, 4);
  Matrix x(1, 20000, 1.0f);
  const Matrix y = layer.forward(x);
  double sum = 0.0;
  for (std::size_t c = 0; c < y.cols(); ++c) sum += y.at(0, c);
  EXPECT_NEAR(sum / static_cast<double>(y.cols()), 1.0, 0.03);
}

TEST(Dropout, BackwardMasksGradient) {
  Dropout layer(0.5, 5);
  Matrix x(1, 32, 1.0f);
  const Matrix y = layer.forward(x);
  Matrix grad(1, 32, 1.0f);
  const Matrix gin = layer.backward(grad);
  for (std::size_t c = 0; c < 32; ++c) {
    if (y.at(0, c) == 0.0f) {
      EXPECT_FLOAT_EQ(gin.at(0, c), 0.0f);
    } else {
      EXPECT_FLOAT_EQ(gin.at(0, c), 2.0f);
    }
  }
}

TEST(Dropout, ZeroRateIsTransparentInTraining) {
  Dropout layer(0.0, 6);
  const Matrix x = Matrix::from_rows({{3.0f, 4.0f}});
  EXPECT_EQ(layer.forward(x), x);
  const Matrix g = Matrix::from_rows({{1.0f, 1.0f}});
  EXPECT_EQ(layer.backward(g), g);
}

TEST(EarlyStopping, StopsBeforeEpochBudget) {
  // A trivially learnable target: validation loss plateaus quickly, so the
  // early-stopped run must finish far faster than the fixed-epoch run.
  util::Rng data_rng(7);
  const std::size_t n = 300;
  Matrix x(n, 3);
  std::vector<float> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      x.at(i, c) = static_cast<float>(data_rng.uniform(0.0, 1.0));
    }
    y[i] = x.at(i, 0);
  }
  auto make = [](TrainConfig tc) {
    util::Rng rng(8);
    return NnRegressor(make_mlp(3, 2, 16, rng), tc);
  };
  TrainConfig fixed;
  fixed.epochs = 400;
  TrainConfig stopped = fixed;
  stopped.validation_fraction = 0.2;
  stopped.patience = 4;

  const auto t0 = std::chrono::steady_clock::now();
  make(fixed).fit(x, y);
  const auto t1 = std::chrono::steady_clock::now();
  make(stopped).fit(x, y);
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_LT((t2 - t1).count(), (t1 - t0).count());
}

TEST(EarlyStopping, StoppedModelStillAccurate) {
  util::Rng data_rng(9);
  const std::size_t n = 400;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    x.at(i, 1) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    labels[i] = x.at(i, 0) > 0.0f ? 1 : 0;
  }
  util::Rng rng(10);
  TrainConfig tc;
  tc.epochs = 200;
  tc.validation_fraction = 0.2;
  tc.patience = 6;
  NnClassifier clf(make_fcnet(2, 2, 2, 16, rng), tc);
  clf.fit(x, labels);
  const auto pred = clf.predict(x);
  int hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  EXPECT_GT(hits, static_cast<int>(0.9 * n));
}

TEST(DropoutInNetwork, RegularizedFcNetStillLearns) {
  util::Rng rng(11);
  Sequential net;
  net.add(std::make_unique<Dense>(4, 32, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dropout>(0.2, 12));
  net.add(std::make_unique<Dense>(32, 2, rng));
  util::Rng data_rng(13);
  const std::size_t n = 300;
  Matrix x(n, 4);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      x.at(i, c) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    }
    labels[i] = x.at(i, 1) + x.at(i, 2) > 0.0f ? 1 : 0;
  }
  TrainConfig tc;
  tc.epochs = 80;
  NnClassifier clf(std::move(net), tc);
  clf.fit(x, labels);
  const auto pred = clf.predict(x);
  int hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  EXPECT_GT(hits, static_cast<int>(0.85 * n));
}

}  // namespace
}  // namespace smart::ml
