#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace smart::ml {
namespace {

Matrix step_features(std::size_t n, util::Rng& rng) {
  Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(-1.0, 1.0));
    x.at(i, 1) = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

TEST(FeatureBinner, BinsAreMonotone) {
  util::Rng rng(1);
  const Matrix x = step_features(200, rng);
  FeatureBinner binner;
  binner.fit(x);
  EXPECT_EQ(binner.num_features(), 2u);
  int prev = -1;
  for (float v = -1.0f; v <= 1.0f; v += 0.05f) {
    const int b = binner.bin_of(0, v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(FeatureBinner, RejectsBadBins) {
  FeatureBinner binner;
  EXPECT_THROW(binner.fit(Matrix(4, 1, 0.0f), 1), std::invalid_argument);
  EXPECT_THROW(binner.fit(Matrix(4, 1, 0.0f), 100), std::invalid_argument);
}

TEST(FeatureBinner, BinMatrixWidthMismatch) {
  FeatureBinner binner;
  binner.fit(Matrix(4, 2, 0.0f));
  EXPECT_THROW(binner.bin_matrix(Matrix(4, 3, 0.0f)), std::invalid_argument);
}

TEST(RegressionTree, LearnsStepFunction) {
  util::Rng rng(2);
  const std::size_t n = 400;
  const Matrix x = step_features(n, rng);
  // Residual-fitting setup: target = step(x0), initial prediction 0, so the
  // gradient is -target.
  std::vector<double> g(n);
  std::vector<double> h(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = -(x.at(i, 0) > 0.2f ? 5.0 : -5.0);
  }
  FeatureBinner binner;
  binner.fit(x);
  const auto binned = binner.bin_matrix(x);
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  RegressionTree tree;
  TreeParams params;
  params.max_depth = 3;
  tree.fit(x, binned, binner, g, h, rows, params);
  EXPECT_GT(tree.num_nodes(), 1u);
  int correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = tree.predict_row(x.row(i));
    const double want = x.at(i, 0) > 0.2f ? 5.0 : -5.0;
    if (std::abs(pred - want) < 1.0) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(0.95 * n));
}

TEST(RegressionTree, RespectsDepthLimit) {
  util::Rng rng(3);
  const std::size_t n = 300;
  const Matrix x = step_features(n, rng);
  std::vector<double> g(n);
  std::vector<double> h(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) g[i] = rng.uniform(-1.0, 1.0);
  FeatureBinner binner;
  binner.fit(x);
  const auto binned = binner.bin_matrix(x);
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  RegressionTree tree;
  TreeParams params;
  params.max_depth = 2;
  tree.fit(x, binned, binner, g, h, rows, params);
  EXPECT_LE(tree.depth(), 2);
}

TEST(RegressionTree, PureLeafWhenTooFewSamples) {
  util::Rng rng(4);
  const Matrix x = step_features(6, rng);
  std::vector<double> g{1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  std::vector<double> h(6, 1.0);
  FeatureBinner binner;
  binner.fit(x);
  const auto binned = binner.bin_matrix(x);
  std::vector<std::size_t> rows{0, 1, 2, 3, 4, 5};
  RegressionTree tree;
  TreeParams params;
  params.min_samples_leaf = 10;  // cannot split 6 rows
  tree.fit(x, binned, binner, g, h, rows, params);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(RegressionTree, EmptyTreePredictsZero) {
  RegressionTree tree;
  const std::vector<float> features{1.0f};
  EXPECT_DOUBLE_EQ(tree.predict_row(features), 0.0);
}

}  // namespace
}  // namespace smart::ml
