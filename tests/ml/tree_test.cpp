#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace smart::ml {
namespace {

Matrix step_features(std::size_t n, util::Rng& rng) {
  Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(-1.0, 1.0));
    x.at(i, 1) = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

TEST(FeatureBinner, BinsAreMonotone) {
  util::Rng rng(1);
  const Matrix x = step_features(200, rng);
  FeatureBinner binner;
  binner.fit(x);
  EXPECT_EQ(binner.num_features(), 2u);
  int prev = -1;
  for (float v = -1.0f; v <= 1.0f; v += 0.05f) {
    const int b = binner.bin_of(0, v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(FeatureBinner, SelectionEdgesBitIdenticalToFullSort) {
  // fit() selects quantile edges with successive nth_element instead of a
  // full sort; the edges must be bit-identical to the sort-based reference
  // for every max_bins, including columns with heavy ties and constants.
  util::Rng rng(7);
  for (const std::size_t rows : {3u, 17u, 200u, 1001u}) {
    Matrix x(rows, 4);
    for (std::size_t i = 0; i < rows; ++i) {
      x.at(i, 0) = static_cast<float>(rng.uniform(-5.0, 5.0));
      x.at(i, 1) = static_cast<float>(rng.uniform_int(0, 3));  // heavy ties
      x.at(i, 2) = 1.5f;                                       // constant
      x.at(i, 3) = static_cast<float>(i % 7) - 3.0f;
    }
    for (const int max_bins : {2, 5, 16, 32}) {
      FeatureBinner binner;
      binner.fit(x, max_bins);
      for (std::size_t f = 0; f < x.cols(); ++f) {
        std::vector<float> sorted(rows);
        for (std::size_t r = 0; r < rows; ++r) sorted[r] = x.at(r, f);
        std::sort(sorted.begin(), sorted.end());
        std::vector<float> want;
        for (int b = 1; b < max_bins; ++b) {
          const std::size_t idx = std::min(
              rows - 1, b * rows / static_cast<std::size_t>(max_bins));
          if (want.empty() || sorted[idx] > want.back()) {
            want.push_back(sorted[idx]);
          }
        }
        ASSERT_EQ(binner.bins(f), static_cast<int>(want.size()) + 1)
            << "rows=" << rows << " max_bins=" << max_bins << " f=" << f;
        for (std::size_t e = 0; e < want.size(); ++e) {
          // Pin edge e to the exact float the sort-based binner produces:
          // values <= edge fall in bin e, the next representable float
          // below must fall in bin e-1's side — together these force
          // bit-identical edges through upper_bound semantics.
          EXPECT_EQ(binner.bin_of(f, want[e]), static_cast<int>(e) + 1)
              << "rows=" << rows << " max_bins=" << max_bins << " f=" << f;
          const float below = std::nextafterf(
              want[e], -std::numeric_limits<float>::infinity());
          EXPECT_EQ(binner.bin_of(f, below), static_cast<int>(e))
              << "rows=" << rows << " max_bins=" << max_bins << " f=" << f;
        }
      }
    }
  }
}

TEST(FeatureBinner, RejectsBadBins) {
  FeatureBinner binner;
  EXPECT_THROW(binner.fit(Matrix(4, 1, 0.0f), 1), std::invalid_argument);
  EXPECT_THROW(binner.fit(Matrix(4, 1, 0.0f), 100), std::invalid_argument);
}

TEST(FeatureBinner, BinMatrixWidthMismatch) {
  FeatureBinner binner;
  binner.fit(Matrix(4, 2, 0.0f));
  EXPECT_THROW(binner.bin_matrix(Matrix(4, 3, 0.0f)), std::invalid_argument);
}

TEST(RegressionTree, LearnsStepFunction) {
  util::Rng rng(2);
  const std::size_t n = 400;
  const Matrix x = step_features(n, rng);
  // Residual-fitting setup: target = step(x0), initial prediction 0, so the
  // gradient is -target.
  std::vector<double> g(n);
  std::vector<double> h(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = -(x.at(i, 0) > 0.2f ? 5.0 : -5.0);
  }
  FeatureBinner binner;
  binner.fit(x);
  const auto binned = binner.bin_matrix(x);
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  RegressionTree tree;
  TreeParams params;
  params.max_depth = 3;
  tree.fit(x, binned, binner, g, h, rows, params);
  EXPECT_GT(tree.num_nodes(), 1u);
  int correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = tree.predict_row(x.row(i));
    const double want = x.at(i, 0) > 0.2f ? 5.0 : -5.0;
    if (std::abs(pred - want) < 1.0) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(0.95 * n));
}

TEST(RegressionTree, RespectsDepthLimit) {
  util::Rng rng(3);
  const std::size_t n = 300;
  const Matrix x = step_features(n, rng);
  std::vector<double> g(n);
  std::vector<double> h(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) g[i] = rng.uniform(-1.0, 1.0);
  FeatureBinner binner;
  binner.fit(x);
  const auto binned = binner.bin_matrix(x);
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  RegressionTree tree;
  TreeParams params;
  params.max_depth = 2;
  tree.fit(x, binned, binner, g, h, rows, params);
  EXPECT_LE(tree.depth(), 2);
}

TEST(RegressionTree, PureLeafWhenTooFewSamples) {
  util::Rng rng(4);
  const Matrix x = step_features(6, rng);
  std::vector<double> g{1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  std::vector<double> h(6, 1.0);
  FeatureBinner binner;
  binner.fit(x);
  const auto binned = binner.bin_matrix(x);
  std::vector<std::size_t> rows{0, 1, 2, 3, 4, 5};
  RegressionTree tree;
  TreeParams params;
  params.min_samples_leaf = 10;  // cannot split 6 rows
  tree.fit(x, binned, binner, g, h, rows, params);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(RegressionTree, EmptyTreePredictsZero) {
  RegressionTree tree;
  const std::vector<float> features{1.0f};
  EXPECT_DOUBLE_EQ(tree.predict_row(features), 0.0);
}

}  // namespace
}  // namespace smart::ml
