#include "ml/matrix.hpp"

#include <gtest/gtest.h>

namespace smart::ml {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.at(0, 1), 7.0f);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
  EXPECT_THROW(Matrix::from_rows({{1.0f}, {1.0f, 2.0f}}), std::invalid_argument);
  EXPECT_TRUE(Matrix::from_rows({}).empty());
}

TEST(Matrix, Matmul) {
  const Matrix a = Matrix::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  const Matrix b = Matrix::from_rows({{5.0f, 6.0f}, {7.0f, 8.0f}});
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matrix, MatmulShapeMismatch) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matrix, MatmulBt) {
  const Matrix a = Matrix::from_rows({{1.0f, 2.0f}});       // 1x2
  const Matrix b = Matrix::from_rows({{3.0f, 4.0f}, {5.0f, 6.0f}});  // 2x2
  const Matrix c = matmul_bt(a, b);                          // 1x2
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);  // 1*3 + 2*4
  EXPECT_FLOAT_EQ(c.at(0, 1), 17.0f);  // 1*5 + 2*6
}

TEST(Matrix, MatmulAt) {
  const Matrix a = Matrix::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});  // 2x2
  const Matrix b = Matrix::from_rows({{5.0f}, {6.0f}});               // 2x1
  const Matrix c = matmul_at(a, b);                                    // 2x1
  EXPECT_FLOAT_EQ(c.at(0, 0), 23.0f);  // 1*5 + 3*6
  EXPECT_FLOAT_EQ(c.at(1, 0), 34.0f);  // 2*5 + 4*6
}

TEST(Matrix, TransposedProductsMatchExplicit) {
  util::Rng rng(4);
  Matrix a(3, 5);
  Matrix b(3, 4);
  a.init_he(rng);
  b.init_he(rng);
  // a^T * b via matmul_at must equal transpose(a) * b done by hand.
  const Matrix c = matmul_at(a, b);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (std::size_t n = 0; n < 3; ++n) acc += a.at(n, i) * b.at(n, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-5);
    }
  }
}

TEST(Matrix, GatherRows) {
  const Matrix m = Matrix::from_rows({{1.0f}, {2.0f}, {3.0f}});
  const std::vector<std::size_t> idx{2, 0};
  const Matrix g = m.gather_rows(idx);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_FLOAT_EQ(g.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(g.at(1, 0), 1.0f);
}

TEST(Matrix, InitHeBounded) {
  util::Rng rng(5);
  Matrix m(100, 10);
  m.init_he(rng);
  const double bound = std::sqrt(6.0 / 100.0);
  bool any_nonzero = false;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_LE(std::abs(m.at(r, c)), bound + 1e-6);
      if (m.at(r, c) != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Matrix, FillAndRowSpan) {
  Matrix m(2, 2);
  m.fill(3.0f);
  const auto row = m.row(1);
  EXPECT_EQ(row.size(), 2u);
  EXPECT_FLOAT_EQ(row[0], 3.0f);
}

}  // namespace
}  // namespace smart::ml
