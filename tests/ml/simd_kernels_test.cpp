// Vectorized inference kernel contracts (DESIGN.md §13):
//  - the fused bias+activation matmul is bit-identical to the unfused
//    matmul + bias loop + ReLU pass it replaces (strict precision);
//  - the relaxed ("f32") kernel is tolerance-equivalent to strict and its
//    per-element math is batch-size invariant (the property the serve
//    daemon's determinism contract relies on);
//  - the flattened lockstep GBDT walk is bit-identical to the per-row
//    pointer walk, NaN features included;
//  - the kernels reject aliased matrices, and Sequential::infer survives
//    shrinking/growing batch sizes (the serve admission batcher produces
//    arbitrary batch-size sequences).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/matrix.hpp"
#include "ml/models.hpp"
#include "ml/nn.hpp"
#include "ml/simd.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

namespace smart::ml {
namespace {

void expect_bitwise(float a, float b) {
  EXPECT_EQ(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b));
}

void expect_bitwise(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return m;
}

/// Reference: the legacy unfused sequence the strict kernel must reproduce
/// bit-for-bit — matmul, then one bias add per element, then a ReLU pass.
Matrix unfused_reference(const Matrix& a, const Matrix& b, const Matrix& bias,
                         bool relu) {
  Matrix c;
  matmul_into(a, b, c);
  for (std::size_t r = 0; r < c.rows(); ++r) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      float v = c.at(r, j) + bias.at(0, j);
      if (relu) v = v > 0.0f ? v : 0.0f;
      c.at(r, j) = v;
    }
  }
  return c;
}

// Shapes chosen to exercise the register-tile remainders (odd rows/cols),
// the vector-lane remainders of the relaxed kernel, and the parallel
// driver's worth_parallel threshold from both sides.
struct Shape {
  std::size_t rows, inner, cols;
};
const Shape kShapes[] = {{1, 1, 1},   {3, 7, 5},    {7, 13, 37},
                         {16, 24, 17}, {33, 47, 70}, {64, 128, 96}};

TEST(SimdKernels, FusedStrictMatchesUnfusedBitwise) {
  util::Rng rng(4242);
  for (const Shape& s : kShapes) {
    const Matrix a = random_matrix(s.rows, s.inner, rng);
    const Matrix b = random_matrix(s.inner, s.cols, rng);
    const Matrix bias = random_matrix(1, s.cols, rng);
    for (const bool relu : {false, true}) {
      const Matrix ref = unfused_reference(a, b, bias, relu);
      Matrix c;
      matmul_bias_act_into(a, b, bias, relu, c);
      ASSERT_EQ(c.rows(), ref.rows());
      ASSERT_EQ(c.cols(), ref.cols());
      for (std::size_t r = 0; r < c.rows(); ++r) {
        for (std::size_t j = 0; j < c.cols(); ++j) {
          expect_bitwise(c.at(r, j), ref.at(r, j));
        }
      }
    }
  }
}

TEST(SimdKernels, FusedStrictMatchesUnfusedBitwiseSerial) {
  const util::SerialSection serial;
  util::Rng rng(777);
  const Matrix a = random_matrix(33, 47, rng);
  const Matrix b = random_matrix(47, 70, rng);
  const Matrix bias = random_matrix(1, 70, rng);
  const Matrix ref = unfused_reference(a, b, bias, true);
  Matrix c;
  matmul_bias_act_into(a, b, bias, true, c);
  for (std::size_t r = 0; r < c.rows(); ++r) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      expect_bitwise(c.at(r, j), ref.at(r, j));
    }
  }
}

TEST(SimdKernels, RelaxedMatchesStrictWithinTolerance) {
  util::Rng rng(99);
  for (const Shape& s : kShapes) {
    const Matrix a = random_matrix(s.rows, s.inner, rng);
    const Matrix b = random_matrix(s.inner, s.cols, rng);
    const Matrix bias = random_matrix(1, s.cols, rng);
    for (const bool relu : {false, true}) {
      const Matrix ref = unfused_reference(a, b, bias, relu);
      Matrix c;
      matmul_bias_act_relaxed_into(a, b, bias, relu, c);
      for (std::size_t r = 0; r < c.rows(); ++r) {
        for (std::size_t j = 0; j < c.cols(); ++j) {
          const double want = ref.at(r, j);
          const double got = c.at(r, j);
          // Reassociation/FMA error is a few ulps per accumulation chain;
          // 1e-4 relative (1e-5 absolute near zero) is orders of magnitude
          // above it and still catches any indexing bug outright.
          EXPECT_NEAR(got, want, 1e-5 + 1e-4 * std::fabs(want))
              << "rows=" << s.rows << " inner=" << s.inner
              << " cols=" << s.cols << " at (" << r << ", " << j << ")";
        }
      }
    }
  }
}

TEST(SimdKernels, RelaxedIsBatchSizeInvariant) {
  // The serve determinism contract in relaxed mode: a row's output depends
  // only on that row's values, never on which rows share the batch. Compute
  // 37 rows at once, then re-run the first 5 rows alone — bitwise equal.
  util::Rng rng(31);
  const Matrix a = random_matrix(37, 29, rng);
  const Matrix b = random_matrix(29, 43, rng);
  const Matrix bias = random_matrix(1, 43, rng);
  Matrix full;
  matmul_bias_act_relaxed_into(a, b, bias, true, full);

  Matrix head(5, a.cols());
  for (std::size_t r = 0; r < head.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) head.at(r, c) = a.at(r, c);
  }
  Matrix part;
  matmul_bias_act_relaxed_into(head, b, bias, true, part);
  for (std::size_t r = 0; r < part.rows(); ++r) {
    for (std::size_t j = 0; j < part.cols(); ++j) {
      expect_bitwise(part.at(r, j), full.at(r, j));
    }
  }
}

TEST(SimdKernels, RelaxedIsThreadCountInvariant) {
  // Same kernel serial vs parallel driver: bitwise equal (each row group's
  // math is independent of the grouping).
  util::Rng rng(53);
  const Matrix a = random_matrix(64, 48, rng);
  const Matrix b = random_matrix(48, 64, rng);
  const Matrix bias = random_matrix(1, 64, rng);
  Matrix parallel;
  matmul_bias_act_relaxed_into(a, b, bias, true, parallel);
  Matrix serial;
  {
    const util::SerialSection section;
    matmul_bias_act_relaxed_into(a, b, bias, true, serial);
  }
  for (std::size_t r = 0; r < parallel.rows(); ++r) {
    for (std::size_t j = 0; j < parallel.cols(); ++j) {
      expect_bitwise(serial.at(r, j), parallel.at(r, j));
    }
  }
}

TEST(SimdKernels, KernelsRejectAliasedMatrices) {
  util::Rng rng(7);
  Matrix a = random_matrix(8, 8, rng);
  const Matrix b = random_matrix(8, 8, rng);
  Matrix bias = random_matrix(1, 8, rng);
  EXPECT_THROW(matmul_into(a, b, a), std::invalid_argument);
  Matrix b_alias = b;
  EXPECT_THROW(matmul_into(a, b_alias, b_alias), std::invalid_argument);
  EXPECT_THROW(matmul_bias_act_into(a, b, bias, true, a),
               std::invalid_argument);
  EXPECT_THROW(matmul_bias_act_into(a, b, bias, true, bias),
               std::invalid_argument);
  EXPECT_THROW(matmul_bias_act_relaxed_into(a, b, bias, true, a),
               std::invalid_argument);
  EXPECT_THROW(matmul_bias_act_relaxed_into(a, b, bias, true, bias),
               std::invalid_argument);
}

/// Regression guard for the serve memo path: Sequential::infer must give
/// each batch size the same bits no matter what batch sizes ran before it
/// (the ping-pong scratch buffers shrink and grow across calls).
void check_shrink_grow(Sequential& net, const Matrix& big, const Matrix& small) {
  const Matrix first_big = net.infer(big);
  const Matrix first_small = net.infer(small);
  const Matrix again_big = net.infer(big);    // grow after shrink
  ASSERT_EQ(again_big.rows(), first_big.rows());
  for (std::size_t r = 0; r < first_big.rows(); ++r) {
    for (std::size_t c = 0; c < first_big.cols(); ++c) {
      expect_bitwise(again_big.at(r, c), first_big.at(r, c));
    }
  }
  const Matrix again_small = net.infer(small);  // shrink after grow
  for (std::size_t r = 0; r < first_small.rows(); ++r) {
    for (std::size_t c = 0; c < first_small.cols(); ++c) {
      expect_bitwise(again_small.at(r, c), first_small.at(r, c));
    }
  }
  // A one-row batch exercises every remainder path; rows must match the
  // same row inside the big batch in strict mode and in relaxed mode (the
  // relaxed kernel's per-element math is batch-size invariant).
  Matrix one(1, big.cols());
  for (std::size_t c = 0; c < big.cols(); ++c) one.at(0, c) = big.at(0, c);
  const Matrix single = net.infer(one);
  for (std::size_t c = 0; c < single.cols(); ++c) {
    expect_bitwise(single.at(0, c), first_big.at(0, c));
  }
}

TEST(SimdKernels, SequentialInferShrinkGrowBatches) {
  util::Rng rng(2024);
  Sequential net = make_mlp(12, 2, 16, rng);
  net.set_training(false);
  const Matrix big = random_matrix(64, 12, rng);
  Matrix small(8, 12);
  for (std::size_t r = 0; r < small.rows(); ++r) {
    for (std::size_t c = 0; c < small.cols(); ++c) {
      small.at(r, c) = big.at(r, c);
    }
  }
  check_shrink_grow(net, big, small);
  const PrecisionSection relaxed(Precision::kRelaxed);
  check_shrink_grow(net, big, small);
}

TEST(SimdKernels, SequentialInferSimdToggleIsBitIdentical) {
  // The strict fusion peephole must not change a single output bit.
  util::Rng rng(5150);
  Sequential net = make_mlp(10, 3, 24, rng);
  net.set_training(false);
  const Matrix x = random_matrix(50, 10, rng);
  const Matrix fused = net.infer(x);  // SMART_SIMD default-on
  Matrix unfused;
  {
    const SimdSection off(false);
    unfused = net.infer(x);
  }
  ASSERT_EQ(fused.rows(), unfused.rows());
  ASSERT_EQ(fused.cols(), unfused.cols());
  for (std::size_t r = 0; r < fused.rows(); ++r) {
    for (std::size_t c = 0; c < fused.cols(); ++c) {
      expect_bitwise(fused.at(r, c), unfused.at(r, c));
    }
  }
}

/// Small synthetic regression problem for the GBDT layout checks.
void make_regression_data(Matrix& x, std::vector<float>& y, std::size_t rows,
                          std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  x = Matrix(rows, dim);
  y.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (float& v : x.row(r)) {
      v = static_cast<float>(rng.uniform(-2.0, 2.0));
      sum += v;
    }
    y[r] = static_cast<float>(sum + rng.uniform(-0.1, 0.1));
  }
}

TEST(FlatForest, LockstepMatchesPointerWalkBitwise) {
  Matrix x;
  std::vector<float> y;
  make_regression_data(x, y, 300, 9, 11);
  GbdtParams params;
  params.rounds = 20;
  GbdtRegressor reg(params);
  reg.fit(x, y);

  const std::vector<double> flat = reg.predict(x);  // SMART_SIMD default-on
  std::vector<double> walked;
  {
    const SimdSection off(false);
    walked = reg.predict(x);
  }
  ASSERT_EQ(flat.size(), walked.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    expect_bitwise(flat[r], walked[r]);
    expect_bitwise(flat[r], reg.predict_row(x.row(r)));
  }
  // Relaxed precision must not change GBDT bits either (the flattened
  // layout changes memory layout, not math).
  const PrecisionSection relaxed(Precision::kRelaxed);
  const std::vector<double> flat_f32 = reg.predict(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    expect_bitwise(flat_f32[r], flat[r]);
  }
}

TEST(FlatForest, LockstepSurvivesSaveLoad) {
  Matrix x;
  std::vector<float> y;
  make_regression_data(x, y, 200, 6, 23);
  GbdtParams params;
  params.rounds = 10;
  GbdtRegressor reg(params);
  reg.fit(x, y);

  std::stringstream buf;
  reg.save(buf);
  const GbdtRegressor loaded = GbdtRegressor::load(buf);
  const std::vector<double> a = reg.predict(x);
  const std::vector<double> b = loaded.predict(x);
  for (std::size_t r = 0; r < x.rows(); ++r) expect_bitwise(a[r], b[r]);
}

TEST(FlatForest, NanRoutesRightInBothLayouts) {
  Matrix x;
  std::vector<float> y;
  make_regression_data(x, y, 250, 7, 37);
  GbdtParams params;
  params.rounds = 15;
  GbdtRegressor reg(params);
  reg.fit(x, y);

  // Poison a mix of features: whole rows, single columns, alternating.
  Matrix poisoned = x;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t c = 0; c < poisoned.cols(); ++c) poisoned.at(0, c) = nan;
  for (std::size_t r = 0; r < poisoned.rows(); ++r) {
    if (r % 3 == 1) poisoned.at(r, r % poisoned.cols()) = nan;
  }

  const std::vector<double> flat = reg.predict(poisoned);
  std::vector<double> walked;
  {
    const SimdSection off(false);
    walked = reg.predict(poisoned);
  }
  for (std::size_t r = 0; r < poisoned.rows(); ++r) {
    // Both layouts take the documented right-child route on NaN, so the
    // outputs agree bitwise and are finite leaf sums, never NaN.
    expect_bitwise(flat[r], walked[r]);
    expect_bitwise(flat[r], reg.predict_row(poisoned.row(r)));
    EXPECT_TRUE(std::isfinite(flat[r]));
  }
}

TEST(FlatForest, ClassifierLockstepMatchesPointerWalk) {
  Matrix x;
  std::vector<float> y;
  make_regression_data(x, y, 240, 8, 91);
  std::vector<int> labels(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    labels[r] = static_cast<int>(std::fabs(y[r])) % 3;
  }
  GbdtParams params;
  params.rounds = 8;
  GbdtClassifier clf(params);
  clf.fit(x, labels, 3);

  const std::vector<int> flat = clf.predict(x);
  std::vector<int> walked;
  {
    const SimdSection off(false);
    walked = clf.predict(x);
  }
  ASSERT_EQ(flat.size(), walked.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(flat[r], walked[r]);
    EXPECT_EQ(flat[r], clf.predict_row(x.row(r)));
  }
}

TEST(FlatForest, BuildRejectsNonPreorderLinks) {
  // A corrupt artifact with a back-linking child (in range, so it survives
  // RegressionTree::load's dangling-link check) would cycle the pointer
  // walk; FlatForest::build must reject it instead of trusting its depth.
  std::stringstream corrupt(
      "tree 3 1 0\n"
      "0 0.5 0 2 0.0\n"   // root: left child links BACK to the root
      "-1 0.0 -1 -1 1.0\n"
      "-1 0.0 -1 -1 2.0\n");
  const RegressionTree tree = RegressionTree::load(corrupt);
  const std::vector<RegressionTree> trees{tree};
  FlatForest flat;
  EXPECT_THROW(flat.build(trees), std::runtime_error);
}

TEST(FeatureBinner, FitRejectsNan) {
  util::Rng rng(1);
  Matrix x(20, 4);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      x.at(r, c) = static_cast<float>(rng.uniform(0.0, 1.0));
    }
  }
  x.at(7, 2) = std::numeric_limits<float>::quiet_NaN();
  FeatureBinner binner;
  EXPECT_THROW(binner.fit(x), std::invalid_argument);

  // The ensemble fit goes through the binner, so training data with NaN
  // fails loudly instead of learning from arbitrary routing.
  std::vector<float> y(x.rows(), 1.0f);
  GbdtRegressor reg;
  EXPECT_THROW(reg.fit(x, y), std::invalid_argument);
}

}  // namespace
}  // namespace smart::ml
