#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace smart::cli {
namespace {

CommandLine parse(std::initializer_list<std::string> args) {
  return parse_command_line(std::vector<std::string>(args));
}

TEST(CliParse, SubcommandAndOptions) {
  const auto cmd = parse({"generate", "--dims", "3", "--count", "7"});
  EXPECT_EQ(cmd.command, "generate");
  EXPECT_EQ(cmd.get_int("dims", 0), 3);
  EXPECT_EQ(cmd.get_int("count", 0), 7);
  EXPECT_EQ(cmd.get("missing", "x"), "x");
  EXPECT_TRUE(cmd.has("dims"));
  EXPECT_FALSE(cmd.has("seed"));
}

TEST(CliParse, EmptyIsAllowed) {
  const auto cmd = parse({});
  EXPECT_TRUE(cmd.command.empty());
}

TEST(CliParse, RejectsMalformedInput) {
  EXPECT_THROW(parse({"--dims", "2"}), std::invalid_argument);
  EXPECT_THROW(parse({"generate", "stray"}), std::invalid_argument);
  EXPECT_THROW(parse({"generate", "--dims"}), std::invalid_argument);
  EXPECT_THROW(parse({"generate", "--dims", "--count"}), std::invalid_argument);
}

TEST(CliRun, UnknownCommandPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"frobnicate"}), out), 2);
  EXPECT_NE(out.str().find("smartctl"), std::string::npos);
}

TEST(CliRun, HelpIsSuccess) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"help"}), out), 0);
}

TEST(CliRun, OcsListsThirty) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"ocs"}), out), 0);
  EXPECT_NE(out.str().find("ST_RT_PR_TB"), std::string::npos);
}

TEST(CliRun, GpusListsTableIII) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"gpus"}), out), 0);
  EXPECT_NE(out.str().find("2080Ti"), std::string::npos);
  EXPECT_NE(out.str().find("1555"), std::string::npos);
}

TEST(CliRun, GenerateEmitsRequestedCount) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"generate", "--dims", "2", "--order", "2",
                               "--count", "4", "--seed", "9"}),
                        out),
            0);
  int lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(CliRun, FeaturesPrintsTableII) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"features", "--shape", "box", "--dims", "2",
                               "--order", "2"}),
                        out),
            0);
  EXPECT_NE(out.str().find("nnzRatio_order-1"), std::string::npos);
}

TEST(CliRun, CodegenEmitsKernel) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"codegen", "--shape", "star", "--dims", "2",
                               "--order", "1", "--oc", "ST_RT"}),
                        out),
            0);
  EXPECT_NE(out.str().find("__global__"), std::string::npos);
  EXPECT_NE(out.str().find("retiming"), std::string::npos);
}

TEST(CliRun, CodegenRejectsUnknownOc) {
  std::ostringstream out;
  EXPECT_THROW(run_command(parse({"codegen", "--oc", "WAT"}), out),
               std::invalid_argument);
}

TEST(CliRun, ProfileReportsCounts) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"profile", "--dims", "2", "--stencils", "6",
                               "--samples", "2"}),
                        out),
            0);
  EXPECT_NE(out.str().find("profiled 6 stencils"), std::string::npos);
}

TEST(CliRun, ProfileSavesCorpus) {
  std::ostringstream out;
  const std::string path = testing::TempDir() + "smartctl_corpus.txt";
  EXPECT_EQ(run_command(parse({"profile", "--dims", "2", "--stencils", "6",
                               "--samples", "2", "--out", path}),
                        out),
            0);
  EXPECT_NE(out.str().find("saved to"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliRun, AdviseEndToEnd) {
  std::ostringstream out;
  EXPECT_EQ(run_command(parse({"advise", "--shape", "star", "--dims", "2",
                               "--order", "2", "--gpu", "V100", "--stencils",
                               "16"}),
                        out),
            0);
  EXPECT_NE(out.str().find("group"), std::string::npos);
  EXPECT_NE(out.str().find("fastest GPU"), std::string::npos);
}

}  // namespace
}  // namespace smart::cli
